"""Figure 4(a): the solver-comparison summary table.

One benchmark per engine: a full pass over every suite (NB + B + H)
under the fixed per-problem budget.  Once the last engine finishes,
the Figure 4(a) table (% solved, average, median per group) is printed
and written to ``benchmarks/out/fig4a_summary.txt``.
"""

import pytest

from repro.bench.reporting import figure_4a_table, speedup_vs

from conftest import (
    BUDGET_SECONDS, all_engines, ensure_engine_records, write_artifact,
    write_records_artifact,
)

ENGINES = all_engines()


@pytest.mark.parametrize("engine", ENGINES, ids=[e.name for e in ENGINES])
def test_fig4a_engine_pass(benchmark, engine, builder, problems, records_store):
    def full_pass():
        records_store.pop(engine.name, None)
        return ensure_engine_records(records_store, engine, builder, problems)

    records = benchmark.pedantic(full_pass, rounds=1, iterations=1)
    solved = sum(1 for r in records if r.solved)
    wrong = [r.problem.name for r in records if r.outcome == "wrong"]
    assert not wrong, "wrong answers from %s: %s" % (engine.name, wrong[:5])
    benchmark.extra_info["solved"] = solved
    benchmark.extra_info["total"] = len(records)

    if len(records_store) == len(ENGINES):
        merged = [r for recs in records_store.values() for r in recs]
        table = figure_4a_table(
            merged, BUDGET_SECONDS, engines=[e.name for e in ENGINES]
        )
        ratios = speedup_vs(merged, BUDGET_SECONDS)
        lines = [table, "", "average-time ratio vs sbd (ours):"]
        for group, cells in sorted(ratios.items()):
            lines.append("  %s: %s" % (
                group,
                ", ".join("%s=%.2fx" % kv for kv in sorted(cells.items())),
            ))
        text = "\n".join(lines)
        print("\n" + text)
        write_artifact("fig4a_summary.txt", text)
        write_records_artifact("fig4a_records.json", merged)
