"""Figure 4(c): the benchmark inventory table (paper counts vs ours).

Times suite generation + labelling and writes the inventory table to
``benchmarks/out/fig4c_inventory.txt``.
"""

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder
from repro.bench.reporting import figure_4c_table
from repro.bench.suites import all_suites, label_problems, suite_inventory

from conftest import write_artifact, write_json_artifact


def test_fig4c_inventory(benchmark):
    def generate_and_label():
        builder = RegexBuilder(IntervalAlgebra())
        problems = label_problems(builder, all_suites(builder))
        return builder, problems

    builder, problems = benchmark.pedantic(
        generate_and_label, rounds=1, iterations=1
    )
    assert all(p.expected in ("sat", "unsat") for p in problems)
    inventory = suite_inventory(builder)
    text = figure_4c_table(inventory)
    print("\n" + text)
    write_artifact("fig4c_inventory.txt", text)
    write_json_artifact("fig4c_inventory.json", inventory)
