"""Standard suites (Q1): Kaluza-, Slog-, Norn-like — per-suite passes
for the reference engine (the paper's sanity check that derivative
solving does not regress on easy, non-Boolean constraints)."""

import pytest

from repro.bench.engines import reference_engine
from repro.bench.generators import kaluza, norn, slog
from repro.bench.harness import run_problem

from conftest import BUDGET_SECONDS, FUEL, write_records_artifact

SUITES = [
    ("kaluza", kaluza.generate),
    ("slog", slog.generate),
    ("norn_nb", norn.generate_nb),
]


@pytest.mark.parametrize("name,generate", SUITES, ids=[s[0] for s in SUITES])
def test_standard_suite(benchmark, builder, name, generate):
    engine = reference_engine()
    suite = generate(builder)

    def solve_suite():
        return [
            run_problem(engine, builder, p, fuel=FUEL, seconds=BUDGET_SECONDS)
            for p in suite
        ]

    records = benchmark.pedantic(solve_suite, rounds=1, iterations=1)
    write_records_artifact("standard_%s.json" % name, records)
    solved = sum(1 for r in records if r.outcome == "correct")
    benchmark.extra_info["solved"] = "%d/%d" % (solved, len(records))
    assert solved == len(records)
