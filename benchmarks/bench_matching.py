"""Matching throughput (the §8.5 SRM contrast).

Measures the derivative-based matcher on realistic patterns over a
synthetic log text, including *extended* patterns (with `&`/`~`) that
backtracking engines cannot express at all.  Results to
``benchmarks/out/matching.txt``.
"""

import random
import time

from repro.bench.generators.patterns import PATTERNS
from repro.matcher import LazyDfa, RegexMatcher
from repro.regex import parse

from conftest import write_artifact, write_json_artifact


def make_text(seed=99, size=20000):
    rng = random.Random(seed)
    words = ["error", "ok", "10.0.0.1", "2024-05-01", "user@host.com",
             "GET", "/index.html", "500", "#deadbe", "x" * 8]
    out = []
    length = 0
    while length < size:
        word = rng.choice(words)
        out.append(word)
        length += len(word) + 1
    return " ".join(out)


def test_matching_throughput(benchmark, builder):
    text = make_text()
    dfa = LazyDfa(builder)
    matchers = {
        name: RegexMatcher(builder, parse(builder, PATTERNS[name]), dfa)
        for name in ("ipv4", "email_simple", "date_iso", "hex_color")
    }
    # extended pattern: an integer token that is not part of an IP
    matchers["int_not_ip"] = RegexMatcher(
        builder, parse(builder, r"\d{3}&~((\d{1,3}\.){3}\d{1,3})"), dfa
    )

    def scan_all():
        return {name: m.count(text) for name, m in matchers.items()}

    counts = benchmark.pedantic(scan_all, rounds=1, iterations=1)
    assert counts["ipv4"] > 0
    assert counts["email_simple"] > 0
    assert counts["int_not_ip"] > 0

    started = time.perf_counter()
    scan_all()
    warm = time.perf_counter() - started
    lines = ["text size: %d chars" % len(text)]
    for name, count in sorted(counts.items()):
        lines.append("  %-14s %6d matches" % (name, count))
    lines.append("warm scan (DFA cached): %.3fs for %d patterns"
                 % (warm, len(matchers)))
    lines.append("lazy DFA: %d states built, %d steps taken"
                 % (dfa.states_built, dfa.steps))
    text_out = "\n".join(lines)
    print("\n" + text_out)
    write_artifact("matching.txt", text_out)
    write_json_artifact("matching.json", {
        "text_chars": len(text),
        "counts": counts,
        "warm_scan_s": warm,
        "dfa_states_built": dfa.states_built,
        "dfa_steps": dfa.steps,
    })
