"""Theorem 7.3 measured: SBFA state counts vs the ``#(R)+3`` bound.

Builds SBFA(R) for every regex appearing in the handwritten suites and
for the RegExLib pattern library, recording state count vs bound; the
ratio table goes to ``benchmarks/out/state_counts.txt``.
"""

from repro.bench.generators.patterns import PATTERN_NAMES, PATTERNS
from repro.regex import parse
from repro.sbfa.sbfa import from_regex

from conftest import write_artifact, write_json_artifact


def expanded_pred_count(regex):
    from repro.regex.ast import INF, LOOP, PRED

    if regex.kind == PRED:
        return 1
    total = sum(expanded_pred_count(c) for c in regex.children or ())
    if regex.kind == LOOP:
        factor = (regex.lo + 1) if regex.hi is INF else max(regex.hi, 1)
        total *= factor
    return total


def test_state_counts_on_regexlib(benchmark, builder):
    regexes = {
        name: parse(builder, PATTERNS[name]) for name in PATTERN_NAMES
    }

    def build_all():
        return {name: from_regex(builder, r) for name, r in regexes.items()}

    sbfas = benchmark.pedantic(build_all, rounds=1, iterations=1)
    lines = ["%-16s %8s %8s %8s" % ("pattern", "states", "bound", "ratio")]
    cells = {}
    worst = 0.0
    for name in PATTERN_NAMES:
        states = sbfas[name].state_count
        bound = expanded_pred_count(regexes[name]) + 3
        assert states <= bound, name
        ratio = states / bound
        worst = max(worst, ratio)
        lines.append("%-16s %8d %8d %8.2f" % (name, states, bound, ratio))
        cells[name] = {"states": states, "bound": bound, "ratio": ratio}
    lines.append("worst ratio: %.2f (1.00 would saturate Theorem 7.3)" % worst)
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("state_counts.txt", text)
    write_json_artifact("state_counts.json",
                        {"patterns": cells, "worst_ratio": worst})
