"""Bounded-memory soak: thousands of queries through the worker pool.

Drives the same >=5000 pattern-satisfiability queries through
``solve_batch`` twice — once unbounded, once with cache compaction and
worker recycling armed — and checks the lifecycle layer's contract:

* verdicts are identical between the two runs (compaction and planned
  retirement are invisible to callers);
* workers actually recycled (task budget) and compacted (in-worker
  :class:`~repro.solver.lifecycle.CompactionPolicy` fired);
* every retiring worker respected its task budget and the peak RSS it
  reported stays under an absolute watermark.

Patterns are deterministic but *distinct* (fresh literals per pattern),
so worker caches grow monotonically unless something bounds them.
Results to ``benchmarks/out/soak.txt`` / ``soak.json``.  Override
``SOAK_QUERIES`` for a quicker local pass; CI runs the full default.
"""

import os
import random

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.regex.semantics import matches
from repro.serve import Job, solve_batch

from conftest import write_artifact, write_json_artifact

#: total queries per run (the acceptance floor is 5000)
N_QUERIES = int(os.environ.get("SOAK_QUERIES", "5000"))
WORKERS = 2
FUEL = 100000
SECONDS = 5.0
#: recycle every worker after this many tasks
MAX_TASKS = 200
#: compact in-worker solver caches past this many entries (low enough
#: to trip several times within one worker's MAX_TASKS lifetime)
COMPACT_ENTRIES = 500
#: absolute per-worker RSS watermark; doubles as the recycling backstop
RSS_LIMIT_MB = 512

ALPHABET = "ab01"
SEED = 0x50AC


def make_patterns(count, seed=SEED):
    """Deterministic extended-regex patterns with fresh literals, mixing
    plain/bounded/boolean (``&``/``~``) shapes so both the matcher
    caches and the solver graph grow across a run."""
    rng = random.Random(seed)
    out = []
    while len(out) < count:
        word = "".join(rng.choice(ALPHABET)
                       for _ in range(rng.randint(2, 6)))
        other = "".join(rng.choice(ALPHABET)
                        for _ in range(rng.randint(1, 4)))
        shape = len(out) % 6
        if shape == 0:
            out.append("(%s){%d,%d}"
                       % (word, rng.randint(1, 2), rng.randint(3, 5)))
        elif shape == 1:
            out.append("%s|%s" % (word, other))
        elif shape == 2:
            out.append(".*%s.*" % word)
        elif shape == 3:
            out.append("~(%s*)&[ab01]*" % word)
        elif shape == 4:
            out.append(".*%s.*&~(.*%s.*)" % (word, word))   # unsat
        else:
            out.append("[ab]{1,%d}&.*%s.*" % (rng.randint(2, 4), other))
    return out


def make_jobs(n):
    patterns = make_patterns(max(50, n // 20))
    return [
        Job("q%05d" % i, "pattern", patterns[i % len(patterns)])
        for i in range(n)
    ]


def _run(jobs, **limits):
    return solve_batch(jobs, workers=WORKERS, fuel=FUEL, seconds=SECONDS,
                       **limits)


def test_soak_bounded_memory_matches_unbounded():
    jobs = make_jobs(N_QUERIES)
    unbounded = _run(jobs)
    bounded = _run(jobs, max_tasks=MAX_TASKS,
                   compact_entries=COMPACT_ENTRIES,
                   max_rss_mb=RSS_LIMIT_MB)

    for report in (unbounded, bounded):
        assert not report.errors, report.errors[:3]
        assert len(report.results) == N_QUERIES

    # the whole point: lifecycle management never changes an answer.
    # Statuses must match exactly; witnesses may differ byte-for-byte
    # (each worker's query history steers which witness the graph
    # search reaches first) but every sat witness must be a member.
    statuses = lambda report: [(r.name, r.status) for r in report.results]
    assert statuses(bounded) == statuses(unbounded)
    checker = RegexBuilder(IntervalAlgebra())
    parsed = {}
    for result in bounded.results:
        if result.status == "sat" and result.witness is not None:
            pattern = jobs[int(result.name[1:])].payload
            regex = parsed.get(pattern)
            if regex is None:
                regex = parsed[pattern] = parse(checker, pattern)
            assert matches(checker.algebra, regex, result.witness), result

    # recycling really happened, at the expected scale, and every
    # retiring worker honoured its task budget
    expected_recycles = max(1, N_QUERIES // MAX_TASKS - WORKERS)
    assert bounded.recycled >= expected_recycles, bounded.recycled
    assert unbounded.recycled == 0
    assert bounded.worker_reports, "workers must ship final reports"
    for report in bounded.worker_reports:
        assert report["tasks"] <= MAX_TASKS, report

    # in-worker compaction really fired
    compactions = bounded.worker_metrics.get("cache.compactions", 0)
    assert compactions >= 1, bounded.worker_metrics

    # bounded means bounded: peak worker RSS stays under the watermark
    peak_rss = max(r["rss_bytes"] for r in bounded.worker_reports)
    assert 0 < peak_rss < RSS_LIMIT_MB << 20, peak_rss

    retired = bounded.worker_metrics.get("cache.retired_entries", 0)
    lines = [
        "soak: %d queries x 2 runs on %d workers" % (N_QUERIES, WORKERS),
        "  verdicts: %s (identical bounded vs unbounded)"
        % " ".join("%s=%d" % kv for kv in sorted(bounded.counts.items())),
        "  unbounded: wall %.2fs cpu %.2fs" % (unbounded.wall_s,
                                               unbounded.cpu_s),
        "  bounded:   wall %.2fs cpu %.2fs" % (bounded.wall_s,
                                               bounded.cpu_s),
        "  recycled %d workers (task budget %d), %d cache compactions, "
        "%d entries retired" % (bounded.recycled, MAX_TASKS, compactions,
                                retired),
        "  peak worker RSS %.1f MiB (watermark %d MiB)"
        % (peak_rss / (1 << 20), RSS_LIMIT_MB),
    ]
    write_artifact("soak.txt", "\n".join(lines))
    write_json_artifact("soak.json", {
        "queries": N_QUERIES,
        "workers": WORKERS,
        "max_tasks": MAX_TASKS,
        "compact_entries": COMPACT_ENTRIES,
        "rss_limit_mb": RSS_LIMIT_MB,
        "counts": bounded.counts,
        "recycled": bounded.recycled,
        "compactions": compactions,
        "retired_entries": retired,
        "peak_rss_bytes": peak_rss,
        "wall_s": {"unbounded": unbounded.wall_s,
                   "bounded": bounded.wall_s},
        "worker_reports": bounded.worker_reports,
    })
    print("\n".join(lines))
