"""Shared benchmark fixtures.

The evaluation matrix (5 engines x ~780 problems) is computed at most
once per session and shared across the Figure 4 benchmark files; the
per-problem budget matches the paper's methodology (a fixed timeout,
here deterministic fuel + a wall-clock cap).
"""

import os

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder
from repro.bench.engines import default_engines
from repro.bench.harness import run_problem
from repro.bench.reporting import records_json, write_json_payload
from repro.bench.suites import all_suites, label_problems

#: Per-problem budget (the paper used 10 s wall clock; we use fuel to
#: stay machine-independent, plus a 1 s cap).
FUEL = 100000
BUDGET_SECONDS = 1.0

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def builder():
    return RegexBuilder(IntervalAlgebra())


@pytest.fixture(scope="session")
def problems(builder):
    return label_problems(builder, all_suites(builder))


@pytest.fixture(scope="session")
def records_store():
    """engine name -> list[Record]; filled lazily by the benches."""
    return {}


def ensure_engine_records(records_store, engine, builder, problems):
    """Run an engine over the full problem set once, cached."""
    if engine.name not in records_store:
        records_store[engine.name] = [
            run_problem(engine, builder, p, fuel=FUEL, seconds=BUDGET_SECONDS)
            for p in problems
        ]
    return records_store[engine.name]


def all_engines():
    return default_engines()


def write_artifact(name, text):
    """Persist a rendered table/series under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def write_json_artifact(name, payload):
    """Persist a machine-readable payload under benchmarks/out/ via
    :func:`repro.bench.reporting.write_json_payload`."""
    os.makedirs(OUT_DIR, exist_ok=True)
    return write_json_payload(payload, os.path.join(OUT_DIR, name))


def write_records_artifact(name, records, budget_seconds=BUDGET_SECONDS):
    """Persist harness records (counters included) as JSON under
    benchmarks/out/ — the format the BENCH snapshot pipeline consumes."""
    return write_json_artifact(name, records_json(records, budget_seconds))
