"""Determinization-blowup sweep: lazy derivatives vs eager automata as
the counter ``k`` grows in ``(.*a.{k})&(.*b.{k})``.

This regenerates the qualitative content of the paper's blowup
discussion: lazy derivative exploration scales linearly in ``k`` while
the determinizing pipeline crosses its state budget almost immediately.
The per-``k`` table is written to ``benchmarks/out/blowup_sweep.txt``.
"""

import time

import pytest

from repro.regex import parse
from repro.solver import Budget, RegexSolver
from repro.solver.baselines import EagerAutomataSolver

from conftest import write_artifact, write_json_artifact

KS = (4, 8, 16, 32, 64)


def clash(builder, k):
    return parse(builder, "(.*a.{%d})&(.*b.{%d})" % (k, k))


def test_blowup_sweep_lazy(benchmark, builder):
    def sweep():
        rows = []
        for k in KS:
            solver = RegexSolver(builder)
            started = time.perf_counter()
            result = solver.is_satisfiable(clash(builder, k), Budget(fuel=500000))
            elapsed = time.perf_counter() - started
            rows.append((k, result.status, elapsed, result.stats["vertices"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(status == "unsat" for _, status, _, _ in rows)
    # linear growth: states at k=64 are ~2x states at k=32, not 2^32x
    states = {k: v for k, _, _, v in rows}
    assert states[64] <= 4 * states[32]

    eager_rows = []
    for k in KS:
        solver = EagerAutomataSolver(builder, max_states=20000,
                                     determinize_all=True)
        started = time.perf_counter()
        result = solver.is_satisfiable(clash(builder, k))
        elapsed = time.perf_counter() - started
        eager_rows.append(
            (k, result.status, elapsed, result.stats.get("states_created"))
        )
    # the eager pipeline falls over somewhere in the sweep
    assert any(status == "unknown" for _, status, _, _ in eager_rows)

    lines = ["%4s %28s %28s" % ("k", "lazy (status/time/states)",
                                "eager-dfa (status/time/states)")]
    for (k, s1, t1, v1), (_, s2, t2, v2) in zip(rows, eager_rows):
        lines.append("%4d %10s %8.3fs %6d   %10s %8.3fs %6s"
                     % (k, s1, t1, v1, s2, t2, v2))
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("blowup_sweep.txt", text)
    write_json_artifact("blowup_sweep.json", {
        "columns": ["k", "status", "seconds", "states"],
        "lazy": rows,
        "eager_dfa": eager_rows,
    })
