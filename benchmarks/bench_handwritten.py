"""Handwritten suites (Q3): Date, Password, Boolean+Loops,
Determinization-Blowup — one benchmark per suite for the reference
engine, asserting every instance is solved correctly within budget.
"""

import pytest

from repro.bench.engines import reference_engine
from repro.bench.generators import blowup, boolean_loops, dates, passwords
from repro.bench.harness import run_problem

from conftest import BUDGET_SECONDS, FUEL, write_records_artifact

SUITES = [
    ("date", dates.generate),
    ("password", passwords.generate),
    ("boolean_loops", boolean_loops.generate),
    ("blowup", blowup.generate),
]


@pytest.mark.parametrize("name,generate", SUITES, ids=[s[0] for s in SUITES])
def test_handwritten_suite(benchmark, builder, name, generate):
    engine = reference_engine()
    suite = generate(builder)

    def solve_suite():
        return [
            run_problem(engine, builder, p, fuel=FUEL, seconds=BUDGET_SECONDS)
            for p in suite
        ]

    records = benchmark.pedantic(solve_suite, rounds=1, iterations=1)
    write_records_artifact("handwritten_%s.json" % name, records)
    solved = sum(1 for r in records if r.outcome == "correct")
    benchmark.extra_info["solved"] = "%d/%d" % (solved, len(records))
    # the paper: dZ3 solves ~88% of handwritten; ours should ace its
    # own scaled suite
    assert solved == len(records), [
        (r.problem.name, r.outcome) for r in records if r.outcome != "correct"
    ]
