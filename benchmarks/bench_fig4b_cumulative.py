"""Figure 4(b): cumulative benchmarks-solved-within-time plots.

Produces, for each group (Non-Boolean, Boolean, Handwritten) and each
engine, the sorted time series "k-th fastest solve" that the paper
plots with a log-scale time axis.  Written to
``benchmarks/out/fig4b_cumulative.txt``.
"""

import pytest

from repro.bench.reporting import figure_4b_series, render_4b

from conftest import (
    all_engines, ensure_engine_records, write_artifact, write_json_artifact,
)

ENGINES = all_engines()


def test_fig4b_cumulative(benchmark, builder, problems, records_store):
    for engine in ENGINES:
        ensure_engine_records(records_store, engine, builder, problems)
    merged = [r for recs in records_store.values() for r in recs]

    def build_series():
        return figure_4b_series(merged, engines=[e.name for e in ENGINES])

    series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    text = render_4b(series)
    print("\n" + text)
    write_artifact("fig4b_cumulative.txt", text)
    write_json_artifact("fig4b_cumulative.json", series)
    # sanity: the reference engine solves at least as many handwritten
    # benchmarks as every baseline (the paper's headline claim)
    sbd_solved = series["H"]["sbd"][-1][1] if series["H"]["sbd"] else 0
    for engine in ENGINES:
        other = series["H"][engine.name]
        assert sbd_solved >= (other[-1][1] if other else 0)
