"""The zipfian cold-vs-warm store benchmark (the warm-restart story).

Validation traffic repeats: a handful of patterns dominate the stream.
:mod:`repro.bench.warm` replays such a workload twice on fresh solver
stacks — once with no store, once against a pre-warmed snapshot — and
this bench asserts the headline claims the warm store ships with:

* warm replay is at least 2x faster than a cold rebuild at the median;
* every verdict and witness is identical cold vs warm (parity is
  checked inside the suite; a mismatch raises);
* the warm pass actually ran warm (every query a store hit, zero
  algebra operations spent on derivative rebuilds);
* a worker pool fed the same workload through a shared store file
  agrees with the serial verdicts.

The per-run summary (medians, speedup, counters) is written to
``benchmarks/out/warm_store.json``.
"""

import pytest

from repro.bench.warm import (
    DEFAULT_SEED,
    DISTINCT_PATTERNS,
    run_warm_suite,
    zipf_workload,
)
from repro.serve.jobs import Job
from repro.serve.pool import solve_batch

from conftest import write_json_artifact

#: The acceptance floor: warm median must beat cold median by this
#: factor on the zipfian workload (ISSUE: warm-path speedup >= 2x).
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def warm_run():
    return run_warm_suite()


def test_warm_median_at_least_2x_faster(warm_run):
    write_json_artifact("warm_store.json", {
        "workload": warm_run["workload"],
        "distinct": warm_run["distinct"],
        "cold_median_s": warm_run["cold_median_s"],
        "warm_median_s": warm_run["warm_median_s"],
        "speedup": warm_run["speedup"],
        "cells": warm_run["cells"],
    })
    assert warm_run["parity"], "cold/warm verdicts diverged"
    assert warm_run["speedup"] >= MIN_SPEEDUP, (
        "warm median %.5fs vs cold %.5fs: %.2fx < required %.1fx"
        % (warm_run["warm_median_s"], warm_run["cold_median_s"],
           warm_run["speedup"], MIN_SPEEDUP)
    )


def test_warm_pass_ran_fully_warm(warm_run):
    warm_cell = warm_run["cells"]["sbd/store_warm"]
    assert warm_cell["counters"]["store_hits"] == warm_run["workload"]
    assert warm_cell["counters"]["store_misses"] == 0
    # replayed rows, not rebuilt ones: no derivative work at all
    assert warm_cell["counters"]["algebra_ops"] == 0
    cold_cell = warm_run["cells"]["sbd/store_cold"]
    assert cold_cell["counters"]["algebra_ops"] > 0
    assert cold_cell["total"] == warm_cell["total"] == warm_run["workload"]


def test_pool_with_store_file_matches_serial(tmp_path):
    """Two workers sharing a store file (capture pass, then a warm
    pass) return the same verdict multiset as the serial suite."""
    workload = zipf_workload(length=24, seed=DEFAULT_SEED + 1,
                             patterns=DISTINCT_PATTERNS[:6])
    jobs = [Job("q%02d" % i, "pattern", p) for i, p in enumerate(workload)]
    store_file = str(tmp_path / "store.json")

    capture = solve_batch(jobs, workers=2, fuel=100000, seconds=5.0,
                          store_path=store_file, store_save=store_file)
    warm = solve_batch(jobs, workers=2, fuel=100000, seconds=5.0,
                       store_path=store_file)

    statuses = [r.status for r in capture.results]
    warm_statuses = [r.status for r in warm.results]
    assert statuses == warm_statuses
    hits = sum(
        r.get("store", {}).get("hits", 0) for r in warm.worker_reports
    )
    assert hits > 0, "warm pool pass never hit the shared store"
