"""Boolean suites (Q2): Norn-B, SyGuS-qgen-like, RegExLib
Intersection/Subset — per-suite passes for the reference engine."""

import pytest

from repro.bench.engines import reference_engine
from repro.bench.generators import norn, regexlib, sygus
from repro.bench.harness import run_problem
from repro.bench.suites import label_problems

from conftest import BUDGET_SECONDS, FUEL, write_records_artifact

SUITES = [
    ("norn_b", norn.generate_b),
    ("sygus", sygus.generate),
    ("regexlib_intersection", regexlib.generate_intersection),
    ("regexlib_subset", regexlib.generate_subset),
]


@pytest.mark.parametrize("name,generate", SUITES, ids=[s[0] for s in SUITES])
def test_boolean_suite(benchmark, builder, name, generate):
    engine = reference_engine()
    suite = label_problems(builder, generate(builder))

    def solve_suite():
        return [
            run_problem(engine, builder, p, fuel=FUEL, seconds=BUDGET_SECONDS)
            for p in suite
        ]

    records = benchmark.pedantic(solve_suite, rounds=1, iterations=1)
    write_records_artifact("boolean_%s.json" % name, records)
    solved = sum(1 for r in records if r.solved)
    benchmark.extra_info["solved"] = "%d/%d" % (solved, len(records))
    assert solved == len(records)
