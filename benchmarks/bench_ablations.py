"""Ablations over the design choices DESIGN.md calls out:

* fused clean conditional trees vs the literal delta->NNF->lift->DNF
  pipeline (the cost of not fusing/caching);
* DFS vs BFS unfolding order (model-guided deep dives vs shortest
  witnesses);
* interval-set vs BDD character algebra on Unicode-class-heavy
  constraints.

Results land in ``benchmarks/out/ablations.txt``.
"""

import time

from repro.alphabet import BDDAlgebra, IntervalAlgebra
from repro.derivatives.condtree import DerivativeEngine
from repro.derivatives.dnf import delta_dnf
from repro.regex import RegexBuilder, parse
from repro.solver import Budget, RegexSolver

from conftest import write_artifact, write_json_artifact

PATTERNS = [
    r"(.*\d.*)&~(.*01.*)",
    r"\d{4}-[a-zA-Z]{3}-\d{2}&(2019.*|2020.*)",
    r"(.*a.{12})&(.*b.{12})",
    r"(.*\d.*)&(.*[a-z].*)&(.*[A-Z].*)&.{8,16}",
]


def _sweep_states(builder, regex, derive):
    """Count distinct states explored via a derivative function."""
    seen = {regex}
    stack = [regex]
    while stack:
        state = stack.pop()
        for target in derive(state):
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return len(seen)


def test_ablation_fused_vs_literal(benchmark, builder):
    regexes = [parse(builder, p) for p in PATTERNS]
    engine = DerivativeEngine(builder)

    def fused_pass():
        return sum(
            _sweep_states(builder, r, engine.successors) for r in regexes
        )

    fused_states = benchmark.pedantic(fused_pass, rounds=1, iterations=1)

    from repro.derivatives.dnf import successors as literal_successors

    started = time.perf_counter()
    literal_states = sum(
        _sweep_states(builder, r, lambda s: literal_successors(builder, s))
        for r in regexes
    )
    literal_time = time.perf_counter() - started
    text = (
        "fused engine:    %d states\n"
        "literal pipeline: %d states in %.3fs (uncached, unfused)"
        % (fused_states, literal_states, literal_time)
    )
    print("\n" + text)
    write_artifact("ablations_fused.txt", text)
    write_json_artifact("ablations_fused.json", {
        "fused_states": fused_states,
        "literal_states": literal_states,
        "literal_seconds": literal_time,
    })
    assert fused_states <= literal_states


def test_ablation_dfs_vs_bfs(benchmark, builder):
    # a deep satisfiable instance: DFS dives, BFS pays per level
    deep = parse(builder, "~(.*a.{13})&(a|b){13}&.*a.*")

    def dfs_solve():
        return RegexSolver(builder, strategy="dfs").is_satisfiable(
            deep, Budget(fuel=200000)
        )

    result = benchmark.pedantic(dfs_solve, rounds=1, iterations=1)
    assert result.is_sat
    dfs_fuel = result.stats["fuel_used"]

    bfs = RegexSolver(builder, strategy="bfs").is_satisfiable(
        deep, Budget(fuel=200000)
    )
    lines = ["DFS: %s with fuel %d" % (result.status, dfs_fuel)]
    if bfs.is_unknown:
        lines.append("BFS: budget exhausted (breadth explosion)")
    else:
        lines.append("BFS: %s with fuel %d" % (bfs.status, bfs.stats["fuel_used"]))
        assert bfs.stats["fuel_used"] >= dfs_fuel
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("ablations_strategy.txt", text)
    write_json_artifact("ablations_strategy.json", {
        "dfs": {"status": result.status, "fuel": dfs_fuel},
        "bfs": {"status": bfs.status,
                "fuel": None if bfs.is_unknown else bfs.stats["fuel_used"]},
    })


def test_ablation_interval_vs_bdd(benchmark):
    pattern = r"(.*\d.*)&(.*\w.*)&~(.*\s.*)&.{4,40}"

    def solve_with(algebra):
        builder = RegexBuilder(algebra)
        solver = RegexSolver(builder)
        started = time.perf_counter()
        result = solver.is_satisfiable(parse(builder, pattern), Budget(fuel=100000))
        return result.status, time.perf_counter() - started

    def interval_run():
        return solve_with(IntervalAlgebra())

    status, interval_time = benchmark.pedantic(interval_run, rounds=1, iterations=1)
    assert status == "sat"
    bdd_status, bdd_time = solve_with(BDDAlgebra(bits=16))
    assert bdd_status == "sat"
    text = (
        "interval algebra: sat in %.4fs\n"
        "BDD algebra:      sat in %.4fs" % (interval_time, bdd_time)
    )
    print("\n" + text)
    write_artifact("ablations_algebra.txt", text)
    write_json_artifact("ablations_algebra.json", {
        "interval_s": interval_time, "bdd_s": bdd_time,
    })


def test_ablation_simplify_pass(benchmark, builder):
    """Does the post-hoc simplification pass shrink derivative state
    spaces on the handwritten regexes?"""
    from repro.regex.simplify import simplify_fixpoint
    from repro.sbfa.sbfa import delta_plus

    regexes = [parse(builder, p) for p in PATTERNS]
    # make fusion opportunities explicit
    regexes.append(parse(builder, "aaaaaaa*&.{4,40}"))

    def measure(rs):
        return sum(len(delta_plus(builder, r)) for r in rs)

    plain = benchmark.pedantic(lambda: measure(regexes), rounds=1, iterations=1)
    simplified = measure([simplify_fixpoint(builder, r) for r in regexes])
    text = (
        "derivative states without simplify: %d\n"
        "derivative states with simplify:    %d" % (plain, simplified)
    )
    print("\n" + text)
    write_artifact("ablations_simplify.txt", text)
    write_json_artifact("ablations_simplify.json", {
        "states_plain": plain, "states_simplified": simplified,
    })
    assert simplified <= plain
