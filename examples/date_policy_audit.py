#!/usr/bin/env python3
"""Auditing a cloud resource policy (the paper's Figure 1).

Azure resource-manager policies express activation conditions as
Boolean combinations of lightweight regex matches.  A policy that is
accidentally unsatisfiable never fires — this example reproduces the
paper's sanity check: the ``match``/``like`` combination is checked
for satisfiability, and the buggy variant (with the year anchored at
the wrong end) is caught.

Run:  python examples/date_policy_audit.py
"""

import json

from repro import IntervalAlgebra, RegexBuilder, SmtSolver, parse
from repro.solver import formula as F

POLICY = {
    "if": {"allOf": [
        {"field": "date", "match": "####-???-##"},
        {"anyOf": [
            {"field": "date", "like": "2019*"},
            {"field": "date", "like": "2020*"},
        ]},
    ]},
    "then": {"effect": "audit"},
}


def match_to_regex(builder, pattern):
    """Azure ``match``: '#' is a digit, '?' a letter, '*' any string."""
    parts = []
    for ch in pattern:
        if ch == "#":
            parts.append(r"\d")
        elif ch == "?":
            parts.append("[a-zA-Z]")
        elif ch == "*":
            parts.append(".*")
        else:
            parts.append("\\" + ch if ch in "\\^$.|?*+()[]{}&~" else ch)
    return parse(builder, "".join(parts))


def like_to_regex(builder, pattern):
    """Azure ``like``: only '*' is magic."""
    return match_to_regex(builder, pattern.replace("#", "\\#").replace("?", "\\?"))


def condition_to_formula(builder, condition):
    if "allOf" in condition:
        return F.And(tuple(
            condition_to_formula(builder, c) for c in condition["allOf"]
        ))
    if "anyOf" in condition:
        return F.Or(tuple(
            condition_to_formula(builder, c) for c in condition["anyOf"]
        ))
    field = condition["field"]
    if "match" in condition:
        return F.InRe(field, match_to_regex(builder, condition["match"]))
    if "like" in condition:
        return F.InRe(field, like_to_regex(builder, condition["like"]))
    raise ValueError("unsupported condition: %r" % condition)


def audit(policy):
    builder = RegexBuilder(IntervalAlgebra())
    solver = SmtSolver(builder)
    formula = condition_to_formula(builder, policy["if"])
    result = solver.solve(formula)
    return result


def main():
    print("policy:")
    print(json.dumps(POLICY, indent=2))

    result = audit(POLICY)
    print("\nactivation condition satisfiable:", result.status)
    print("example triggering value:", result.model)

    # the bug from the paper's introduction: writing .*2019 instead of
    # 2019.* — the policy silently becomes dead
    buggy = json.loads(json.dumps(POLICY))
    buggy["if"]["allOf"][1]["anyOf"][0]["like"] = "*2019"
    buggy["if"]["allOf"][1]["anyOf"][1]["like"] = "*2020"
    bad = audit(buggy)
    print("\nbuggy policy (year anchored at the end):", bad.status)
    if bad.is_unsat:
        print("=> the audit effect can never fire; the policy is dead.")


if __name__ == "__main__":
    main()
