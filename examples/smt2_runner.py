#!/usr/bin/env python3
"""A tiny SMT-LIB front end: solve ``.smt2`` string/regex scripts.

Usage:
    python examples/smt2_runner.py file.smt2 [more.smt2 ...]
    python examples/smt2_runner.py            # runs a built-in demo

Supports the QF_S subset described in ``repro.smtlib.parser`` —
``str.in_re`` with the full ``re.*`` algebra including ``re.inter``,
``re.comp`` and ``(_ re.loop i j)``, plus length atoms.
"""

import sys

from repro import Budget, IntervalAlgebra, RegexBuilder, run_script
from repro.smtlib.interp import run_file

DEMO = """\
(set-logic QF_S)
(set-info :status sat)
(declare-const pwd String)
; at least one digit
(assert (str.in_re pwd (re.++ re.all (re.range "0" "9") re.all)))
; never the substring "01"
(assert (not (str.in_re pwd (re.++ re.all (str.to_re "01") re.all))))
; between 8 and 128 characters
(assert (str.in_re pwd ((_ re.loop 8 128) re.allchar)))
(check-sat)
"""


def report(name, result):
    print("%s: %s" % (name, result.status))
    if result.model:
        for var, value in sorted(result.model.items()):
            print("  %s = %r" % (var, value))
    expected = result.stats.get("expected")
    if expected:
        verdict = "matches" if expected == result.status else "DIFFERS FROM"
        print("  (:status annotation %s the result)" % verdict)


def main(argv):
    builder = RegexBuilder(IntervalAlgebra())
    budget = Budget(fuel=2000000, seconds=60.0)
    if len(argv) > 1:
        for path in argv[1:]:
            report(path, run_file(builder, path, budget=budget))
    else:
        print("no input files; running the built-in demo script:\n")
        print(DEMO)
        report("demo", run_script(builder, DEMO, budget=budget))


if __name__ == "__main__":
    main(sys.argv)
