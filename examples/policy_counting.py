#!/usr/bin/env python3
"""Counting and sampling a policy language.

Beyond sat/unsat, the derivative DFA supports *exact* model counting
(how many 8-character passwords satisfy the policy?) and uniform
random sampling — all symbolically, using predicate cardinalities
instead of alphabet enumeration, over the full Unicode BMP.

Run:  python examples/policy_counting.py
"""

import math
import random

from repro import IntervalAlgebra, RegexBuilder, parse
from repro.analysis import LanguageCounter


def main():
    builder = RegexBuilder(IntervalAlgebra(127))  # printable-ASCII demo
    counter = LanguageCounter(builder)

    policy = parse(
        builder,
        r"[ -~]{8,12}"                 # printable, 8..12 chars
        r"&(.*\d.*)"                   # at least one digit
        r"&(.*[a-z].*)&(.*[A-Z].*)"    # both letter cases
        r"&~(.*(01|123|password).*)",  # no lazy sequences
    )

    print("exact number of compliant passwords, by length:")
    total = 0
    for n in range(8, 13):
        count = counter.count(policy, n)
        total += count
        print("  length %2d: %d  (~2^%.1f)" % (n, count, math.log2(count)))
    print("total: ~2^%.1f  (policy 'entropy' if chosen uniformly)"
          % math.log2(total))

    baseline = counter.count(parse(builder, r"[ -~]{8}"), 8)
    strict = counter.count(policy, 8)
    print("\nfraction of 8-char printable strings that comply: %.1f%%"
          % (100.0 * strict / baseline))

    print("\nuniformly sampled compliant passwords:")
    rng = random.Random(2021)
    for password in counter.sample_many(policy, [8, 10, 12], per_length=2,
                                        rng=rng):
        print("  %r" % password)

    finite = parse(builder, r"(yes|no)&.{0,3}")
    print("\nis (yes|no)&.{0,3} finite?", counter.is_finite(finite))
    print("is the policy finite?", counter.is_finite(policy))


if __name__ == "__main__":
    main()
