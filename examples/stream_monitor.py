#!/usr/bin/env python3
"""Online stream validation with extended regexes.

A Monitor consumes input one character at a time and keeps an *exact*
three-valued verdict: matching / pending / failed-forever.  "Failed
forever" is decided by the solver's dead-state detection (Section 5),
so a violated policy is reported at the earliest possible character —
the testing/monitoring application the paper's related work cites.

Run:  python examples/stream_monitor.py
"""

from repro import IntervalAlgebra, RegexBuilder, parse
from repro.matcher.monitor import FAILED, MATCHING, Monitor


def show(builder, pattern, stream):
    monitor = Monitor(builder, parse(builder, pattern))
    print("policy: %s" % pattern)
    print("stream: %r" % stream)
    line = ["  "]
    failed_at = None
    for i, ch in enumerate(stream):
        verdict = monitor.feed(ch)
        line.append({MATCHING: "+", FAILED: "X"}.get(verdict, "."))
        if verdict == FAILED and failed_at is None:
            failed_at = i
    print("".join(line), "  (+ matching, . pending, X failed forever)")
    if failed_at is not None:
        print("  -> policy irrecoverably violated at index %d (%r)"
              % (failed_at, stream[failed_at]))
    print()


def main():
    builder = RegexBuilder(IntervalAlgebra())

    # a session token: letters then digits, never two hyphens
    show(builder, r"[a-z]+-\d+", "abc-123")
    show(builder, r"[a-z]+-\d+", "abc--12")

    # an audit log line must contain OK but never ERROR
    show(builder, r".*OK.*&~(.*ERROR.*)", "boot..OK..shutdown")
    show(builder, r".*OK.*&~(.*ERROR.*)", "boot..ERROR..OK")

    # balanced-ish framing: at most 3 frames of ab
    show(builder, r"(ab){0,3}", "abababab")


if __name__ == "__main__":
    main()
