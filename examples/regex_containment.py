#!/usr/bin/env python3
"""RegExLib-style containment and intersection analysis.

Takes realistic regexes (email, URL, date, IP...) and answers the
questions the paper's RegExLib suites ask: is one pattern contained in
another, do two patterns overlap, and — when the answer is no — what
is a concrete counterexample?

Run:  python examples/regex_containment.py
"""

from repro import Budget, IntervalAlgebra, RegexBuilder, RegexSolver, parse
from repro.bench.generators.patterns import PATTERNS


def main():
    builder = RegexBuilder(IntervalAlgebra())
    solver = RegexSolver(builder)
    budget = lambda: Budget(fuel=500000, seconds=10.0)

    compiled = {
        name: parse(builder, PATTERNS[name])
        for name in ("email", "email_simple", "ipv4", "ipv4_strict",
                     "date_iso", "date_us", "integer", "float", "binary",
                     "hex_number", "identifier", "username")
    }

    print("== containment queries ==")
    queries = [
        ("ipv4_strict", "ipv4"),      # strict dotted quad is a dotted quad
        ("ipv4", "ipv4_strict"),      # but not conversely (999.0.0.1)
        ("binary", "integer"),        # 0/1 strings are integers
        ("float", "integer"),         # "1.5" has a dot: not an integer
        ("username", "identifier"),   # usernames may start with a digit
    ]
    for sub, sup in queries:
        result = solver.contains(compiled[sub], compiled[sup], budget())
        if result.is_sat:
            print("  %-12s SUBSETOF %-12s holds" % (sub, sup))
        else:
            print("  %-12s SUBSETOF %-12s fails, e.g. %r"
                  % (sub, sup, result.witness))

    print("\n== intersection (overlap) queries ==")
    pairs = [
        ("email", "email_simple"),
        ("date_iso", "date_us"),
        ("integer", "hex_number"),
        ("identifier", "hex_number"),
    ]
    for left, right in pairs:
        both = builder.inter([compiled[left], compiled[right]])
        result = solver.is_satisfiable(both, budget())
        if result.is_sat:
            print("  %-12s and %-12s overlap, e.g. %r"
                  % (left, right, result.witness))
        else:
            print("  %-12s and %-12s are disjoint" % (left, right))

    print("\n== equivalence modulo a restriction ==")
    # over strings of digits only, ipv4 and ipv4_strict still differ
    digit_quad = parse(builder, r"(\d{1,3}\.){3}\d{1,3}")
    loose = builder.inter([compiled["ipv4"], digit_quad])
    strict = builder.inter([compiled["ipv4_strict"], digit_quad])
    result = solver.equivalent(loose, strict, budget())
    print("  loose == strict over dotted quads:", result.status)
    if result.is_unsat:
        print("  distinguishing address:", repr(result.witness))


if __name__ == "__main__":
    main()
