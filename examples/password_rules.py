#!/usr/bin/env python3
"""Password policy analysis with the Figure 3 propagation rules.

Reproduces the paper's Section 2 walk-through: the membership
constraint is unfolded rule by rule (der / ite / or / ere / upd / bot),
and the rule-firing counts are printed so the decision procedure's
anatomy is visible.  Then a stack of realistic password rules is
checked for consistency and for redundancy.

Run:  python examples/password_rules.py
"""

from repro import (
    IntervalAlgebra, PropagationEngine, RegexBuilder, RegexSolver, parse,
)
from repro.solver.rules import RuleTrace


def main():
    builder = RegexBuilder(IntervalAlgebra())
    solver = RegexSolver(builder)
    rules = PropagationEngine(solver)

    # -- Section 2's running example, rule by rule -----------------------
    constraint = parse(builder, r"(.*\d.*)&~(.*01.*)")
    trace = RuleTrace()
    result = rules.solve(constraint, trace=trace)
    print("Section 2 constraint:", result.status,
          "witness=%r" % result.witness)
    print("rule firings:", dict(sorted(trace.counts.items())))

    # -- a realistic rule stack -------------------------------------------
    rule_stack = {
        "length 10..64": r".{10,64}",
        "has digit": r".*\d.*",
        "has lowercase": r".*[a-z].*",
        "has uppercase": r".*[A-Z].*",
        "has special": r".*[!@#$%&*].*",
        "no '01' sequence": r"~(.*01.*)",
        "no char tripled": r"~(.*(aaa|bbb|ccc|000|111).*)",
        "no 'password'": r"~(.*password.*)",
    }
    combined = builder.inter(
        [parse(builder, p) for p in rule_stack.values()]
    )
    result = solver.is_satisfiable(combined)
    print("\ncombined policy (%d rules): %s" % (len(rule_stack), result.status))
    print("a compliant password:", repr(result.witness))
    print("derivative graph:", result.stats["vertices"], "states,",
          result.stats["edges"], "edges")

    # -- consistency audit: does any rule contradict the rest? -------------
    print("\nredundancy audit (is each rule implied by the others?):")
    names = list(rule_stack)
    for name in names:
        others = builder.inter([
            parse(builder, p) for other, p in rule_stack.items()
            if other != name
        ])
        this_rule = parse(builder, rule_stack[name])
        implied = solver.contains(others, this_rule)
        verdict = "REDUNDANT" if implied.is_sat else "independent"
        print("  %-22s %s" % (name, verdict))

    # -- a contradictory stack is caught with a proof ------------------------
    contradictory = builder.inter([
        combined, parse(builder, r"[a-z]*")  # lowercase-only, but digits required
    ])
    print("\nadding 'lowercase only':",
          solver.is_satisfiable(contradictory).status)


if __name__ == "__main__":
    main()
