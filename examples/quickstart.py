#!/usr/bin/env python3
"""Quickstart: solving extended regex constraints with symbolic
Boolean derivatives.

Run:  python examples/quickstart.py
"""

from repro import (
    Budget, IntervalAlgebra, RegexBuilder, RegexSolver, matches, parse,
    to_pattern,
)


def main():
    # 1. Pick a character theory.  The default interval algebra covers
    #    the Unicode Basic Multilingual Plane, like the paper's setting.
    algebra = IntervalAlgebra()
    builder = RegexBuilder(algebra)
    solver = RegexSolver(builder)

    # 2. Parse an *extended* regex: & is intersection, ~ complement.
    #    This is the paper's Section 2 password constraint: contains a
    #    digit, but never the substring "01".
    r = parse(builder, r"(.*\d.*)&~(.*01.*)")
    print("constraint:", to_pattern(r, algebra))

    # 3. Satisfiability with a witness.
    result = solver.is_satisfiable(r)
    print("status:", result.status)
    print("witness:", repr(result.witness))
    assert matches(algebra, r, result.witness)

    # 4. Unsatisfiability comes with a proof by exhaustion of the lazy
    #    derivative graph (dead-state detection, Section 5).
    conflict = parse(builder, r"(.*\d.*)&~(.*\d.*)")
    print("conflicting constraint:", solver.is_satisfiable(conflict).status)

    # 5. Containment and equivalence reduce to emptiness of Boolean
    #    combinations (Section 5).
    narrow = parse(builder, r"\d{4}")
    wide = parse(builder, r"\d{2,6}")
    print("\\d{4} subset of \\d{2,6}:", solver.contains(narrow, wide).status)
    print(
        "a*b* equivalent to (a|b)*:",
        solver.equivalent(parse(builder, "a*b*"), parse(builder, "(a|b)*")).status,
    )
    counterexample = solver.equivalent(
        parse(builder, "a*b*"), parse(builder, "(a|b)*")
    ).witness
    print("  distinguishing string:", repr(counterexample))

    # 6. Budgets make hard instances fail deterministically instead of
    #    hanging (the benchmark harness uses the same mechanism).
    hard = parse(builder, "~(.*a.{40})&~(.*b.{40})&(a|b){60}")
    print("tiny budget on a hard instance:",
          solver.is_satisfiable(hard, Budget(fuel=10)).status)


if __name__ == "__main__":
    main()
