"""Span-stream attribution: tree reconstruction, self time, collapsed
stacks (round-trip), hotspot tables — all over a deterministic fake
clock so durations are exact."""

import pytest

from repro.obs import Tracer
from repro.obs.profile import (
    build_tree, collapsed_stacks, hotspots, profile_summary, read_collapsed,
    render_hotspots, self_time, total_wall, write_collapsed,
)


def make_tracer():
    t = {"now": 0.0}

    def clock():
        t["now"] += 1.0
        return t["now"]

    return Tracer(clock=clock)


def traced_solver_shape():
    """A trace shaped like a solver run: explore > tree > {meld, sat}.

    With the one-tick fake clock the durations come out as: meld 1,
    sat_check 1, first tree 5 (self 3), second tree 1, explore 9
    (self 3); total wall 9.
    """
    tracer = make_tracer()
    with tracer.span("solver.explore"):
        with tracer.span("deriv.tree"):
            with tracer.span("deriv.meld"):
                pass
            with tracer.span("algebra.sat_check"):
                pass
        with tracer.span("deriv.tree"):
            pass
    return tracer.events


def test_build_tree_reconstructs_nesting_from_completion_order():
    roots = build_tree(traced_solver_shape())
    (root,) = roots
    assert root["event"]["name"] == "solver.explore"
    names = [c["event"]["name"] for c in root["children"]]
    assert names == ["deriv.tree", "deriv.tree"]
    first_tree = root["children"][0]
    grandchildren = [c["event"]["name"] for c in first_tree["children"]]
    assert grandchildren == ["deriv.meld", "algebra.sat_check"]
    assert root["children"][1]["children"] == []


def test_self_time_partitions_wall_time_exactly():
    events = traced_solver_shape()
    roots = build_tree(events)

    def all_nodes(nodes):
        for node in nodes:
            yield node
            yield from all_nodes(node["children"])

    attributed = sum(self_time(n) for n in all_nodes(roots))
    assert attributed == pytest.approx(total_wall(events))
    assert total_wall(events) == pytest.approx(9.0)


def test_instants_are_excluded_from_attribution():
    tracer = make_tracer()
    with tracer.span("a"):
        tracer.instant("marker")
    assert total_wall(tracer.events) == pytest.approx(2.0)
    (root,) = build_tree(tracer.events)
    assert root["children"] == []


def test_orphans_of_an_unclosed_parent_are_promoted():
    """Depth-1 spans whose parent never finished still get attributed."""
    tracer = make_tracer()
    outer = tracer.span("outer")
    outer.__enter__()
    with tracer.span("inner"):
        pass
    # events (not export_events): the parent is missing entirely
    roots = build_tree(tracer.events)
    assert [r["event"]["name"] for r in roots] == ["inner"]
    outer.__exit__(None, None, None)


def test_collapsed_stack_lines_and_round_trip(tmp_path):
    events = traced_solver_shape()
    lines = collapsed_stacks(events)
    by_stack = dict(
        line.rsplit(" ", 1) for line in lines
    )
    # microsecond-scaled self times per unique stack
    assert by_stack["solver.explore"] == "3000000"
    assert by_stack["solver.explore;deriv.tree"] == "4000000"
    assert by_stack["solver.explore;deriv.tree;deriv.meld"] == "1000000"
    assert by_stack["solver.explore;deriv.tree;algebra.sat_check"] == "1000000"
    assert len(lines) == 4

    path = str(tmp_path / "out.folded")
    assert write_collapsed(events, path) == 4
    parsed = read_collapsed(path)
    assert sorted(parsed) == sorted(
        (tuple(stack.split(";")), int(count))
        for stack, count in by_stack.items()
    )
    # total microseconds round-trips to total traced wall time
    assert sum(count for _, count in parsed) == int(total_wall(events) * 1e6)


def test_collapsed_stack_frames_are_sanitized():
    tracer = make_tracer()
    with tracer.span("weird name;with sep"):
        pass
    (line,) = collapsed_stacks(tracer.events)
    assert line.startswith("weird_name:with_sep ")


def test_read_collapsed_rejects_malformed(tmp_path):
    path = tmp_path / "bad.folded"
    path.write_text("justonefield\n")
    with pytest.raises(ValueError):
        read_collapsed(str(path))
    path.write_text("a;b notanumber\n")
    with pytest.raises(ValueError):
        read_collapsed(str(path))


def test_hotspots_rank_by_self_time_and_cover_wall():
    events = traced_solver_shape()
    rows = hotspots(events, k=10)
    assert [r["name"] for r in rows] == [
        "deriv.tree", "solver.explore", "algebra.sat_check", "deriv.meld",
    ]
    tree = rows[0]
    assert tree["self_s"] == pytest.approx(4.0)
    assert tree["count"] == 2
    assert tree["pct"] == pytest.approx(100.0 * 4.0 / 9.0)
    assert sum(r["pct"] for r in rows) == pytest.approx(100.0)


def test_hotspots_truncate_to_k():
    events = traced_solver_shape()
    rows = hotspots(events, k=2)
    assert len(rows) == 2
    assert rows[0]["name"] == "deriv.tree"


def test_profile_summary_attributes_at_least_90_percent():
    """The acceptance bar: the top-K table accounts for >= 90% of the
    traced wall time (here exactly 100%, since self times partition)."""
    summary = profile_summary(traced_solver_shape(), k=10)
    assert summary["attributed_pct"] >= 90.0
    assert summary["total_s"] == pytest.approx(9.0)
    assert summary["span_count"] == 5
    assert summary["hotspots"][0]["name"] == "deriv.tree"


def test_profile_summary_on_empty_trace():
    summary = profile_summary([])
    assert summary["total_s"] == 0.0
    assert summary["attributed_pct"] == 0.0
    assert summary["hotspots"] == []


def test_render_hotspots_mentions_every_top_span():
    text = render_hotspots(traced_solver_shape())
    for name in ("deriv.tree", "solver.explore", "algebra.sat_check",
                 "deriv.meld"):
        assert name in text
    assert "total traced wall" in text


def test_unfinished_flush_still_attributes(tmp_path):
    """A trace exported mid-run (unfinished spans flushed) keeps the
    parent/child attribution; the flushed parent absorbs self time."""
    tracer = make_tracer()
    outer = tracer.span("solver.explore")
    outer.__enter__()
    with tracer.span("deriv.tree"):
        pass
    events = tracer.export_events()
    rows = {r["name"]: r for r in hotspots(events)}
    assert set(rows) == {"solver.explore", "deriv.tree"}
    assert rows["solver.explore"]["self_s"] > 0
    assert sum(r["pct"] for r in rows.values()) == pytest.approx(100.0)
    outer.__exit__(None, None, None)


def merged_two_pid_stream():
    """Two workers' identically shaped traces, interleaved the way a
    flight merge interleaves them (by timestamp across processes)."""
    def worker(pid, t0):
        return [
            {"name": "deriv.tree", "ts": t0 + 1.0, "dur": 2.0, "depth": 1,
             "args": {}, "pid": pid},
            {"name": "solver.explore", "ts": t0, "dur": 4.0, "depth": 0,
             "args": {}, "pid": pid},
        ]

    a, b = worker(100, 10.0), worker(200, 10.5)
    # interleaved: a's child, b's child, a's root, b's root
    return [a[0], b[0], a[1], b[1]]


def test_build_tree_keys_parenting_by_pid():
    """Regression: in a merged multi-worker stream, completion-order
    parenting must not adopt one process's spans into another's tree.
    Here each pid's ``deriv.tree`` completes right before the *other*
    pid's root would claim it if pids were ignored."""
    roots = build_tree(merged_two_pid_stream())
    assert len(roots) == 2
    for root in roots:
        assert root["event"]["name"] == "solver.explore"
        (child,) = root["children"]
        assert child["event"]["name"] == "deriv.tree"
        # the child belongs to its own process, not the interleaved one
        assert child["event"]["pid"] == root["event"]["pid"]


def test_hotspots_split_rows_per_pid():
    rows = hotspots(merged_two_pid_stream())
    by_key = {(r["name"], r.get("pid")): r for r in rows}
    assert set(by_key) == {
        ("solver.explore", 100), ("solver.explore", 200),
        ("deriv.tree", 100), ("deriv.tree", 200),
    }
    # each worker's self times stay exact: 2s explore, 2s tree, per pid
    for key, row in by_key.items():
        assert row["self_s"] == pytest.approx(2.0), key
    assert sum(r["pct"] for r in rows) == pytest.approx(100.0)
    text = render_hotspots(merged_two_pid_stream())
    assert "[pid 100]" in text and "[pid 200]" in text


def test_collapsed_stacks_get_a_pid_lane_frame():
    lines = collapsed_stacks(merged_two_pid_stream())
    stacks = {line.rsplit(" ", 1)[0] for line in lines}
    assert stacks == {
        "pid:100;solver.explore", "pid:100;solver.explore;deriv.tree",
        "pid:200;solver.explore", "pid:200;solver.explore;deriv.tree",
    }


def test_pidless_streams_keep_the_single_lane_shape():
    """No pid key (the in-process tracer) means no synthetic lane
    frames and no pid column — the original single-stream behavior."""
    events = traced_solver_shape()
    assert all("pid" not in r for r in hotspots(events))
    assert all(not line.startswith("pid:")
               for line in collapsed_stacks(events))


def test_real_solver_trace_round_trips(tmp_path):
    """End to end: a real traced solve -> collapsed stacks -> file ->
    parse, with >= 90% of wall attributed to named spans."""
    from repro.alphabet import IntervalAlgebra
    from repro.obs import Observability
    from repro.regex import RegexBuilder, parse
    from repro.solver import RegexSolver

    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(builder, obs=Observability.tracing())
    result = solver.is_satisfiable(parse(builder, "(.*a.{6})&(.*b.{6})"))
    assert result.is_unsat
    events = solver.obs.tracer.events

    summary = profile_summary(events)
    assert summary["attributed_pct"] >= 90.0
    assert summary["total_s"] > 0

    path = str(tmp_path / "solve.folded")
    lines = write_collapsed(events, path)
    assert lines >= 1
    parsed = read_collapsed(path)
    assert all(count > 0 for _, count in parsed)
    names = {frame for stack, _ in parsed for frame in stack}
    assert "solver.explore" in names and "deriv.tree" in names
