"""Tier-1 wrapper for ``scripts/smoke_obs.py``."""

import importlib.util
import os

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..",
    "scripts", "smoke_obs.py",
)


def test_smoke_obs_script():
    spec = importlib.util.spec_from_file_location("smoke_obs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main() == 0
