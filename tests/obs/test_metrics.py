"""Counter/gauge/histogram math, registry scoping, and the null backend."""

import pytest

from repro.obs import (
    Counter, Gauge, Histogram, MetricsRegistry,
    NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_METRICS,
)


def test_counter_inc_and_reset():
    c = Counter("c")
    c.inc()
    c.inc(41)
    assert c.value == 42
    c.reset()
    assert c.value == 0


def test_gauge_set_inc_dec():
    g = Gauge("g")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12
    g.reset()
    assert g.value == 0


def test_histogram_summary_stats():
    h = Histogram("h")
    for value in (1, 2, 3, 4, 100):
        h.observe(value)
    assert h.count == 5
    assert h.total == 110
    assert h.min == 1
    assert h.max == 100
    assert h.mean == pytest.approx(22.0)


def test_histogram_log_buckets():
    h = Histogram("h")
    # bucket e holds 2**(e-1) < x <= 2**e; bucket 0 holds zeros and
    # sub-unit samples
    h.observe(0)
    h.observe(0.5)
    h.observe(1)      # bucket 1 (frexp(1) -> (0.5, 1))
    h.observe(2)      # bucket 2
    h.observe(3)      # bucket 2
    h.observe(4)      # bucket 3
    h.observe(1000)   # bucket 10
    assert h.buckets == {0: 2, 1: 1, 2: 2, 3: 1, 10: 1}


def test_histogram_quantile_upper_bound():
    h = Histogram("h")
    for value in (1, 1, 1, 1, 1000):
        h.observe(value)
    assert h.quantile(0.5) == 2        # median bucket upper bound
    assert h.quantile(1.0) == 2 ** 10  # 1000 lands in bucket 10
    assert Histogram("empty").quantile(0.5) is None


def test_histogram_quantile_empty_is_none_for_every_q():
    h = Histogram("empty")
    assert h.quantile(0.0) is None
    assert h.quantile(0.5) is None
    assert h.quantile(1.0) is None


def test_histogram_quantile_q0_and_q1_bracket_the_buckets():
    h = Histogram("h")
    for value in (3, 40, 500):  # buckets 2, 6, 9
        h.observe(value)
    # q=0 has rank 0: the first bucket already satisfies seen >= 0
    assert h.quantile(0.0) == 2 ** 2
    # q=1 needs every sample: the last bucket's upper bound
    assert h.quantile(1.0) == 2 ** 9


def test_histogram_quantile_single_observation():
    h = Histogram("h")
    h.observe(5)  # bucket 3: 4 < 5 <= 8
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 2 ** 3


def test_histogram_quantile_zero_only_samples():
    h = Histogram("h")
    h.observe(0)
    h.observe(0)
    assert h.quantile(0.5) == 1  # bucket 0's upper bound is 2**0
    assert h.quantile(1.0) == 1


def test_histogram_snapshot_and_reset():
    h = Histogram("h")
    h.observe(7)
    snap = h.snapshot()
    assert snap["count"] == 1 and snap["total"] == 7
    assert snap["min"] == snap["max"] == 7
    h.reset()
    assert h.count == 0 and h.buckets == {}


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.scope("a") is reg.scope("a")


def test_registry_rejects_type_confusion():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_registry_scopes_flatten_with_dotted_names():
    reg = MetricsRegistry()
    reg.counter("top").inc()
    reg.scope("solver").counter("explored").inc(3)
    reg.scope("solver").scope("inner").gauge("depth").set(2)
    reg.scope("deriv").histogram("sizes").observe(4)
    snap = reg.snapshot()
    assert snap["top"] == 1
    assert snap["solver.explored"] == 3
    assert snap["solver.inner.depth"] == 2
    assert snap["deriv.sizes"]["count"] == 1


def test_registry_reset_recurses():
    reg = MetricsRegistry()
    c = reg.scope("a").counter("n")
    c.inc(5)
    reg.reset()
    assert c.value == 0


def test_registry_snapshot_after_reset_keeps_structure():
    """Reset zeroes values but keeps every registered name visible, so
    a post-reset snapshot still enumerates the metric tree."""
    reg = MetricsRegistry()
    reg.counter("top").inc(2)
    reg.scope("solver").counter("explored").inc(7)
    reg.scope("solver").gauge("depth").set(4)
    reg.scope("deriv").histogram("sizes").observe(9)
    reg.reset()
    snap = reg.snapshot()
    assert snap["top"] == 0
    assert snap["solver.explored"] == 0
    assert snap["solver.depth"] == 0
    assert snap["deriv.sizes"] == {
        "count": 0, "total": 0, "min": None, "max": None, "mean": 0.0,
        "buckets": {},
    }
    # instruments handed out before the reset are still live
    reg.scope("solver").counter("explored").inc()
    assert reg.snapshot()["solver.explored"] == 1


def test_null_backend_is_inert_and_shared():
    assert NULL_METRICS.enabled is False
    assert NULL_METRICS.counter("anything") is NULL_COUNTER
    assert NULL_METRICS.gauge("g") is NULL_GAUGE
    assert NULL_METRICS.histogram("h") is NULL_HISTOGRAM
    assert NULL_METRICS.scope("deep").scope("deeper") is NULL_METRICS
    NULL_COUNTER.inc(100)
    NULL_GAUGE.set(100)
    NULL_HISTOGRAM.observe(100)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_METRICS.snapshot() == {}
