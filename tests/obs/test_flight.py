"""The flight recorder, process by process: worker-side recording
(events, span flushing, heartbeats, slow capture), pool-side ledgers,
the merged timeline, and artifact replay."""

import json
import os

import pytest

from repro.obs.events import EVENT_SCHEMA_VERSION, read_events
from repro.obs.flight import (
    ARTIFACT_SCHEMA_VERSION, PoolFlight, WorkerFlight, capture_artifact,
    events_path, latency_stats, list_artifacts, list_streams, load_artifact,
    load_flight, merge_timeline, read_heartbeats, render_status,
    replay_artifact, spans_path, worker_lanes, write_timeline,
)


class FakeQueue:
    """Collects heartbeat messages like the pool's result queue."""

    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


def make_flight(tmp_path, worker="w0", **config):
    config.setdefault("slow_s", None)
    config.setdefault("heartbeat_s", 60.0)  # loop never fires in tests
    return WorkerFlight(str(tmp_path), worker, config)


def pattern_task(name="job-0", index=0, payload="a|b"):
    return {"name": name, "index": index, "kind": "pattern",
            "payload": payload, "attempts": 0}


# -- worker-side recording ----------------------------------------------------


def test_worker_flight_narrates_a_task(tmp_path):
    flight = make_flight(tmp_path)
    task = pattern_task()
    flight.task_started(task)
    flight.task_finished(task, {"status": "sat", "elapsed": 0.01})
    flight.close(tasks=1)
    events = read_events(events_path(str(tmp_path), "w0"))
    kinds = [e["kind"] for e in events]
    assert kinds == ["task.start", "task.end", "worker.exit"]
    start, end, _ = events
    assert start["job"] == "job-0" and start["task_kind"] == "pattern"
    assert end["status"] == "sat" and end["elapsed"] == 0.01
    assert "job" not in events[-1]  # cleared after the task
    assert all(e["worker"] == "w0" and e["pid"] == os.getpid()
               for e in events)


def test_slow_capture_by_latency_threshold(tmp_path):
    flight = make_flight(tmp_path, slow_s=0.5, fuel=10000, seconds=5.0)
    task = pattern_task(name="molasses")
    flight.task_started(task)
    flight.task_finished(task, {"status": "sat", "witness": "a",
                                "elapsed": 0.75})
    flight.close(tasks=1)
    (artifact_path,) = list_artifacts(str(tmp_path))
    artifact = load_artifact(artifact_path)
    assert artifact["v"] == ARTIFACT_SCHEMA_VERSION
    assert artifact["name"] == "molasses"
    assert artifact["payload"] == "a|b"
    assert artifact["status"] == "sat"
    assert artifact["budget"] == {"fuel": 10000, "seconds": 5.0}
    assert artifact["trigger"] == "latency>=0.500s"
    assert artifact["worker"] == "w0" and artifact["pid"] == os.getpid()
    captures = [e for e in read_events(events_path(str(tmp_path), "w0"))
                if e["kind"] == "slow.capture"]
    assert len(captures) == 1
    assert captures[0]["artifact"] == os.path.relpath(
        artifact_path, str(tmp_path)
    )


def test_slow_capture_by_explored_threshold(tmp_path):
    flight = make_flight(tmp_path, slow_explored=100)
    task = pattern_task()
    flight.task_started(task)
    flight.task_finished(task, {
        "status": "unsat", "elapsed": 0.001, "stats": {"explored": 250},
    })
    flight.close(tasks=1)
    (artifact_path,) = list_artifacts(str(tmp_path))
    assert load_artifact(artifact_path)["trigger"] == "explored>=100"


def test_fast_tasks_and_crash_tasks_are_not_captured(tmp_path):
    flight = make_flight(tmp_path, slow_s=10.0)
    fast = pattern_task(name="fast")
    flight.task_started(fast)
    flight.task_finished(fast, {"status": "sat", "elapsed": 0.001})
    crash = {"name": "boom", "index": 1, "kind": "crash", "payload": "kill",
             "attempts": 0}
    flight.task_started(crash)
    # a crash task that somehow returned (e.g. unknown mode) is never
    # worth freezing, however slow
    flight.task_finished(crash, {"status": "error", "elapsed": 99.0})
    flight.close(tasks=2)
    assert list_artifacts(str(tmp_path)) == []


def test_heartbeat_reports_vitals(tmp_path):
    from repro.serve.worker import WorkerState

    flight = make_flight(tmp_path, fuel=1000)
    state = WorkerState(flight.config, obs=flight.observability())
    queue = FakeQueue()
    flight.start_heartbeats(state, queue)
    # the first beat ships immediately, before any task
    assert len(queue.items) >= 1
    beat = queue.items[0]
    assert beat["type"] == "heartbeat"
    assert beat["worker"] == "w0" and beat["pid"] == os.getpid()
    assert beat["queue_depth"] == 0 and beat["tasks"] == 0
    assert beat["rss_bytes"] > 0
    assert set(beat["caches"]) == {"entries_total", "approx_bytes"}
    # mid-task beats carry the in-flight job at depth one
    flight.task_started(pattern_task(name="busy-job"))
    busy = flight.heartbeat()
    assert busy["queue_depth"] == 1 and busy["job"] == "busy-job"
    flight.close(tasks=0)
    # close ships a final beat
    assert queue.items[-1]["type"] == "heartbeat"


def test_spans_flush_epoch_rebased_and_stamped(tmp_path):
    import time

    before = time.time()
    flight = make_flight(tmp_path)
    with flight.tracer.span("solver.explore"):
        with flight.tracer.span("deriv.tree"):
            pass
    assert flight.flush_spans() == 2
    open_span = flight.tracer.span("still.open")
    open_span.__enter__()
    flight.close(tasks=0)
    spans = read_events(spans_path(str(tmp_path), "w0"))
    by_name = {e["name"]: e for e in spans}
    assert set(by_name) == {"solver.explore", "deriv.tree", "still.open"}
    assert by_name["still.open"]["unfinished"] is True
    assert not by_name["solver.explore"].get("unfinished")
    for event in spans:
        assert event["pid"] == os.getpid() and event["worker"] == "w0"
        # epoch-rebased: comparable to time.time(), not a tiny
        # perf_counter-relative offset
        assert before - 1.0 <= event["ts"] <= time.time() + 1.0
    open_span.__exit__(None, None, None)


def test_task_spans_by_default_solver_spans_opt_in(tmp_path):
    """The recorder keeps one task-level span per job; the solver's
    internal tracer is null unless ``trace_solver`` asks for it (inner-
    loop spans are too hot for an always-on recorder)."""
    flight = make_flight(tmp_path)
    assert flight.observability().tracer.enabled is False
    assert flight.observability().events.enabled is True
    task = pattern_task(name="spanned")
    flight.task_started(task)
    flight.task_finished(task, {"status": "sat", "elapsed": 0.01})
    flight.close(tasks=1)
    spans = read_events(spans_path(str(tmp_path), "w0"))
    assert [e["name"] for e in spans] == ["task:spanned"]
    assert spans[0]["args"]["kind"] == "pattern"

    traced = WorkerFlight(
        str(tmp_path / "full"), "w1",
        {"slow_s": None, "heartbeat_s": 60.0, "trace_solver": True},
    )
    assert traced.observability().tracer is traced.tracer
    traced.close(tasks=0)


def test_flush_spans_is_incremental(tmp_path):
    flight = make_flight(tmp_path)
    with flight.tracer.span("one"):
        pass
    assert flight.flush_spans() == 1
    assert flight.flush_spans() == 0  # nothing new
    with flight.tracer.span("two"):
        pass
    assert flight.flush_spans() == 1
    flight.close(tasks=0)
    assert len(read_events(spans_path(str(tmp_path), "w0"))) == 2


# -- pool-side recording ------------------------------------------------------


def test_pool_flight_ledger_and_timeline(tmp_path):
    pool = PoolFlight(str(tmp_path))
    pool.events.emit("pool.start", jobs=2, workers=1)
    pool.record_heartbeat({"type": "heartbeat", "worker": "w0", "pid": 7,
                           "ts": 100.0, "queue_depth": 0, "job": None,
                           "rss_bytes": 1048576, "caches": {}})
    timeline = pool.finish(results=2)
    assert timeline == os.path.join(str(tmp_path), "timeline.json")
    assert os.path.exists(timeline)
    beats = read_heartbeats(os.path.join(str(tmp_path), "heartbeats.jsonl"))
    assert len(beats) == 1 and beats[0]["worker"] == "w0"
    events = read_events(events_path(str(tmp_path), "pool"))
    assert [e["kind"] for e in events] == ["pool.start", "pool.end"]
    assert all(e["worker"] == "pool" for e in events)


def test_read_heartbeats_tolerates_torn_line(tmp_path):
    path = tmp_path / "heartbeats.jsonl"
    whole = json.dumps({"worker": "w0", "ts": 1.0})
    path.write_text(whole + "\n" + whole[:5])
    assert len(read_heartbeats(str(path))) == 1
    assert read_heartbeats(str(tmp_path / "missing.jsonl")) == []


# -- the merged flight --------------------------------------------------------


def synthetic_flight(tmp_path):
    """Hand-write a two-worker flight: interleaved spans, events, and
    heartbeats with distinct pids."""
    root = str(tmp_path)
    os.makedirs(root, exist_ok=True)

    def write(path, rows):
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")

    write(events_path(root, "w0"), [
        {"v": 1, "kind": "task.start", "ts": 10.0, "pid": 100,
         "worker": "w0", "name": "j0", "task_kind": "pattern", "index": 0},
        {"v": 1, "kind": "task.end", "ts": 14.0, "pid": 100,
         "worker": "w0", "name": "j0", "index": 0, "status": "sat",
         "elapsed": 4.0},
    ])
    write(events_path(root, "w1"), [
        {"v": 1, "kind": "task.start", "ts": 11.0, "pid": 200,
         "worker": "w1", "name": "j1", "task_kind": "pattern", "index": 1},
        {"v": 1, "kind": "task.end", "ts": 12.0, "pid": 200,
         "worker": "w1", "name": "j1", "index": 1, "status": "unsat",
         "elapsed": 1.0},
    ])
    write(events_path(root, "pool"), [
        {"v": 1, "kind": "pool.start", "ts": 9.0, "pid": 1,
         "worker": "pool", "jobs": 2, "workers": 2},
        {"v": 1, "kind": "worker.crash", "ts": 13.0, "pid": 1,
         "worker": "pool", "crashed": "w1", "name": "j1"},
    ])
    # concurrent spans: w0's solve overlaps w1's solve in wall time
    write(spans_path(root, "w0"), [
        {"name": "solver.explore", "ts": 10.5, "dur": 3.0, "depth": 0,
         "args": {}, "pid": 100, "worker": "w0"},
        {"name": "deriv.tree", "ts": 11.0, "dur": 1.0, "depth": 1,
         "args": {}, "pid": 100, "worker": "w0"},
    ])
    write(spans_path(root, "w1"), [
        {"name": "solver.explore", "ts": 11.2, "dur": 0.5, "depth": 0,
         "args": {}, "pid": 200, "worker": "w1", "unfinished": True},
    ])
    write(os.path.join(root, "heartbeats.jsonl"), [
        {"type": "heartbeat", "worker": "w0", "pid": 100, "ts": 10.1,
         "queue_depth": 1, "job": "j0", "rss_bytes": 2 * 1048576,
         "caches": {"entries_total": 50, "approx_bytes": 1000}},
        {"type": "heartbeat", "worker": "w1", "pid": 200, "ts": 11.1,
         "queue_depth": 1, "job": "j1", "rss_bytes": 3 * 1048576,
         "caches": {"entries_total": 70, "approx_bytes": 2000}},
    ])
    return root


def test_list_streams_finds_all_lanes(tmp_path):
    root = synthetic_flight(tmp_path)
    event_files, span_files = list_streams(root)
    assert set(event_files) == {"pool", "w0", "w1"}
    assert set(span_files) == {"w0", "w1"}
    assert list_streams(str(tmp_path / "missing")) == ({}, {})


def test_load_flight_merges_by_ts_and_maps_lanes(tmp_path):
    flight = load_flight(synthetic_flight(tmp_path))
    ts = [e["ts"] for e in flight["events"]]
    assert ts == sorted(ts)
    assert [e["kind"] for e in flight["events"]] == [
        "pool.start", "task.start", "task.start", "task.end",
        "worker.crash", "task.end",
    ]
    assert flight["lanes"] == {1: "pool", 100: "w0", 200: "w1"}
    assert len(flight["heartbeats"]) == 2


def test_load_flight_keeps_per_lane_order_on_ts_ties(tmp_path):
    """Per-worker event ordering survives the merge: equal timestamps
    keep each lane's own file order (the sort is stable)."""
    root = str(tmp_path)
    with open(events_path(root, "w0"), "w", encoding="utf-8") as handle:
        for index in range(5):
            handle.write(json.dumps({
                "v": 1, "kind": "task.start", "ts": 5.0, "pid": 100,
                "worker": "w0", "name": "j%d" % index,
                "task_kind": "pattern", "index": index,
            }) + "\n")
    flight = load_flight(root)
    assert [e["index"] for e in flight["events"]] == [0, 1, 2, 3, 4]


def test_merge_timeline_gives_each_process_its_own_lane(tmp_path):
    trace = merge_timeline(synthetic_flight(tmp_path))
    events = trace["traceEvents"]
    labels = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert labels == {1: "pool", 100: "w0", 200: "w1"}
    spans = [e for e in events if e.get("ph") == "X"]
    assert {e["pid"] for e in spans} == {100, 200}
    # w1's unfinished span survives the merge, marked as such
    unfinished = [e for e in spans if e["args"].get("unfinished")]
    assert len(unfinished) == 1 and unfinished[0]["pid"] == 200
    # structured events ride along as instant markers on their lane
    instants = {(e["name"], e["pid"]) for e in events if e.get("ph") == "i"}
    assert ("worker.crash", 1) in instants
    assert ("task.start", 100) in instants and ("task.start", 200) in instants
    # heartbeats become per-process counter tracks
    counters = [e for e in events if e.get("ph") == "C"]
    assert {e["name"] for e in counters} == {
        "rss_mb", "cache_entries", "queue_depth",
    }
    rss = {e["pid"]: e["args"]["rss_mb"] for e in counters
           if e["name"] == "rss_mb"}
    assert rss == {100: 2.0, 200: 3.0}
    # everything is rebased to the earliest instant (the pool.start at
    # ts=9.0), so the trace starts at zero microseconds
    stamps = [e["ts"] for e in events if e.get("ph") in ("X", "i", "C")]
    assert min(stamps) == pytest.approx(0.0)
    assert max(stamps) == pytest.approx(5.0e6)  # 14.0 - 9.0 seconds


def test_write_timeline_is_loadable_json(tmp_path):
    root = synthetic_flight(tmp_path)
    path = write_timeline(root)
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    assert trace["traceEvents"]


# -- latency, lanes, status ---------------------------------------------------


def test_latency_stats_nearest_rank_percentiles():
    events = [
        {"kind": "task.end", "elapsed": ms / 1000.0}
        for ms in range(1, 101)
    ]
    stats = latency_stats(events)
    assert stats["count"] == 100
    assert stats["p50_s"] == pytest.approx(0.050)
    assert stats["p90_s"] == pytest.approx(0.090)
    assert stats["p99_s"] == pytest.approx(0.099)
    assert stats["max_s"] == pytest.approx(0.100)
    empty = latency_stats([{"kind": "task.start"}])
    assert empty["count"] == 0 and empty["p50_s"] is None


def test_worker_lanes_aggregate_tasks_beats_and_incidents(tmp_path):
    flight = load_flight(synthetic_flight(tmp_path))
    lanes = {row["worker"]: row for row in worker_lanes(flight)}
    assert set(lanes) == {"w0", "w1"}
    assert lanes["w0"]["tasks"] == 1
    assert lanes["w0"]["busy_s"] == pytest.approx(4.0)
    assert lanes["w0"]["heartbeats"] == 1
    assert lanes["w0"]["rss_mb"] == pytest.approx(2.0)
    assert lanes["w0"]["cache_entries"] == 50
    assert lanes["w0"]["crashed"] == 0
    assert lanes["w1"]["crashed"] == 1
    assert lanes["w1"]["last_job"] == "j1"


def test_render_status_text(tmp_path):
    root = synthetic_flight(tmp_path)
    write_timeline(root)
    text = render_status(root)
    assert "w0" in text and "w1" in text
    assert "latency: 2 tasks" in text
    assert "worker.crash" in text
    assert "timeline:" in text
    empty = render_status(str(tmp_path / "nothing"))
    assert "no worker lanes" in empty


# -- artifacts + replay -------------------------------------------------------


def test_capture_artifact_freezes_the_task(tmp_path):
    path = capture_artifact(
        str(tmp_path),
        {"name": "weird/name with spaces!", "index": 7, "kind": "pattern",
         "payload": "(ab)*"},
        {"status": "sat", "witness": "", "elapsed": 2.0,
         "stats": {"explored": 3}},
        {"fuel": 500, "seconds": 1.0, "max_char": 127},
        worker="w2", pid=999, trigger="latency>=1.000s",
    )
    assert os.path.basename(path).startswith("0007-")
    assert "/" not in os.path.basename(path)[5:]
    artifact = load_artifact(path)
    assert artifact["payload"] == "(ab)*"
    assert artifact["max_char"] == 127
    assert artifact["stats"] == {"explored": 3}


def test_load_artifact_rejects_junk_and_newer_schema(tmp_path):
    junk = tmp_path / "junk.json"
    junk.write_text('{"no": "payload"}')
    with pytest.raises(ValueError):
        load_artifact(str(junk))
    future = tmp_path / "future.json"
    future.write_text(json.dumps({
        "v": ARTIFACT_SCHEMA_VERSION + 1, "payload": "a",
    }))
    with pytest.raises(ValueError):
        load_artifact(str(future))


def test_replay_artifact_reproduces_the_verdict(tmp_path):
    artifact = {
        "v": ARTIFACT_SCHEMA_VERSION, "name": "tight", "index": 0,
        "kind": "pattern", "payload": "(.*a.{4})&(.*b.{4})",
        "budget": {"fuel": 100000, "seconds": 10.0}, "max_char": 127,
        "status": "unsat", "elapsed": 0.5,
    }
    comparison = replay_artifact(artifact)
    assert comparison["recorded"] == "unsat"
    assert comparison["replayed"] == "unsat"
    assert comparison["match"] is True
    assert comparison["artifact"] is None  # dict source, no path


def test_replay_artifact_flags_a_mismatch():
    comparison = replay_artifact({
        "v": ARTIFACT_SCHEMA_VERSION, "name": "lied", "index": 0,
        "kind": "pattern", "payload": "a|b",
        "budget": {"fuel": 1000, "seconds": 5.0}, "max_char": 127,
        "status": "unsat",  # recorded verdict is wrong on purpose
    })
    assert comparison["replayed"] == "sat"
    assert comparison["match"] is False


def test_replay_round_trip_through_capture(tmp_path):
    """capture_artifact -> replay_artifact is the slow-query contract:
    the frozen task re-solves to the same verdict."""
    task = pattern_task(name="roundtrip", payload="(a|b)*c")
    out = {"status": "sat", "witness": "c", "elapsed": 3.0}
    path = capture_artifact(
        str(tmp_path), task, out,
        {"fuel": 100000, "seconds": 10.0, "max_char": 127},
        worker="w0", pid=1, trigger="latency>=1.000s",
    )
    comparison = replay_artifact(path)
    assert comparison["match"] is True
    assert comparison["artifact"] == path
    assert comparison["witness"] is not None


def test_capture_artifact_embeds_checked_certificate(tmp_path):
    """Slow concrete verdicts gain an independently checked proof."""
    from repro.obs.explain import check_certificate

    path = capture_artifact(
        str(tmp_path), pattern_task(name="proof", payload="(ab)*&b.*"),
        {"status": "unsat", "elapsed": 2.0},
        {"fuel": 100000, "seconds": 5.0, "max_char": 127},
        worker="w0", pid=1, trigger="latency>=1.000s",
    )
    artifact = load_artifact(path)
    cert = artifact["certificate"]
    assert cert["status"] == "unsat"
    assert cert["explanation"]["certificate_checked"] is True
    assert check_certificate(cert["certificate"]).ok


def test_capture_artifact_skips_certificates_for_unknowns(tmp_path):
    path = capture_artifact(
        str(tmp_path), pattern_task(name="vague", payload="(ab)*"),
        {"status": "unknown", "reason": "fuel", "elapsed": 2.0},
        {"fuel": 10, "seconds": 5.0, "max_char": 127},
        worker="w0", pid=1, trigger="latency>=1.000s",
    )
    assert "certificate" not in load_artifact(path)
