"""Verdict provenance: recorder, certificates, the independent
checker, and the adversarial cases — every mutation of a valid
certificate (dropped rows, widened minterms, flipped nullability,
spliced successors, escaped states, future schema versions) must be
rejected, and valid certificates must survive a JSON round trip."""

import copy
import json

import pytest

from repro.obs.explain import (
    CERT_SCHEMA_VERSION, CertificateError, Explanation, SmtExplanation,
    certificate_for_task, certificate_from_json, certificate_to_json,
    check_certificate, explain_pattern, explain_witness,
)
from repro.regex import parse
from repro.solver import Budget, RegexSolver
from repro.solver.rules import PropagationEngine
from repro.solver.smt import SmtSolver
from repro.visualize import render_explanation


def solve_explained(builder, pattern, fuel=100000):
    solver = RegexSolver(builder, explain=True)
    return solver.is_satisfiable(parse(builder, pattern), Budget(fuel=fuel))


def certificate_of(builder, pattern, fuel=100000):
    result = solve_explained(builder, pattern, fuel)
    return result.explanation.certificate()


# -- recording ----------------------------------------------------------------


def test_default_off_records_nothing(ascii_builder):
    solver = RegexSolver(ascii_builder)
    result = solver.is_satisfiable(parse(ascii_builder, "a|b"))
    assert result.explanation is None
    assert "explanation" not in result.to_dict()


def test_sat_explanation_and_certificate(ascii_builder):
    result = solve_explained(ascii_builder, "ab*c")
    explanation = result.explanation
    assert result.is_sat
    assert explanation.kind == "sat"
    assert explanation.witness == result.witness
    # path steps concatenate to the witness and end in a nullable state
    assert "".join(s[2] for s in explanation.steps) == result.witness
    assert explanation.steps[-1][3].nullable
    assert explanation.check().ok
    assert explanation.checked is True
    assert "certificate checked: yes" in explanation.summary()


def test_unsat_explanation_and_certificate(ascii_builder):
    result = solve_explained(ascii_builder, "(ab)*&b.*")
    explanation = result.explanation
    assert result.is_unsat
    assert explanation.kind == "unsat"
    assert explanation.closure_size >= 1
    # the root is in the closure and no closure state is nullable
    assert explanation.root in explanation.states
    assert not any(s.nullable for s in explanation.states)
    assert explanation.check().ok


def test_unknown_explanation_has_no_certificate(ascii_builder):
    solver = RegexSolver(ascii_builder, explain=True)
    pattern = "~(.*a.{30})&~(.*b.{30})&(a|b){40}"
    result = solver.is_satisfiable(
        parse(ascii_builder, pattern), Budget(fuel=3)
    )
    explanation = result.explanation
    assert result.is_unknown
    assert explanation.kind == "unknown"
    assert not explanation.certifiable()
    with pytest.raises(CertificateError):
        explanation.certificate()
    assert not explanation.check().ok


def test_bitset_algebra_certificates(bitset_builder):
    sat = solve_explained(bitset_builder, "(a|b)*1")
    unsat = solve_explained(bitset_builder, "a+&b+")
    assert sat.explanation.check().ok
    assert unsat.explanation.check().ok
    # the algebra travels inside the certificate
    assert sat.explanation.certificate()["algebra"]["kind"] == "bitset"


def test_solver_result_to_dict_summary(ascii_builder):
    result = solve_explained(ascii_builder, "(ab)*&b.*")
    result.explanation.check()
    summary = result.to_dict()["explanation"]
    assert summary["kind"] == "unsat"
    assert summary["certificate_checked"] is True
    # summary only: the full proof stays behind .certificate()
    assert "states" not in summary


def test_derived_queries_carry_explanations(ascii_builder):
    solver = RegexSolver(ascii_builder, explain=True)
    empty = solver.is_empty(parse(ascii_builder, "a&b"))
    assert empty.is_sat  # "is empty" holds
    assert empty.explanation.kind == "unsat"
    assert empty.explanation.check().ok


# -- the independent checker, adversarially -----------------------------------


@pytest.fixture
def unsat_cert(ascii_builder):
    """An unsat certificate with >= 2 states and >= 2 rows somewhere,
    so that row/state mutations are observable."""
    cert = certificate_of(ascii_builder, "ab&a[cd]")
    assert check_certificate(cert).ok
    # the mutations below need structure to chew on
    assert len(cert["states"]) >= 2
    assert sum(len(s["rows"]) for s in cert["states"]) >= 3
    return copy.deepcopy(cert)


@pytest.fixture
def sat_cert(ascii_builder):
    cert = certificate_of(ascii_builder, "ab")
    assert check_certificate(cert).ok
    assert len(cert["path"]) == 2
    return copy.deepcopy(cert)


def test_reject_dropped_row(unsat_cert):
    victim = max(unsat_cert["states"], key=lambda s: len(s["rows"]))
    victim["rows"].pop()
    outcome = check_certificate(unsat_cert)
    assert not outcome.ok
    assert any("cover" in e or "derivative rules" in e
               for e in outcome.errors)


def test_reject_widened_minterm(unsat_cert):
    # widen one guard of a multi-row state so it overlaps a sibling
    victim = max(unsat_cert["states"], key=lambda s: len(s["rows"]))
    assert len(victim["rows"]) >= 2
    victim["rows"][-1]["guard"] = [[0, 127]]
    outcome = check_certificate(unsat_cert)
    assert not outcome.ok
    assert any("overlaps an earlier row" in e or "derivative rules" in e
               for e in outcome.errors)


def test_reject_flipped_nullability(unsat_cert):
    unsat_cert["states"][0]["nullable"] = True
    outcome = check_certificate(unsat_cert)
    assert not outcome.ok
    assert any("nullable" in e for e in outcome.errors)


def test_reject_dropped_state(unsat_cert):
    # remove a non-root state that some row still targets
    targeted = {t for s in unsat_cert["states"]
                for row in s["rows"] for t in row["targets"]}
    victim = next(uid for uid in targeted if uid != unsat_cert["root"])
    unsat_cert["states"] = [
        s for s in unsat_cert["states"] if s["uid"] != victim
    ]
    outcome = check_certificate(unsat_cert)
    assert not outcome.ok
    assert any("escapes the closure" in e for e in outcome.errors)


def test_reject_spliced_successor(sat_cert):
    # point the first path step at the final state: the suffix check
    # (every remaining suffix accepted by its state) must catch it
    sat_cert["path"][0]["successor"] = sat_cert["path"][-1]["successor"]
    outcome = check_certificate(sat_cert)
    assert not outcome.ok
    assert any("suffix" in e or "expected" in e for e in outcome.errors)


def test_reject_wrong_witness(sat_cert):
    sat_cert["witness"] = "zz"
    outcome = check_certificate(sat_cert)
    assert not outcome.ok


def test_reject_char_outside_guard(sat_cert):
    sat_cert["path"][0]["char"] = ord("z")
    outcome = check_certificate(sat_cert)
    assert not outcome.ok


def test_reject_future_schema_version(unsat_cert):
    unsat_cert["v"] = CERT_SCHEMA_VERSION + 1
    outcome = check_certificate(unsat_cert)
    assert not outcome.ok
    assert any("schema" in e for e in outcome.errors)


def test_reject_garbage_without_raising():
    assert not check_certificate(None).ok
    assert not check_certificate({}).ok
    assert not check_certificate({"v": 1, "kind": "sat"}).ok
    assert not check_certificate(
        {"v": 1, "kind": "unsat", "algebra": {"kind": "nope"},
         "root": 0, "states": []}
    ).ok


def test_json_round_trip(ascii_builder):
    for pattern in ("ab*c", "(ab)*&b.*", "ab&a[cd]"):
        cert = certificate_of(ascii_builder, pattern)
        text = certificate_to_json(cert)
        back = certificate_from_json(text)
        assert check_certificate(back).ok
        # the round trip is loss-free, keys and all
        assert json.loads(certificate_to_json(back)) == json.loads(text)


# -- the rules engine and the SMT layer ---------------------------------------


def test_rules_engine_explanations(ascii_builder):
    engine = PropagationEngine(RegexSolver(ascii_builder))
    sat = engine.solve(parse(ascii_builder, "a(b|c)d"), explain=True)
    assert sat.is_sat
    assert sat.explanation is not None
    assert sat.explanation.check().ok
    unsat = engine.solve(parse(ascii_builder, "a+&b+"), explain=True)
    assert unsat.is_unsat
    assert unsat.explanation.check().ok


def test_rules_engine_default_off(ascii_builder):
    engine = PropagationEngine(RegexSolver(ascii_builder))
    assert engine.solve(parse(ascii_builder, "ab")).explanation is None


def test_explain_witness_rebuilds_path(ascii_builder):
    solver = RegexSolver(ascii_builder)
    root = parse(ascii_builder, "a(bc)+d")
    explanation = explain_witness(solver, root, "abcd")
    assert explanation.kind == "sat"
    assert explanation.witness == "abcd"
    assert explanation.check().ok


def test_smt_explanations(ascii_builder):
    from repro.smtlib.interp import run_script

    smt = SmtSolver(
        ascii_builder, RegexSolver(ascii_builder, explain=True)
    )
    sat = run_script(
        ascii_builder,
        '(declare-fun x () String)'
        '(assert (str.in_re x (re.+ (str.to_re "ab"))))(check-sat)',
        solver=smt,
    )
    assert sat.is_sat
    assert isinstance(sat.explanation, SmtExplanation)
    assert sat.explanation.certifiable()
    assert sat.explanation.check().ok
    assert all(b["explanation"].kind == "sat"
               for b in sat.explanation.branches)

    unsat = run_script(
        ascii_builder,
        '(declare-fun x () String)'
        '(assert (str.in_re x (str.to_re "a")))'
        '(assert (str.in_re x (str.to_re "b")))(check-sat)',
        solver=smt,
    )
    assert unsat.is_unsat
    assert unsat.explanation.check().ok
    assert all(b["explanation"].kind == "unsat"
               for b in unsat.explanation.branches)


# -- rendering ----------------------------------------------------------------


def test_render_sat_explanation(ascii_builder):
    explanation = solve_explained(ascii_builder, "ab*c").explanation
    dot = render_explanation(explanation)
    assert dot.startswith("digraph")
    assert "color=red" in dot          # the witness path is highlighted
    assert "doublecircle" in dot       # the final state is accepting


def test_render_unsat_explanation(ascii_builder):
    explanation = solve_explained(ascii_builder, "ab&a[cd]").explanation
    dot = render_explanation(explanation)
    assert dot.startswith("digraph")
    assert "bot" in dot                # bottom rows prove the cover
    assert "doublecircle" not in dot   # nothing in the closure accepts


def test_render_unknown_explanation(ascii_builder):
    solver = RegexSolver(ascii_builder, explain=True)
    result = solver.is_satisfiable(
        parse(ascii_builder, "~(.*a.{30})&(a|b){40}"), Budget(fuel=3)
    )
    dot = render_explanation(result.explanation)
    assert dot.startswith("digraph") and "note" in dot


def test_narratives_mention_the_verdict(ascii_builder):
    sat = solve_explained(ascii_builder, "ab").explanation
    unsat = solve_explained(ascii_builder, "a&b").explanation
    assert "sat" in sat.narrative()
    assert "unsat" in unsat.narrative()


# -- conveniences and the batch path ------------------------------------------


def test_explain_pattern_one_shot():
    result = explain_pattern("(ab)*&b.*", max_char=127)
    assert result.is_unsat
    assert result.explanation.checked is True


def test_certificate_for_task_pattern():
    out = certificate_for_task("pattern", "ab*c", {"max_char": 127})
    assert out["status"] == "sat"
    assert out["explanation"]["certificate_checked"] is True
    assert check_certificate(out["certificate"]).ok


def test_certificate_for_task_smt2():
    out = certificate_for_task(
        "smt2",
        '(declare-fun x () String)'
        '(assert (str.in_re x (str.to_re "a")))(check-sat)',
        {"max_char": 127},
    )
    assert out["status"] == "sat"
    assert out["explanation"]["certificate_checked"] is True


def test_certificate_for_task_unknown_kind():
    assert certificate_for_task("crash", "kill", {}) is None
