"""The structured event log: envelope stamping, schema validation,
file round-trips, crash tolerance, and the null backend."""

import json

import pytest

from repro.obs.events import (
    EVENT_KINDS, EVENT_SCHEMA_VERSION, NULL_EVENTS, EventLog, NullEventLog,
    read_events, validate_event,
)


def make_log(**kwargs):
    """An in-memory log over a deterministic fake clock."""
    t = {"now": 0.0}

    def clock():
        t["now"] += 1.0
        return t["now"]

    kwargs.setdefault("clock", clock)
    kwargs.setdefault("pid", 4242)
    return EventLog(**kwargs)


def test_emit_stamps_the_correlation_envelope():
    log = make_log(worker="w3")
    event = log.emit("task.start", name="job-1", task_kind="pattern",
                     index=0)
    assert event["v"] == EVENT_SCHEMA_VERSION
    assert event["kind"] == "task.start"
    assert event["ts"] == 1.0
    assert event["pid"] == 4242
    assert event["worker"] == "w3"
    assert "job" not in event  # no job set yet
    assert log.events == [event]


def test_set_job_stamps_and_clears():
    log = make_log(worker="w0")
    log.set_job("slow-query")
    stamped = log.emit("query.start", query="uid:9")
    assert stamped["job"] == "slow-query"
    log.set_job(None)
    cleared = log.emit("query.end", query="uid:9", status="sat",
                       elapsed=0.5)
    assert "job" not in cleared


def test_every_registered_kind_validates_when_fields_present():
    log = make_log(worker="w0")
    fillers = {
        "query": "uid:1", "status": "sat", "elapsed": 0.1,
        "case_splits": 2, "retired": 5, "entries_before": 10,
        "entries_after": 5, "tasks": 3, "retiring": False,
        "name": "job", "task_kind": "pattern", "index": 0,
        "artifact": "slow/0000-job.json", "jobs": 4, "workers": 2,
        "results": 4, "spawned": "w1", "crashed": "w1", "reaped": "w1",
        "recycled": "w1", "address": "/tmp/repro.sock", "served": 12,
        "client": "c1", "job": "q1", "degraded": False,
        "reason": "overloaded", "latency_s": 0.2,
    }
    for kind, required in EVENT_KINDS.items():
        event = log.emit(kind, **{f: fillers[f] for f in required})
        assert validate_event(event) == [], kind


def test_validate_event_flags_problems():
    assert validate_event("nope")
    assert any("missing" in p for p in validate_event({"kind": "task.start"}))
    log = make_log()
    unknown = log.emit("made.up")
    assert any("unknown kind" in p for p in validate_event(unknown))
    incomplete = log.emit("task.end", name="x")
    problems = validate_event(incomplete)
    assert any("missing 'index'" in p for p in problems)
    assert any("missing 'status'" in p for p in problems)
    newer = dict(log.emit("worker.start"), v=EVENT_SCHEMA_VERSION + 1)
    assert any("newer" in p for p in validate_event(newer))


def test_file_round_trip(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with make_log(path=path, worker="w1") as log:
        log.emit("worker.start")
        log.set_job("j")
        log.emit("task.start", name="j", task_kind="pattern", index=0)
    events = read_events(path)
    assert [e["kind"] for e in events] == ["worker.start", "task.start"]
    assert events[1]["job"] == "j"
    assert all(e["worker"] == "w1" and e["pid"] == 4242 for e in events)


def test_keep_false_writes_file_only(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = make_log(path=path, worker="w1", keep=False)
    log.emit("worker.start")
    log.close()
    assert log.events is None
    assert len(read_events(path)) == 1


def test_append_mode_survives_reopen(tmp_path):
    """Two sequential logs on one path append (a recycled worker's
    replacement keeps the lane's history)."""
    path = str(tmp_path / "events.jsonl")
    with make_log(path=path, worker="w0") as log:
        log.emit("worker.start")
    with make_log(path=path, worker="w0") as log:
        log.emit("worker.start")
    assert len(read_events(path)) == 2


def test_read_events_tolerates_torn_final_line(tmp_path):
    """A SIGKILL mid-write leaves a truncated last line; the reader
    keeps everything before it."""
    path = tmp_path / "events.jsonl"
    whole = json.dumps({"v": 1, "kind": "task.start", "ts": 1.0,
                        "pid": 1, "name": "j", "task_kind": "pattern",
                        "index": 0})
    path.write_text(whole + "\n" + whole[: len(whole) // 2])
    events = read_events(str(path))
    assert len(events) == 1
    with pytest.raises(ValueError):
        read_events(str(path), strict=True)


def test_read_events_skips_newer_schema_versions(tmp_path):
    path = tmp_path / "events.jsonl"
    current = {"v": EVENT_SCHEMA_VERSION, "kind": "worker.start",
               "ts": 1.0, "pid": 1}
    future = dict(current, v=EVENT_SCHEMA_VERSION + 1, kind="from.the.future")
    path.write_text(json.dumps(current) + "\n" + json.dumps(future) + "\n")
    events = read_events(str(path))
    assert len(events) == 1 and events[0]["kind"] == "worker.start"


def test_read_events_skips_non_object_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('[1, 2]\n{"v": 1, "kind": "worker.start", '
                    '"ts": 1.0, "pid": 1}\n')
    assert len(read_events(str(path))) == 1
    with pytest.raises(ValueError):
        read_events(str(path), strict=True)


def test_null_event_log_is_inert(tmp_path):
    assert NULL_EVENTS.enabled is False
    assert isinstance(NULL_EVENTS, NullEventLog)
    assert NULL_EVENTS.emit("task.start", name="x") is None
    NULL_EVENTS.set_job("x")
    assert NULL_EVENTS.job is None
    assert NULL_EVENTS.events == ()
    with NULL_EVENTS as log:
        assert log is NULL_EVENTS


def test_observability_bundles_events():
    from repro.obs import NULL_OBS, Observability

    assert NULL_OBS.events.enabled is False
    assert Observability().events.enabled is False
    live = Observability(events=make_log())
    assert live.events.enabled is True
    assert live.enabled is True
