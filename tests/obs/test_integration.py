"""End-to-end telemetry: solver counters, memo hit rates, per-query
deltas, typed stats, and the CLI flags."""

import json

import pytest

from repro.alphabet import IntervalAlgebra
from repro.obs import Observability, read_chrome, read_jsonl
from repro.regex import RegexBuilder, parse
from repro.solver import RegexSolver, SolverResult, SolverStats
from repro.__main__ import main


def make_solver(tracing=False):
    builder = RegexBuilder(IntervalAlgebra(127))
    obs = Observability.tracing() if tracing else Observability()
    return RegexSolver(builder, obs=obs), builder


def test_counters_populated_by_a_query():
    solver, builder = make_solver()
    result = solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    assert result.is_sat
    snap = solver.obs.metrics.snapshot()
    assert snap["solver.queries"] == 1
    assert snap["solver.explored"] >= 1
    assert snap["graph.updates"] >= 1
    assert snap["deriv.deriv_memo_misses"] >= 1
    assert snap["algebra.ops"] >= 1


def test_memo_hit_rate_on_repeated_queries():
    """Re-running a query must be answered from the memo tables: the
    second run adds hits without adding misses (the regression the
    paper's laziness story depends on)."""
    solver, builder = make_solver()
    regex = parse(builder, "(a|b)*a(a|b)(a|b)")
    solver.is_satisfiable(regex)
    misses_before = solver.engine.deriv_memo_misses
    hits_before = solver.engine.deriv_memo_hits
    solver.is_satisfiable(regex)
    assert solver.engine.deriv_memo_misses == misses_before
    assert solver.engine.deriv_memo_hits > hits_before


def test_per_query_stats_are_deltas_with_lifetime():
    solver, builder = make_solver()
    r1 = solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    r2 = solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    assert isinstance(r1.stats, SolverStats)
    # second run of the same (memoized, graph-cached) query does very
    # little fresh work...
    assert r2.stats["explored"] <= r1.stats["explored"]
    assert r2.stats["deriv_memo_misses"] == 0
    # ...but the lifetime counters are cumulative across both
    assert r2.stats["lifetime"]["queries"] == 2
    assert (
        r2.stats["lifetime"]["explored"]
        == r1.stats["explored"] + r2.stats["explored"]
    )


def test_stats_mapping_compat():
    stats = SolverStats(explored=3, sat_checks=2)
    assert stats["explored"] == 3
    assert "sat_checks" in stats
    assert stats.get("missing", -1) == -1
    assert dict(stats.items())["explored"] == 3
    with pytest.raises(KeyError):
        stats["nope"]
    with pytest.raises(TypeError):
        SolverStats(bogus_field=1)


def test_solver_result_to_dict():
    stats = SolverStats(explored=5)
    result = SolverResult("sat", witness="ab", stats=stats)
    out = result.to_dict()
    assert out["status"] == "sat"
    assert out["witness"] == "ab"
    assert out["stats"]["explored"] == 5
    assert "model" not in out
    json.dumps(out)  # JSON-serializable end to end


def test_disabled_obs_reports_empty_metrics():
    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(builder, obs=Observability.disabled())
    result = solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    assert result.is_sat
    assert solver.obs.metrics.snapshot() == {}
    # typed stats still work: they come from the solver's own snapshot
    # deltas, not the registry
    assert result.stats["vertices"] >= 1


def test_tracing_produces_nested_spans():
    solver, builder = make_solver(tracing=True)
    solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    names = {e["name"] for e in solver.obs.tracer.events}
    assert "solver.explore" in names
    assert "deriv.tree" in names
    assert "algebra.sat_check" in names
    explore = next(
        e for e in solver.obs.tracer.events if e["name"] == "solver.explore"
    )
    assert explore["depth"] == 0
    assert any(e["depth"] > 0 for e in solver.obs.tracer.events)


def test_cli_stats_flag(capsys):
    status = main(["--stats", "check", "(a|b)*abb"])
    out = capsys.readouterr().out
    assert status == 0
    assert out.startswith("sat")
    assert "stats: " in out
    assert "solver.explored" in out


def test_cli_trace_flag_chrome(tmp_path, capsys):
    path = str(tmp_path / "trace.json")
    main(["--trace", path, "check", "(a|b)*abb"])
    out = capsys.readouterr().out
    assert "trace: wrote" in out
    events = read_chrome(path)
    assert any(e["name"] == "solver.explore" for e in events)


def test_cli_trace_flag_jsonl(tmp_path, capsys):
    path = str(tmp_path / "trace.jsonl")
    main(["--trace", path, "check", "(a|b)*abb"])
    capsys.readouterr()
    events = read_jsonl(path)
    assert any(e["name"] == "solver.explore" for e in events)
