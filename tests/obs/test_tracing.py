"""Span nesting, export round-trips, and the null tracer."""

import pytest

from repro.obs import NULL_TRACER, Tracer, chrome_trace, read_chrome, read_jsonl


def make_tracer():
    """A tracer over a deterministic fake clock (one unit per call)."""
    t = {"now": 0.0}

    def clock():
        t["now"] += 1.0
        return t["now"]

    return Tracer(clock=clock)


def test_span_records_name_duration_and_args():
    tracer = make_tracer()
    with tracer.span("solver.explore", strategy="dfs"):
        pass
    (event,) = tracer.events
    assert event["name"] == "solver.explore"
    assert event["args"] == {"strategy": "dfs"}
    assert event["dur"] == 1.0
    assert event["depth"] == 0


def test_span_nesting_depths():
    tracer = make_tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    by_name = {e["name"]: e for e in tracer.events}
    assert by_name["outer"]["depth"] == 0
    assert by_name["inner"]["depth"] == 1
    assert by_name["inner2"]["depth"] == 1
    # inner spans complete before the outer one
    assert [e["name"] for e in tracer.events] == ["inner", "inner2", "outer"]


def test_instant_event():
    tracer = make_tracer()
    tracer.instant("marker", detail=7)
    (event,) = tracer.events
    assert event["instant"] and event["dur"] == 0.0
    assert event["args"] == {"detail": 7}


def test_jsonl_round_trip(tmp_path):
    tracer = make_tracer()
    with tracer.span("a", k=1):
        with tracer.span("b"):
            pass
    path = str(tmp_path / "trace.jsonl")
    assert tracer.export(path) == 2  # .jsonl extension selects JSONL
    events = read_jsonl(path)
    assert events == tracer.events


def test_chrome_round_trip(tmp_path):
    tracer = make_tracer()
    with tracer.span("solver.explore"):
        pass
    tracer.instant("mark")
    path = str(tmp_path / "trace.json")
    assert tracer.export(path) == 2  # non-.jsonl extension selects Chrome
    events = read_chrome(path)
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(spans) == 1 and len(instants) == 1
    assert spans[0]["name"] == "solver.explore"
    assert spans[0]["dur"] == pytest.approx(1e6)  # microseconds


def test_chrome_trace_shape():
    trace = chrome_trace([
        {"name": "x", "ts": 0.5, "dur": 0.25, "depth": 0, "args": {}},
    ])
    assert trace["displayTimeUnit"] == "ms"
    (event,) = trace["traceEvents"]
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(0.5e6)
    assert event["dur"] == pytest.approx(0.25e6)
    assert event["pid"] == event["tid"] == 0


def test_chrome_trace_pid_tid_lanes_and_labels():
    """Events carrying pid/tid land on those lanes, and the ``lanes``
    mapping emits ``process_name`` metadata so chrome://tracing labels
    each process row."""
    trace = chrome_trace(
        [
            {"name": "a", "ts": 0.0, "dur": 1.0, "depth": 0, "args": {},
             "pid": 100, "tid": 7},
            {"name": "b", "ts": 0.5, "dur": 1.0, "depth": 0, "args": {},
             "pid": 200},
            {"name": "bare", "ts": 0.6, "dur": 0.1, "depth": 0, "args": {}},
        ],
        lanes={100: "w0", 200: "w1"},
    )
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {(e["pid"], e["args"]["name"]) for e in meta} == {
        (100, "w0"), (200, "w1"),
    }
    assert all(e["name"] == "process_name" and e["ts"] == 0 for e in meta)
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    assert spans["a"]["pid"] == 100 and spans["a"]["tid"] == 7
    assert spans["b"]["pid"] == 200 and spans["b"]["tid"] == 0
    # events without a pid fall back to the default lane
    assert spans["bare"]["pid"] == 0


def test_chrome_trace_concurrent_cross_process_spans():
    """Two workers' overlapping spans export to one trace without the
    lanes swallowing each other: same wall-clock window, distinct pids."""
    overlapping = [
        {"name": "solve", "ts": 0.0, "dur": 2.0, "depth": 0, "args": {},
         "pid": 100},
        {"name": "solve", "ts": 1.0, "dur": 2.0, "depth": 0, "args": {},
         "pid": 200},
    ]
    events = chrome_trace(overlapping)["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 2
    windows = {e["pid"]: (e["ts"], e["ts"] + e["dur"]) for e in spans}
    # both spans keep their full duration despite overlapping in time
    assert windows[100] == (0.0, 2.0e6)
    assert windows[200] == (1.0e6, 3.0e6)


def test_read_chrome_rejects_malformed(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"traceEvents": [{"name": "x"}]}')
    with pytest.raises(ValueError):
        read_chrome(str(path))
    path.write_text('[1, 2, 3]')
    with pytest.raises(ValueError):
        read_chrome(str(path))


def test_span_records_error_on_exception_exit():
    tracer = make_tracer()
    with pytest.raises(ValueError):
        with tracer.span("solver.explore", strategy="dfs"):
            raise ValueError("boom")
    (event,) = tracer.events
    assert event["args"] == {"strategy": "dfs", "error": "ValueError"}
    assert event["dur"] == 1.0  # timed up to the exception exit


def test_span_error_does_not_mutate_caller_args():
    tracer = make_tracer()
    with tracer.span("a", k=1):
        pass
    span = tracer.span("a", k=1)
    with pytest.raises(RuntimeError):
        with span:
            raise RuntimeError()
    clean, errored = tracer.events
    assert clean["args"] == {"k": 1}
    assert errored["args"] == {"k": 1, "error": "RuntimeError"}
    # the Span's own args stay pristine (the error copy is per-event)
    assert span.args == {"k": 1}


def test_export_events_flushes_open_spans_innermost_first():
    tracer = make_tracer()
    outer = tracer.span("outer")
    outer.__enter__()
    with tracer.span("done"):
        pass
    inner = tracer.span("inner")
    inner.__enter__()
    events = tracer.export_events()
    assert [e["name"] for e in events] == ["done", "inner", "outer"]
    flushed = {e["name"]: e for e in events if e.get("unfinished")}
    assert set(flushed) == {"inner", "outer"}
    # children still precede parents, and durations run up to the flush
    assert flushed["outer"]["dur"] > flushed["inner"]["dur"]
    # the spans stay open: exiting them records the real events
    inner.__exit__(None, None, None)
    outer.__exit__(None, None, None)
    assert [e["name"] for e in tracer.events] == ["done", "inner", "outer"]
    assert not any(e.get("unfinished") for e in tracer.events)


def test_exporters_include_unfinished_spans(tmp_path):
    tracer = make_tracer()
    open_span = tracer.span("still.open")
    open_span.__enter__()
    with tracer.span("closed"):
        pass

    jsonl_path = str(tmp_path / "trace.jsonl")
    assert tracer.export(jsonl_path) == 2
    events = read_jsonl(jsonl_path)
    assert {e["name"]: bool(e.get("unfinished")) for e in events} == {
        "closed": False, "still.open": True,
    }

    chrome_path = str(tmp_path / "trace.json")
    assert tracer.export(chrome_path) == 2
    chrome_events = read_chrome(chrome_path)
    unfinished = next(e for e in chrome_events if e["name"] == "still.open")
    assert unfinished["args"]["unfinished"] is True
    assert unfinished["ph"] == "X" and unfinished["dur"] > 0
    open_span.__exit__(None, None, None)


def test_fake_clock_makes_durations_and_order_deterministic():
    """The ``Tracer._clock`` hook pins every ts/dur: two identically
    shaped traces are equal event for event, no real time involved."""
    def run():
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.instant("mark")
        return tracer.events

    first, second = run(), run()
    assert first == second
    # clock ticks: t0=1, outer start=2, inner start=3, inner end=4,
    # instant=5, outer end=6; events complete innermost first
    assert [e["name"] for e in first] == ["inner", "mark", "outer"]
    assert [e["ts"] for e in first] == [2.0, 4.0, 1.0]
    assert [e["dur"] for e in first] == [1.0, 0.0, 4.0]


def test_clear():
    tracer = make_tracer()
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.events == []


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", k=1)
    with span:
        pass
    assert NULL_TRACER.span("other") is span  # shared no-op
    NULL_TRACER.instant("x")
    assert NULL_TRACER.events == ()
    with pytest.raises(ValueError):
        NULL_TRACER.export("/tmp/nope.json")
