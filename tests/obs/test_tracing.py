"""Span nesting, export round-trips, and the null tracer."""

import pytest

from repro.obs import NULL_TRACER, Tracer, chrome_trace, read_chrome, read_jsonl


def make_tracer():
    """A tracer over a deterministic fake clock (one unit per call)."""
    t = {"now": 0.0}

    def clock():
        t["now"] += 1.0
        return t["now"]

    return Tracer(clock=clock)


def test_span_records_name_duration_and_args():
    tracer = make_tracer()
    with tracer.span("solver.explore", strategy="dfs"):
        pass
    (event,) = tracer.events
    assert event["name"] == "solver.explore"
    assert event["args"] == {"strategy": "dfs"}
    assert event["dur"] == 1.0
    assert event["depth"] == 0


def test_span_nesting_depths():
    tracer = make_tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    by_name = {e["name"]: e for e in tracer.events}
    assert by_name["outer"]["depth"] == 0
    assert by_name["inner"]["depth"] == 1
    assert by_name["inner2"]["depth"] == 1
    # inner spans complete before the outer one
    assert [e["name"] for e in tracer.events] == ["inner", "inner2", "outer"]


def test_instant_event():
    tracer = make_tracer()
    tracer.instant("marker", detail=7)
    (event,) = tracer.events
    assert event["instant"] and event["dur"] == 0.0
    assert event["args"] == {"detail": 7}


def test_jsonl_round_trip(tmp_path):
    tracer = make_tracer()
    with tracer.span("a", k=1):
        with tracer.span("b"):
            pass
    path = str(tmp_path / "trace.jsonl")
    assert tracer.export(path) == 2  # .jsonl extension selects JSONL
    events = read_jsonl(path)
    assert events == tracer.events


def test_chrome_round_trip(tmp_path):
    tracer = make_tracer()
    with tracer.span("solver.explore"):
        pass
    tracer.instant("mark")
    path = str(tmp_path / "trace.json")
    assert tracer.export(path) == 2  # non-.jsonl extension selects Chrome
    events = read_chrome(path)
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(spans) == 1 and len(instants) == 1
    assert spans[0]["name"] == "solver.explore"
    assert spans[0]["dur"] == pytest.approx(1e6)  # microseconds


def test_chrome_trace_shape():
    trace = chrome_trace([
        {"name": "x", "ts": 0.5, "dur": 0.25, "depth": 0, "args": {}},
    ])
    assert trace["displayTimeUnit"] == "ms"
    (event,) = trace["traceEvents"]
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(0.5e6)
    assert event["dur"] == pytest.approx(0.25e6)
    assert event["pid"] == event["tid"] == 0


def test_read_chrome_rejects_malformed(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"traceEvents": [{"name": "x"}]}')
    with pytest.raises(ValueError):
        read_chrome(str(path))
    path.write_text('[1, 2, 3]')
    with pytest.raises(ValueError):
        read_chrome(str(path))


def test_clear():
    tracer = make_tracer()
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.events == []


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", k=1)
    with span:
        pass
    assert NULL_TRACER.span("other") is span  # shared no-op
    NULL_TRACER.instant("x")
    assert NULL_TRACER.events == ()
    with pytest.raises(ValueError):
        NULL_TRACER.export("/tmp/nope.json")
