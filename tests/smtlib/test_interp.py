"""End-to-end script execution."""

from repro.smtlib.interp import run_file, run_script

FIG1 = '''
(set-logic QF_S)
(set-info :status sat)
(declare-const date String)
(assert (str.in_re date (re.++ ((_ re.^ 4) (re.range "0" "9")) (str.to_re "-")
  ((_ re.^ 3) (re.union (re.range "a" "z") (re.range "A" "Z"))) (str.to_re "-")
  ((_ re.^ 2) (re.range "0" "9")))))
(assert (or (str.in_re date (re.++ (str.to_re "2019") re.all))
            (str.in_re date (re.++ (str.to_re "2020") re.all))))
(check-sat)
'''


def test_figure_1_policy_sat(bmp_builder):
    result = run_script(bmp_builder, FIG1)
    assert result.is_sat
    assert result.stats["expected"] == "sat"
    date = result.model["date"]
    assert date.startswith(("2019", "2020"))
    assert len(date) == 11


def test_figure_1_misplaced_anchor_unsat(bmp_builder):
    buggy = FIG1.replace(
        '(re.++ (str.to_re "2019") re.all)',
        '(re.++ re.all (str.to_re "2019"))',
    ).replace(
        '(re.++ (str.to_re "2020") re.all)',
        '(re.++ re.all (str.to_re "2020"))',
    )
    assert run_script(bmp_builder, buggy).is_unsat


def test_run_file(tmp_path, bmp_builder):
    path = tmp_path / "bench.smt2"
    path.write_text(FIG1)
    assert run_file(bmp_builder, str(path)).is_sat


def test_trivial_scripts(bmp_builder):
    assert run_script(
        bmp_builder, "(set-logic QF_S)(assert true)(check-sat)"
    ).is_sat
    assert run_script(
        bmp_builder, "(set-logic QF_S)(assert false)(check-sat)"
    ).is_unsat
