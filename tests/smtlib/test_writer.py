"""Writer → parser round trips."""

from hypothesis import given, settings

from repro.regex.semantics import Matcher, enumerate_strings
from repro.smtlib.parser import parse_script
from repro.smtlib.writer import formula_to_smtlib, regex_to_smtlib, script_text
from repro.solver import formula as F
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes


def test_regex_roundtrip_random(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=100, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        text = regex_to_smtlib(r, b.algebra)
        script = parse_script(
            b,
            "(set-logic QF_S)(declare-const x String)"
            "(assert (str.in_re x %s))(check-sat)" % text,
        )
        back = script.assertions[0].regex
        for s in enumerate_strings(ALPHABET, 3):
            assert matcher.matches(back, s) == matcher.matches(r, s)

    check()


def test_regex_roundtrip_exact_for_interval_algebra(bmp_builder):
    from repro.regex import parse as rx_parse

    b = bmp_builder
    # note: R{n,} has no direct SMT-LIB form; it serializes as
    # R{n}.R*, which re-parses to an equivalent but distinct regex —
    # covered by the semantic round-trip test above
    for pattern in [r"(.*\d.*)&~(.*01.*)", "a{2,5}|b+", "[a-f]{3,7}",
                    "~(x)&.{0,9}"]:
        r = rx_parse(b, pattern)
        text = regex_to_smtlib(r, b.algebra)
        script = parse_script(
            b,
            "(set-logic QF_S)(declare-const x String)"
            "(assert (str.in_re x %s))(check-sat)" % text,
        )
        assert script.assertions[0].regex is r


def test_formula_roundtrip(bmp_builder):
    from repro.regex import parse as rx_parse

    b = bmp_builder
    f = F.And((
        F.InRe("s", rx_parse(b, "a+")),
        F.Or((F.LenCmp("s", "<=", 9), F.Not(F.EqConst("s", "aa")))),
        F.Contains("t", "x"),
        F.PrefixOf("p", "t"),
        F.SuffixOf("q", "t"),
        F.LenCmp("t", "!=", 3),
    ))
    text = script_text(f, b.algebra, status="sat")
    script = parse_script(b, text)
    assert script.expected_status() == "sat"
    assert sorted(script.variables) == ["s", "t"]
    # semantic round trip: same models satisfy both
    from repro.solver.smt import SmtSolver

    solver = SmtSolver(b)
    result = solver.solve(script.formula)
    assert result.is_sat
    assert solver.check_model(f, result.model)


def test_loop_serialization_forms(bmp_builder):
    b = bmp_builder
    a = b.char("a")
    assert regex_to_smtlib(b.star(a), b.algebra) == '(re.* (str.to_re "a"))'
    assert regex_to_smtlib(b.plus(a), b.algebra) == '(re.+ (str.to_re "a"))'
    assert regex_to_smtlib(b.opt(a), b.algebra) == '(re.opt (str.to_re "a"))'
    assert "re.loop 2 4" in regex_to_smtlib(b.loop(a, 2, 4), b.algebra)
    assert "re.^ 3" in regex_to_smtlib(b.loop(a, 3, None), b.algebra)


def test_bottom_and_epsilon(bmp_builder):
    b = bmp_builder
    assert regex_to_smtlib(b.empty, b.algebra) == "re.none"
    assert regex_to_smtlib(b.epsilon, b.algebra) == '(str.to_re "")'
    assert regex_to_smtlib(b.dot, b.algebra) == "re.allchar"
