"""S-expression reader and string-literal codec."""

import pytest

from repro.errors import SmtLibError
from repro.smtlib.sexpr import StrLit, encode_string, read_all, tokenize


def test_basic_read():
    forms = read_all("(assert (= x 1)) (check-sat)")
    assert forms == [["assert", ["=", "x", "1"]], ["check-sat"]]


def test_comments_ignored():
    forms = read_all("; a comment\n(exit) ; trailing")
    assert forms == [["exit"]]


def test_string_literal():
    forms = read_all('(= x "hello world")')
    assert forms[0][2] == StrLit("hello world")


def test_quote_doubling():
    forms = read_all('(f "say ""hi""")')
    assert forms[0][1] == StrLit('say "hi"')


def test_unicode_escapes():
    assert read_all('(f "\\u{41}")')[0][1] == StrLit("A")
    assert read_all('(f "\\u0042")')[0][1] == StrLit("B")


def test_quoted_symbol():
    assert read_all("(|weird name|)") == [["weird name"]]


def test_unbalanced_raises():
    with pytest.raises(SmtLibError):
        read_all("(a (b)")
    with pytest.raises(SmtLibError):
        read_all("a)")


def test_unterminated_string():
    with pytest.raises(SmtLibError):
        read_all('(f "oops)')


def test_encode_decode_roundtrip():
    for value in ("plain", 'has "quotes"', "uni☃code", "new\nline", ""):
        encoded = encode_string(value)
        decoded = read_all("(f %s)" % encoded)[0][1]
        assert decoded == StrLit(value)


def test_tokenize_stream():
    tokens = list(tokenize('(a "b" c)'))
    assert tokens == ["(", "a", StrLit("b"), "c", ")"]
