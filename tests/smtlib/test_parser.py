"""SMT-LIB script parsing."""

import pytest

from repro.errors import SmtLibError
from repro.regex import to_pattern
from repro.regex.ast import INF
from repro.smtlib.parser import parse_script
from repro.solver import formula as F

HEADER = "(set-logic QF_S)(declare-const x String)(declare-const y String)"


def parse_formula(builder, body):
    return parse_script(builder, HEADER + "(assert %s)(check-sat)" % body)


def test_declarations_and_commands(bmp_builder):
    script = parse_script(
        bmp_builder,
        '(set-logic QF_S)(set-info :status sat)'
        '(declare-fun s () String)(assert true)(check-sat)(exit)',
    )
    assert script.logic == "QF_S"
    assert script.variables == ["s"]
    assert script.expected_status() == "sat"
    assert script.commands == ["check-sat", "exit"]


def test_in_re_and_regex_algebra(bmp_builder):
    script = parse_formula(
        bmp_builder,
        '(str.in_re x (re.++ (str.to_re "ab") '
        '(re.union (re.range "0" "9") (str.to_re "z"))))',
    )
    atom = script.assertions[0]
    assert isinstance(atom, F.InRe)
    assert to_pattern(atom.regex, bmp_builder.algebra) == "ab[0-9z]"


def test_boolean_structure(bmp_builder):
    script = parse_formula(
        bmp_builder,
        '(and (or (str.in_re x re.all) (not (= x "q"))) true)',
    )
    f = script.assertions[0]
    assert isinstance(f, F.And)


def test_implication_desugars(bmp_builder):
    script = parse_formula(bmp_builder, '(=> (= x "a") (= y "b"))')
    f = script.assertions[0]
    assert isinstance(f, F.Or)


def test_length_comparisons(bmp_builder):
    script = parse_formula(bmp_builder, "(<= (str.len x) 5)")
    atom = script.assertions[0]
    assert isinstance(atom, F.LenCmp) and atom.op == "<=" and atom.bound == 5


def test_length_reversed_order(bmp_builder):
    script = parse_formula(bmp_builder, "(>= 5 (str.len x))")
    atom = script.assertions[0]
    assert atom.op == "<=" and atom.bound == 5


def test_equality_with_literal_both_orders(bmp_builder):
    left = parse_formula(bmp_builder, '(= x "ab")').assertions[0]
    right = parse_formula(bmp_builder, '(= "ab" x)').assertions[0]
    assert isinstance(left, F.EqConst) and isinstance(right, F.EqConst)
    assert left.value == right.value == "ab"


def test_contains_prefix_suffix(bmp_builder):
    script = parse_formula(
        bmp_builder,
        '(and (str.contains x "mid") (str.prefixof "pre" x)'
        ' (str.suffixof "suf" x))',
    )
    kinds = {type(a).__name__ for a in script.assertions[0].children}
    assert kinds == {"Contains", "PrefixOf", "SuffixOf"}


def test_regex_loop_and_power(bmp_builder):
    script = parse_formula(
        bmp_builder,
        '(str.in_re x (re.++ ((_ re.loop 2 4) (str.to_re "a"))'
        ' ((_ re.^ 3) (str.to_re "b"))))',
    )
    regex = script.assertions[0].regex
    assert to_pattern(regex, bmp_builder.algebra) == "a{2,4}b{3}"


def test_regex_constants(bmp_builder):
    b = bmp_builder
    script = parse_formula(
        b, "(str.in_re x (re.union re.none re.allchar re.all))"
    )
    assert script.assertions[0].regex is b.full


def test_re_diff_and_comp(bmp_builder):
    b = bmp_builder
    script = parse_formula(
        b,
        '(str.in_re x (re.diff re.all (re.comp (str.to_re "a"))))',
    )
    # all minus ~(a) = a
    assert script.assertions[0].regex is b.string("a")


def test_invalid_range_is_empty(bmp_builder):
    b = bmp_builder
    script = parse_formula(b, '(str.in_re x (re.range "z" "a"))')
    assert script.assertions[0].regex is b.empty


def test_star_plus_opt(bmp_builder):
    b = bmp_builder
    script = parse_formula(
        b,
        '(str.in_re x (re.++ (re.* (str.to_re "a"))'
        ' (re.+ (str.to_re "b")) (re.opt (str.to_re "c"))))',
    )
    assert to_pattern(script.assertions[0].regex, b.algebra) == "a*b+c?"


@pytest.mark.parametrize("bad", [
    "(declare-const x Int)",
    "(assert (str.in_re y re.all))",   # y undeclared at that point
    "(frobnicate)",
    "(assert (str.in_re x (re.magic)))",
    "(assert (< x 5))",
])
def test_malformed_scripts(bmp_builder, bad):
    with pytest.raises(SmtLibError):
        parse_script(bmp_builder, "(set-logic QF_S)" + bad)


def test_multiple_assertions_conjoin(bmp_builder):
    script = parse_script(
        bmp_builder,
        HEADER + '(assert (= x "a"))(assert (= y "b"))(check-sat)',
    )
    assert isinstance(script.formula, F.And)
    assert len(script.formula.children) == 2


class TestLegacyEmptyRegex:
    """Regression (tests/corpus/smt2-re-empty-is-empty-language): Z3 and
    CVC4 benchmarks use ``re.empty`` for the empty *language* (the
    SMT-LIB standard spells it ``re.none``); we used to read it as the
    empty-string regex, flipping unsat scripts to sat."""

    def test_re_empty_is_the_empty_language(self, bmp_builder):
        b = bmp_builder
        script = parse_formula(b, "(str.in_re x re.empty)")
        assert script.assertions[0].regex is b.empty

    def test_qualified_re_empty(self, bmp_builder):
        b = bmp_builder
        script = parse_formula(
            b, "(str.in_re x (as re.empty (RegLan)))"
        )
        assert script.assertions[0].regex is b.empty

    def test_epsilon_is_still_str_to_re_of_empty_string(self, bmp_builder):
        b = bmp_builder
        script = parse_formula(b, '(str.in_re x (str.to_re ""))')
        assert script.assertions[0].regex is b.epsilon

    def test_re_empty_script_solves_unsat(self, bmp_builder):
        from repro.solver import SmtSolver

        script = parse_formula(bmp_builder, "(str.in_re x re.empty)")
        assert SmtSolver(bmp_builder).solve(script.formula).status == "unsat"
