"""Shared fixtures: algebras, builders and solvers over small domains
(so exhaustive language comparisons stay fast)."""

import pytest

from repro.alphabet import BDDAlgebra, BitsetAlgebra, IntervalAlgebra
from repro.regex import RegexBuilder
from repro.regex.semantics import Matcher
from repro.solver import RegexSolver

#: The explicit alphabet used for exhaustive tests.
ALPHABET = "ab01"


@pytest.fixture
def bitset_algebra():
    return BitsetAlgebra(ALPHABET)


@pytest.fixture
def bitset_builder(bitset_algebra):
    return RegexBuilder(bitset_algebra)


@pytest.fixture
def ascii_algebra():
    return IntervalAlgebra(127)


@pytest.fixture
def ascii_builder(ascii_algebra):
    return RegexBuilder(ascii_algebra)


@pytest.fixture
def bmp_algebra():
    return IntervalAlgebra()


@pytest.fixture
def bmp_builder(bmp_algebra):
    return RegexBuilder(bmp_algebra)


@pytest.fixture
def bdd_algebra():
    return BDDAlgebra(bits=8)


@pytest.fixture
def bdd_builder(bdd_algebra):
    return RegexBuilder(bdd_algebra)


@pytest.fixture
def bitset_matcher(bitset_algebra):
    return Matcher(bitset_algebra)


@pytest.fixture
def bitset_solver(bitset_builder):
    return RegexSolver(bitset_builder)


@pytest.fixture
def ascii_solver(ascii_builder):
    return RegexSolver(ascii_builder)
