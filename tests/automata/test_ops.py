"""Automaton operations: epsilon removal, determinization, Boolean
operations — all against the membership oracle."""

from hypothesis import given, settings

from repro.automata import ops
from repro.automata.thompson import thompson
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import short_strings, standard_regexes


def nfa_of(builder, pattern):
    return thompson(builder.algebra, parse(builder, pattern))


def accepted(sfa, max_len=4):
    return {s for s in enumerate_strings(ALPHABET, max_len) if sfa.accepts(s)}


def test_remove_epsilons_preserves_language(bitset_builder):
    b = bitset_builder

    @settings(max_examples=80, deadline=None)
    @given(standard_regexes(b), short_strings(4))
    def check(r, s):
        nfa = thompson(b.algebra, r)
        flat = ops.remove_epsilons(nfa)
        assert not flat.has_epsilons
        assert flat.accepts(s) == nfa.accepts(s)

    check()


def test_determinize_preserves_language_and_is_deterministic(bitset_builder):
    b = bitset_builder

    @settings(max_examples=60, deadline=None)
    @given(standard_regexes(b, max_leaves=5))
    def check(r):
        nfa = thompson(b.algebra, r)
        dfa = ops.determinize(nfa)
        assert dfa.check_deterministic()
        assert accepted(dfa, 3) == accepted(nfa, 3)

    check()


def test_complement(bitset_builder):
    b = bitset_builder
    nfa = nfa_of(b, "(a|b)*")
    comp = ops.complement(nfa)
    universe = set(enumerate_strings(ALPHABET, 3))
    assert accepted(comp, 3) == universe - accepted(nfa, 3)


def test_double_complement(bitset_builder):
    b = bitset_builder
    nfa = nfa_of(b, "a*b")
    twice = ops.complement(ops.complement(nfa))
    assert accepted(twice, 3) == accepted(nfa, 3)


def test_product_intersection(bitset_builder):
    b = bitset_builder
    left = nfa_of(b, ".*a.*")
    right = nfa_of(b, ".*b.*")
    prod = ops.product(left, right)
    assert accepted(prod, 3) == accepted(left, 3) & accepted(right, 3)


def test_product_union_on_dfas(bitset_builder):
    b = bitset_builder
    left = ops.determinize(nfa_of(b, "a+"))
    right = ops.determinize(nfa_of(b, "b+"))
    both = ops.product(left, right, mode="union")
    assert accepted(both, 3) == accepted(left, 3) | accepted(right, 3)


def test_nfa_union(bitset_builder):
    b = bitset_builder
    left = nfa_of(b, "(ab)+")
    right = nfa_of(b, "(ba)+")
    union = ops.nfa_union(left, right)
    assert accepted(union, 4) == accepted(left, 4) | accepted(right, 4)


def test_nfa_concat(bitset_builder):
    b = bitset_builder
    left = nfa_of(b, "a|b")
    right = nfa_of(b, "0*")
    conc = ops.nfa_concat(left, right)
    expected = {
        x + y
        for x in accepted(left, 2) for y in accepted(right, 2)
        if len(x + y) <= 3
    }
    assert accepted(conc, 3) == expected


def test_nfa_star(bitset_builder):
    b = bitset_builder
    star = ops.nfa_star(nfa_of(b, "ab"))
    assert accepted(star, 4) == {"", "ab", "abab"}


def test_determinization_blowup(bitset_builder):
    """(a|b)*a(a|b){k} needs ~2^k DFA states: the classical cliff."""
    b = bitset_builder
    small = ops.determinize(nfa_of(b, "(a|b)*a(a|b){2}"))
    large = ops.determinize(nfa_of(b, "(a|b)*a(a|b){6}"))
    assert small.num_states >= 2 ** 2
    assert large.num_states >= 2 ** 6
