"""Thompson construction vs the membership oracle."""

import pytest
from hypothesis import given, settings

from repro.automata.thompson import thompson
from repro.errors import UnsupportedError
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import short_strings, standard_regexes


def test_language_agreement(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=100, deadline=None)
    @given(standard_regexes(b), short_strings(4))
    def check(r, s):
        nfa = thompson(b.algebra, r)
        assert nfa.accepts(s) == matcher.matches(r, s)

    check()


def test_rejects_boolean_operators(bitset_builder):
    b = bitset_builder
    with pytest.raises(UnsupportedError):
        thompson(b.algebra, b.compl(b.char("a")))
    with pytest.raises(UnsupportedError):
        thompson(b.algebra, b.inter([parse(b, "a.*"), parse(b, ".*b")]))


def test_loop_expansion_state_count(bitset_builder):
    """Bounded loops expand: states grow linearly with the bound —
    exactly the eager-pipeline cost the paper's benchmarks target."""
    b = bitset_builder
    small = thompson(b.algebra, parse(b, "a{5}"))
    large = thompson(b.algebra, parse(b, "a{50}"))
    assert large.num_states > 5 * small.num_states


def test_bounded_loop_language(bitset_builder):
    b = bitset_builder
    nfa = thompson(b.algebra, parse(b, "(ab){2,3}"))
    accepted = {
        s for s in enumerate_strings(ALPHABET, 6) if nfa.accepts(s)
    }
    assert accepted == {"abab", "ababab"}


def test_empty_regex(bitset_builder):
    b = bitset_builder
    nfa = thompson(b.algebra, b.empty)
    assert nfa.is_empty()[0]


def test_epsilon_regex(bitset_builder):
    b = bitset_builder
    nfa = thompson(b.algebra, b.epsilon)
    assert nfa.accepts("")
    assert not nfa.accepts("a")
