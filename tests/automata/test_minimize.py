"""DFA minimization and equivalence checking."""

import pytest
from hypothesis import given, settings

from repro.automata import ops
from repro.automata.minimize import equivalent, minimize
from repro.automata.thompson import thompson
from repro.regex import parse
from repro.regex.semantics import enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import standard_regexes


def dfa_of(builder, pattern):
    return ops.determinize(thompson(builder.algebra, parse(builder, pattern)))


def accepted(sfa, max_len=4):
    return {s for s in enumerate_strings(ALPHABET, max_len) if sfa.accepts(s)}


def test_minimize_preserves_language(bitset_builder):
    b = bitset_builder

    @settings(max_examples=50, deadline=None)
    @given(standard_regexes(b, max_leaves=5))
    def check(r):
        dfa = ops.determinize(thompson(b.algebra, r))
        mini = minimize(dfa)
        assert mini.num_states <= dfa.num_states
        assert accepted(mini, 3) == accepted(dfa, 3)
        assert equivalent(mini, dfa)

    check()


def test_minimize_known_redundancy(bitset_builder):
    # a|b fused by our builder, so construct redundancy via union of
    # two equal-language DFAs
    b = bitset_builder
    dfa = dfa_of(b, "(aa|aaaa)*aa|aa((aa)*|(aaaa)*)")
    mini = minimize(dfa)
    reference = dfa_of(b, "(aa)+")
    assert equivalent(mini, reference)
    assert mini.num_states <= minimize(reference).num_states + 1


def test_minimize_requires_deterministic(bitset_builder):
    nfa = thompson(bitset_builder.algebra, parse(bitset_builder, "a|ab"))
    with pytest.raises(ValueError):
        minimize(nfa)


def test_equivalent_detects_difference(bitset_builder):
    b = bitset_builder
    assert not equivalent(dfa_of(b, "a*b*"), dfa_of(b, "(a|b)*"))
    assert equivalent(dfa_of(b, "(a|b)*"), dfa_of(b, "(a*b*)*"))


def test_minimal_dfa_of_counting_language(bitset_builder):
    """a^(multiple of 3) over {a}: minimal DFA has 3 live states +
    possibly a sink."""
    b = bitset_builder
    mini = minimize(dfa_of(b, "(aaa)*"))
    assert mini.num_states <= 4
