"""The eager compiler: full ERE support, oracle agreement, blowup."""

from hypothesis import given, settings

from repro.automata.eager import EagerSolver, eager_compile
from repro.automata.sfa import StateBudget
from repro.regex import parse
from repro.regex.semantics import Matcher
from tests.strategies import extended_regexes, short_strings


def test_language_agreement_full_ere(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=80, deadline=None)
    @given(extended_regexes(b, max_leaves=5), short_strings(4))
    def check(r, s):
        sfa = eager_compile(b.algebra, r, StateBudget(100000))
        assert sfa.accepts(s) == matcher.matches(r, s)

    check()


def test_solver_interface(bitset_builder, bitset_matcher):
    solver = EagerSolver(bitset_builder)
    r = parse(bitset_builder, "(.*0.*)&~(.*01.*)")
    result = solver.is_satisfiable(r)
    assert result.is_sat
    assert bitset_matcher.matches(r, result.witness)


def test_solver_unsat(bitset_builder):
    solver = EagerSolver(bitset_builder)
    assert solver.is_satisfiable(
        parse(bitset_builder, "~(a*)&a*")
    ).is_unsat


def test_states_created_grows_with_loop_bounds(bitset_builder):
    """Eagerness quantified: the whole state space is built before the
    (trivially answerable) question is asked."""
    b = bitset_builder
    small = EagerSolver(b).is_satisfiable(parse(b, ".{4}a"))
    large = EagerSolver(b).is_satisfiable(parse(b, ".{64}a"))
    assert large.stats["states_created"] > 8 * small.stats["states_created"]


def test_budget_failure_is_unknown(bitset_builder):
    solver = EagerSolver(bitset_builder, max_states=10)
    result = solver.is_satisfiable(parse(bitset_builder, "~(.*ab.{6})"))
    assert result.is_unknown


def test_nested_boolean_compilation(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)
    r = parse(b, "((a|b)*&~(.*ab.*))|(0+&~(00))")
    sfa = eager_compile(b.algebra, r, StateBudget(100000))
    for s in ("", "ba", "ab", "0", "00", "000", "a0"):
        assert sfa.accepts(s) == matcher.matches(r, s)


def test_loop_over_boolean_body(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)
    body = b.inter([parse(b, "(a|b){2}"), b.compl(parse(b, "bb"))])
    r = b.loop(body, 1, 2)
    sfa = eager_compile(b.algebra, r, StateBudget(100000))
    for s in ("ab", "ba", "bb", "abab", "abbb", ""):
        assert sfa.accepts(s) == matcher.matches(r, s)
