"""SFA basics: simulation, emptiness, trimming."""

import pytest

from repro.automata.sfa import SFA, StateBudget
from repro.errors import BudgetExceeded


@pytest.fixture
def simple(bitset_algebra):
    """Accepts a+ (states 0 -a-> 1 -a-> 1)."""
    a = bitset_algebra.from_char("a")
    return SFA(
        bitset_algebra, 2, 0, {1},
        {0: [(a, 1)], 1: [(a, 1)]},
    )


def test_accepts(simple):
    assert simple.accepts("a")
    assert simple.accepts("aaa")
    assert not simple.accepts("")
    assert not simple.accepts("ab")


def test_is_empty_with_witness(simple):
    empty, witness = simple.is_empty()
    assert not empty and witness == "a"


def test_empty_automaton(bitset_algebra):
    sfa = SFA(bitset_algebra, 1, 0, set(), {})
    empty, witness = sfa.is_empty()
    assert empty and witness is None


def test_epsilon_closure(bitset_algebra):
    sfa = SFA(bitset_algebra, 3, 0, {2}, {}, epsilons={0: {1}, 1: {2}})
    assert sfa.epsilon_closure({0}) == {0, 1, 2}
    assert sfa.accepts("")


def test_trim_removes_unreachable(bitset_algebra):
    a = bitset_algebra.from_char("a")
    sfa = SFA(bitset_algebra, 4, 0, {1, 3}, {0: [(a, 1)], 2: [(a, 3)]})
    trimmed = sfa.trim()
    assert trimmed.num_states == 2
    assert trimmed.accepts("a")


def test_check_deterministic(bitset_algebra):
    a = bitset_algebra.from_char("a")
    ab = bitset_algebra.from_chars("ab")
    det = SFA(bitset_algebra, 2, 0, {1}, {0: [(a, 1)]}, deterministic=True)
    assert det.check_deterministic()
    nondet = SFA(bitset_algebra, 2, 0, {1}, {0: [(a, 1), (ab, 0)]})
    assert not nondet.check_deterministic()


def test_state_budget():
    budget = StateBudget(max_states=3)
    budget.charge(3)
    with pytest.raises(BudgetExceeded):
        budget.charge()


def test_unlimited_budget():
    budget = StateBudget()
    budget.charge(10 ** 6)
    assert budget.created == 10 ** 6
