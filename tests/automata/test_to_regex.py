"""State elimination: regex -> NFA -> regex round trips."""

from hypothesis import given, settings

from repro.automata.sfa import SFA
from repro.automata.thompson import thompson
from repro.automata.to_regex import to_regex
from repro.regex.semantics import Matcher, enumerate_strings
from repro.regex import parse
from tests.conftest import ALPHABET
from tests.strategies import standard_regexes


def lang(matcher, regex, max_len=4):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_round_trip_preserves_language(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=80, deadline=None)
    @given(standard_regexes(b, max_leaves=5))
    def check(r):
        nfa = thompson(b.algebra, r)
        back = to_regex(nfa, b)
        assert lang(matcher, back) == lang(matcher, r)

    check()


def test_handwritten_automaton(bitset_builder):
    """A two-state automaton for (ab)+ converted to a regex."""
    b = bitset_builder
    algebra = b.algebra
    a, bb = algebra.from_char("a"), algebra.from_char("b")
    sfa = SFA(
        algebra, 2, 0, {1},
        {0: [(a, 1)], 1: [(bb, 0)]},
    )
    # accepts a(ba)*: a, aba, ababa...
    back = to_regex(sfa, b)
    matcher = Matcher(algebra)
    assert lang(matcher, back, 5) == {"a", "aba", "ababa"}


def test_empty_automaton(bitset_builder):
    b = bitset_builder
    sfa = SFA(b.algebra, 1, 0, set(), {})
    assert to_regex(sfa, b) is b.empty


def test_epsilon_only(bitset_builder):
    b = bitset_builder
    sfa = SFA(b.algebra, 1, 0, {0}, {})
    back = to_regex(sfa, b)
    matcher = Matcher(b.algebra)
    assert matcher.matches(back, "")
    assert not matcher.matches(back, "a")


def test_round_trip_through_boolean_ops(bitset_builder):
    """regex -> eager automaton (with product/complement) -> regex."""
    from repro.automata.eager import eager_compile
    from repro.automata.sfa import StateBudget

    b = bitset_builder
    matcher = Matcher(b.algebra)
    r = parse(b, "(.*0.*)&~(.*01.*)")
    sfa = eager_compile(b.algebra, r, StateBudget(10000))
    back = to_regex(sfa, b)
    assert lang(matcher, back) == lang(matcher, r)
