"""Job construction and loading."""

import json

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder
from repro.serve import (
    Job, jobs_from_directory, jobs_from_formulas, jobs_from_jsonl, load_jobs,
)
from repro.solver.formula import InRe


def test_job_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Job("x", "nope", "a")


def test_to_task_is_plain_dict():
    task = Job("n", "pattern", "a|b", expected="sat").to_task(7)
    assert task == {
        "index": 7, "name": "n", "kind": "pattern", "payload": "a|b",
        "expected": "sat", "attempts": 0,
    }


def test_jobs_from_directory_sorted(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "b.smt2").write_text("(check-sat)")
    (tmp_path / "a.smt2").write_text("(check-sat)")
    (tmp_path / "sub" / "c.smt2").write_text("(check-sat)")
    (tmp_path / "notes.txt").write_text("ignored")
    jobs = jobs_from_directory(str(tmp_path))
    assert [j.name for j in jobs] == ["a.smt2", "b.smt2", "sub/c.smt2"]
    assert all(j.kind == "smt2" for j in jobs)


def test_jobs_from_jsonl(tmp_path):
    path = tmp_path / "batch.jsonl"
    path.write_text(
        json.dumps({"name": "p", "pattern": "a*", "expected": "sat"}) + "\n"
        + "\n"
        + json.dumps({"crash": "kill"}) + "\n"
    )
    jobs = jobs_from_jsonl(str(path))
    assert [(j.name, j.kind) for j in jobs] == [("p", "pattern"),
                                               ("line-3", "crash")]
    assert jobs[0].expected == "sat"


def test_jobs_from_jsonl_rejects_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"pattern": "a", "smt2": "x"}\n')
    with pytest.raises(ValueError, match="exactly one"):
        jobs_from_jsonl(str(path))
    path.write_text("not json\n")
    with pytest.raises(ValueError, match="bad JSON"):
        jobs_from_jsonl(str(path))


def test_jobs_from_formulas_roundtrips_to_smt2():
    builder = RegexBuilder(IntervalAlgebra())
    formula = InRe("s", builder.char("a"))
    jobs = jobs_from_formulas([formula], builder.algebra, names=["f0"],
                              expected=["sat"])
    assert jobs[0].kind == "smt2"
    assert "str.in_re" in jobs[0].payload
    assert jobs[0].expected == "sat"


def test_load_jobs_dispatch(tmp_path):
    (tmp_path / "a.smt2").write_text("(check-sat)")
    assert len(load_jobs(str(tmp_path))) == 1
    jsonl = tmp_path / "j.jsonl"
    jsonl.write_text('{"pattern": "a"}\n')
    assert load_jobs(str(jsonl))[0].kind == "pattern"
    assert load_jobs(str(tmp_path / "a.smt2"))[0].kind == "smt2"
