"""The solver daemon under load: concurrency, parity, backpressure,
disconnects, and the protocol's trust boundary.

These tests start a real daemon (real worker processes) on a Unix
socket under the test's tmp dir; budgets stay small."""

import json
import socket
import threading
import time

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.serve import Job
from repro.serve.admission import AdmissionController
from repro.serve.client import DaemonClient, DaemonError
from repro.serve.daemon import SolverDaemon
from repro.solver.engine import RegexSolver
from repro.solver.result import Budget

BUDGET = {"fuel": 100000, "seconds": 5.0}

PATTERNS = [
    "a|b", "a&b", "(ab){2,4}c", "~(a*)", "a*b", "~(a*)&a*",
    "(a|b)*abb", "[a-f]{2,5}&~(.*cc.*)",
]


def serial_verdicts(patterns=PATTERNS):
    builder = RegexBuilder(IntervalAlgebra())
    solver = RegexSolver(builder)
    out = {}
    for pattern in patterns:
        result = solver.is_satisfiable(
            parse(builder, pattern), Budget(**BUDGET)
        )
        out[pattern] = (result.status, result.witness)
    return out


@pytest.fixture
def daemon_path(tmp_path):
    return str(tmp_path / "daemon.sock")


def start_daemon(path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("fuel", BUDGET["fuel"])
    kwargs.setdefault("seconds", BUDGET["seconds"])
    daemon = SolverDaemon(path=path, **kwargs)
    daemon.start()
    return daemon


class TestServing:
    def test_three_concurrent_clients_verdict_parity(self, daemon_path):
        oracle = serial_verdicts()
        daemon = start_daemon(daemon_path)
        try:
            results = [None] * 3
            errors = []

            def client_run(slot):
                try:
                    jobs = [
                        Job("s%d-%d" % (slot, i), "pattern", p)
                        for i, p in enumerate(PATTERNS)
                    ]
                    with DaemonClient(daemon_path) as client:
                        results[slot] = client.solve(jobs, timeout=60.0)
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_run, args=(slot,))
                for slot in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors, errors
            for slot, outcomes in enumerate(results):
                assert outcomes is not None
                for i, pattern in enumerate(PATTERNS):
                    reply = outcomes["s%d-%d" % (slot, i)]
                    assert reply["type"] == "result"
                    status, witness = oracle[pattern]
                    assert reply["status"] == status, pattern
                    assert reply["witness"] == witness, pattern
        finally:
            daemon.stop()

    def test_stats_report_latency_quantiles_and_store(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            with DaemonClient(daemon_path) as client:
                client.solve(
                    [Job("q%d" % i, "pattern", "a*b") for i in range(5)],
                    timeout=60.0,
                )
                stats = client.stats()
            assert stats["served"] == 5
            assert stats["latency"]["window"] == 5
            assert stats["latency"]["p50_s"] > 0.0
            assert stats["latency"]["p99_s"] >= stats["latency"]["p50_s"]
            assert stats["admission"]["accepted"] == 5
        finally:
            daemon.stop()

    def test_slow_client_mid_submission_does_not_stall_others(
            self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            # the slow client writes *half* a submission line and stalls
            slow = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            slow.connect(daemon_path)
            slow.sendall(b'{"op": "submit", "kind": "pat')
            # a normal client must still be served promptly
            with DaemonClient(daemon_path) as client:
                outcomes = client.solve(
                    [Job("fast", "pattern", "a*b")], timeout=30.0,
                )
            assert outcomes["fast"]["status"] == "sat"
            # the stalled line never became a job
            with DaemonClient(daemon_path) as client:
                stats = client.stats()
            assert stats["served"] == 1
            slow.close()
        finally:
            daemon.stop()

    def test_client_disconnect_with_jobs_in_flight(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            # submit, then vanish before reading any result
            ghost = DaemonClient(daemon_path)
            for i in range(4):
                ghost.submit("pattern", "(a|b)*abb", job_id="ghost-%d" % i)
            ghost.close()
            # the daemon keeps serving; the ghost's results are dropped
            # cleanly and the workers are unaffected
            with DaemonClient(daemon_path) as client:
                outcomes = client.solve(
                    [Job("after", "pattern", "a*b")], timeout=60.0,
                )
                assert outcomes["after"]["status"] == "sat"
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    stats = client.stats()
                    if stats["served"] + stats["dropped"] >= 5 \
                            and stats["queue_depth"] == 0:
                        break
                    time.sleep(0.05)
            # every ghost job ran to completion (served counts them
            # even when delivery drops); nothing is stuck in the queue
            assert stats["queue_depth"] == 0
            assert stats["served"] + stats["dropped"] >= 5
            assert stats["dropped"] >= 1
        finally:
            daemon.stop()

    def test_warm_store_hits_across_connections(self, daemon_path, tmp_path):
        storepath = str(tmp_path / "store.json")
        daemon = start_daemon(
            daemon_path, workers=1, store_path=storepath,
            store_save=storepath,
        )
        try:
            pattern = "[a-f]{2,5}&~(.*cc.*)"
            for round_no in range(3):
                with DaemonClient(daemon_path) as client:
                    client.solve(
                        [Job("r%d" % round_no, "pattern", pattern)],
                        timeout=60.0,
                    )
            with DaemonClient(daemon_path) as client:
                stats = client.stats()
            # first solve misses, later connections hit the same
            # worker's in-process store: cross-connection amortization
            assert stats["store"]["hits"] >= 2
            assert stats["store"]["hit_ratio"] >= 0.5
        finally:
            daemon.stop()


class TestBackpressure:
    def test_admission_rejection_at_the_watermark(self, daemon_path):
        admission = AdmissionController(
            max_queue=2, max_backlog_s=1000.0,
            client_capacity=100, client_refill_per_s=100.0,
        )
        daemon = start_daemon(daemon_path, workers=1, admission=admission)
        try:
            with DaemonClient(daemon_path) as client:
                # a hanging pattern keeps the worker busy while we pile
                # submissions past the watermark
                rejected = []
                for i in range(12):
                    client.submit("pattern", "[a-k]{2,9}&~(.*cc.*)",
                                  job_id="burst-%d" % i)
                resolved = 0
                deadline = time.monotonic() + 60.0
                while resolved < 12 and time.monotonic() < deadline:
                    reply = client.recv(timeout=30.0)
                    assert reply is not None
                    if reply["type"] == "result":
                        resolved += 1
                    elif reply["type"] == "overloaded":
                        resolved += 1
                        rejected.append(reply)
                # the queue limit of 2 cannot absorb a 12-deep burst
                assert rejected, "watermark never tripped"
                for reply in rejected:
                    assert reply["retry_after_s"] > 0.0
                    assert reply["reason"]
            with DaemonClient(daemon_path) as probe:
                stats = probe.stats()
            assert stats["admission"]["rejected"] == len(rejected)
            # bounded by construction: nothing ever queued past the cap
            assert stats["queue_depth"] <= 2 + 1
        finally:
            daemon.stop()

    def test_per_client_budget_exhaustion_ordering(self, daemon_path):
        # the over-budget client is degraded; the compliant client's
        # jobs are dispatched first even though they arrived second
        admission = AdmissionController(
            max_queue=1000, max_backlog_s=1e9,
            degrade_queue=1000, degrade_backlog_s=1e9,
            client_capacity=1, client_refill_per_s=0.0,
        )
        daemon = start_daemon(daemon_path, workers=1, admission=admission)
        try:
            hog = DaemonClient(daemon_path)
            polite = DaemonClient(daemon_path)
            # hog spends its only token, then keeps submitting: the
            # rest are accepted degraded (plenty of queue headroom)
            for i in range(6):
                hog.submit("pattern", "(a|b)*abb", job_id="hog-%d" % i)
            acks = [hog.recv(timeout=30.0) for _ in range(6)]
            degraded = [a for a in acks if a["type"] == "queued"
                        and a["degraded"]]
            assert len(degraded) == 5
            polite.submit("pattern", "a*b", job_id="polite-0")
            order = []

            def drain(client, prefix, want):
                got = 0
                while got < want:
                    reply = client.recv(timeout=60.0)
                    if reply["type"] == "result":
                        order.append(reply["id"])
                        got += 1

            t_hog = threading.Thread(target=drain, args=(hog, "hog", 6))
            t_polite = threading.Thread(
                target=drain, args=(polite, "polite", 1)
            )
            t_hog.start()
            t_polite.start()
            t_polite.join(timeout=60.0)
            t_hog.join(timeout=120.0)
            assert not t_hog.is_alive() and not t_polite.is_alive()
            # the compliant job finished before the hog's degraded tail
            polite_pos = order.index("polite-0")
            assert polite_pos < len(order) - 1, (
                "degraded jobs were not deprioritized: %r" % (order,)
            )
        finally:
            hog.close()
            polite.close()
            daemon.stop()


class TestTrustBoundary:
    def test_bad_json_is_an_error_not_a_crash(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            with DaemonClient(daemon_path) as client:
                client.send({"op": "ping"})  # prove the channel first
                assert client.recv(timeout=10.0)["type"] == "pong"
                client._sock.sendall(b"this is not json\n")
                reply = client.recv(timeout=10.0)
                assert reply["type"] == "error"
                # connection still usable
                client.send({"op": "ping"})
                assert client.recv(timeout=10.0)["type"] == "pong"
        finally:
            daemon.stop()

    def test_crash_kind_is_refused_by_default(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            with DaemonClient(daemon_path) as client:
                client.submit("crash", "kill", job_id="evil")
                reply = client.recv(timeout=10.0)
                assert reply["type"] == "error"
                assert "kind" in reply["message"]
        finally:
            daemon.stop()

    def test_duplicate_inflight_id_is_rejected(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            with DaemonClient(daemon_path) as client:
                client.submit("pattern", "[a-k]{2,9}&~(.*cc.*)",
                              job_id="dup")
                client.submit("pattern", "a*b", job_id="dup")
                saw_error = False
                resolved = 0
                while resolved < 1 or not saw_error:
                    reply = client.recv(timeout=30.0)
                    if reply["type"] == "error":
                        assert "in flight" in reply["message"]
                        saw_error = True
                    elif reply["type"] == "result":
                        resolved += 1
                assert saw_error
        finally:
            daemon.stop()

    def test_payload_must_be_a_string(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            with DaemonClient(daemon_path) as client:
                client.send({"op": "submit", "id": "x", "kind": "pattern",
                             "payload": ["not", "a", "string"]})
                reply = client.recv(timeout=10.0)
                assert reply["type"] == "error"
                assert "payload" in reply["message"]
        finally:
            daemon.stop()

    def test_oversized_line_ends_the_connection_cleanly(self, daemon_path):
        from repro.serve import daemon as daemon_mod

        daemon = start_daemon(daemon_path)
        try:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(daemon_path)
            raw.sendall(b"x" * (daemon_mod.MAX_LINE + 10) + b"\n")
            handle = raw.makefile("rb")
            line = handle.readline()
            assert b"error" in line
            assert handle.readline() == b""  # daemon closed it
            raw.close()
            # the daemon survives
            with DaemonClient(daemon_path) as client:
                assert client.ping()
        finally:
            daemon.stop()

    def test_unknown_op_is_an_error(self, daemon_path):
        daemon = start_daemon(daemon_path)
        try:
            with DaemonClient(daemon_path) as client:
                client.send({"op": "launch-missiles"})
                reply = client.recv(timeout=10.0)
                assert reply["type"] == "error"
        finally:
            daemon.stop()


class TestLifecycle:
    def test_shutdown_op_drains_in_flight_jobs(self, daemon_path):
        daemon = start_daemon(daemon_path, workers=1)
        try:
            with DaemonClient(daemon_path) as client:
                ids = [
                    client.submit("pattern", "(a|b)*abb")
                    for _ in range(3)
                ]
                client.shutdown()
                # every accepted job resolves before the daemon dies:
                # never a dropped in-flight job
                seen = set()
                while len(seen) < len(ids):
                    reply = client.recv(timeout=60.0)
                    if reply is None:
                        break
                    if reply.get("type") == "result":
                        assert reply["status"] == "sat"
                        seen.add(reply["id"])
                assert seen == set(ids)
        finally:
            daemon.stop()

    def test_shutdown_op_can_be_disabled(self, daemon_path):
        daemon = start_daemon(daemon_path, allow_shutdown=False)
        try:
            with DaemonClient(daemon_path) as client:
                client.shutdown()
                reply = client.recv(timeout=10.0)
                assert reply["type"] == "error"
                assert client.ping()
        finally:
            daemon.stop()

    def test_worker_crash_mid_serving_is_isolated(self, daemon_path):
        daemon = start_daemon(daemon_path, workers=2, allow_crash=True,
                              retries=0)
        try:
            with DaemonClient(daemon_path) as client:
                outcomes = client.solve(
                    [
                        Job("boom", "crash", "kill"),
                        Job("fine-0", "pattern", "a*b"),
                        Job("fine-1", "pattern", "a|b"),
                    ],
                    timeout=60.0,
                )
            assert outcomes["boom"]["status"] == "error"
            assert outcomes["boom"]["error"]["type"] == "WorkerCrashed"
            assert outcomes["fine-0"]["status"] == "sat"
            assert outcomes["fine-1"]["status"] == "sat"
        finally:
            daemon.stop()

    def test_tcp_ephemeral_port(self):
        daemon = SolverDaemon(host="127.0.0.1", port=0, workers=1,
                              fuel=BUDGET["fuel"],
                              seconds=BUDGET["seconds"])
        daemon.start()
        try:
            host, port = daemon.address
            assert port > 0
            with DaemonClient((host, port)) as client:
                outcomes = client.solve(
                    [Job("t", "pattern", "a*b")], timeout=30.0,
                )
            assert outcomes["t"]["status"] == "sat"
        finally:
            daemon.stop()
