"""Signal-safe pool shutdown: SIGTERM / KeyboardInterrupt mid-batch
must leave no orphan worker processes and no partial store file.

The victim runs in a subprocess (signals aimed at a live pool parent),
hung on fault-injection jobs so the batch cannot finish on its own."""

import os
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))), "src",
)

RUNNER = r"""
import sys, threading, time
from repro.serve import Job, WorkerPool

store_save = sys.argv[1] if len(sys.argv) > 1 and sys.argv[1] != "-" \
    else None
pool = WorkerPool(workers=2, fuel=100000, seconds=60.0,
                  reap_grace=600.0, store_save=store_save,
                  store_path=store_save)

def announce():
    while not pool.worker_pids():
        time.sleep(0.01)
    print("PIDS " + " ".join(str(p) for p in pool.worker_pids()),
          flush=True)

threading.Thread(target=announce, daemon=True).start()
pool.run([Job("h0", "crash", "hang"), Job("h1", "crash", "hang")])
print("FINISHED", flush=True)
"""


def _start_victim(tmp_path, store_arg):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-c", RUNNER, store_arg],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=str(tmp_path),
    )
    line = proc.stdout.readline()
    assert line.startswith("PIDS "), (
        "victim never reported its workers: %r / %r"
        % (line, proc.stderr.read() if proc.poll() is not None else "")
    )
    return proc, [int(p) for p in line.split()[1:]]


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True


def _wait_dead(pids, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = [p for p in pids if _pid_alive(p)]
        if not alive:
            return []
        time.sleep(0.05)
    return alive


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_mid_batch_leaves_no_orphans_and_no_store(
        tmp_path, signum):
    store = tmp_path / "store.json"
    proc, worker_pids = _start_victim(tmp_path, str(store))
    assert len(worker_pids) == 2
    assert all(_pid_alive(p) for p in worker_pids)
    # let both hang jobs actually dispatch
    time.sleep(0.3)
    proc.send_signal(signum)
    try:
        out, err = proc.communicate(timeout=30.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    # the batch died on the signal, it did not "finish"
    assert "FINISHED" not in out
    assert proc.returncode != 0
    # no surviving children: every worker is gone within the grace
    survivors = _wait_dead(worker_pids)
    for pid in survivors:  # pragma: no cover - cleanup before failing
        os.kill(pid, signal.SIGKILL)
    assert not survivors, "orphan workers survived: %s" % survivors
    # the interrupted batch never wrote a (partial) store snapshot
    assert not store.exists()
    # and no stray temp file from a torn atomic save either
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert not leftovers


def test_serve_cli_sigterm_drains_and_kills_fleet(tmp_path):
    # SIGTERM's default action would kill the daemon process without
    # its finally block, orphaning the workers; the serve command
    # installs a handler that routes it into the graceful drain
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(tmp_path / "d.sock"), "--jobs", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(tmp_path),
    )
    line = proc.stdout.readline()
    assert line.startswith("serving on "), line
    deadline = time.monotonic() + 10.0
    workers = []
    while time.monotonic() < deadline and len(workers) < 2:
        out = subprocess.run(
            ["pgrep", "-P", str(proc.pid)],
            capture_output=True, text=True,
        ).stdout.split()
        workers = [int(p) for p in out]
        time.sleep(0.05)
    assert len(workers) == 2, "fleet never spawned: %r" % workers
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=30.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    assert proc.returncode == 0
    assert "terminated; draining" in out
    assert "served 0 job(s)" in out
    survivors = _wait_dead(workers)
    for pid in survivors:  # pragma: no cover - cleanup before failing
        os.kill(pid, signal.SIGKILL)
    assert not survivors, "orphan workers survived: %s" % survivors


def test_second_sigterm_during_cleanup_still_kills_workers(tmp_path):
    # the handler is restored only after the fleet is dead: a second
    # SIGTERM racing the cleanup cannot re-orphan the workers
    proc, worker_pids = _start_victim(tmp_path, "-")
    time.sleep(0.3)
    proc.send_signal(signal.SIGTERM)
    time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    try:
        proc.communicate(timeout=30.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    survivors = _wait_dead(worker_pids)
    for pid in survivors:  # pragma: no cover
        os.kill(pid, signal.SIGKILL)
    assert not survivors, "orphan workers survived: %s" % survivors
