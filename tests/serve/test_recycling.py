"""Worker recycling: planned retirement is not a crash.

A worker that hits its task budget or a memory/cache watermark between
tasks announces retirement, ships its metrics, and exits; the pool must
replace it silently — same verdicts, stats merged, no retries charged,
``report.recycled`` counting the replacements.
"""

from repro.serve import Job, solve_batch
from repro.serve.worker import WorkerState, rss_bytes

PATTERNS = [
    ("disj", "a|b", "sat"),
    ("empty-isect", "a&b", "unsat"),
    ("loop", "(ab){2,4}c", "sat"),
    ("compl", "~(a*)", "sat"),
    ("chars", "[a-f]{3}", "sat"),
    ("anchored", "abc&ab.", "sat"),
]

BUDGET = {"fuel": 100000, "seconds": 5.0}


def _jobs(repeat=1):
    return [
        Job("%s-%d" % (name, i), "pattern", pattern)
        for i in range(repeat)
        for name, pattern, _ in PATTERNS
    ]


def _expected(repeat=1):
    return {
        "%s-%d" % (name, i): status
        for i in range(repeat)
        for name, pattern, status in PATTERNS
    }


def test_max_tasks_recycles_without_changing_verdicts():
    report = solve_batch(_jobs(repeat=3), workers=2, max_tasks=2, **BUDGET)
    expected = _expected(repeat=3)
    assert len(report.results) == len(expected)
    for result in report.results:
        assert result.status == expected[result.name], result
        assert result.attempts == 1  # recycling never charges a retry
    assert report.retries == 0
    # 18 tasks, 2-task budget per worker: many planned retirements
    assert report.recycled >= 4
    # each retiring worker shipped its metrics before exiting
    assert report.worker_metrics.get("solver.queries", 0) == len(expected)


def test_cache_watermark_recycles():
    report = solve_batch(
        _jobs(repeat=2), workers=1, max_cache_entries=1, **BUDGET
    )
    expected = _expected(repeat=2)
    for result in report.results:
        assert result.status == expected[result.name], result
    # every task trips the 1-entry watermark, so every task but the
    # last retires its worker
    assert report.recycled >= len(expected) - 1


def test_rss_watermark_recycles():
    # 1 MiB is below any CPython process floor: trips after every task
    report = solve_batch(_jobs(), workers=1, max_rss_mb=1, **BUDGET)
    expected = _expected()
    for result in report.results:
        assert result.status == expected[result.name], result
    assert report.recycled >= 1


def test_no_watermarks_means_no_recycling():
    report = solve_batch(_jobs(), workers=2, **BUDGET)
    assert report.recycled == 0
    assert "(recycled" not in report.summary_line()


def test_recycled_count_in_report_dict_and_summary():
    report = solve_batch(_jobs(repeat=2), workers=1, max_tasks=1, **BUDGET)
    assert report.to_dict()["recycled"] == report.recycled >= 1
    assert "recycled" in report.summary_line()


def test_compact_entries_bounds_worker_caches():
    report = solve_batch(
        _jobs(repeat=3), workers=1, compact_entries=100, **BUDGET
    )
    expected = _expected(repeat=3)
    for result in report.results:
        assert result.status == expected[result.name], result
    assert report.recycled == 0
    # the in-worker policy actually fired
    assert report.worker_metrics.get("cache.compactions", 0) >= 1


def test_rss_helper_reports_plausible_value():
    rss = rss_bytes()
    # this test process certainly uses between 1 MiB and 100 GiB
    assert 1 << 20 < rss < 100 << 30


def test_should_retire_reasons():
    state = WorkerState({"max_tasks": 2})
    assert state.should_retire() is None
    state.tasks_done = 2
    assert "task budget" in state.should_retire()

    state = WorkerState({"max_rss_mb": 1})
    assert "rss watermark" in state.should_retire()

    state = WorkerState({"max_cache_entries": 1})
    assert "cache watermark" in state.should_retire()

    assert WorkerState({}).should_retire() is None
