"""The worker pool: ordering, verdict parity, crash and hang isolation.

These tests spawn real worker processes; budgets are kept small so the
whole module stays fast even on a single-core machine.
"""

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.serve import Job, solve_batch
from repro.solver.engine import RegexSolver
from repro.solver.result import Budget

PATTERNS = [
    ("disj", "a|b"),
    ("empty-isect", "a&b"),
    ("deep", "(" * 600 + "a" + ")" * 600),
    ("loop", "(ab){2,4}c"),
    ("compl", "~(a*)"),
    ("bad-syntax", "(unclosed"),
]

BUDGET = {"fuel": 100000, "seconds": 5.0}


def serial_verdicts():
    builder = RegexBuilder(IntervalAlgebra())
    solver = RegexSolver(builder)
    out = {}
    for name, pattern in PATTERNS:
        try:
            regex = parse(builder, pattern)
        except Exception as exc:
            out[name] = ("error", type(exc).__name__)
            continue
        result = solver.is_satisfiable(regex, Budget(**BUDGET))
        out[name] = (result.status, None)
    return out


def test_batch_matches_serial_and_preserves_order():
    jobs = [Job(name, "pattern", pattern) for name, pattern in PATTERNS]
    report = solve_batch(jobs, workers=2, **BUDGET)
    assert [r.name for r in report.results] == [n for n, _ in PATTERNS]
    expected = serial_verdicts()
    for result in report.results:
        status, error_type = expected[result.name]
        assert result.status == status, result
        if error_type is not None:
            assert result.error["type"] == error_type
    assert report.counts["error"] == 1  # only the syntax error


def test_smt2_jobs_honor_expected_status(tmp_path):
    text = (
        "(set-logic QF_S)\n(declare-const x String)\n"
        '(assert (str.in_re x (re.+ (str.to_re "ab"))))\n(check-sat)\n'
    )
    (tmp_path / "p.smt2").write_text(text)
    from repro.serve import load_jobs

    report = solve_batch(load_jobs(str(tmp_path)), workers=1, **BUDGET)
    assert report.results[0].status == "sat"
    assert report.results[0].model == {"x": "ab"}


def test_killed_worker_yields_error_record_and_batch_completes():
    jobs = [
        Job("before", "pattern", "a"),
        Job("boom", "crash", "kill"),
        Job("after", "pattern", "b"),
    ]
    report = solve_batch(jobs, workers=2, retries=0, **BUDGET)
    statuses = {r.name: r.status for r in report.results}
    assert statuses == {"before": "sat", "boom": "error", "after": "sat"}
    boom = report.results[1]
    assert boom.error["type"] == "WorkerCrashed"
    assert "exited" in boom.error["message"]


def test_crash_retry_budget_is_bounded():
    report = solve_batch([Job("boom", "crash", "kill")], workers=1,
                         retries=2, **BUDGET)
    assert report.retries == 2
    result = report.results[0]
    assert result.status == "error"
    assert result.attempts == 3


def test_hung_worker_is_reaped_as_unknown():
    jobs = [Job("wedge", "crash", "hang"), Job("ok", "pattern", "xy*")]
    report = solve_batch(jobs, workers=2, fuel=100000, seconds=0.3,
                         reap_grace=0.4)
    wedge, ok = report.results
    assert wedge.status == "unknown"
    assert wedge.error["type"] == "WorkerTimeout"
    assert ok.status == "sat"


def test_single_worker_survives_mid_batch_kill():
    jobs = [
        Job("a", "pattern", "a"),
        Job("boom", "crash", "kill"),
        Job("b", "pattern", "b"),
    ]
    report = solve_batch(jobs, workers=1, retries=1, **BUDGET)
    assert [r.status for r in report.results] == ["sat", "error", "sat"]
    assert report.retries == 1


def test_worker_metrics_survive_clean_shutdown():
    report = solve_batch([Job("p", "pattern", "ab*")], workers=1, **BUDGET)
    assert report.worker_metrics  # the lone worker shut down cleanly
    assert report.cpu_s >= 0.0
    assert report.wall_s > 0.0


def test_bench_jobs_match_run_problem():
    from repro.bench.harness import Problem, run_problem
    from repro.bench.engines import engine_by_name
    from repro.smtlib.writer import script_text
    from repro.solver.formula import InRe

    builder = RegexBuilder(IntervalAlgebra())
    regex = builder.inter(
        [parse(builder, "a*b"), parse(builder, "[ab]{1,3}")]
    )
    problem = Problem("cell", "unit", "B", InRe("x", regex), expected="sat")
    serial = run_problem(engine_by_name("sbd"), builder, problem,
                         fuel=BUDGET["fuel"], seconds=BUDGET["seconds"])
    text = script_text(problem.formula, builder.algebra, status="sat")
    report = solve_batch(
        [Job("cell", "bench", {"engine": "sbd", "smt2": text},
             expected="sat")],
        workers=1, **BUDGET,
    )
    result = report.results[0]
    assert (result.status, result.outcome) == (serial.status, serial.outcome)


def test_pool_rejects_zero_workers():
    from repro.serve import WorkerPool

    with pytest.raises(ValueError):
        WorkerPool(workers=0)


def test_explain_batch_certifies_every_concrete_verdict():
    jobs = [
        Job("sat", "pattern", "(ab)*a"),
        Job("unsat", "pattern", "(ab)*&b.*"),
        Job("smt", "smt2",
            '(declare-fun x () String)'
            '(assert (str.in_re x (re.+ (str.to_re "a"))))(check-sat)'),
    ]
    report = solve_batch(jobs, workers=1, explain=True, **BUDGET)
    assert report.counts == {"sat": 2, "unsat": 1, "unknown": 0, "error": 0}
    for result in report.results:
        assert result.explanation is not None
        assert result.explanation["certificate_checked"] is True
        assert "explanation" in result.to_dict()
    certified = report.certified
    assert certified == {"checked": 3, "rejected": 0, "unchecked": 0}
    assert "certificates: 3 checked, 0 rejected" in report.summary_line()


def test_batch_without_explain_has_no_explanations():
    report = solve_batch([Job("p", "pattern", "ab*")], workers=1, **BUDGET)
    assert report.results[0].explanation is None
    assert report.certified == {"checked": 0, "rejected": 0, "unchecked": 0}
    assert "certificates" not in report.summary_line()
