"""The warm store through the worker pool: shared snapshots, warm
restarts across recycling, and verdict parity with serial solves.

Workers load the ``store_path`` snapshot on spawn — including the
replacements spawned after recycling, which is what turns a recycle
from a cold restart into a warm one.  ``store_save`` ships each
worker's newly-captured fragments back through its final stats message
and merges them into the snapshot file at batch end.
"""

import json

from repro.serve import Job, solve_batch

BUDGET = {"fuel": 100000, "seconds": 5.0}

PATTERNS = [
    "(a|b)*abb",
    "~(.*ab.*)&(a|b|c){2,8}",
    "(ab|ba){2,5}c?",
    "a{2,4}&~(.*b.*)",
]


def _jobs(repeat=2):
    return [
        Job("%s-%d" % (p, i), "pattern", p)
        for i in range(repeat)
        for p in PATTERNS
    ]


def _store_hits(report):
    return sum(
        r.get("store", {}).get("hits", 0) for r in report.worker_reports
    )


def test_capture_then_warm_batch_agree(tmp_path):
    store = str(tmp_path / "store.json")
    jobs = _jobs()
    capture = solve_batch(jobs, workers=2, store_path=store,
                          store_save=store, **BUDGET)
    with open(store, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    assert snapshot["fragments"], "capture batch stored no fragments"

    warm = solve_batch(jobs, workers=2, store_path=store, **BUDGET)
    assert [r.status for r in capture.results] \
        == [r.status for r in warm.results]
    assert [r.witness for r in capture.results] \
        == [r.witness for r in warm.results]
    assert _store_hits(warm) > 0


def test_recycled_workers_restart_warm(tmp_path):
    """With max_tasks=1 every task lands on a freshly-spawned worker;
    the shared snapshot is what keeps those replacements warm."""
    store = str(tmp_path / "store.json")
    jobs = _jobs(repeat=1)
    solve_batch(jobs, workers=1, store_path=store, store_save=store,
                **BUDGET)
    report = solve_batch(jobs, workers=1, max_tasks=1, store_path=store,
                         **BUDGET)
    assert report.recycled > 0, "max_tasks=1 never recycled a worker"
    assert _store_hits(report) == len(jobs), (
        "recycled workers solved cold despite the shared snapshot"
    )


def test_store_save_merges_across_batches(tmp_path):
    store = str(tmp_path / "store.json")
    solve_batch([Job("a", "pattern", PATTERNS[0])], workers=1,
                store_path=store, store_save=store, **BUDGET)
    solve_batch([Job("b", "pattern", PATTERNS[1])], workers=1,
                store_path=store, store_save=store, **BUDGET)
    with open(store, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    keys = {f["key"] for f in snapshot["fragments"]}
    assert len(keys) >= 2, "second batch clobbered the first's fragments"
