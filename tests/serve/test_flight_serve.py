"""The flight recorder end to end: a real worker pool recording into a
flight directory — heartbeats on the report, distinct worker lanes in
the merged timeline, crash narration, and slow-query capture/replay.

These tests spawn real worker processes; the heartbeat interval is
dropped to a few milliseconds so even the shortest batch records beats.
"""

import json
import os

from repro.obs.events import read_events
from repro.obs.flight import (
    events_path, list_artifacts, load_flight, replay_artifact,
)
from repro.serve import Job, solve_batch

BUDGET = {"fuel": 200000, "seconds": 5.0}


def run_flight(tmp_path, jobs, workers=2, **kwargs):
    kwargs.setdefault("heartbeat_s", 0.01)
    return solve_batch(
        jobs, workers=workers, flight_dir=str(tmp_path), **BUDGET, **kwargs
    )


def test_batch_records_a_complete_flight(tmp_path):
    jobs = [
        Job("sat-0", "pattern", "a|b"),
        Job("unsat-0", "pattern", "(.*a.{6})&(.*b.{6})"),
        Job("sat-1", "pattern", "(ab){2,3}"),
        Job("unsat-1", "pattern", "a&b"),
    ]
    report = run_flight(tmp_path, jobs, workers=2)
    assert report.counts == {"sat": 2, "unsat": 2, "unknown": 0, "error": 0}
    assert report.flight_dir == str(tmp_path)

    # every worker that solved something heartbeated
    beats = report.heartbeats_by_worker()
    solved_on = {r.worker for r in report.results}
    assert solved_on <= set(beats)
    for worker, worker_beats in beats.items():
        stamps = [b["ts"] for b in worker_beats]
        assert stamps == sorted(stamps)  # per-worker order preserved
        assert all(b["pid"] for b in worker_beats)
    assert "flight:" in report.summary_line()
    assert report.to_dict()["heartbeats"] == len(report.heartbeats)

    flight = load_flight(str(tmp_path))
    # the on-disk heartbeat ledger matches what the report carries
    assert len(flight["heartbeats"]) == len(report.heartbeats)
    # pool narration brackets the run
    pool_kinds = [e["kind"] for e in read_events(
        events_path(str(tmp_path), "pool")
    )]
    assert pool_kinds[0] == "pool.start" and pool_kinds[-1] == "pool.end"
    assert pool_kinds.count("worker.spawn") == 2
    # each task left its start/end pair in some worker's lane
    ends = [e for e in flight["events"] if e["kind"] == "task.end"]
    assert sorted(e["name"] for e in ends) == sorted(j.name for j in jobs)

    # the merged timeline landed, with one lane per process plus the pool
    with open(os.path.join(str(tmp_path), "timeline.json")) as handle:
        trace = json.load(handle)
    lanes = {
        e["pid"]: e["args"]["name"] for e in trace["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    worker_pids = {pid for pid, label in lanes.items() if label != "pool"}
    assert len(worker_pids) == 2
    # solver spans from distinct worker processes share the one trace
    span_pids = {
        e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"
    }
    assert span_pids == worker_pids


def test_slow_queries_are_captured_and_replay_to_same_verdict(tmp_path):
    jobs = [
        Job("fast", "pattern", "a"),
        Job("slow-unsat", "pattern", "(.*a.{8})&(.*b.{8})"),
    ]
    # slow_explored=1: every non-trivial solve trips the derivative
    # threshold deterministically (wall-clock thresholds flake in CI)
    report = run_flight(tmp_path, jobs, workers=1, slow_explored=2)
    assert report.counts["error"] == 0
    artifacts = list_artifacts(str(tmp_path))
    assert artifacts
    statuses = {}
    for path in artifacts:
        comparison = replay_artifact(path)
        assert comparison["match"] is True, comparison
        statuses[comparison["name"]] = comparison["replayed"]
    assert statuses.get("slow-unsat") == "unsat"
    flight = load_flight(str(tmp_path))
    captures = [e for e in flight["events"] if e["kind"] == "slow.capture"]
    assert len(captures) == len(artifacts)


def test_crashed_worker_is_narrated_and_survives_in_streams(tmp_path):
    jobs = [
        Job("before", "pattern", "a|b"),
        Job("boom", "crash", "kill"),
        Job("after", "pattern", "x*y"),
    ]
    report = run_flight(tmp_path, jobs, workers=2, retries=0)
    by_name = {r.name: r for r in report.results}
    assert by_name["boom"].status == "error"
    assert by_name["before"].status == "sat"
    assert by_name["after"].status == "sat"

    flight = load_flight(str(tmp_path))
    crashes = [e for e in flight["events"] if e["kind"] == "worker.crash"]
    assert any(e.get("name") == "boom" for e in crashes)
    # the killed worker's lane still shows the task that killed it: the
    # dangling task.start survived because every write is line-flushed
    starts = [e for e in flight["events"]
              if e["kind"] == "task.start" and e["name"] == "boom"]
    assert len(starts) == 1
    # no task.end for it in that lane
    ends = [e for e in flight["events"]
            if e["kind"] == "task.end" and e["name"] == "boom"]
    assert ends == []
    # the timeline still merges after the crash
    assert os.path.exists(os.path.join(str(tmp_path), "timeline.json"))


def test_recycled_worker_is_narrated(tmp_path):
    jobs = [Job("j%d" % i, "pattern", "a|b") for i in range(4)]
    report = run_flight(tmp_path, jobs, workers=1, max_tasks=2)
    assert report.recycled >= 1
    assert report.counts["error"] == 0
    flight = load_flight(str(tmp_path))
    recycles = [e for e in flight["events"] if e["kind"] == "worker.recycle"]
    assert len(recycles) == report.recycled
    exits = [e for e in flight["events"]
             if e["kind"] == "worker.exit" and e.get("retiring")]
    assert len(exits) >= 1


def test_no_flight_dir_means_no_recording(tmp_path):
    report = solve_batch(
        [Job("j", "pattern", "a")], workers=1, **BUDGET
    )
    assert report.flight_dir is None
    assert report.heartbeats == []
    assert "flight:" not in report.summary_line()
    assert "flight_dir" not in report.to_dict()
