"""TaskResult / BatchReport aggregation."""

from repro.serve import BatchReport, TaskResult, merge_numeric


def test_merge_numeric_sums_scalars_and_nested_metrics():
    acc = {}
    merge_numeric(acc, {"explored": 3, "metrics": {"a.b": 1}, "note": "x",
                        "flag": True})
    merge_numeric(acc, {"explored": 4, "metrics": {"a.b": 2, "c": 5}})
    assert acc == {"explored": 7, "metrics": {"a.b": 3, "c": 5}}


def test_results_sorted_by_index():
    results = [
        TaskResult(2, "c", "sat"),
        TaskResult(0, "a", "unsat"),
        TaskResult(1, "b", "error", error={"type": "X", "message": "m"}),
    ]
    report = BatchReport(results, wall_s=1.0, workers=2)
    assert [r.index for r in report.results] == [0, 1, 2]
    assert report.counts == {"sat": 1, "unsat": 1, "unknown": 0, "error": 1}
    assert [r.name for r in report.errors] == ["b"]


def test_cpu_time_sums_elapsed_and_counters_merge():
    results = [
        TaskResult(0, "a", "sat", elapsed=0.5, stats={"explored": 2}),
        TaskResult(1, "b", "sat", elapsed=1.5, stats={"explored": 3}),
    ]
    report = BatchReport(results, wall_s=1.0, workers=2,
                         worker_metrics=[{"deriv.steps": 7},
                                         {"deriv.steps": 3}])
    assert report.cpu_s == 2.0
    assert report.counters["explored"] == 5
    assert report.worker_metrics == {"deriv.steps": 10}


def test_to_dict_and_summary_line():
    report = BatchReport(
        [TaskResult(0, "a", "unknown", reason="worker reaped",
                    error={"type": "WorkerTimeout", "message": "m"})],
        wall_s=0.25, workers=1, retries=2,
    )
    out = report.to_dict()
    assert out["counts"]["unknown"] == 1
    assert out["results"][0]["error"]["type"] == "WorkerTimeout"
    assert out["retries"] == 2
    line = report.summary_line()
    assert "1 jobs" in line and "2 retries" in line


def test_task_result_to_dict_omits_empty_fields():
    out = TaskResult(0, "a", "sat", witness="w").to_dict()
    assert out["witness"] == "w"
    assert "error" not in out and "stats" not in out and "model" not in out
