"""Admission control: token buckets, watermarks, degradation order.

Everything here runs on a fake clock — no sleeps, no workers."""

import pytest

from repro.serve.admission import (
    Admission, AdmissionController, MAX_RETRY_S, MIN_RETRY_S, TokenBucket,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        clock = FakeClock()
        bucket = TokenBucket(3, 1.0, clock=clock)
        assert bucket.take() and bucket.take() and bucket.take()
        assert not bucket.take()

    def test_refills_at_the_configured_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 0.5, clock=clock)
        bucket.take()
        bucket.take()
        assert not bucket.take()
        clock.advance(2.0)       # one token back
        assert bucket.take()
        assert not bucket.take()

    def test_refill_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.level() == pytest.approx(2.0)

    def test_failed_take_leaves_no_debt(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 0.0, clock=clock)
        bucket.take()
        assert not bucket.take()
        assert bucket.level() == pytest.approx(0.0)

    def test_refund_restores_up_to_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 0.0, clock=clock)
        bucket.take()
        bucket.refund()
        bucket.refund()
        assert bucket.level() == pytest.approx(2.0)

    def test_seconds_until_matches_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 0.5, clock=clock)
        bucket.take()
        assert bucket.seconds_until(1.0) == pytest.approx(2.0)
        # no refill -> never
        frozen = TokenBucket(1, 0.0, clock=clock)
        frozen.take()
        assert frozen.seconds_until(1.0) == float("inf")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1.0)


def controller(**overrides):
    defaults = dict(
        max_queue=8, max_backlog_s=1000.0, client_capacity=4,
        client_refill_per_s=0.0, service_prior_s=0.01,
        clock=FakeClock(),
    )
    defaults.update(overrides)
    return AdmissionController(**defaults)


class TestAdmissionController:
    def test_in_budget_below_watermark_accepts(self):
        ctrl = controller()
        verdict = ctrl.admit("c0", depth=0, workers=2)
        assert verdict.decision == "accept"
        assert verdict.accepted and not verdict.degraded

    def test_hard_depth_watermark_rejects_everyone(self):
        ctrl = controller(max_queue=4)
        verdict = ctrl.admit("c0", depth=4, workers=2)
        assert verdict.decision == "reject"
        assert verdict.retry_after_s >= MIN_RETRY_S
        assert "depth" in verdict.reason

    def test_hard_backlog_watermark_rejects_everyone(self):
        ctrl = controller(max_backlog_s=1.0, service_prior_s=1.0)
        # depth 3 x 1s EWMA / 2 workers = 1.5s backlog > 1.0s limit
        verdict = ctrl.admit("c0", depth=3, workers=2)
        assert verdict.decision == "reject"
        assert "backlog" in verdict.reason

    def test_rejection_refunds_the_token(self):
        ctrl = controller(max_queue=1, client_capacity=1)
        assert ctrl.admit("c0", depth=1, workers=1).decision == "reject"
        # the budget was not consumed by the rejected attempt
        assert ctrl.admit("c0", depth=0, workers=1).decision == "accept"

    def test_over_budget_below_soft_watermark_degrades(self):
        ctrl = controller(client_capacity=2, max_queue=100)
        for _ in range(2):
            assert ctrl.admit("c0", depth=0, workers=2).decision == "accept"
        verdict = ctrl.admit("c0", depth=0, workers=2)
        assert verdict.decision == "degrade"
        assert verdict.accepted and verdict.degraded

    def test_over_budget_above_soft_watermark_rejects(self):
        ctrl = controller(client_capacity=1, max_queue=10, degrade_queue=2)
        assert ctrl.admit("c0", depth=0, workers=2).decision == "accept"
        verdict = ctrl.admit("c0", depth=3, workers=2)
        assert verdict.decision == "reject"
        assert "over budget" in verdict.reason

    def test_compliant_client_admitted_where_over_budget_is_shed(self):
        # the ordering the soft watermark exists for: same depth, the
        # client with tokens gets in, the exhausted one is rejected
        ctrl = controller(client_capacity=1, max_queue=10, degrade_queue=2)
        assert ctrl.admit("hog", depth=0, workers=2).decision == "accept"
        assert ctrl.admit("hog", depth=3, workers=2).decision == "reject"
        assert ctrl.admit("polite", depth=3, workers=2).decision == "accept"

    def test_retry_hint_includes_token_refill_wait(self):
        clock = FakeClock()
        ctrl = controller(client_capacity=1, client_refill_per_s=0.1,
                          max_queue=10, degrade_queue=1, clock=clock)
        assert ctrl.admit("c0", depth=0, workers=2).decision == "accept"
        verdict = ctrl.admit("c0", depth=2, workers=2)
        assert verdict.decision == "reject"
        # one token at 0.1/s = 10s to refill; hint must cover it
        assert verdict.retry_after_s == pytest.approx(10.0, abs=0.5)

    def test_retry_hint_is_clamped(self):
        ctrl = controller(max_queue=1, service_prior_s=1000.0)
        verdict = ctrl.admit("c0", depth=500, workers=1)
        assert verdict.decision == "reject"
        assert verdict.retry_after_s <= MAX_RETRY_S

    def test_observe_moves_the_ewma(self):
        ctrl = controller(service_prior_s=0.01, ewma_alpha=0.5)
        ctrl.observe(1.0)
        assert ctrl.service_ewma_s == pytest.approx(0.505)
        ctrl.observe(1.0)
        assert ctrl.service_ewma_s == pytest.approx(0.7525)

    def test_observe_ignores_garbage(self):
        ctrl = controller(service_prior_s=0.01)
        ctrl.observe(None)
        ctrl.observe(-5.0)
        assert ctrl.service_ewma_s == pytest.approx(0.01)

    def test_snapshot_counts_decisions(self):
        ctrl = controller(client_capacity=1, max_queue=4, degrade_queue=0,
                          degrade_backlog_s=0.0)
        ctrl.admit("a", depth=0, workers=2)    # accept (token spent)
        ctrl.admit("a", depth=1, workers=2)    # reject (over budget, soft)
        snap = ctrl.snapshot()
        assert snap["accepted"] == 1
        assert snap["rejected"] == 1
        assert snap["clients"] == 1

    def test_forget_drops_the_bucket(self):
        ctrl = controller(client_capacity=1)
        ctrl.admit("a", depth=0, workers=2)
        ctrl.forget("a")
        # fresh bucket: the budget is back
        assert ctrl.admit("a", depth=0, workers=2).decision == "accept"

    def test_zero_refill_degraded_forever_until_forgotten(self):
        ctrl = controller(client_capacity=1, client_refill_per_s=0.0,
                          max_queue=100)
        assert ctrl.admit("a", depth=0, workers=2).decision == "accept"
        for _ in range(5):
            assert ctrl.admit("a", depth=0, workers=2).decision == "degrade"


def test_admission_repr_is_stable():
    verdict = Admission("reject", reason="x", retry_after_s=1.0)
    assert "reject" in repr(verdict)
