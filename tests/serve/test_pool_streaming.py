"""The pool's streaming core (what the daemon drives) and the batch
edge cases: empty batches, duplicate names, degraded priority."""

import time

import pytest

from repro.serve import Job, WorkerPool, solve_batch

BUDGET = {"fuel": 100000, "seconds": 5.0}
_POLL = 0.02


def pump_until(pool, want, timeout=60.0):
    """Drive pump()/take_completed() until ``want`` results arrive."""
    results = []
    deadline = time.monotonic() + timeout
    while len(results) < want:
        assert time.monotonic() < deadline, (
            "only %d/%d results before timeout" % (len(results), want)
        )
        if not pool.pump():
            time.sleep(_POLL)
        results.extend(pool.take_completed())
    return results


class TestStreamingCore:
    def test_submit_pump_take_across_waves(self):
        pool = WorkerPool(workers=2, **BUDGET)
        pool.start()
        try:
            # wave 1
            pool.submit(Job("w1-a", "pattern", "a*b").to_task(0))
            pool.submit(Job("w1-b", "pattern", "a&b").to_task(1))
            first = pump_until(pool, 2)
            by_name = {r.name: r for r in first}
            assert by_name["w1-a"].status == "sat"
            assert by_name["w1-b"].status == "unsat"
            # wave 2 on the SAME fleet — workers persisted
            pids_before = set(pool.worker_pids())
            pool.submit(Job("w2-a", "pattern", "(ab){2,4}c").to_task(2))
            second = pump_until(pool, 1)
            assert second[0].status == "sat"
            assert set(pool.worker_pids()) == pids_before
        finally:
            pool.stop()

    def test_take_completed_empties_and_sorts(self):
        pool = WorkerPool(workers=1, **BUDGET)
        pool.start()
        try:
            for i in range(3):
                pool.submit(Job("j%d" % i, "pattern", "a|b").to_task(i))
            results = pump_until(pool, 3)
            assert [r.index for r in results] == sorted(
                r.index for r in results
            )
            assert pool.take_completed() == []
        finally:
            pool.stop()

    def test_degraded_tasks_wait_for_normal_ones(self):
        pool = WorkerPool(workers=1, **BUDGET)
        pool.start()
        try:
            # keep the single worker busy so queues stay inspectable
            pool.submit(Job("busy", "pattern", "(a|b)*abb").to_task(0))
            while pool.inflight == 0:
                if not pool.pump():
                    time.sleep(_POLL)
            pool.submit(Job("deg", "pattern", "a*b").to_task(1),
                        degraded=True)
            pool.submit(Job("norm", "pattern", "a|b").to_task(2))
            assert pool.queued == 2
            # the next dispatched task must be the normal one
            worker = pool._fleet[0]
            task = pool._next_task(worker)
            assert task["name"] == "norm"
            task2 = pool._next_task(worker)
            assert task2["name"] == "deg"
            # put them back so shutdown accounting stays clean
            pool._pending.appendleft(task2)
            pool._pending.appendleft(task)
            pump_until(pool, 3)
        finally:
            pool.stop()

    def test_backlog_properties_track_queue_and_inflight(self):
        pool = WorkerPool(workers=1, **BUDGET)
        pool.start()
        try:
            assert pool.queued == 0 and pool.inflight == 0
            pool.submit(Job("a", "pattern", "(a|b)*abb").to_task(0))
            pool.submit(Job("b", "pattern", "a*b").to_task(1))
            assert pool.backlog == 2
            pump_until(pool, 2)
            assert pool.backlog == 0
        finally:
            pool.stop()

    def test_submit_before_start_raises(self):
        pool = WorkerPool(workers=1, **BUDGET)
        with pytest.raises(RuntimeError):
            pool.submit(Job("x", "pattern", "a").to_task(0))

    def test_double_start_raises(self):
        pool = WorkerPool(workers=1, **BUDGET)
        pool.start()
        try:
            with pytest.raises(RuntimeError):
                pool.start()
        finally:
            pool.stop()

    def test_kill_leaves_no_live_workers(self):
        pool = WorkerPool(workers=2, **BUDGET)
        pool.start()
        pids = pool.worker_pids()
        assert len(pids) == 2
        pool.kill()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert not alive

    def test_restart_after_stop(self):
        pool = WorkerPool(workers=1, **BUDGET)
        pool.start()
        pool.submit(Job("one", "pattern", "a|b").to_task(0))
        pump_until(pool, 1)
        pool.stop()
        # a stopped pool can fly again (the daemon never does this,
        # but the batch driver reuses pool objects)
        pool.start()
        try:
            pool.submit(Job("two", "pattern", "a&b").to_task(0))
            results = pump_until(pool, 1)
            assert results[0].status == "unsat"
        finally:
            pool.stop()


def _pid_alive(pid):
    import os

    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True


class TestBatchEdgeCases:
    def test_empty_batch_returns_empty_report_without_spawning(self):
        import multiprocessing

        before = len(multiprocessing.active_children())
        report = solve_batch([], workers=4, **BUDGET)
        assert report.results == []
        assert report.wall_s == 0.0
        assert report.workers == 4
        assert report.counts == {
            "sat": 0, "unsat": 0, "unknown": 0, "error": 0,
        }
        assert len(multiprocessing.active_children()) == before

    def test_duplicate_job_names_raise_value_error(self):
        jobs = [
            Job("same", "pattern", "a"),
            Job("other", "pattern", "b"),
            Job("same", "pattern", "c"),
        ]
        with pytest.raises(ValueError, match="same"):
            solve_batch(jobs, workers=1, **BUDGET)

    def test_multiple_duplicates_all_reported(self):
        jobs = [
            Job("x", "pattern", "a"), Job("x", "pattern", "b"),
            Job("y", "pattern", "c"), Job("y", "pattern", "d"),
        ]
        with pytest.raises(ValueError) as excinfo:
            solve_batch(jobs, workers=1, **BUDGET)
        assert "x" in str(excinfo.value) and "y" in str(excinfo.value)

    def test_duplicate_check_runs_before_any_spawn(self):
        import multiprocessing

        before = len(multiprocessing.active_children())
        with pytest.raises(ValueError):
            solve_batch(
                [Job("d", "pattern", "a"), Job("d", "pattern", "a")],
                workers=2, **BUDGET,
            )
        assert len(multiprocessing.active_children()) == before
