"""Online monitoring: exact three-valued verdicts."""

from hypothesis import given, settings

from repro.matcher.monitor import (
    FAILED, MATCHING, Monitor, PENDING, monitor_stream,
)
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes, short_strings


def test_verdict_trace(bitset_builder):
    b = bitset_builder
    # "starts ab, then anything without 00"
    r = parse(b, "ab.*&~(.*00.*)")
    trace = monitor_stream(b, r, "ab0a0")
    assert trace == [PENDING, PENDING, MATCHING, MATCHING, MATCHING, MATCHING]


def test_failure_is_detected_and_sticky(bitset_builder):
    b = bitset_builder
    r = parse(b, "ab.*")
    monitor = Monitor(b, r)
    assert monitor.feed("b") == FAILED     # no extension of "b" matches
    assert monitor.feed("a") == FAILED     # sticky
    assert monitor.is_definitive()


def test_failure_through_forbidden_factor(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a|b)*&~(.*ab.*)")
    monitor = Monitor(b, r)
    monitor.feed_all("ba")
    assert monitor.verdict() == MATCHING
    monitor.feed("b")                      # created the factor "ab"
    assert monitor.verdict() == FAILED


def test_matching_vs_pending(bitset_builder):
    b = bitset_builder
    r = parse(b, "(ab)+")
    monitor = Monitor(b, r)
    assert monitor.verdict() == PENDING
    assert monitor.feed("a") == PENDING
    assert monitor.feed("b") == MATCHING
    assert monitor.feed("a") == PENDING


def test_reset(bitset_builder):
    b = bitset_builder
    monitor = Monitor(b, parse(b, "ab"))
    monitor.feed_all("ab")
    assert monitor.verdict() == MATCHING
    monitor.reset()
    assert monitor.verdict() == PENDING
    assert monitor.consumed == 0


def test_exactness_against_oracle(bitset_builder):
    """The verdict equals the semantic truth for every prefix."""
    b = bitset_builder
    oracle = Matcher(b.algebra)
    shared = Monitor(b, b.full).solver  # share deadness knowledge

    @settings(max_examples=60, deadline=None)
    @given(extended_regexes(b, max_leaves=4), short_strings(4))
    def check(r, s):
        monitor = Monitor(b, r, solver=shared)
        for i, char in enumerate(s):
            verdict = monitor.feed(char)
            prefix = s[:i + 1]
            if verdict == MATCHING:
                assert oracle.matches(r, prefix)
            else:
                assert not oracle.matches(r, prefix)
            if verdict == FAILED:
                # no extension up to the horizon matches
                assert not any(
                    oracle.matches(r, prefix + ext)
                    for ext in enumerate_strings(ALPHABET, 2)
                )

    check()


def test_definitive_on_universal_residual(bitset_builder):
    b = bitset_builder
    monitor = Monitor(b, parse(b, "a.*"))
    monitor.feed("a")
    assert monitor.verdict() == MATCHING
    assert monitor.is_definitive()


def test_residual_exposed(bitset_builder):
    b = bitset_builder
    monitor = Monitor(b, parse(b, "ab|ab0"))
    monitor.feed("a")
    assert monitor.residual() is parse(b, "b|b0")
