"""The SRM-style matcher: against Python's re and the oracle."""

import re as pyre

import pytest
from hypothesis import given, settings

from repro.matcher import LazyDfa, RegexMatcher, compile_pattern
from repro.regex import parse
from repro.regex.semantics import Matcher as Oracle
from tests.strategies import extended_regexes, short_strings

STANDARD = ["a*b", "(ab)+", "a|b0", "[ab]{2,3}", "0(a|b)*1"]
TEXTS = ["", "ab", "aab", "ba0ab1", "0ab1ab", "bbbb", "a0b1a0"]


@pytest.mark.parametrize("pattern", STANDARD)
def test_fullmatch_vs_python_re(bitset_builder, pattern):
    matcher = compile_pattern(bitset_builder, pattern)
    compiled = pyre.compile(pattern)
    for text in TEXTS:
        assert matcher.fullmatch(text) == bool(compiled.fullmatch(text))


@pytest.mark.parametrize("pattern", STANDARD)
def test_search_span_vs_python_re(bitset_builder, pattern):
    matcher = compile_pattern(bitset_builder, pattern)
    compiled = pyre.compile(pattern)
    for text in TEXTS:
        ours = matcher.search(text)
        theirs = compiled.search(text)
        if theirs is None:
            assert ours is None
        else:
            assert ours is not None
            # leftmost start agrees; our end is the *earliest* closing
            # position, Python's is leftmost-longest-ish (greedy), so
            # compare starts exactly and check our span really matches
            assert ours.start == theirs.start()
            assert compiled.fullmatch(text, ours.start, ours.end)


def test_fullmatch_random_vs_oracle(bitset_builder):
    oracle = Oracle(bitset_builder.algebra)
    dfa = LazyDfa(bitset_builder)

    @settings(max_examples=120, deadline=None)
    @given(extended_regexes(bitset_builder), short_strings(5))
    def check(r, s):
        matcher = RegexMatcher(bitset_builder, r, dfa)
        assert matcher.fullmatch(s) == oracle.matches(r, s)

    check()


def test_extended_operators_match(bitset_builder):
    # substrings with a digit but no "01": find them in a noisy text
    matcher = compile_pattern(bitset_builder, r"(0|1)+&~(.*01.*)")
    match = matcher.search("ab0110b")
    assert match is not None
    assert match.group() == "0"
    assert matcher.fullmatch("110")
    assert not matcher.fullmatch("011")


def test_finditer_nonoverlapping(bitset_builder):
    matcher = compile_pattern(bitset_builder, "ab")
    assert matcher.findall("abab0ab") == ["ab", "ab", "ab"]
    assert matcher.count("abab0ab") == 3


def test_finditer_empty_match_progress(bitset_builder):
    matcher = compile_pattern(bitset_builder, "a*")
    # nullable pattern: one (possibly empty) match per position, scan
    # must terminate
    matches = list(matcher.finditer("ba"))
    assert matches
    assert all(m.end <= 2 for m in matches)


def test_search_no_match(bitset_builder):
    matcher = compile_pattern(bitset_builder, "000")
    assert matcher.search("ababab") is None
    assert not matcher.is_match("ababab")


def test_match_repr_and_span(bitset_builder):
    matcher = compile_pattern(bitset_builder, "b+")
    match = matcher.search("abba")
    assert match.span() == (1, 2)  # leftmost start, shortest end
    assert "group='b'" in repr(match)


class TestLeftmostConvention:
    """Regression (tests/corpus/search-leftmost-union-restart): the
    union-of-restarts scan finds the earliest *end* over all starts,
    which can belong to a later start than the leftmost one.  search()
    must honour the documented leftmost-shortest convention."""

    def test_earlier_start_beats_earlier_end(self, bitset_builder):
        matcher = compile_pattern(bitset_builder, "ab1|b")
        match = matcher.search("ab1")
        assert match.span() == (0, 3)
        assert match.group() == "ab1"

    def test_shortest_among_leftmost(self, bitset_builder):
        matcher = compile_pattern(bitset_builder, "a|ab")
        assert matcher.search("ab").span() == (0, 1)

    def test_empty_match_at_leftmost_position(self, bitset_builder):
        matcher = compile_pattern(bitset_builder, "b*")
        assert matcher.search("ab").span() == (0, 0)

    def test_start_offset_respected(self, bitset_builder):
        matcher = compile_pattern(bitset_builder, "ab1|b")
        assert matcher.search("ab1ab1", 1).span() == (1, 2)
        assert matcher.search("ab1ab1", 3).span() == (3, 6)

    def test_start_vs_python_re_on_overlapping_alternatives(
        self, bitset_builder
    ):
        for pattern in ["ab1|b", "a|ba", "(ab)+|b+", "0|01|011"]:
            ours = compile_pattern(bitset_builder, pattern)
            theirs = pyre.compile(pattern)
            for text in TEXTS + ["ab1", "bab1", "011011"]:
                got = ours.search(text)
                want = theirs.search(text)
                assert (got is None) == (want is None), (pattern, text)
                if got is not None:
                    assert got.start == want.start(), (pattern, text)

    def test_finditer_with_leftmost_semantics(self, bitset_builder):
        matcher = compile_pattern(bitset_builder, "ab1|b")
        assert matcher.findall("ab1b") == ["ab1", "b"]


def test_dfa_cache_shared_and_reused(bitset_builder):
    dfa = LazyDfa(bitset_builder)
    m1 = RegexMatcher(bitset_builder, parse(bitset_builder, "(ab)*"), dfa)
    m1.fullmatch("abab")
    built = dfa.states_built
    m2 = RegexMatcher(bitset_builder, parse(bitset_builder, "(ab)*"), dfa)
    m2.fullmatch("ababab")
    assert dfa.states_built == built  # rows were cached


def test_dfa_rows_partition(bitset_builder):
    dfa = LazyDfa(bitset_builder)
    r = parse(bitset_builder, "(a|b)*0&~(.*1)")
    algebra = bitset_builder.algebra
    union = algebra.bot
    for guard, _ in dfa.row(r):
        assert not algebra.is_sat(algebra.conj(union, guard))
        union = algebra.disj(union, guard)
    assert algebra.is_valid(union)
