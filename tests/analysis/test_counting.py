"""Language counting and sampling, verified against brute-force
enumeration and the membership oracle."""

import random

import pytest
from hypothesis import given, settings

from repro.analysis import LanguageCounter
from repro.errors import AlgebraError
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes


@pytest.fixture
def counter(bitset_builder):
    return LanguageCounter(bitset_builder)


def brute_count(matcher, regex, length):
    return sum(
        1 for s in enumerate_strings(ALPHABET, length)
        if len(s) == length and matcher.matches(regex, s)
    )


def test_counts_match_enumeration_random(bitset_builder):
    counter = LanguageCounter(bitset_builder)
    matcher = Matcher(bitset_builder.algebra)

    @settings(max_examples=80, deadline=None)
    @given(extended_regexes(bitset_builder, max_leaves=4))
    def check(r):
        for n in range(4):
            assert counter.count(r, n) == brute_count(matcher, r, n)

    check()


def test_known_counts(counter, bitset_builder):
    b = bitset_builder
    assert counter.count(parse(b, "(a|b){3}"), 3) == 8
    assert counter.count(parse(b, "(a|b){3}"), 2) == 0
    assert counter.count(b.full, 2) == len(ALPHABET) ** 2
    assert counter.count(parse(b, ".*01.*"), 2) == 1
    # complement counting: everything except the 1 string "01"
    assert counter.count(parse(b, "~(.*01.*)"), 2) == len(ALPHABET) ** 2 - 1


def test_count_up_to(counter, bitset_builder):
    r = parse(bitset_builder, "a{1,3}")
    assert counter.count_up_to(r, 5) == 3


def test_symbolic_counting_over_bmp(bmp_builder):
    """Counting uses predicate cardinalities, not enumeration: a
    password-policy count over the full BMP finishes instantly."""
    counter = LanguageCounter(bmp_builder)
    policy = parse(bmp_builder, r"(.*\d.*)&.{4}")
    total = counter.count(policy, 4)
    # strings of length 4 with >= 1 digit = 65536^4 - (65536-60)^4
    digits = 60  # our \d table has 60 codepoints
    expected = 0x10000 ** 4 - (0x10000 - digits) ** 4
    assert total == expected


def test_is_finite(counter, bitset_builder):
    b = bitset_builder
    assert counter.is_finite(parse(b, "a{1,9}|b{2}"))
    assert counter.is_finite(b.empty)
    assert counter.is_finite(b.epsilon)
    assert not counter.is_finite(parse(b, "a*"))
    assert not counter.is_finite(parse(b, "~(ab)"))
    assert not counter.is_finite(parse(b, "(ab)*&~(())"))


def test_sampling_members_valid(counter, bitset_builder, bitset_matcher):
    r = parse(bitset_builder, "(.*0.*)&~(.*01.*)")
    rng = random.Random(7)
    for _ in range(20):
        s = counter.sample(r, 4, rng)
        assert len(s) == 4
        assert bitset_matcher.matches(r, s)


def test_sampling_is_roughly_uniform(counter, bitset_builder):
    r = parse(bitset_builder, "(a|b){2}")
    rng = random.Random(42)
    draws = [counter.sample(r, 2, rng) for _ in range(400)]
    frequencies = {s: draws.count(s) for s in set(draws)}
    assert set(frequencies) == {"aa", "ab", "ba", "bb"}
    assert all(60 <= freq <= 140 for freq in frequencies.values())


def test_sample_empty_length_raises(counter, bitset_builder):
    with pytest.raises(AlgebraError):
        counter.sample(parse(bitset_builder, "a{2}"), 3)


def test_sample_many_skips_empty_lengths(counter, bitset_builder):
    r = parse(bitset_builder, "(ab)+")
    out = counter.sample_many(r, range(6), per_length=2)
    assert out == ["ab", "ab", "abab", "abab"]


def test_bmp_sampling(bmp_builder):
    counter = LanguageCounter(bmp_builder)
    matcher = Matcher(bmp_builder.algebra)
    r = parse(bmp_builder, r"\w{3}&~(\d.*)")
    rng = random.Random(3)
    for _ in range(5):
        s = counter.sample(r, 3, rng)
        assert matcher.matches(r, s)
