"""Length analysis: structural bounds and exact DFA-based values."""

from hypothesis import given, settings

from repro.analysis.lengths import (
    LengthAnalysis, NO_MEMBER, UNBOUNDED, structural_max, structural_min,
)
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes, standard_regexes

import pytest


@pytest.fixture
def analysis(bitset_builder):
    return LengthAnalysis(bitset_builder)


def brute_lengths(matcher, regex, horizon=5):
    lengths = [
        len(s) for s in enumerate_strings(ALPHABET, horizon)
        if matcher.matches(regex, s)
    ]
    return (min(lengths), max(lengths)) if lengths else (None, None)


class TestStructural:
    def test_exact_on_standard(self, bitset_builder):
        matcher = Matcher(bitset_builder.algebra)

        @settings(max_examples=120, deadline=None)
        @given(standard_regexes(bitset_builder))
        def check(r):
            lo, hi = brute_lengths(matcher, r)
            smin, smax = structural_min(r), structural_max(r)
            if lo is None:
                # nothing short exists; the bound must allow that
                assert smin is NO_MEMBER or smin > 0 or not r.nullable
                return
            assert smin == lo  # exact lower end on RE
            if smax is not UNBOUNDED:
                assert smax >= hi

        check()

    def test_bounds_safe_on_ere(self, bitset_builder):
        matcher = Matcher(bitset_builder.algebra)

        @settings(max_examples=120, deadline=None)
        @given(extended_regexes(bitset_builder))
        def check(r):
            lo, _ = brute_lengths(matcher, r)
            smin = structural_min(r)
            smax = structural_max(r)
            if lo is not None:
                assert smin is not NO_MEMBER and smin <= lo
                if smax is not UNBOUNDED and smax is not NO_MEMBER:
                    assert smax >= lo

        check()

    def test_known_values(self, bitset_builder):
        b = bitset_builder
        assert structural_min(parse(b, "a{3,7}b?")) == 3
        assert structural_max(parse(b, "a{3,7}b?")) == 8
        assert structural_min(b.empty) is NO_MEMBER
        assert structural_max(parse(b, "a*")) is UNBOUNDED
        assert structural_min(parse(b, "~(a*)")) == 1
        assert structural_min(parse(b, "~(ab)")) == 0
        assert structural_max(parse(b, "(a|b){2}&.{0,9}")) == 2


class TestExact:
    def test_exact_vs_enumeration(self, bitset_builder):
        analysis = LengthAnalysis(bitset_builder)
        matcher = Matcher(bitset_builder.algebra)

        @settings(max_examples=100, deadline=None)
        @given(extended_regexes(bitset_builder, max_leaves=4))
        def check(r):
            lo, hi = brute_lengths(matcher, r, horizon=4)
            exact_lo = analysis.min_length(r)
            exact_hi = analysis.max_length(r)
            if lo is None:
                assert exact_lo is NO_MEMBER or exact_lo > 4
            else:
                assert exact_lo == lo
                if exact_hi is not UNBOUNDED:
                    assert exact_hi >= hi

        check()

    def test_min_of_complement_tight(self, analysis, bitset_builder):
        # ~(.{0,2}) has minimum length 3 — the structural bound (1) is
        # loose, the exact analysis is not
        r = parse(bitset_builder, "~(.{0,2})")
        assert analysis.min_length(r) == 3

    def test_max_finite(self, analysis, bitset_builder):
        r = parse(bitset_builder, "(a|b){2,5}&~(.{4,})")
        assert analysis.max_length(r) == 3

    def test_max_unbounded(self, analysis, bitset_builder):
        assert analysis.max_length(parse(bitset_builder, "a+")) is UNBOUNDED

    def test_empty_language(self, analysis, bitset_builder):
        r = parse(bitset_builder, "a&b")
        assert analysis.min_length(r) is NO_MEMBER
        assert analysis.max_length(r) is NO_MEMBER

    def test_window(self, analysis, bitset_builder):
        r = parse(bitset_builder, "a{2,4}")
        assert analysis.length_window(r) == (2, 4)
