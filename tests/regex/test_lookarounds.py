"""First-class lookarounds and anchors (PR 10).

Covers the whole thread: parser (both readings of ``\\b``, specific
inline-flag errors), printer fixpoint, builder identities, positional
semantics differentially against ``re``, reverse duality, lookaround
elimination (exact language preservation), and solver verdicts — with
the typed-unknown degradation pinned for the shapes that have no sound
translation.
"""

import re
import sys

import pytest

from repro.errors import RegexSyntaxError, UnsupportedError
from repro.regex import RegexBuilder, parse, to_pattern
from repro.regex.ast import (
    EPSILON, LOOK_KINDS, LOOKAHEAD, LOOKBEHIND, NEG_LOOKAHEAD,
    NEG_LOOKBEHIND,
)
from repro.regex.semantics import Matcher, language_upto
from repro.regex.transform import eliminate_lookarounds, reverse
from repro.solver import RegexSolver

#: The seven surface constructs the issue names.
CONSTRUCTS = [
    r"(?=ab)a.", r"(?!ab)a.", r"a(?<=a)b", r"ab(?<!a)",
    r"^ab", r"ab$", r"a\b b",
]

ALPHABET = "ab 0"


@pytest.fixture
def builder(ascii_builder):
    return ascii_builder


# -- parser -----------------------------------------------------------------


def test_seven_constructs_parse(builder):
    for pattern in CONSTRUCTS:
        regex = parse(builder, pattern)
        assert regex.has_look


def test_backslash_b_in_class_is_backspace(builder):
    matcher = Matcher(builder.algebra)
    backspace_class = parse(builder, r"[\b]")
    assert not backspace_class.has_look
    assert matcher.matches(backspace_class, "\x08")
    assert not matcher.matches(backspace_class, "b")
    boundary = parse(builder, r"\b")
    assert boundary.has_look
    assert not matcher.matches(boundary, "\x08")


def test_backslash_B_is_negated_boundary(builder):
    matcher = Matcher(builder.algebra)
    regex = parse(builder, r"a\Bb")
    assert matcher.matches(regex, "ab")
    regex = parse(builder, r"a\B b")
    assert not matcher.matches(regex, "a b")


def test_lookbehind_negative_marker_consumed(builder):
    # regression: (?<! once leaked the '!' into the body
    regex = parse(builder, r"a(?<!b)c")
    printed = to_pattern(regex, builder.algebra)
    assert "!!" not in printed
    assert parse(builder, printed) is regex


def test_inline_flag_groups_get_specific_errors(builder):
    with pytest.raises(RegexSyntaxError) as exc:
        parse(builder, "a(?i)b")
    assert "leading (?i)" in str(exc.value)
    assert exc.value.position == 1
    with pytest.raises(RegexSyntaxError) as exc:
        parse(builder, "(?s:ab)")
    assert "scoped inline flags" in str(exc.value)
    assert exc.value.position == 0
    with pytest.raises(RegexSyntaxError) as exc:
        parse(builder, "x(?i-s:y)")
    assert "scoped inline flags" in str(exc.value)
    assert exc.value.position == 1
    with pytest.raises(RegexSyntaxError) as exc:
        parse(builder, "(?im)x")
    assert "(?im)" in str(exc.value)


def test_unterminated_lookaround_errors(builder):
    for bad in ["(?=a", "(?!a", "(?<=a", "(?<!a"]:
        with pytest.raises(RegexSyntaxError):
            parse(builder, bad)


# -- printer ----------------------------------------------------------------


def test_print_parse_print_fixpoint(builder):
    for pattern in CONSTRUCTS + [
        r"(?=a*b)a+", r"(?:(?!aa).)*", r"^(?=.*a)(?=.*b).{2,4}$",
        r"\ba\b", r"\Ba", r"\Aab\Z",
    ]:
        regex = parse(builder, pattern)
        printed = to_pattern(regex, builder.algebra)
        reparsed = parse(builder, printed)
        assert reparsed is regex
        assert to_pattern(reparsed, builder.algebra) == printed


# -- builder identities -----------------------------------------------------


def test_nullable_body_collapses(builder):
    a = builder.char("a")
    assert builder.lookahead(builder.star(a)) is builder.epsilon
    assert builder.neg_lookahead(builder.star(a)) is builder.empty
    assert builder.lookbehind(builder.epsilon) is builder.epsilon


def test_empty_body_collapses(builder):
    assert builder.lookahead(builder.empty) is builder.empty
    assert builder.neg_lookahead(builder.empty) is builder.epsilon


def test_assertion_of_assertion_collapses(builder):
    a = builder.char("a")
    inner = builder.neg_lookahead(a)
    assert builder.lookahead(inner) is inner
    # double negation flips polarity; the body's direction wins
    assert builder.neg_lookahead(inner) is builder.lookahead(a)
    assert builder.neg_lookbehind(inner) is builder.lookahead(a)


def test_opt_of_assertion_is_epsilon(builder):
    # (?!a)? may always take the skip branch
    a = builder.char("a")
    assert builder.opt(builder.neg_lookahead(a)) is builder.epsilon
    assert builder.star(builder.lookahead(a)) is builder.epsilon
    # {1,n} over an assertion re-checks the same position: one check
    assert builder.loop(builder.lookahead(a), 1, 3) is builder.lookahead(a)


def test_nullable_bit_is_empty_string_membership(builder):
    # the stored bit answers '"" in L(R)' exactly, under fullmatch
    matcher = Matcher(builder.algebra)
    for pattern in [r"(?=a)", r"(?!a)", r"(?<=a)", r"(?<!a)",
                    r"^$", r"\b", r"\B", r"(?!a)b?"]:
        regex = parse(builder, pattern)
        assert regex.nullable == matcher.matches(regex, "")


# -- positional semantics vs re ---------------------------------------------


DIFFERENTIAL = CONSTRUCTS + [
    r"(?=a*b)a+", r"(?!.*aa)[ab]{1,3}", r"(?:(?!aa).)*",
    r"^(?=.*a)(?=.*b).{2,4}$", r"^(?!.*b ).*$",
    r"\ba\b", r"\bab\b a", r"\Ba", r"a\B", r"\Aab\Z",
    r".*\bab\b.*", r"a$|^b", r"(?<=a)b|c(?<!0)",
    r"(?=(?=a).)ab", r"(?<=(?<=a)b)c",
]


def _texts():
    out = [""]
    for a in ALPHABET:
        out.append(a)
        for b in ALPHABET:
            out.append(a + b)
            for c in ALPHABET:
                out.append(a + b + c)
                out.append(a + b + c + a)
    return out


def test_fullmatch_agrees_with_re(builder):
    matcher = Matcher(builder.algebra)
    for pattern in DIFFERENTIAL:
        compiled = re.compile(pattern)
        regex = parse(builder, pattern)
        skip_empty = "\\B" in pattern and sys.version_info < (3, 12)
        for text in _texts():
            if skip_empty and text == "":
                continue
            assert matcher.matches(regex, text) == (
                compiled.fullmatch(text) is not None
            ), (pattern, text)


def test_search_agrees_with_re_on_existence_and_start(builder):
    matcher = Matcher(builder.algebra)
    for pattern in DIFFERENTIAL:
        compiled = re.compile(pattern)
        regex = parse(builder, pattern)
        skip_empty = "\\B" in pattern and sys.version_info < (3, 12)
        for text in _texts():
            if skip_empty and text == "":
                continue
            hit = compiled.search(text)
            span = matcher.search(regex, text)
            assert (hit is None) == (span is None), (pattern, text)
            if hit is not None:
                assert hit.start() == span[0], (pattern, text)


# -- reverse duality --------------------------------------------------------


def test_reverse_swaps_assertion_direction(builder):
    a = builder.char("a")
    assert reverse(builder, builder.lookahead(a)).kind == LOOKBEHIND
    assert reverse(builder, builder.neg_lookahead(a)).kind == NEG_LOOKBEHIND
    assert reverse(builder, builder.lookbehind(a)).kind == LOOKAHEAD
    assert reverse(builder, builder.neg_lookbehind(a)).kind == NEG_LOOKAHEAD


def test_reverse_is_involution_and_reverses_language(builder):
    for pattern in DIFFERENTIAL:
        regex = parse(builder, pattern)
        rev = reverse(builder, regex)
        assert reverse(builder, rev) is regex
        fwd = language_upto(builder.algebra, regex, "ab 0", 4)
        bwd = language_upto(builder.algebra, rev, "ab 0", 4)
        assert bwd == {s[::-1] for s in fwd}, pattern


# -- elimination ------------------------------------------------------------


#: Patterns with a multi-character assertion inside a loop body — the
#: continuation translation has no rule for them (and the width-1
#: adjacency pass cannot bite a two-character body).
NOT_ELIMINABLE = {r"(?:(?!aa).)*"}


def test_elimination_preserves_fullmatch_language(builder):
    for pattern in DIFFERENTIAL:
        if pattern in NOT_ELIMINABLE:
            continue
        regex = parse(builder, pattern)
        plain = eliminate_lookarounds(builder, regex)
        assert plain is not None, pattern
        assert not plain.has_look
        assert language_upto(builder.algebra, plain, "ab 0", 4) == \
            language_upto(builder.algebra, regex, "ab 0", 4), pattern


def test_elimination_gives_up_on_loop_body_assertions(builder):
    # a lookahead inside a loop body has no continuation rule when the
    # body is not otherwise resolvable; None, never a wrong answer
    regex = parse(builder, r"(?:(?!aa)[ab]){4}")
    assert eliminate_lookarounds(builder, regex) is None


# -- solver verdicts --------------------------------------------------------


def _verdict(builder, pattern):
    solver = RegexSolver(builder)
    return solver.is_satisfiable(parse(builder, pattern))


def test_solver_sat_with_checked_witness(builder):
    matcher = Matcher(builder.algebra)
    for pattern in [r"\ba\b", r"^(?=.*a)(?=.*b).{2,4}$", r".*\bab\b.*",
                    r"(?=a*b)a*b", r"a(?<=a)b"]:
        regex = parse(builder, pattern)
        result = _verdict(builder, pattern)
        assert result.is_sat, pattern
        assert result.witness is not None
        assert matcher.matches(regex, result.witness), pattern


def test_solver_unsat_on_contradictory_assertions(builder):
    for pattern in [r"^\Ba", r"^(?=b)a.*$", r"^[ab]+(?<=0)$",
                    r"a\bb", r"(?=a*b)a+"]:
        result = _verdict(builder, pattern)
        assert result.is_unsat, pattern


def test_solver_unknown_not_wrong_when_not_eliminable(builder):
    # sat pattern the eliminator cannot translate: typed unknown with
    # the documented reason — never a wrong unsat
    result = _verdict(builder, r"(?:(?!aa)[ab]){4}")
    assert not result.is_sat and not result.is_unsat
    assert "lookaround" in (result.reason or "")


def test_membership_routes_assertions_to_positional_matcher(builder):
    solver = RegexSolver(builder)
    regex = parse(builder, r"\ba\b")
    assert solver.membership("a", regex)
    assert not solver.membership("ab", regex)


def test_derivative_passes_degrade_typed(builder):
    # passes with no sound assertion rule must raise the typed error,
    # which solver callers convert to unknown
    from repro.derivatives.brzozowski import brzozowski

    regex = parse(builder, r"(?=a)a")
    with pytest.raises(UnsupportedError):
        brzozowski(builder, regex, "a")
