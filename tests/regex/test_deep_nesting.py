"""Regression tests: deeply nested groups must never escape as an
uncaught :class:`RecursionError` (they used to kill the parser at
~150 levels of nesting)."""

import sys

import pytest

from repro.errors import RegexSyntaxError
from repro.regex import parse
from repro.regex.parser import _MAX_RECURSION_LIMIT
from repro.regex.printer import to_pattern


def nested(depth, core="a"):
    return "(" * depth + core + ")" * depth


class TestDeepNesting:
    def test_600_deep_group_parses(self, ascii_builder):
        b = ascii_builder
        assert parse(b, nested(600)) is b.char("a")

    def test_5000_deep_group_parses(self, ascii_builder):
        b = ascii_builder
        assert parse(b, nested(5000)) is b.char("a")

    def test_deep_nesting_with_operators(self, ascii_builder):
        b = ascii_builder
        r = parse(b, nested(600, "a|b*"))
        assert r is b.union([b.char("a"), b.star(b.char("b"))])

    def test_absurd_nesting_is_a_typed_error(self, ascii_builder):
        # beyond the recursion-limit ceiling the parser must reject the
        # input with a structured error, not an interpreter crash
        depth = _MAX_RECURSION_LIMIT // 2
        with pytest.raises(RegexSyntaxError, match="nesting too deep"):
            parse(ascii_builder, nested(depth))

    def test_recursion_limit_restored(self, ascii_builder):
        before = sys.getrecursionlimit()
        parse(ascii_builder, nested(600))
        assert sys.getrecursionlimit() == before
        with pytest.raises(RegexSyntaxError):
            parse(ascii_builder, nested(_MAX_RECURSION_LIMIT // 2))
        assert sys.getrecursionlimit() == before

    def test_unbalanced_deep_nesting_reports_position(self, ascii_builder):
        with pytest.raises(RegexSyntaxError) as info:
            parse(ascii_builder, "(" * 600 + "a" + ")" * 599)
        assert "nesting too deep" not in str(info.value)


def alternating(depth):
    """A deep pattern whose AST does NOT collapse: ``a(b|a(b|...))``.

    Unlike :func:`nested`, every level survives canonicalization, so
    the resulting regex really is ``2*depth`` nodes tall — the input
    that used to crash every recursive structural pass."""
    return "a(b|" * depth + "a" + ")" * depth


class TestDeepStructuralPasses:
    """The frozen crash cluster (tests/corpus/print-deep-nesting-*):
    printing, SMT-LIB serialization, length bounds and simplification
    recursed over the AST and died on deep non-collapsing regexes —
    with ``RecursionError``, or a hard interpreter fault once the
    recursion limit was raised past the C stack.  All four are now
    iterative folds; none may touch the recursion limit."""

    DEPTH = 4000

    @pytest.fixture(scope="class")
    def deep(self, request):
        from repro.alphabet import IntervalAlgebra
        from repro.regex import RegexBuilder

        builder = RegexBuilder(IntervalAlgebra(127))
        return builder, parse(builder, alternating(self.DEPTH))

    def test_print_roundtrip(self, deep):
        builder, regex = deep
        before = sys.getrecursionlimit()
        text = to_pattern(regex, builder.algebra)
        assert parse(builder, text) is regex
        assert sys.getrecursionlimit() == before

    def test_smtlib_serialization(self, deep):
        from repro.smtlib.writer import regex_to_smtlib

        builder, regex = deep
        term = regex_to_smtlib(regex, builder.algebra)
        assert term.startswith("(re.++")

    def test_structural_bounds(self, deep):
        from repro.analysis.lengths import structural_max, structural_min

        builder, regex = deep
        assert structural_min(regex) == 2
        assert structural_max(regex) == self.DEPTH + 1

    def test_simplify(self, deep):
        from repro.regex.simplify import simplify_fixpoint

        builder, regex = deep
        assert simplify_fixpoint(builder, regex) is regex

    def test_depth_is_iterative_too(self, deep):
        _, regex = deep
        assert regex.depth() == 2 * self.DEPTH

    def test_fold_postorder_memoizes_shared_subterms(self, ascii_builder):
        from repro.regex.ast import fold_postorder

        b = ascii_builder
        # a DAG with exponential tree size: each level references the
        # previous one twice through distinct wrappers
        node = b.char("a")
        for _ in range(60):
            node = b.union([
                b.concat([node, b.char("a")]),
                b.concat([node, b.char("b")]),
            ])
        calls = []
        total = fold_postorder(
            node,
            lambda n, kids: calls.append(n.uid) or (1 + sum(kids)),
        )
        # linearly many fn calls despite the 2^60-node tree reading
        assert len(calls) <= 500
        assert total > 2 ** 60


class TestQuantifiedLoopRoundTrip:
    """The printer used to emit ``a{1,2}?`` for ``(a{1,2})?``, which
    re-parsed with the ``?`` swallowed as a lazy-quantifier marker."""

    def test_opt_of_bounded_loop(self, ascii_builder):
        b = ascii_builder
        r = b.opt(b.loop(b.char("a"), 1, 2))
        pattern = to_pattern(r, b.algebra)
        assert pattern == "(a{1,2})?"
        assert parse(b, pattern) is r

    def test_star_of_plus(self, ascii_builder):
        b = ascii_builder
        r = b.loop(b.loop(b.char("a"), 2, 3), 2, 3)
        pattern = to_pattern(r, b.algebra)
        assert parse(b, pattern) is r
