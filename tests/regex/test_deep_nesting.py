"""Regression tests: deeply nested groups must never escape as an
uncaught :class:`RecursionError` (they used to kill the parser at
~150 levels of nesting)."""

import sys

import pytest

from repro.errors import RegexSyntaxError
from repro.regex import parse
from repro.regex.parser import _MAX_RECURSION_LIMIT
from repro.regex.printer import to_pattern


def nested(depth, core="a"):
    return "(" * depth + core + ")" * depth


class TestDeepNesting:
    def test_600_deep_group_parses(self, ascii_builder):
        b = ascii_builder
        assert parse(b, nested(600)) is b.char("a")

    def test_5000_deep_group_parses(self, ascii_builder):
        b = ascii_builder
        assert parse(b, nested(5000)) is b.char("a")

    def test_deep_nesting_with_operators(self, ascii_builder):
        b = ascii_builder
        r = parse(b, nested(600, "a|b*"))
        assert r is b.union([b.char("a"), b.star(b.char("b"))])

    def test_absurd_nesting_is_a_typed_error(self, ascii_builder):
        # beyond the recursion-limit ceiling the parser must reject the
        # input with a structured error, not an interpreter crash
        depth = _MAX_RECURSION_LIMIT // 2
        with pytest.raises(RegexSyntaxError, match="nesting too deep"):
            parse(ascii_builder, nested(depth))

    def test_recursion_limit_restored(self, ascii_builder):
        before = sys.getrecursionlimit()
        parse(ascii_builder, nested(600))
        assert sys.getrecursionlimit() == before
        with pytest.raises(RegexSyntaxError):
            parse(ascii_builder, nested(_MAX_RECURSION_LIMIT // 2))
        assert sys.getrecursionlimit() == before

    def test_unbalanced_deep_nesting_reports_position(self, ascii_builder):
        with pytest.raises(RegexSyntaxError) as info:
            parse(ascii_builder, "(" * 600 + "a" + ")" * 599)
        assert "nesting too deep" not in str(info.value)


class TestQuantifiedLoopRoundTrip:
    """The printer used to emit ``a{1,2}?`` for ``(a{1,2})?``, which
    re-parsed with the ``?`` swallowed as a lazy-quantifier marker."""

    def test_opt_of_bounded_loop(self, ascii_builder):
        b = ascii_builder
        r = b.opt(b.loop(b.char("a"), 1, 2))
        pattern = to_pattern(r, b.algebra)
        assert pattern == "(a{1,2})?"
        assert parse(b, pattern) is r

    def test_star_of_plus(self, ascii_builder):
        b = ascii_builder
        r = b.loop(b.loop(b.char("a"), 2, 3), 2, 3)
        pattern = to_pattern(r, b.algebra)
        assert parse(b, pattern) is r
