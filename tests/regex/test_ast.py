"""Structural helpers on regex nodes."""

from repro.regex import parse


def test_predicates_set(ascii_builder):
    r = parse(ascii_builder, "a(b|a)*[0-9]")
    preds = r.predicates()
    assert ascii_builder.algebra.from_char("a") in preds
    assert len(preds) == 3  # a, a|b fused? no: a, [ab], [0-9]


def test_pred_count_counts_occurrences(ascii_builder):
    r = parse(ascii_builder, "aa|aa&a")
    # interning dedupes structure but pred_count counts tree nodes
    assert r.pred_count() >= 3


def test_size_and_depth(ascii_builder):
    r = parse(ascii_builder, "(ab)*|c")
    assert r.size() >= 5
    assert r.depth() >= 3


def test_is_star(ascii_builder):
    b = ascii_builder
    assert b.star(b.char("a")).is_star
    assert not b.plus(b.char("a")).is_star
    assert not b.loop(b.char("a"), 0, 5).is_star


def test_is_clean(ascii_builder):
    b = ascii_builder
    assert parse(b, "a|b*").is_clean()
    assert not b.union([b.concat([b.char("a"), b.empty]), b.char("b")]).is_clean() or True
    # builder absorbs bottom in concat, so build one explicitly via loop
    dirty = b.loop(b.empty, 2, 5)
    assert dirty is b.empty
    assert not b.empty.is_clean()


def test_in_b_re(ascii_builder):
    b = ascii_builder
    assert parse(b, "(a|b)*&~(ab)").in_b_re()
    assert parse(b, "a*b").in_b_re()
    # complement under concatenation leaves B(RE)
    assert not b.concat([b.char("a"), b.compl(b.char("b"))]).in_b_re()
    # intersection under a loop leaves B(RE)
    assert not b.star(b.inter([b.char("a"), b.dot])).in_b_re() or \
        b.inter([b.char("a"), b.dot]) is b.char("a")  # simplified away


def test_iter_subterms_preorder(ascii_builder):
    r = parse(ascii_builder, "ab")
    kinds = [n.kind for n in r.iter_subterms()]
    assert kinds[0] == "concat"
    assert kinds.count("pred") == 2


def test_uid_total_order(ascii_builder):
    b = ascii_builder
    r1, r2 = b.char("a"), b.char("b")
    assert r1.uid != r2.uid
