"""Printer → parser → printer is a fixpoint on the full fuzz grammar.

The warm store's canonical keys (:func:`repro.solver.store.
canonical_pattern`) are printed pattern texts, trusted only because
``parse(print(r)) is r`` on the interned AST — which makes
``print ∘ parse ∘ print`` trivially a text fixpoint.  These properties
pin that contract over every construct the fuzz grammars can produce
(Boolean operators, bounded loops, character classes, metacharacter
escapes) on both the bitset and the interval algebra; any mismatch is
a cache-key bug waiting to alias two different regexes.
"""

from hypothesis import given, settings, strategies as st

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse, to_pattern
from repro.solver.store import canonical_pattern
from tests.strategies import b_re_regexes, extended_regexes

#: Characters whose printed form exercises the escaping rules: regex
#: metacharacters, class metacharacters, whitespace escapes, and a
#: non-ASCII codepoint.
SPIKY = "ab01*+?|&~()[]{}.^$\\-\n\t☃"


def _spiky_regexes(builder, max_leaves=6):
    """EREs whose leaves include metacharacters and char classes that
    stress ``escape_char`` / ``render_charset``."""
    chars = st.sampled_from(SPIKY)
    leaves = st.one_of(
        st.just(builder.epsilon),
        st.just(builder.empty),
        st.just(builder.dot),
        chars.map(builder.char),
        st.sets(chars, min_size=1, max_size=4).map(
            lambda cs: builder.pred(builder.algebra.from_ranges(
                [(ord(c), ord(c)) for c in cs]
            ))
        ),
    )

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=2, max_size=3).map(builder.concat),
            st.lists(children, min_size=2, max_size=3).map(builder.union),
            st.lists(children, min_size=2, max_size=2).map(builder.inter),
            children.map(builder.compl),
            children.map(builder.star),
            st.tuples(children, st.integers(0, 2), st.integers(0, 2)).map(
                lambda t: builder.loop(t[0], t[1], t[1] + t[2])
            ),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def _assert_fixpoint(builder, regex):
    text = to_pattern(regex, builder.algebra)
    reparsed = parse(builder, text)
    assert reparsed is regex, (
        "parse(print(r)) is not r: %r reprints as %r" % (
            text, to_pattern(reparsed, builder.algebra),
        )
    )
    # identity on the AST makes the text fixpoint trivial — assert it
    # anyway so a future printer change cannot weaken the key contract
    assert to_pattern(reparsed, builder.algebra) == text
    key = canonical_pattern(builder, regex)
    assert key == text


def test_extended_grammar_roundtrips(bitset_builder):
    @settings(max_examples=300, deadline=None)
    @given(extended_regexes(bitset_builder, max_leaves=8))
    def check(regex):
        _assert_fixpoint(bitset_builder, regex)

    check()


def test_boolean_grammar_roundtrips(bitset_builder):
    @settings(max_examples=200, deadline=None)
    @given(b_re_regexes(bitset_builder))
    def check(regex):
        _assert_fixpoint(bitset_builder, regex)

    check()


def test_spiky_interval_grammar_roundtrips():
    builder = RegexBuilder(IntervalAlgebra())

    @settings(max_examples=300, deadline=None)
    @given(_spiky_regexes(builder))
    def check(regex):
        _assert_fixpoint(builder, regex)

    check()
