"""The simplification pass: identities and language preservation."""

from hypothesis import given, settings

from repro.regex import parse
from repro.regex.ast import INF, LOOP
from repro.regex.semantics import Matcher, enumerate_strings
from repro.regex.simplify import simplify, simplify_fixpoint
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_preserves_language_random(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=150, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        simplified = simplify_fixpoint(b, r)
        assert lang(matcher, simplified) == lang(matcher, r)
        assert simplified.size() <= r.size() + 2  # never blows up

    check()


def test_inter_subsumption(bitset_builder):
    b = bitset_builder
    x = parse(b, "(ab)*")
    y = parse(b, "0*")
    redundant = b.inter([x, b.union([x, y])])
    assert simplify(b, redundant) is x


def test_union_subsumption(bitset_builder):
    b = bitset_builder
    x = parse(b, "(ab)*")
    y = parse(b, "0+")
    redundant = b.union([x, b.inter([x, y])])
    assert simplify(b, redundant) is x


def test_loop_fusion_plain(bitset_builder):
    b = bitset_builder
    a = b.char("a")
    r = b.concat([a, a, a])
    simplified = simplify(b, r)
    assert simplified.kind == LOOP
    assert simplified.lo == simplified.hi == 3


def test_loop_fusion_r_rstar_is_plus(bitset_builder):
    b = bitset_builder
    a = b.char("a")
    r = b.concat([a, b.star(a)])
    assert simplify(b, r) is b.plus(a)


def test_loop_fusion_bounded(bitset_builder):
    b = bitset_builder
    a = b.char("a")
    r = b.concat([b.loop(a, 1, 2), b.loop(a, 3, 4)])
    assert simplify(b, r) is b.loop(a, 4, 6)


def test_fusion_does_not_cross_different_bodies(bitset_builder):
    b = bitset_builder
    r = parse(b, "a{2}b{2}")
    assert simplify(b, r) is r


def test_nested_simplification(bitset_builder):
    b = bitset_builder
    x = parse(b, "(ab)+")
    inner = b.union([x, b.inter([x, parse(b, "0")])])
    wrapped = b.star(b.compl(inner))
    simplified = simplify_fixpoint(b, wrapped)
    assert simplified is b.star(b.compl(x))


def test_fixpoint_terminates(bitset_builder):
    b = bitset_builder
    r = parse(b, "((a|b)*&~(.*ab.*))|(0+&~(00))")
    first = simplify_fixpoint(b, r)
    assert simplify_fixpoint(b, first) is first


def test_simplified_derivative_state_space_not_larger(bitset_builder):
    from repro.sbfa.sbfa import from_regex

    b = bitset_builder
    r = b.concat([b.char("a")] * 6)  # aaaaaa -> a{6}
    plain_states = from_regex(b, r).state_count
    fused_states = from_regex(b, simplify(b, r)).state_count
    assert fused_states <= plain_states
