"""Smart-constructor laws: the Section 4 regex algebra."""

import pytest

from repro.errors import AlgebraError
from repro.regex.ast import INF, PRED


class TestUnits:
    def test_full_absorbs_union(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.union([r, b.full]) is b.full

    def test_full_unit_of_inter(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.inter([r, b.full]) is r

    def test_empty_unit_of_union(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.union([r, b.empty]) is r

    def test_empty_absorbs_inter_and_concat(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.inter([r, b.empty]) is b.empty
        assert b.concat([r, b.empty, r]) is b.empty

    def test_epsilon_unit_of_concat(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.concat([b.epsilon, r, b.epsilon]) is r


class TestACI:
    def test_union_commutative_idempotent(self, bitset_builder):
        b = bitset_builder
        x, y = b.string("ab"), b.string("ba")
        assert b.union([x, y]) is b.union([y, x, y])

    def test_inter_commutative_idempotent(self, bitset_builder):
        b = bitset_builder
        x, y = b.string("ab"), b.star(b.char("a"))
        assert b.inter([x, y]) is b.inter([y, x, x])

    def test_union_flattens(self, bitset_builder):
        b = bitset_builder
        x, y, z = b.string("ab"), b.string("ba"), b.string("aa")
        nested = b.union([x, b.union([y, z])])
        flat = b.union([x, y, z])
        assert nested is flat

    def test_concat_flattens_not_commutative(self, bitset_builder):
        b = bitset_builder
        x, y = b.char("a"), b.char("b")
        assert b.concat([x, b.concat([y, x])]) is b.concat([x, y, x])
        assert b.concat([x, y]) is not b.concat([y, x])

    def test_pred_fusion_in_union(self, bitset_builder):
        b = bitset_builder
        fused = b.union([b.char("a"), b.char("b")])
        assert fused.kind == PRED
        assert fused is b.pred(b.algebra.from_chars("ab"))


class TestComplement:
    def test_double_complement(self, bitset_builder):
        b = bitset_builder
        r = b.string("ab")
        assert b.compl(b.compl(r)) is r

    def test_compl_of_empty_and_full(self, bitset_builder):
        b = bitset_builder
        assert b.compl(b.empty) is b.full
        assert b.compl(b.full) is b.empty

    def test_excluded_middle(self, bitset_builder):
        b = bitset_builder
        r = b.string("ab")
        assert b.union([r, b.compl(r)]) is b.full
        assert b.inter([r, b.compl(r)]) is b.empty

    def test_compl_nullability(self, bitset_builder):
        b = bitset_builder
        assert b.compl(b.string("ab")).nullable
        assert not b.compl(b.star(b.char("a"))).nullable


class TestLoops:
    def test_loop_1_1_collapses(self, bitset_builder):
        b = bitset_builder
        r = b.string("ab")
        assert b.loop(r, 1, 1) is r

    def test_loop_hi_zero_is_epsilon(self, bitset_builder):
        b = bitset_builder
        assert b.loop(b.char("a"), 0, 0) is b.epsilon

    def test_star_of_star(self, bitset_builder):
        b = bitset_builder
        s = b.star(b.char("a"))
        assert b.star(s) is s
        assert b.loop(s, 2, 7) is s

    def test_star_of_bounded_from_zero(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.star(b.loop(r, 0, 3)) is b.star(r)

    def test_opt_of_nullable_is_identity(self, bitset_builder):
        b = bitset_builder
        s = b.star(b.char("a"))
        assert b.opt(s) is s

    def test_loop_of_epsilon(self, bitset_builder):
        b = bitset_builder
        assert b.loop(b.epsilon, 3, 7) is b.epsilon

    def test_loop_of_empty(self, bitset_builder):
        b = bitset_builder
        assert b.loop(b.empty, 0, 5) is b.epsilon
        assert b.loop(b.empty, 2, 5) is b.empty

    def test_bad_bounds_raise(self, bitset_builder):
        b = bitset_builder
        with pytest.raises(AlgebraError):
            b.loop(b.char("a"), 3, 2)
        with pytest.raises(AlgebraError):
            b.loop(b.char("a"), -1, 2)

    def test_nullability(self, bitset_builder):
        b = bitset_builder
        r = b.char("a")
        assert b.loop(r, 0, 5).nullable
        assert not b.loop(r, 1, INF).nullable
        assert b.loop(b.opt(r), 3, 5).nullable


class TestInterning:
    def test_structural_sharing(self, bitset_builder):
        b = bitset_builder
        r1 = b.concat([b.char("a"), b.star(b.char("b"))])
        r2 = b.concat([b.char("a"), b.star(b.char("b"))])
        assert r1 is r2

    def test_unsat_pred_is_empty(self, bitset_builder):
        b = bitset_builder
        assert b.pred(b.algebra.bot) is b.empty

    def test_cross_builder_guard(self, bitset_builder, ascii_builder):
        r = ascii_builder.char("a")
        with pytest.raises(AlgebraError):
            bitset_builder.star(r)


def test_nullability_concat_union_inter(bitset_builder):
    b = bitset_builder
    a, astar = b.char("a"), b.star(b.char("a"))
    assert not b.concat([a, astar]).nullable
    assert b.concat([astar, astar]).nullable
    assert b.union([a, astar]).nullable
    assert not b.inter([a, astar]).nullable


def test_convenience_constructors(bitset_builder):
    b = bitset_builder
    assert b.seq(b.char("a"), b.char("b")) is b.string("ab")
    assert b.alt(b.string("ab"), b.string("ba")) is b.union(
        [b.string("ab"), b.string("ba")]
    )
    assert b.any_length(2, 4) is b.loop(b.dot, 2, 4)
    assert b.contains(b.char("a")) is b.concat([b.full, b.char("a"), b.full])
    assert b.diff(b.full, b.char("a")) is b.compl(b.char("a"))
