"""Regression tests for confirmed divergences from the ``re`` oracle.

Each class below documents one bug that the fuzz suite's oracle
(`re.fullmatch`) exposed: the old parser silently mis-read the pattern
(or the matcher crashed) where ``re`` has well-defined semantics.
These tests failed before the fixes and pin the corrected behaviour.
"""

import re

import pytest

from repro.alphabet.bitset import BitsetAlgebra
from repro.alphabet.intervals import IntervalAlgebra, UNICODE_MAX
from repro.errors import RegexSyntaxError
from repro.matcher.matcher import RegexMatcher
from repro.regex.builder import RegexBuilder
from repro.regex.parser import parse
from repro.regex.printer import to_pattern
from repro.regex.semantics import Matcher
from repro.solver.engine import RegexSolver


@pytest.fixture
def builder():
    return RegexBuilder(IntervalAlgebra())


@pytest.fixture
def oracle(builder):
    matcher = Matcher(builder.algebra)

    def check(pattern, string):
        ours = matcher.matches(parse(builder, pattern), string)
        theirs = re.fullmatch(pattern, string) is not None
        assert ours == theirs, (
            "divergence on %r vs %r: ours=%r re=%r"
            % (pattern, string, ours, theirs)
        )
        return ours

    return check


class TestLowerBoundShorthand:
    """``{,n}`` means ``{0,n}``, exactly as in ``re``."""

    def test_matches_repetitions(self, oracle):
        for s in ["", "a", "aa", "aaa", "aaaa", "a{,3}"]:
            oracle("a{,3}", s)

    def test_open_both_ends(self, oracle):
        for s in ["", "a", "aaaaaa"]:
            oracle("a{,}", s)

    def test_compound_body(self, oracle):
        for s in ["", "ab", "abab", "ababab"]:
            oracle("(?:ab){,2}", s)

    def test_literal_brace_forms_stay_literal(self, oracle):
        # no integer and no comma: still a literal brace sequence
        for pattern in ["a{x}", "a{", "a{}"]:
            oracle(pattern, pattern)

    def test_prints_with_explicit_zero(self, builder):
        assert to_pattern(parse(builder, "a{,3}"), builder.algebra) == "a{0,3}"


class TestUnsupportedEscapes:
    """Unknown escapes raise instead of silently dropping the backslash.

    The old behaviour parsed ``\\bfoo\\b`` as the literal ``bfoob`` and
    ``(a)\\1`` as ``a1`` — silently changing the language.
    """

    @pytest.mark.parametrize("pattern", [
        "(a)\\1", "\\z", "\\8", "\\99",
    ])
    def test_raises_unsupported_escape(self, builder, pattern):
        with pytest.raises(RegexSyntaxError, match="unsupported escape"):
            parse(builder, pattern)

    @pytest.mark.parametrize("pattern", [
        "\\bfoo\\b", "\\B", "\\A", "\\Z",
    ])
    def test_anchor_escapes_now_parse(self, builder, pattern):
        # \b/\B/\A/\Z used to raise "unsupported escape"; they are
        # word-boundary and string-edge anchors now
        assert parse(builder, pattern) is not None

    def test_class_rejects_non_octal_digit(self, builder):
        with pytest.raises(RegexSyntaxError, match="unsupported escape"):
            parse(builder, "[\\8]")

    @pytest.mark.parametrize("pattern", ["\\777", "[\\777]"])
    def test_octal_above_0o377_rejected(self, builder, pattern):
        with pytest.raises(RegexSyntaxError, match="octal escape"):
            parse(builder, pattern)

    def test_supported_escapes_still_work(self, oracle):
        oracle("\\n\\r\\t\\f\\v", "\n\r\t\f\v")
        oracle("\\x41\\u0042", "AB")
        oracle("\\.\\*\\+", ".*+")

    def test_incomplete_hex_escape(self, builder):
        with pytest.raises(RegexSyntaxError, match="incomplete"):
            parse(builder, "\\x4")


class TestOctalEscapes:
    """``\\0oo`` anywhere and ``\\ooo`` decode per the ``re`` oracle."""

    @pytest.mark.parametrize("pattern,string", [
        ("\\010", "\x08"),
        ("\\0", "\x00"),
        ("\\07", "\x07"),
        ("\\101", "A"),
        ("\\377", "\xff"),
        ("[\\1]", "\x01"),
        ("[\\18]", "8"),
        ("[\\18]", "\x01"),
        ("[\\b]", "\x08"),
    ])
    def test_matches_oracle(self, oracle, pattern, string):
        assert oracle(pattern, string) is True

    def test_octal_does_not_match_digit_text(self, oracle):
        assert oracle("\\010", "10") is False
        assert oracle("\\010", "\x0010") is False

    def test_printer_emits_canonical_hex(self, builder):
        assert to_pattern(parse(builder, "\\010"), builder.algebra) == "\\u0008"
        assert to_pattern(parse(builder, "[\\b]"), builder.algebra) == "\\u0008"

    @pytest.mark.parametrize("pattern", ["\\010", "\\101", "[\\b]", "[\\1-\\7]"])
    def test_round_trip(self, builder, pattern):
        regex = parse(builder, pattern)
        printed = to_pattern(regex, builder.algebra)
        assert parse(builder, printed) is regex


class TestLeadingBracketClasses:
    """A ``]`` first in a class is a literal member, as in ``re``."""

    @pytest.mark.parametrize("pattern,string", [
        ("[]a]", "]"), ("[]a]", "a"), ("[]]", "]"),
        ("[^]a]", "b"), ("[]-a]", "^"),
    ])
    def test_matches_oracle(self, oracle, pattern, string):
        oracle(pattern, string)

    @pytest.mark.parametrize("pattern,string", [
        ("[]a]", "b"), ("[^]a]", "]"), ("[^]a]", "a"),
    ])
    def test_rejects_like_oracle(self, oracle, pattern, string):
        assert oracle(pattern, string) is False

    def test_bare_empty_class_stays_bottom(self, builder):
        # documented divergence: re rejects "[]" as unterminated, our
        # dialect keeps it as the canonical spelling of bottom so the
        # printer round-trips
        regex = parse(builder, "[]")
        assert regex is builder.empty
        assert to_pattern(regex, builder.algebra) == "[]"
        assert parse(builder, "[^]") is builder.dot

    def test_round_trip(self, builder):
        regex = parse(builder, "[]a]")
        assert parse(builder, to_pattern(regex, builder.algebra)) is regex


ASTRAL = "\U0001F600"


class TestOutOfDomainInput:
    """Astral input on the BMP algebra is a clean non-match, not a crash."""

    @pytest.mark.parametrize("pattern", ["[^a]", ".", "~(a)", "[^a]*", ".*"])
    def test_matcher_paths(self, builder, pattern):
        regex = parse(builder, pattern)
        matcher = RegexMatcher(builder, regex)
        assert matcher.fullmatch(ASTRAL) is False
        # search must scan past the foreign character without raising
        matcher.search("x%sy" % ASTRAL)
        assert Matcher(builder.algebra).matches(regex, ASTRAL) is False

    def test_solver_membership_path(self, builder):
        solver = RegexSolver(builder)
        assert solver.membership(ASTRAL, parse(builder, "[^a]")) is False
        assert solver.membership(ASTRAL, parse(builder, ".*")) is False
        assert solver.membership("ab", parse(builder, ".*")) is True

    def test_derivative_engine_apply(self, builder):
        engine = RegexSolver(builder).engine
        regex = parse(builder, "~(a)")
        assert engine.derive_regex(regex, ASTRAL) is builder.empty

    def test_bitset_algebra_out_of_alphabet(self):
        builder = RegexBuilder(BitsetAlgebra("ab"))
        regex = parse(builder, "[^a]")
        matcher = RegexMatcher(builder, regex)
        assert matcher.fullmatch("z") is False
        assert matcher.fullmatch("b") is True

    def test_unicode_domain_matches_astral(self):
        builder = RegexBuilder(IntervalAlgebra(UNICODE_MAX))
        regex = parse(builder, "[^a]")
        matcher = RegexMatcher(builder, regex)
        assert matcher.fullmatch(ASTRAL) is True
