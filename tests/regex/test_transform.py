"""Structural transforms: language-level reversal."""

import random

from repro.regex import parse, reverse, to_pattern
from repro.regex.semantics import language_upto
from repro.verify.campaign import RegexGen

ALPHABET = "ab"


def test_reverse_concat(ascii_builder):
    b = ascii_builder
    assert reverse(b, b.string("abc")) is b.string("cba")


def test_reverse_fixes_symmetric_leaves(ascii_builder):
    b = ascii_builder
    for r in (b.epsilon, b.empty, b.full, b.dot, b.char("a")):
        assert reverse(b, r) is r


def test_reverse_distributes_over_boolean_structure(ascii_builder):
    b = ascii_builder
    r = parse(b, "(ab|0[01])&~(ab)")
    want = parse(b, "(ba|[01]0)&~(ba)")
    assert reverse(b, r) is want


def test_reverse_is_an_involution(ascii_builder):
    rng = random.Random(5)
    gen = RegexGen(rng, ascii_builder, ALPHABET)
    for _ in range(50):
        r = gen.regex(rng.randint(1, 3))
        assert reverse(ascii_builder, reverse(ascii_builder, r)) is r


def test_reverse_reverses_the_language(ascii_builder):
    b = ascii_builder
    rng = random.Random(8)
    gen = RegexGen(rng, b, ALPHABET)
    for _ in range(30):
        r = gen.regex(rng.randint(1, 2))
        direct = language_upto(b.algebra, r, ALPHABET, 4)
        rev = language_upto(b.algebra, reverse(b, r), ALPHABET, 4)
        assert {w[::-1] for w in direct} == set(rev), to_pattern(
            r, b.algebra
        )
