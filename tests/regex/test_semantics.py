"""Reference semantics: cross-checked against Python's ``re`` module
on the standard fragment, plus direct checks for the extended
operators ``re`` cannot express."""

import re as pyre

import pytest
from hypothesis import given, settings

from repro.regex import language_upto, matches, parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.strategies import short_strings, standard_regexes

# patterns expressible both by us and by Python's re (full match)
STANDARD_PATTERNS = [
    "ab0", "a*", "(ab)*", "a|b", "(a|b)*", "a+b?", "a{2,4}", "a{3}",
    "[ab][01]", "[^a]*", "(a|b){1,3}0", "a(b|0)*1", "(a*b)*",
    "(a|ab)(b|)", "0?1?a?b?",
]


@pytest.mark.parametrize("pattern", STANDARD_PATTERNS)
def test_agrees_with_python_re(bitset_builder, pattern):
    b = bitset_builder
    ours = parse(b, pattern)
    theirs = pyre.compile(pattern)
    matcher = Matcher(b.algebra)
    for s in enumerate_strings("ab01", 4):
        assert matcher.matches(ours, s) == bool(theirs.fullmatch(s)), (
            pattern, s,
        )


def test_complement_semantics(bitset_builder):
    b = bitset_builder
    r = parse(b, "~(a*)")
    matcher = Matcher(b.algebra)
    for s in enumerate_strings("ab01", 3):
        assert matcher.matches(r, s) == (not pyre.fullmatch("a*", s))


def test_intersection_semantics(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a|b)*&(.*b.*)")
    lang = language_upto(b.algebra, r, "ab01", 3)
    expected = {
        s for s in enumerate_strings("ab01", 3)
        if set(s) <= {"a", "b"} and "b" in s
    }
    assert lang == expected


def test_loop_with_nullable_body(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a?){3}")
    assert language_upto(b.algebra, r, "ab01", 4) == {"", "a", "aa", "aaa"}


def test_loop_unbounded_nullable_body_terminates(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a?)*b")
    matcher = Matcher(b.algebra)
    assert matcher.matches(r, "aab")
    assert not matcher.matches(r, "ba")


def test_empty_language(bitset_builder):
    b = bitset_builder
    assert language_upto(b.algebra, b.empty, "ab01", 2) == set()


def test_epsilon_language(bitset_builder):
    b = bitset_builder
    assert language_upto(b.algebra, b.epsilon, "ab01", 2) == {""}


def test_concat_split_enumeration(bitset_builder):
    b = bitset_builder
    r = parse(b, "a*a*a*")
    matcher = Matcher(b.algebra)
    assert matcher.matches(r, "aaaa")
    assert not matcher.matches(r, "ab")


def test_memo_isolated_between_strings(bitset_builder):
    matcher = Matcher(bitset_builder.algebra)
    r = parse(bitset_builder, "(a|b)*")
    assert matcher.matches(r, "ab")
    assert not matcher.matches(r, "a0")
    assert matcher.matches(r, "ab")  # still correct after the miss


def test_nullability_agrees_with_matching_empty(bitset_builder):
    b = bitset_builder

    @settings(max_examples=200, deadline=None)
    @given(standard_regexes(b))
    def check(r):
        assert r.nullable == matches(b.algebra, r, "")

    check()


def test_derivative_free_oracle_total(bitset_builder):
    """The oracle answers on every (regex, string) pair we can draw."""
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=150, deadline=None)
    @given(standard_regexes(b), short_strings(4))
    def check(r, s):
        result = matcher.matches(r, s)
        assert result in (True, False)

    check()
