"""Semantic laws of the regex algebra, property-tested.

The builder's *syntactic* laws are checked in test_builder; here the
corresponding *language* identities are verified against the reference
semantics, including the ones the builder deliberately does not apply
(e.g. De Morgan) — languages must agree even when syntax differs.
"""

from hypothesis import given, settings

from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes

MAX_LEN = 3


def lang(matcher, regex):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, MAX_LEN)
        if matcher.matches(regex, s)
    )


def run(builder, property_fn, max_examples=80, pairs=True):
    matcher = Matcher(builder.algebra)
    strategy = extended_regexes(builder, max_leaves=4)

    if pairs:
        @settings(max_examples=max_examples, deadline=None)
        @given(strategy, strategy)
        def check(r, s):
            property_fn(matcher, r, s)
    else:
        @settings(max_examples=max_examples, deadline=None)
        @given(strategy)
        def check(r):
            property_fn(matcher, r)

    check()


def test_union_is_set_union(bitset_builder):
    b = bitset_builder

    def prop(m, r, s):
        assert lang(m, b.union([r, s])) == lang(m, r) | lang(m, s)

    run(b, prop)


def test_inter_is_set_intersection(bitset_builder):
    b = bitset_builder

    def prop(m, r, s):
        assert lang(m, b.inter([r, s])) == lang(m, r) & lang(m, s)

    run(b, prop)


def test_compl_is_set_complement(bitset_builder):
    b = bitset_builder
    universe = frozenset(enumerate_strings(ALPHABET, MAX_LEN))

    def prop(m, r):
        assert lang(m, b.compl(r)) == universe - lang(m, r)

    run(b, prop, pairs=False)


def test_de_morgan_semantically(bitset_builder):
    b = bitset_builder

    def prop(m, r, s):
        lhs = b.compl(b.union([r, s]))
        rhs = b.inter([b.compl(r), b.compl(s)])
        assert lang(m, lhs) == lang(m, rhs)

    run(b, prop)


def test_concat_distributes_over_union(bitset_builder):
    b = bitset_builder

    def prop(m, r, s):
        t = b.char("a")
        lhs = b.concat([b.union([r, s]), t])
        rhs = b.union([b.concat([r, t]), b.concat([s, t])])
        assert lang(m, lhs) == lang(m, rhs)

    run(b, prop, max_examples=60)


def test_star_unfolding(bitset_builder):
    """L(R*) = {eps} ∪ L(R . R*)."""
    b = bitset_builder

    def prop(m, r):
        star = b.star(r)
        unfolded = b.union([b.epsilon, b.concat([r, star])])
        assert lang(m, star) == lang(m, unfolded)

    run(b, prop, pairs=False)


def test_loop_splitting(bitset_builder):
    """L(R{2,4}) = L(R.R{1,3})."""
    b = bitset_builder

    def prop(m, r):
        lhs = b.loop(r, 2, 4)
        rhs = b.concat([r, b.loop(r, 1, 3)])
        assert lang(m, lhs) == lang(m, rhs)

    run(b, prop, pairs=False, max_examples=50)


def test_difference_identity(bitset_builder):
    """L(R) = (L(R) \\ L(S)) ∪ (L(R) ∩ L(S))."""
    b = bitset_builder

    def prop(m, r, s):
        left = lang(m, b.diff(r, s)) | lang(m, b.inter([r, s]))
        assert left == lang(m, r)

    run(b, prop, max_examples=60)
