"""Concrete regex parser: syntax coverage, errors, round-trips."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regex import parse, to_pattern
from repro.regex.ast import COMPL, INF, INTER, LOOP, PRED, UNION
from tests.strategies import extended_regexes


class TestBasics:
    def test_literal(self, ascii_builder):
        assert parse(ascii_builder, "abc") is ascii_builder.string("abc")

    def test_empty_pattern_is_epsilon(self, ascii_builder):
        assert parse(ascii_builder, "") is ascii_builder.epsilon

    def test_group_epsilon(self, ascii_builder):
        assert parse(ascii_builder, "()") is ascii_builder.epsilon

    def test_empty_class_is_bottom(self, ascii_builder):
        assert parse(ascii_builder, "[]") is ascii_builder.empty

    def test_dot(self, ascii_builder):
        assert parse(ascii_builder, ".") is ascii_builder.dot

    def test_alternation_precedence(self, ascii_builder):
        b = ascii_builder
        r = parse(b, "ab|cd")
        assert r is b.union([b.string("ab"), b.string("cd")])

    def test_intersection_binds_tighter_than_union(self, ascii_builder):
        r = parse(ascii_builder, "a|b&c")
        assert r.kind == UNION

    def test_complement_prefix(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "~(ab)") is b.compl(b.string("ab"))

    def test_complement_of_intersection_operand(self, ascii_builder):
        r = parse(ascii_builder, "~a&b")
        assert r.kind == INTER

    def test_non_capturing_group(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "(?:ab)c") is b.string("abc")


class TestQuantifiers:
    def test_star_plus_opt(self, ascii_builder):
        b = ascii_builder
        a = b.char("a")
        assert parse(b, "a*") is b.star(a)
        assert parse(b, "a+") is b.plus(a)
        assert parse(b, "a?") is b.opt(a)

    def test_bounded_loops(self, ascii_builder):
        b = ascii_builder
        a = b.char("a")
        assert parse(b, "a{3}") is b.loop(a, 3, 3)
        assert parse(b, "a{2,5}") is b.loop(a, 2, 5)
        assert parse(b, "a{4,}") is b.loop(a, 4, INF)

    def test_lazy_markers_ignored(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "a*?") is b.star(b.char("a"))
        assert parse(b, "a{2,3}?") is b.loop(b.char("a"), 2, 3)

    def test_literal_brace_when_not_a_bound(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "a{x}") is b.string("a{x}")

    def test_nothing_to_repeat(self, ascii_builder):
        with pytest.raises(RegexSyntaxError):
            parse(ascii_builder, "*a")

    def test_reversed_bounds_rejected(self, ascii_builder):
        with pytest.raises(RegexSyntaxError):
            parse(ascii_builder, "a{5,2}")


class TestClasses:
    def test_simple_class(self, ascii_builder):
        b = ascii_builder
        r = parse(b, "[abc]")
        assert r is b.pred(b.algebra.from_chars("abc"))

    def test_range_class(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "[a-f]") is b.ranges([("a", "f")])

    def test_negated_class(self, ascii_builder):
        b = ascii_builder
        r = parse(b, "[^a]")
        assert r is b.pred(b.algebra.neg(b.algebra.from_char("a")))

    def test_class_with_escape(self, ascii_builder):
        b = ascii_builder
        r = parse(b, r"[\d]")
        assert r is parse(b, r"\d")

    def test_class_mixed_ranges_and_chars(self, ascii_builder):
        b = ascii_builder
        r = parse(b, "[a-cx0-2]")
        expected = b.pred(b.algebra.from_ranges([("a", "c"), ("x", "x"), ("0", "2")]))
        assert r is expected

    def test_trailing_dash_literal(self, ascii_builder):
        b = ascii_builder
        r = parse(b, r"[a\-]")
        assert r is b.pred(b.algebra.from_chars("a-"))

    def test_reversed_range_rejected(self, ascii_builder):
        with pytest.raises(RegexSyntaxError):
            parse(ascii_builder, "[z-a]")


class TestEscapes:
    def test_class_escapes(self, bmp_builder):
        from repro.alphabet import charclass

        b = bmp_builder
        assert parse(b, r"\d") is b.pred(charclass.digit(b.algebra))
        assert parse(b, r"\W") is b.pred(charclass.not_word(b.algebra))

    def test_control_escapes(self, ascii_builder):
        b = ascii_builder
        assert parse(b, r"\n") is b.char("\n")
        assert parse(b, r"\t") is b.char("\t")

    def test_hex_and_unicode_escapes(self, bmp_builder):
        b = bmp_builder
        assert parse(b, r"\x41") is b.char("A")
        assert parse(b, r"A") is b.char("A")
        assert parse(b, r"\u{41}") is b.char("A")

    def test_escaped_metachars(self, ascii_builder):
        b = ascii_builder
        assert parse(b, r"\*\(\)\~\&") is b.string("*()~&")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "(a", "a)", "[a", "(?", "(?=x", "*a", "a**|)"
    ])
    def test_malformed_patterns(self, ascii_builder, bad):
        with pytest.raises(RegexSyntaxError):
            parse(ascii_builder, bad)

    def test_empty_alternative_is_epsilon(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "a|") is b.union([b.char("a"), b.epsilon])

    def test_error_carries_position(self, ascii_builder):
        with pytest.raises(RegexSyntaxError) as info:
            parse(ascii_builder, "ab)cd")
        assert info.value.position == 2


class TestRoundTrip:
    @pytest.mark.parametrize("pattern", [
        "abc", "a|b", "a&b", "~(ab)", "(ab)*", "a{2,5}", "[a-f]",
        r"(.*\d.*)&~(.*01.*)", r"\d{4}-[a-zA-Z]{3}-\d{2}",
        "(a|b)+c?", "a{3,}", "[^a-c]*",
    ])
    def test_print_parse_identity(self, bmp_builder, pattern):
        b = bmp_builder
        r = parse(b, pattern)
        assert parse(b, to_pattern(r, b.algebra)) is r


def test_roundtrip_random_regexes(bitset_builder):
    """Print→parse is the identity on randomly built regexes."""
    from hypothesis import given, settings

    b = bitset_builder

    @settings(max_examples=150, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        assert parse(b, to_pattern(r, b.algebra)) is r

    check()


class TestCaseInsensitive:
    def test_flag_folds_literals(self, ascii_builder):
        from repro.regex.semantics import matches

        b = ascii_builder
        r = parse(b, "(?i)abc")
        for s in ("abc", "ABC", "aBc"):
            assert matches(b.algebra, r, s)
        assert not matches(b.algebra, r, "abd")

    def test_flag_folds_classes_and_ranges(self, ascii_builder):
        from repro.regex.semantics import matches

        b = ascii_builder
        r = parse(b, "(?i)[a-c]+")
        assert matches(b.algebra, r, "aBcC")
        assert not matches(b.algebra, r, "d")

    def test_negated_class_folds_before_negating(self, ascii_builder):
        from repro.regex.semantics import matches

        b = ascii_builder
        r = parse(b, "(?i)[^a]")
        assert not matches(b.algebra, r, "a")
        assert not matches(b.algebra, r, "A")
        assert matches(b.algebra, r, "b")

    def test_flag_off_by_default(self, ascii_builder):
        from repro.regex.semantics import matches

        b = ascii_builder
        assert not matches(b.algebra, parse(b, "abc"), "ABC")

    def test_digits_unaffected(self, ascii_builder):
        b = ascii_builder
        assert parse(b, "(?i)5") is b.char("5")
