"""Pattern rendering."""

from repro.regex import parse, to_pattern
from repro.regex.printer import escape_char, render_pred


def test_escape_char_printable():
    assert escape_char(ord("a")) == "a"
    assert escape_char(ord("*")) == "\\*"
    assert escape_char(ord("\n")) == "\\n"


def test_escape_char_unicode():
    assert escape_char(0x2603) == "\\u2603"
    assert escape_char(0x1F600) == "\\u{1f600}"


def test_escape_in_class_context():
    assert escape_char(ord("-"), in_class=True) == "\\-"
    assert escape_char(ord("]"), in_class=True) == "\\]"
    assert escape_char(ord("*"), in_class=True) == "*"


def test_render_top_is_dot(bmp_builder):
    assert to_pattern(bmp_builder.dot, bmp_builder.algebra) == "."


def test_render_singleton(bmp_builder):
    assert to_pattern(parse(bmp_builder, "x"), bmp_builder.algebra) == "x"


def test_render_class(bmp_builder):
    b = bmp_builder
    assert to_pattern(parse(b, "[a-f0]"), b.algebra) == "[0a-f]"


def test_render_empty_and_epsilon(bmp_builder):
    b = bmp_builder
    assert to_pattern(b.empty, b.algebra) == "[]"
    assert to_pattern(b.epsilon, b.algebra) == "()"


def test_render_loops(bmp_builder):
    b = bmp_builder
    a = b.char("a")
    assert to_pattern(b.star(a), b.algebra) == "a*"
    assert to_pattern(b.plus(a), b.algebra) == "a+"
    assert to_pattern(b.opt(a), b.algebra) == "a?"
    assert to_pattern(b.loop(a, 3, 3), b.algebra) == "a{3}"
    assert to_pattern(b.loop(a, 2, 5), b.algebra) == "a{2,5}"
    assert to_pattern(b.loop(a, 4), b.algebra) == "a{4,}"


def test_render_group_when_needed(bmp_builder):
    b = bmp_builder
    r = b.star(b.string("ab"))
    assert to_pattern(r, b.algebra) == "(ab)*"


def test_render_boolean_precedence(bmp_builder):
    b = bmp_builder
    r = parse(b, "a|b&c")
    text = to_pattern(r, b.algebra)
    assert parse(b, text) is r


def test_render_complement_parenthesized_in_concat(bmp_builder):
    b = bmp_builder
    r = b.concat([b.char("a"), b.compl(b.char("b")), b.char("c")])
    text = to_pattern(r, b.algebra)
    assert parse(b, text) is r


def test_render_bitset_pred(bitset_builder):
    b = bitset_builder
    assert to_pattern(b.dot, b.algebra) == "."
    assert to_pattern(b.char("a"), b.algebra) == "a"
    assert to_pattern(
        b.pred(b.algebra.from_chars("a0")), b.algebra
    ) == "[a0]"


def test_render_pred_without_algebra_falls_back():
    class Opaque:
        pass

    assert render_pred(Opaque()) == "<pred>"


def test_repr_never_raises(bmp_builder):
    r = parse(bmp_builder, "(a|b){2,4}&~(c)")
    assert "Regex(" in repr(r)
