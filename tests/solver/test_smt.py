"""The mini-SMT layer: Boolean structure over regex goals."""

import pytest

from repro.regex import parse
from repro.solver import Budget, SmtSolver
from repro.solver import formula as F


@pytest.fixture
def solver(bitset_builder):
    return SmtSolver(bitset_builder)


def inre(builder, var, pattern):
    return F.InRe(var, parse(builder, pattern))


def test_single_membership(solver, bitset_builder):
    result = solver.solve(inre(bitset_builder, "x", "(ab)+"))
    assert result.is_sat
    assert result.model["x"] == "ab"


def test_conjunction_collapses_to_intersection(solver, bitset_builder):
    f = F.And((
        inre(bitset_builder, "x", ".*a.*"),
        inre(bitset_builder, "x", ".*0.*"),
        F.LenCmp("x", "=", 2),
    ))
    result = solver.solve(f)
    assert result.is_sat
    assert sorted(result.model["x"]) == ["0", "a"]


def test_negated_membership_becomes_complement(solver, bitset_builder):
    f = F.And((
        inre(bitset_builder, "x", "(a|b)+"),
        F.Not(inre(bitset_builder, "x", ".*a.*")),
    ))
    result = solver.solve(f)
    assert result.is_sat
    assert "a" not in result.model["x"] and result.model["x"]


def test_unsat_conjunction(solver, bitset_builder):
    f = F.And((
        inre(bitset_builder, "x", "a+"),
        F.Not(inre(bitset_builder, "x", "a*")),
    ))
    assert solver.solve(f).is_unsat


def test_disjunction_picks_live_branch(solver, bitset_builder):
    f = F.Or((
        F.And((inre(bitset_builder, "x", "a"),
               F.Not(inre(bitset_builder, "x", "a")))),
        inre(bitset_builder, "x", "b"),
    ))
    result = solver.solve(f)
    assert result.is_sat
    assert result.model["x"] == "b"


def test_multiple_variables(solver, bitset_builder):
    f = F.And((
        inre(bitset_builder, "x", "a+"),
        inre(bitset_builder, "y", "b+"),
        F.LenCmp("y", ">=", 2),
    ))
    result = solver.solve(f)
    assert result.model["x"].startswith("a")
    assert result.model["y"] == "bb"


def test_model_checks_out(solver, bitset_builder):
    f = F.And((
        inre(bitset_builder, "x", "(.*0.*)&~(.*01.*)"),
        F.LenCmp("x", ">=", 2),
        F.Or((F.EqConst("y", "ab"), F.EqConst("y", "ba"))),
    ))
    result = solver.solve(f)
    assert result.is_sat
    assert solver.check_model(f, result.model)


def test_check_model_rejects_bad_model(solver, bitset_builder):
    f = inre(bitset_builder, "x", "a+")
    assert not solver.check_model(f, {"x": "b"})
    assert not solver.check_model(f, {})  # default empty string fails a+


def test_bool_constants(solver):
    assert solver.solve(F.TRUE).is_sat
    assert solver.solve(F.FALSE).is_unsat
    assert solver.solve(F.Not(F.FALSE)).is_sat


def test_nested_boolean_structure(solver, bitset_builder):
    b = bitset_builder
    f = F.And((
        F.Or((inre(b, "x", "a*"), inre(b, "x", "b*"))),
        F.Not(F.Or((F.EqConst("x", ""), F.EqConst("x", "a")))),
        F.LenCmp("x", "<=", 2),
    ))
    result = solver.solve(f)
    assert result.is_sat
    assert result.model["x"] not in ("", "a")


def test_budget_propagates(bitset_builder):
    solver = SmtSolver(bitset_builder)
    f = F.InRe("x", parse(bitset_builder, "~(.*a.{25})&(a|b){30}"))
    result = solver.solve(f, budget=Budget(fuel=2))
    assert result.is_unknown


def test_unknown_branch_does_not_mask_sat(bitset_builder):
    """A later decidable branch still yields sat."""
    solver = SmtSolver(bitset_builder)
    f = F.Or((
        F.And((inre(bitset_builder, "x", "a"),
               F.Not(inre(bitset_builder, "x", "a")))),
        inre(bitset_builder, "y", "b*"),
    ))
    assert solver.solve(f).is_sat


class TestWitnessValidation:
    """A sat verdict is only reported once the engine's witness has been
    checked against both theories; a broken engine degrades to unknown
    with a structured error instead of returning a bogus model."""

    class BadWitnessEngine:
        def __init__(self, witness):
            self.witness = witness

        def is_satisfiable(self, regex, budget=None):
            from repro.solver.result import SolverResult

            return SolverResult("sat", witness=self.witness)

    def test_wrong_witness_maps_to_unknown(self, bitset_builder):
        solver = SmtSolver(
            bitset_builder, regex_engine=self.BadWitnessEngine("zzz")
        )
        result = solver.solve(inre(bitset_builder, "x", "a+"))
        assert result.is_unknown
        assert result.error is not None
        assert "witness" in result.reason

    def test_missing_witness_maps_to_unknown(self, bitset_builder):
        solver = SmtSolver(
            bitset_builder, regex_engine=self.BadWitnessEngine(None)
        )
        result = solver.solve(inre(bitset_builder, "x", "a+"))
        assert result.is_unknown
        assert result.error is not None

    def test_length_atoms_are_checked_arithmetically(self, bitset_builder):
        # the witness matches the regex but violates the length bound
        # that was folded into it; the cross-theory check catches the
        # inconsistency
        solver = SmtSolver(
            bitset_builder, regex_engine=self.BadWitnessEngine("aaa")
        )
        f = F.And((
            inre(bitset_builder, "x", "a+"),
            F.LenCmp("x", "<=", 2),
        ))
        result = solver.solve(f)
        assert result.is_unknown

    def test_healthy_engine_still_reports_sat(self, bitset_builder):
        result = SmtSolver(bitset_builder).solve(
            F.And((inre(bitset_builder, "x", "a+"),
                   F.LenCmp("x", "<=", 2)))
        )
        assert result.is_sat
        assert result.model["x"] in ("a", "aa")
