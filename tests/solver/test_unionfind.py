"""Union-Find."""

from hypothesis import given, strategies as st

from repro.solver.unionfind import UnionFind


def test_singletons():
    uf = UnionFind()
    uf.add("a")
    uf.add("b")
    assert uf.find("a") == "a"
    assert not uf.same("a", "b")


def test_union_merges():
    uf = UnionFind()
    for x in "abc":
        uf.add(x)
    uf.union("a", "b")
    assert uf.same("a", "b")
    assert not uf.same("a", "c")
    uf.union("b", "c")
    assert uf.same("a", "c")


def test_add_idempotent():
    uf = UnionFind()
    uf.add(1)
    uf.union(1, 1)
    uf.add(1)
    assert uf.find(1) == 1


def test_contains():
    uf = UnionFind()
    uf.add("x")
    assert "x" in uf and "y" not in uf


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
def test_matches_naive_partition(pairs):
    uf = UnionFind()
    naive = {}  # element -> set id

    def naive_find(x):
        if x not in naive:
            naive[x] = {x}
        return naive[x]

    for a, b in pairs:
        uf.add(a)
        uf.add(b)
        sa, sb = naive_find(a), naive_find(b)
        if sa is not sb:
            sa |= sb
            for member in sb:
                naive[member] = sa
        uf.union(a, b)
    for a in list(naive):
        for b in list(naive):
            assert uf.same(a, b) == (naive[a] is naive[b])
