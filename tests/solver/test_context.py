"""Incremental push/pop solving and graph persistence across scopes."""

import pytest

from repro.regex import parse
from repro.solver import formula as F
from repro.solver.context import SolverContext


def inre(builder, var, pattern):
    return F.InRe(var, parse(builder, pattern))


@pytest.fixture
def ctx(bitset_builder):
    return SolverContext(bitset_builder)


def test_empty_context_is_sat(ctx):
    assert ctx.check_sat().is_sat


def test_assert_and_check(ctx, bitset_builder):
    ctx.assert_formula(inre(bitset_builder, "x", "a+"))
    result = ctx.check_sat()
    assert result.is_sat
    assert result.model["x"].startswith("a")


def test_push_pop_restores(ctx, bitset_builder):
    ctx.assert_formula(inre(bitset_builder, "x", "a+"))
    ctx.push()
    ctx.assert_formula(F.Not(inre(bitset_builder, "x", "a*")))
    assert ctx.check_sat().is_unsat
    ctx.pop()
    assert ctx.check_sat().is_sat
    assert ctx.scope_depth == 0


def test_nested_scopes(ctx, bitset_builder):
    ctx.push()
    ctx.assert_formula(inre(bitset_builder, "x", "(ab)+"))
    ctx.push()
    ctx.assert_formula(F.LenCmp("x", "=", 3))
    assert ctx.check_sat().is_unsat  # (ab)+ has even lengths
    ctx.pop()
    ctx.assert_formula(F.LenCmp("x", "=", 4))
    assert ctx.check_sat().is_sat
    ctx.pop()
    assert ctx.scope_depth == 0 and not ctx.assertions()


def test_pop_outermost_raises(ctx):
    with pytest.raises(IndexError):
        ctx.pop()


def test_check_sat_assuming_leaves_no_trace(ctx, bitset_builder):
    ctx.assert_formula(inre(bitset_builder, "x", "(a|b)*"))
    result = ctx.check_sat_assuming(
        [F.Not(inre(bitset_builder, "x", ".*"))]
    )
    assert result.is_unsat
    assert ctx.scope_depth == 0
    assert ctx.check_sat().is_sat


def test_graph_persists_across_pop(ctx, bitset_builder):
    """Derivative/deadness knowledge survives scope popping."""
    dead_constraint = inre(bitset_builder, "x", "(ab)+&~((ab)*)")
    ctx.push()
    ctx.assert_formula(dead_constraint)
    assert ctx.check_sat().is_unsat
    vertices_after_first = ctx.graph_stats["vertices"]
    dead_after_first = ctx.graph_stats["dead"]
    ctx.pop()
    # re-asserting in a fresh scope reuses the dead verdict (bot rule)
    ctx.push()
    ctx.assert_formula(dead_constraint)
    assert ctx.check_sat().is_unsat
    assert ctx.graph_stats["vertices"] == vertices_after_first
    assert ctx.graph_stats["dead"] >= dead_after_first
    ctx.pop()
