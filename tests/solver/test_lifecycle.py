"""Engine-state lifecycle: accounting, compaction, pin/hold semantics.

The load-bearing property is *verdict parity*: a solver that compacts
aggressively between queries must answer every query exactly as an
unbounded solver does, because compaction only retires cache entries —
never semantic facts about live regexes — and retired facts are
recomputed on demand.
"""

import pytest

from repro.alphabet.intervals import IntervalAlgebra
from repro.matcher.dfa_cache import LazyDfa
from repro.matcher.matcher import RegexMatcher
from repro.regex.builder import RegexBuilder
from repro.regex.parser import parse
from repro.solver import formula as F
from repro.solver.baselines import MintermSolver
from repro.solver.engine import RegexSolver
from repro.solver.lifecycle import CompactionPolicy, EngineState
from repro.solver.smt import SmtSolver


PATTERNS = [
    "a*b",
    "~(a*)&[a-c]{2,5}",
    "(ab|cd)*ef",
    "a{3,7}&~(b)",
    "[x-z]+y[x-z]+",
    "(a|b)*&~((a|b)*aa(a|b)*)",
    "abc|abd|abe",
    "~([a-m]*)&[a-z]{4}",
    ".*foo.*&~(.*bar.*)",
    "(0|1)*00(0|1)*",
]


@pytest.fixture
def builder():
    return RegexBuilder(IntervalAlgebra())


def fresh_solver(compaction=None):
    return RegexSolver(RegexBuilder(IntervalAlgebra()), compaction=compaction)


class TestAccounting:
    def test_cache_sizes_keys(self, builder):
        solver = RegexSolver(builder)
        solver.is_satisfiable(parse(builder, "a*b"))
        sizes = solver.state.cache_sizes()
        for key in (
            "regex_nodes", "deriv_trees", "deriv_memo", "meld_memo",
            "graph_vertices", "graph_edges", "entries_total", "approx_bytes",
        ):
            assert key in sizes
            assert sizes[key] >= 0
        assert sizes["regex_nodes"] == len(builder._table)
        assert sizes["entries_total"] > 0
        assert sizes["approx_bytes"] > 0

    def test_stats_carry_caches(self, builder):
        solver = RegexSolver(builder)
        result = solver.is_satisfiable(parse(builder, "a*b"))
        assert result.stats.caches["regex_nodes"] > 0
        assert "caches" in result.stats.to_dict()
        # mapping compatibility extends to the new slot
        assert result.stats["caches"] == result.stats.caches

    def test_gauges_published_at_query_boundary(self, builder):
        solver = RegexSolver(builder)
        solver.is_satisfiable(parse(builder, "a*b"))
        snapshot = solver.obs.metrics.snapshot()
        assert snapshot["cache.regex_nodes"] == len(builder._table)
        assert snapshot["cache.entries_total"] > 0

    def test_dfa_rows_accounted(self, builder):
        solver = RegexSolver(builder)
        state = solver.state
        dfa = LazyDfa(builder, engine=solver.engine, state=state)
        regex = parse(builder, "(ab)*c")
        for _ in dfa.run(regex, "ababc"):
            pass
        assert state.cache_sizes()["dfa_rows"] == len(dfa._rows) > 0


class TestCompaction:
    def test_compact_retires_dead_queries(self, builder):
        solver = RegexSolver(builder)
        for pattern in PATTERNS:
            solver.is_satisfiable(parse(builder, pattern))
        before = solver.state.cache_sizes()["entries_total"]
        keep = parse(builder, PATTERNS[0])
        report = solver.state.compact(keep=(keep,))
        after = solver.state.cache_sizes()["entries_total"]
        assert report["retired"] > 0
        assert after == before - report["retired"]

    def test_reset_drops_to_primordials(self, builder):
        solver = RegexSolver(builder)
        for pattern in PATTERNS[:3]:
            solver.is_satisfiable(parse(builder, pattern))
        solver.state.reset()
        # empty/epsilon/dot/full plus nothing else in the builder
        assert len(builder._table) == 4
        assert len(solver.engine._deriv_memo) == 0
        # only primordial vertices (e.g. .*) may remain in the graph
        primordials = {builder.empty, builder.epsilon, builder.dot, builder.full}
        assert set(solver.graph.vertices) <= primordials

    def test_keep_root_survives_with_closure(self, builder):
        solver = RegexSolver(builder)
        regex = parse(builder, "~(a*)&[a-c]{2,5}")
        solver.is_satisfiable(regex)
        solver.state.compact(keep=(regex,))
        assert regex in solver.graph
        # the kept subgraph is successor-closed
        for vertex in list(solver.graph.vertices):
            for succ in solver.graph.successors(vertex):
                assert succ in solver.graph

    def test_graph_facts_survive_compaction(self, builder):
        solver = RegexSolver(builder)
        regex = parse(builder, "a&b")  # unsat: explored to a dead end
        assert solver.is_satisfiable(regex).is_unsat
        assert solver.graph.is_dead(regex)
        solver.state.compact(keep=(regex,))
        assert solver.graph.is_dead(regex)

    def test_interning_stays_canonical_after_compaction(self, builder):
        solver = RegexSolver(builder)
        regex = parse(builder, "(ab|cd)*ef")
        solver.is_satisfiable(regex)
        solver.state.compact(keep=(regex,))
        assert parse(builder, "(ab|cd)*ef") is regex

    def test_stale_nodes_stay_sound(self, builder):
        solver = RegexSolver(builder)
        stale = parse(builder, "a{3,7}&~(b)")
        verdict = solver.is_satisfiable(stale).status
        solver.state.compact(keep=())  # retire it
        # the caller-held node still answers identically (it merely
        # re-interns its successors under fresh uids)
        assert solver.is_satisfiable(stale).status == verdict

    def test_dfa_rows_compact_and_rebuild(self, builder):
        engine_state = EngineState(builder)
        dfa = LazyDfa(builder, state=engine_state)
        regex = parse(builder, "(ab)*c")
        matcher = RegexMatcher(builder, regex, dfa=dfa, state=engine_state)
        assert matcher.fullmatch("ababc") is True
        engine_state.compact(keep=())  # regex survives via the pin
        assert matcher.fullmatch("ababc") is True
        assert matcher.fullmatch("abab") is False


class TestVerdictParity:
    def test_solver_parity_under_aggressive_compaction(self):
        plain = fresh_solver()
        compacting = fresh_solver(
            compaction=CompactionPolicy(max_entries=1, min_retained=0)
        )
        for pattern in PATTERNS:
            expected = plain.is_satisfiable(
                parse(plain.builder, pattern)
            )
            actual = compacting.is_satisfiable(
                parse(compacting.builder, pattern)
            )
            assert actual.status == expected.status, pattern
            if expected.witness is not None:
                # witnesses may differ; both must be members
                assert compacting.membership(
                    actual.witness, parse(compacting.builder, pattern)
                )

    def test_repeated_queries_stay_correct(self):
        compacting = fresh_solver(
            compaction=CompactionPolicy(max_entries=1, min_retained=0)
        )
        builder = compacting.builder
        for _ in range(3):
            for pattern in PATTERNS:
                result = compacting.is_satisfiable(parse(builder, pattern))
                assert result.status in ("sat", "unsat")

    def test_smt_parity(self):
        def formula(builder):
            x = F.InRe("x", parse(builder, "a+b"))
            y = F.InRe("y", parse(builder, "[a-c]{2}"))
            return F.And([x, F.Or([y, F.Not(y)])])

        plain = SmtSolver(RegexBuilder(IntervalAlgebra()))
        bounded_engine = fresh_solver(
            compaction=CompactionPolicy(max_entries=1, min_retained=0)
        )
        bounded = SmtSolver(bounded_engine.builder, regex_engine=bounded_engine)
        expected = plain.solve(formula(plain.builder))
        actual = bounded.solve(formula(bounded.builder))
        assert actual.status == expected.status == "sat"

    def test_baseline_parity(self):
        plain = MintermSolver(RegexBuilder(IntervalAlgebra()))
        bounded = MintermSolver(
            RegexBuilder(IntervalAlgebra()),
            compaction=CompactionPolicy(max_entries=1, min_retained=0),
        )
        for pattern in PATTERNS[:5]:
            expected = plain.is_satisfiable(parse(plain.builder, pattern))
            actual = bounded.is_satisfiable(parse(bounded.builder, pattern))
            assert actual.status == expected.status, pattern


class TestPolicy:
    def test_bounded_growth_across_queries(self):
        policy = CompactionPolicy(max_entries=500, min_retained=0)
        solver = fresh_solver(compaction=policy)
        builder = solver.builder
        peaks = []
        for i in range(40):
            pattern = PATTERNS[i % len(PATTERNS)]
            solver.is_satisfiable(parse(builder, "%s|x{%d}" % (pattern, i + 1)))
            peaks.append(solver.state.cache_sizes()["entries_total"])
        # post-query sizes stay near the watermark instead of growing
        # linearly with the number of distinct queries
        assert max(peaks[20:]) <= max(peaks[:20]) + policy.max_entries

    def test_no_policy_means_no_compaction(self, builder):
        solver = RegexSolver(builder)
        for pattern in PATTERNS:
            solver.is_satisfiable(parse(builder, pattern))
        sizes = solver.state.cache_sizes()
        assert sizes["deriv_memo"] > 0
        assert solver.obs.metrics.snapshot().get("cache.compactions", 0) == 0

    def test_compaction_counter_increments(self):
        solver = fresh_solver(
            compaction=CompactionPolicy(max_entries=1, min_retained=0)
        )
        solver.is_satisfiable(parse(solver.builder, "a*b&~(ab)"))
        assert solver.obs.metrics.snapshot()["cache.compactions"] >= 1


class TestPinAndHold:
    def test_pin_survives_reset(self, builder):
        state = EngineState(builder)
        regex = parse(builder, "(ab|cd)*ef")
        state.pin(regex)
        state.reset()
        assert parse(builder, "(ab|cd)*ef") is regex
        state.unpin(regex)
        state.reset()
        assert regex.uid not in {n.uid for n in builder._table.values()}

    def test_hold_blocks_compaction(self, builder):
        state = EngineState(builder, policy=CompactionPolicy(max_entries=0))
        parse(builder, "(ab|cd)*ef")
        with state.hold():
            assert state.end_query() is None
            with pytest.raises(RuntimeError):
                state.compact()
        # released: the policy fires again
        assert state.end_query() is not None

    def test_hold_is_reentrant(self, builder):
        state = EngineState(builder)
        with state.hold():
            with state.hold():
                assert state.held
            assert state.held
        assert not state.held
