"""Baseline engines: agreement with the reference solver where they
are applicable, and the characteristic failure modes the paper
attributes to each algorithm family."""

import pytest
from hypothesis import given, settings

from repro.regex import parse
from repro.regex.semantics import Matcher
from repro.solver import Budget, RegexSolver
from repro.solver.baselines import (
    AntimirovSolver, EagerAutomataSolver, MintermSolver,
)
from tests.strategies import b_re_regexes, standard_regexes

ALL_BASELINES = [
    lambda b: EagerAutomataSolver(b),
    lambda b: EagerAutomataSolver(b, determinize_all=True),
    lambda b: AntimirovSolver(b),
    lambda b: MintermSolver(b),
]


@pytest.mark.parametrize("make", ALL_BASELINES)
def test_agrees_with_reference_on_standard(bitset_builder, make):
    reference = RegexSolver(bitset_builder)
    baseline = make(bitset_builder)
    matcher = Matcher(bitset_builder.algebra)

    @settings(max_examples=60, deadline=None)
    @given(standard_regexes(bitset_builder))
    def check(r):
        expected = reference.is_satisfiable(r, Budget(fuel=50000))
        got = baseline.is_satisfiable(r, Budget(fuel=100000))
        assert got.status == expected.status
        if got.is_sat:
            assert matcher.matches(r, got.witness)

    check()


@pytest.mark.parametrize("make", [
    lambda b: EagerAutomataSolver(b),
    lambda b: MintermSolver(b),
])
def test_agrees_with_reference_on_b_re(bitset_builder, make):
    """Eager automata and global minterms are complete for B(RE)."""
    reference = RegexSolver(bitset_builder)
    baseline = make(bitset_builder)

    @settings(max_examples=40, deadline=None)
    @given(b_re_regexes(bitset_builder))
    def check(r):
        expected = reference.is_satisfiable(r, Budget(fuel=100000))
        got = baseline.is_satisfiable(r, Budget(fuel=400000))
        assert got.status == expected.status

    check()


class TestAntimirov:
    def test_handles_top_level_negation(self, bitset_builder):
        b = bitset_builder
        solver = AntimirovSolver(b)
        r = parse(b, "(a|b)+&~(.*a.*)")
        result = solver.is_satisfiable(r)
        assert result.is_sat
        assert set(result.witness) == {"b"}

    def test_membership_minus_itself_unsat(self, bitset_builder):
        b = bitset_builder
        solver = AntimirovSolver(b)
        assert solver.is_satisfiable(parse(b, "(ab)*&~((ab)*)")).is_unsat

    def test_nested_complement_unknown(self, bitset_builder):
        b = bitset_builder
        solver = AntimirovSolver(b)
        r = b.concat([b.char("a"), b.compl(b.char("b"))])
        result = solver.is_satisfiable(r)
        assert result.is_unknown
        assert "complement" in result.reason

    def test_double_complement_under_inter_unknown(self, bitset_builder):
        b = bitset_builder
        solver = AntimirovSolver(b)
        r = b.inter([b.compl(b.compl(parse(b, "a*"))), parse(b, "b")])
        # ~~(a*) folds to a* at construction, so this is supported...
        assert solver.is_satisfiable(r).status in ("sat", "unsat")
        # ...but a complement nested under a loop is not
        nested = b.star(b.compl(parse(b, "ab")))
        assert solver.is_satisfiable(nested).is_unknown


class TestEager:
    def test_blowup_hits_state_budget(self, ascii_builder):
        solver = EagerAutomataSolver(
            ascii_builder, max_states=500, determinize_all=True
        )
        r = parse(ascii_builder, "(.*a.{12})&(.*b.{12})")
        result = solver.is_satisfiable(r)
        assert result.is_unknown
        assert "state budget" in result.reason

    def test_same_instance_fine_lazily(self, ascii_builder):
        reference = RegexSolver(ascii_builder)
        r = parse(ascii_builder, "(.*a.{12})&(.*b.{12})")
        assert reference.is_satisfiable(r, Budget(fuel=100000)).is_unsat

    def test_complement_supported(self, bitset_builder):
        solver = EagerAutomataSolver(bitset_builder)
        r = parse(bitset_builder, "~(a*)&a*")
        assert solver.is_satisfiable(r).is_unsat


class TestMinterm:
    def test_minterm_explosion_reported(self, ascii_builder):
        b = ascii_builder
        algebra = b.algebra
        classes = [
            b.pred(algebra.from_ranges(
                [(0x40 + c, 0x40 + c) for c in range(32) if c >> i & 1]
            ))
            for i in range(5)
        ]
        r = b.inter([b.contains(cls) for cls in classes])
        solver = MintermSolver(b, max_minterms=8)
        result = solver.is_satisfiable(r)
        assert result.is_unknown
        assert "minterm" in result.reason

    def test_witness_valid(self, bitset_builder, bitset_matcher):
        solver = MintermSolver(bitset_builder)
        r = parse(bitset_builder, "(.*0.*)&~(.*01.*)")
        result = solver.is_satisfiable(r)
        assert result.is_sat
        assert bitset_matcher.matches(r, result.witness)
