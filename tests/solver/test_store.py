"""The warm store: canonical keys, fragments, persistence, and the
compaction-pinning invariant.

The adversarial compaction tests exercise the stale-uid resurrection
bug the store's root provider exists to prevent: without pinning,
``EngineState.compact`` would evict a node the store still keys into,
a later ``parse`` of the same pattern would re-intern it under a *new*
uid, and the fragment's recorded rows — still referencing the old
node — would silently stop matching (warm hits turning cold, or
worse, rows applied to a node that is no longer the table's canonical
representative).  See DESIGN.md, compaction soundness.
"""

import json

import pytest

from repro.alphabet import BDDAlgebra, IntervalAlgebra
from repro.regex import RegexBuilder, parse, to_pattern
from repro.solver.engine import RegexSolver
from repro.solver.lifecycle import CompactionPolicy
from repro.solver.store import (
    STORE_SCHEMA_VERSION,
    SolverStore,
    build_fragment,
    canonical_pattern,
    instantiate_fragment,
)


@pytest.fixture
def builder():
    return RegexBuilder(IntervalAlgebra(127))


# -- canonical keys ---------------------------------------------------------


def test_canonical_key_is_spelling_independent(builder):
    a = parse(builder, "(a|b)*abb")
    b = parse(builder, "(b|a)*abb")
    assert a is b
    key = canonical_pattern(builder, a)
    assert key is not None
    assert parse(builder, key) is a
    # print of the reparse equals the key: the fixpoint
    assert to_pattern(parse(builder, key), builder.algebra) == key


def test_canonical_key_none_for_unprintable_pred():
    bdd = RegexBuilder(BDDAlgebra(bits=8))
    # BDD predicates have no pattern rendering; the key must be None
    # (uncacheable), never a wrong-but-parseable spelling
    regex = bdd.pred(bdd.algebra.from_char("a"))
    assert canonical_pattern(bdd, regex) is None


# -- fragments --------------------------------------------------------------


def _solve_capturing(store, pattern, max_char=127):
    builder = RegexBuilder(IntervalAlgebra(max_char))
    solver = RegexSolver(builder, store=store)
    result = solver.is_satisfiable(parse(builder, pattern))
    return builder, solver, result


def test_fragment_roundtrips_through_fresh_builder():
    store = SolverStore()
    _solve_capturing(store, "(a|b)*abb")
    [fragment] = store.export_new()
    # the key is the *canonical* spelling ((a|b) interns to the class
    # [ab]), not whatever the query happened to type
    assert fragment["key"] == "[ab]*abb"
    # instantiate against a brand-new builder: same states, same rows
    fresh = RegexBuilder(IntervalAlgebra(127))
    rows = instantiate_fragment(fresh, fragment)
    assert rows is not None
    root = parse(fresh, fragment["key"])
    assert root in rows
    for node, node_rows in rows.items():
        for guard, targets in node_rows:
            assert fresh.algebra.is_sat(guard) or not targets
            for target in targets:
                assert target.uid is not None


def test_fragment_too_many_states_is_not_built():
    store = SolverStore()
    builder, solver, _ = _solve_capturing(store, "(a|b)*abb")
    regex = parse(builder, "[ab]*abb")
    key = canonical_pattern(builder, regex)
    rows = solver._warm_rows
    assert rows, "capture left no rows to rebuild from"
    assert build_fragment(builder, regex, key, rows, max_states=1) is None
    assert build_fragment(builder, regex, key, rows) is not None


def test_fragment_json_safe():
    store = SolverStore()
    _solve_capturing(store, "(ab){2,4}c?")
    [fragment] = store.export_new()
    json.dumps(fragment)  # must not raise


# -- the store collection ----------------------------------------------------


def test_lookup_counts_hits_and_misses():
    store = SolverStore()
    assert store.lookup("alg", "a*") is None
    assert store.misses == 1
    store.insert({"key": "a*", "algebra": "alg", "states": ["a*"],
                  "rows": {"0": []}})
    assert store.lookup("alg", "a*") is not None
    assert store.hits == 1


def test_insert_is_first_write_wins():
    store = SolverStore()
    first = {"key": "k", "algebra": "alg", "states": ["k"], "rows": {}}
    second = {"key": "k", "algebra": "alg", "states": ["other"], "rows": {}}
    assert store.insert(first)
    assert not store.insert(second)
    assert store.lookup("alg", "k")["states"] == ["k"]


def test_export_new_excludes_loaded(tmp_path):
    store = SolverStore()
    store.insert({"key": "a", "algebra": "alg", "states": ["a"], "rows": {}})
    path = store.save(str(tmp_path / "store.json"))
    loaded = SolverStore()
    loaded.load(path)
    assert len(loaded) == 1
    assert loaded.export_new() == []
    loaded.insert({"key": "b", "algebra": "alg", "states": ["b"], "rows": {}})
    assert [f["key"] for f in loaded.export_new()] == ["b"]


def test_load_missing_file_is_cold_start(tmp_path):
    store = SolverStore()
    store.load(str(tmp_path / "nope.json"))
    assert len(store) == 0


def test_schema_mismatch_is_clean_cold_start(tmp_path):
    # any other schema version (older *or* newer) loads as an empty
    # store: starting cold is always correct, serving mis-keyed
    # fragments is not.  from_dict stays strict for programmatic use.
    for version in (1, 999):
        path = tmp_path / ("schema-%d.json" % version)
        path.write_text(json.dumps({"v": version, "fragments": []}))
        store = SolverStore().load(str(path))
        assert len(store) == 0
    with pytest.raises(ValueError):
        SolverStore().from_dict({"v": 999, "fragments": []})


def test_v1_snapshot_with_stale_pattern_key_is_ignored(tmp_path):
    # adversarial: a v1-era snapshot carrying a fragment keyed under a
    # pattern text whose meaning changed at v2 (``\b`` outside a class
    # is now a word boundary, not an error/backspace).  The version
    # gate must discard the file wholesale — before fragment keys are
    # even looked at — and the lookaround query then runs cold and
    # still gets the right verdict.
    path = tmp_path / "store.json"
    path.write_text(json.dumps({
        "v": 1,
        "fragments": [{
            "algebra": "interval:127",
            "key": "\\ba",
            "states": [["?", []]],
            "rows": {},
        }],
    }))
    store = SolverStore().load(str(path))
    assert len(store) == 0
    builder, _, result = _solve_capturing(store, r"\ba")
    assert result.is_sat
    from repro.regex.semantics import matches
    assert matches(builder.algebra, parse(builder, r"\ba"), result.witness)


def test_malformed_fragment_rejected():
    with pytest.raises(ValueError):
        SolverStore().from_dict(
            {"v": STORE_SCHEMA_VERSION, "fragments": [{"nonsense": 1}]}
        )
    with pytest.raises(ValueError):
        SolverStore().from_dict([1, 2, 3])


# -- engine integration ------------------------------------------------------


def test_warm_solve_matches_cold_verdict_and_witness():
    store = SolverStore()
    patterns = ["(a|b)*abb", "~(a*)&(a|b)+", "(ab){2,6}c?",
                "a{2,4}&~(.*b.*)", "[]", "()"]
    cold = [_solve_capturing(store, p)[2] for p in patterns]
    warm = [_solve_capturing(store, p)[2] for p in patterns]
    for c, w in zip(cold, warm):
        assert c.status == w.status
        assert c.witness == w.witness
    assert store.hits > 0


def test_store_hits_reported_in_stats():
    store = SolverStore()
    _solve_capturing(store, "(a|b)*abb")
    _, _, result = _solve_capturing(store, "(a|b)*abb")
    assert result.stats.store_hits == 1
    assert result.stats.store_misses == 0
    assert result.stats["lifetime"]["store_hits"] == 1


def test_store_metrics_counters():
    store = SolverStore()
    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(builder, store=store)
    solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    snapshot = solver.obs.metrics.snapshot()
    assert snapshot.get("store.misses") == 1
    # second query hits the in-process warm rows via the store
    assert snapshot.get("store.hits") == 1


# -- compaction vs pinning (the adversarial satellite) -----------------------


def _churn(solver, builder, rng_range):
    """Interleave garbage queries that inflate the caches enough to
    trip the compaction watermark repeatedly."""
    for i in rng_range:
        noise = parse(
            builder, "(a|b){%d,%d}(c|d)*%s" % (i % 3, i % 3 + 2, "e" * (i % 4))
        )
        solver.is_satisfiable(noise)


def test_compaction_keeps_store_entries_warm():
    store = SolverStore()
    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(
        builder, store=store,
        compaction=CompactionPolicy(max_entries=60, min_retained=1),
    )
    hot = "(a|b)*abb"
    first = solver.is_satisfiable(parse(builder, hot))
    compactions_before = solver.state.obs.metrics.snapshot().get(
        "cache.compactions", 0
    )
    _churn(solver, builder, range(12))
    compactions = solver.state.obs.metrics.snapshot().get(
        "cache.compactions", 0
    )
    assert compactions > compactions_before, "churn never tripped compaction"
    # the invariant: every warm-row node survived compaction as the
    # canonical interned node for its pattern — no stale-uid clone
    for node in solver._warm_rows:
        text = to_pattern(node, builder.algebra)
        assert parse(builder, text) is node, (
            "stale-uid resurrection: %r re-interned to a different node "
            "after compaction" % text
        )
    again = solver.is_satisfiable(parse(builder, hot))
    assert again.status == first.status
    assert again.witness == first.witness
    assert again.stats.store_hits == 1, (
        "compaction turned a warm pattern cold"
    )


def test_compaction_without_store_still_retires_entries():
    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(
        builder, compaction=CompactionPolicy(max_entries=60, min_retained=1),
    )
    _churn(solver, builder, range(12))
    retired = solver.state.obs.metrics.snapshot().get(
        "cache.retired_entries", 0
    )
    assert retired > 0


def test_store_roots_pin_exactly_the_warm_rows():
    store = SolverStore()
    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(builder, store=store)
    solver.is_satisfiable(parse(builder, "(a|b)*abb"))
    roots = solver._store_roots()
    assert roots, "capture left no warm rows to pin"
    nodes = set(solver._warm_rows)
    for node, rows in solver._warm_rows.items():
        for _guard, targets in rows:
            nodes.update(targets)
    assert set(r.uid for r in roots) == set(n.uid for n in nodes)
