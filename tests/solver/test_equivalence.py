"""Bisimulation-based equivalence: agreement with the emptiness-based
reduction, and the up-to-congruence speedup."""

import pytest
from hypothesis import given, settings

from repro.regex import parse
from repro.regex.semantics import Matcher
from repro.solver import Budget, RegexSolver
from repro.solver.equivalence import BisimulationChecker
from tests.strategies import extended_regexes

EQUIV_PAIRS = [
    ("(a|b)*", "(a*b*)*"),
    ("a*", "a*a*"),
    ("~(~(ab))", "ab"),
    ("(ab)*a", "a(ba)*"),
    ("a*&b*", "()"),
    ("~(a*)|a*", ".*"),
    ("(a|b){2}", "aa|ab|ba|bb"),
]

INEQUIV_PAIRS = [
    ("a*b*", "(a|b)*"),
    ("(ab)+", "(ab)*"),
    ("~(a)", ".*"),
    ("a{2,4}", "a{2,5}"),
    (".*ab.*", ".*ba.*"),
]


@pytest.fixture
def checker(bitset_builder):
    return BisimulationChecker(bitset_builder)


@pytest.mark.parametrize("left,right", EQUIV_PAIRS)
def test_equivalent_pairs(checker, bitset_builder, left, right):
    result = checker.equivalent(
        parse(bitset_builder, left), parse(bitset_builder, right)
    )
    assert result.is_sat, (left, right)


@pytest.mark.parametrize("left,right", INEQUIV_PAIRS)
def test_inequivalent_pairs_with_witness(checker, bitset_builder,
                                         bitset_matcher, left, right):
    l = parse(bitset_builder, left)
    r = parse(bitset_builder, right)
    result = checker.equivalent(l, r)
    assert result.is_unsat
    w = result.witness
    assert bitset_matcher.matches(l, w) != bitset_matcher.matches(r, w)


def test_agrees_with_symmetric_difference(bitset_builder):
    checker = BisimulationChecker(bitset_builder)
    solver = RegexSolver(bitset_builder)

    @settings(max_examples=80, deadline=None)
    @given(extended_regexes(bitset_builder, max_leaves=5),
           extended_regexes(bitset_builder, max_leaves=5))
    def check(l, r):
        via_bisim = checker.equivalent(l, r, Budget(fuel=50000))
        via_empty = solver.equivalent(l, r, Budget(fuel=50000))
        assert via_bisim.status == via_empty.status

    check()


def test_containment_via_union(checker, bitset_builder):
    sub = parse(bitset_builder, "(ab){2,3}")
    sup = parse(bitset_builder, "(ab)+")
    assert checker.contains(sub, sup).is_sat
    assert checker.contains(sup, sub).is_unsat


def test_budget_respected(checker, ascii_builder):
    checker = BisimulationChecker(ascii_builder)
    l = parse(ascii_builder, "~(.*a.{20})")
    r = parse(ascii_builder, "~(.*b.{20})")
    result = checker.equivalent(l, r, Budget(fuel=3))
    assert result.status in ("unsat", "unknown")


def test_identical_regexes_trivial(checker, bitset_builder):
    r = parse(bitset_builder, "(a|b)*0")
    result = checker.equivalent(r, r, Budget(fuel=2))
    assert result.is_sat  # identity short-circuits before any work
