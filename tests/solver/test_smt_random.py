"""Random-formula soundness: the mini-SMT layer against brute force.

Random Boolean combinations of membership/length/equality atoms over a
small alphabet; sat answers must produce checkable models, unsat
answers must survive exhaustive search over short strings.
"""

from hypothesis import given, settings, strategies as st

from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.solver import Budget, SmtSolver
from repro.solver import formula as F

PATTERNS = ["a*", "(ab)*", "a.*", ".*b", "(a|b){1,3}", ".*0.*", "0?1?"]
VARS = ["x", "y"]


def atoms(builder):
    membership = st.builds(
        lambda var, pattern: F.InRe(var, parse(builder, pattern)),
        st.sampled_from(VARS), st.sampled_from(PATTERNS),
    )
    length = st.builds(
        lambda var, op, n: F.LenCmp(var, op, n),
        st.sampled_from(VARS), st.sampled_from(["=", "<=", ">="]),
        st.integers(0, 3),
    )
    equality = st.builds(
        lambda var, value: F.EqConst(var, value),
        st.sampled_from(VARS), st.sampled_from(["", "a", "ab", "b0"]),
    )
    return st.one_of(membership, length, equality)


def formulas(builder):
    return st.recursive(
        atoms(builder),
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(
                lambda cs: F.And(tuple(cs))
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda cs: F.Or(tuple(cs))
            ),
            children.map(F.Not),
        ),
        max_leaves=6,
    )


def brute_force_sat(solver, formula, max_len=3):
    """Exhaustive model search over short strings."""
    universe = list(enumerate_strings("ab01", max_len))
    live_vars = sorted(F.variables(formula)) or ["x"]

    def assign(index, model):
        if index == len(live_vars):
            return solver.check_model(formula, model)
        for value in universe:
            model[live_vars[index]] = value
            if assign(index + 1, model):
                return True
        return False

    return assign(0, {})


def test_random_formulas_sound(bitset_builder):
    solver = SmtSolver(bitset_builder)

    @settings(max_examples=60, deadline=None)
    @given(formulas(bitset_builder))
    def check(formula):
        result = solver.solve(formula, budget=Budget(fuel=100000))
        if result.is_sat:
            assert solver.check_model(formula, result.model)
        elif result.is_unsat:
            assert not brute_force_sat(solver, formula, max_len=2)

    check()


def test_random_formula_completeness_on_short_witnesses(bitset_builder):
    """If a short model exists, the solver must answer sat."""
    solver = SmtSolver(bitset_builder)

    @settings(max_examples=40, deadline=None)
    @given(formulas(bitset_builder))
    def check(formula):
        if brute_force_sat(solver, formula, max_len=2):
            result = solver.solve(formula, budget=Budget(fuel=200000))
            assert result.is_sat

    check()
