"""The derivative-based decision procedure (Theorem 5.2 in action)."""

import pytest
from hypothesis import given, settings

from repro.errors import BudgetExceeded
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.solver import Budget, RegexSolver
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes

KNOWN = [
    (r"(.*0.*)&~(.*01.*)", "sat"),
    (r"(.*0.*)&~(.*0.*)", "unsat"),
    (r"~(a*)&a*", "unsat"),
    (r"(ab)*&(ba)*", "sat"),          # both contain epsilon
    (r"(ab)+&(ba)+", "unsat"),
    (r"a{3,5}&~(a{2,6})", "unsat"),
    (r"a{3,9}&~(a{3,8})", "sat"),
    (r"(a|b){4}&.*00.*", "unsat"),
    (r"~(())&~(.)&.{0,1}", "unsat"),
    (r".*01.*&(0|1){3}", "sat"),
]


@pytest.mark.parametrize("pattern,expected", KNOWN)
def test_known_instances(bitset_solver, bitset_builder, pattern, expected):
    result = bitset_solver.is_satisfiable(parse(bitset_builder, pattern))
    assert result.status == expected


def test_witnesses_are_members(bitset_solver, bitset_builder, bitset_matcher):
    for pattern, expected in KNOWN:
        if expected != "sat":
            continue
        r = parse(bitset_builder, pattern)
        result = bitset_solver.is_satisfiable(r)
        assert bitset_matcher.matches(r, result.witness)


def test_agrees_with_exhaustive_oracle(bitset_builder):
    solver = RegexSolver(bitset_builder)
    matcher = Matcher(bitset_builder.algebra)

    @settings(max_examples=150, deadline=None)
    @given(extended_regexes(bitset_builder))
    def check(r):
        result = solver.is_satisfiable(r, Budget(fuel=50000))
        # oracle: search strings up to a length that covers the state
        # space depth for these small regexes
        has_short_witness = any(
            matcher.matches(r, s) for s in enumerate_strings(ALPHABET, 4)
        )
        if result.is_sat:
            assert matcher.matches(r, result.witness)
        elif has_short_witness:
            raise AssertionError("solver says unsat but witness exists")

    check()


def test_epsilon_witness(bitset_solver, bitset_builder):
    result = bitset_solver.is_satisfiable(parse(bitset_builder, "a*"))
    assert result.is_sat and result.witness == ""


def test_containment_holds(bitset_solver, bitset_builder):
    sub = parse(bitset_builder, "(ab)+")
    sup = parse(bitset_builder, "(ab)*")
    assert bitset_solver.contains(sub, sup).is_sat


def test_containment_counterexample(bitset_solver, bitset_builder, bitset_matcher):
    sub = parse(bitset_builder, "(ab)*")
    sup = parse(bitset_builder, "(ab)+")
    result = bitset_solver.contains(sub, sup)
    assert result.is_unsat
    assert bitset_matcher.matches(sub, result.witness)
    assert not bitset_matcher.matches(sup, result.witness)


def test_equivalence(bitset_solver, bitset_builder):
    left = parse(bitset_builder, "(a|b)*")
    right = parse(bitset_builder, "(a*b*)*")
    assert bitset_solver.equivalent(left, right).is_sat


def test_inequivalence_distinguishing_string(bitset_solver, bitset_builder,
                                             bitset_matcher):
    left = parse(bitset_builder, "a*b*")
    right = parse(bitset_builder, "(a|b)*")
    result = bitset_solver.equivalent(left, right)
    assert result.is_unsat
    s = result.witness
    assert bitset_matcher.matches(left, s) != bitset_matcher.matches(right, s)


def test_budget_exhaustion_returns_unknown(ascii_builder):
    solver = RegexSolver(ascii_builder)
    r = parse(ascii_builder, "~(.*a.{40})&~(.*b.{40})&(a|b){60}")
    result = solver.is_satisfiable(r, Budget(fuel=5))
    assert result.is_unknown
    assert "fuel" in result.reason


def test_graph_persists_across_queries(bitset_builder):
    solver = RegexSolver(bitset_builder)
    r = parse(bitset_builder, "(a&b)(a|b)*")  # a&b is empty: unsat
    assert solver.is_satisfiable(r).is_unsat
    # second query over the same dead regex hits the bot rule at once
    result = solver.is_satisfiable(r, Budget(fuel=1))
    assert result.is_unsat


def test_bfs_and_dfs_agree(bitset_builder):
    dfs = RegexSolver(bitset_builder, strategy="dfs")
    bfs = RegexSolver(bitset_builder, strategy="bfs")
    for pattern, expected in KNOWN:
        r = parse(bitset_builder, pattern)
        assert dfs.is_satisfiable(r).status == expected
        assert bfs.is_satisfiable(r).status == expected


def test_bfs_finds_shortest_witness(bitset_builder):
    solver = RegexSolver(bitset_builder, strategy="bfs")
    r = parse(bitset_builder, "a{2,7}")
    assert solver.is_satisfiable(r).witness == "aa"


def test_bad_strategy_rejected(bitset_builder):
    with pytest.raises(ValueError):
        RegexSolver(bitset_builder, strategy="zigzag")


def test_is_empty_view(bitset_solver, bitset_builder):
    assert bitset_solver.is_empty(parse(bitset_builder, "a&b")).is_sat
    assert bitset_solver.is_empty(parse(bitset_builder, "a|b")).is_unsat


def test_membership_shortcut(bitset_solver, bitset_builder):
    r = parse(bitset_builder, "(.*0.*)&~(.*01.*)")
    assert bitset_solver.membership("0a", r)
    assert not bitset_solver.membership("01", r)


def test_stats_reported(bitset_solver, bitset_builder):
    result = bitset_solver.is_satisfiable(parse(bitset_builder, "ab(a|b)"))
    assert result.stats["vertices"] >= 1
    assert "sat_checks" in result.stats
