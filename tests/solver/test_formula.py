"""Formula atoms, NNF, and the Boolean-benchmark classifier."""

import pytest

from repro.errors import SmtLibError
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.solver import formula as F


def atom_language(builder, atom, max_len=4, alphabet="ab01"):
    matcher = Matcher(builder.algebra)
    regex = atom.to_regex(builder)
    return {
        s for s in enumerate_strings(alphabet, max_len)
        if matcher.matches(regex, s)
    }


class TestAtomsToRegex:
    def test_in_re(self, bitset_builder):
        r = parse(bitset_builder, "(ab)*")
        atom = F.InRe("x", r)
        assert atom.to_regex(bitset_builder) is r

    def test_eq_const(self, bitset_builder):
        assert atom_language(bitset_builder, F.EqConst("x", "ab")) == {"ab"}

    def test_contains(self, bitset_builder):
        lang = atom_language(bitset_builder, F.Contains("x", "01"), max_len=3)
        assert lang == {s for s in enumerate_strings("ab01", 3) if "01" in s}

    def test_prefixof(self, bitset_builder):
        lang = atom_language(bitset_builder, F.PrefixOf("a", "x"), max_len=2)
        assert lang == {s for s in enumerate_strings("ab01", 2)
                        if s.startswith("a")}

    def test_suffixof(self, bitset_builder):
        lang = atom_language(bitset_builder, F.SuffixOf("1", "x"), max_len=2)
        assert lang == {s for s in enumerate_strings("ab01", 2)
                        if s.endswith("1")}

    @pytest.mark.parametrize("op,bound,predicate", [
        ("=", 2, lambda n: n == 2),
        ("<", 2, lambda n: n < 2),
        ("<=", 2, lambda n: n <= 2),
        (">", 2, lambda n: n > 2),
        (">=", 2, lambda n: n >= 2),
        ("!=", 2, lambda n: n != 2),
    ])
    def test_length_ops(self, bitset_builder, op, bound, predicate):
        lang = atom_language(bitset_builder, F.LenCmp("x", op, bound), max_len=4)
        expected = {s for s in enumerate_strings("ab01", 4) if predicate(len(s))}
        assert lang == expected

    def test_length_edge_cases(self, bitset_builder):
        b = bitset_builder
        assert F.LenCmp("x", "=", -1).to_regex(b) is b.empty
        assert F.LenCmp("x", "<", 0).to_regex(b) is b.empty
        assert F.LenCmp("x", "!=", -1).to_regex(b) is b.full
        assert F.LenCmp("x", ">=", -3).to_regex(b) is b.full

    def test_bad_length_op_rejected(self):
        with pytest.raises(SmtLibError):
            F.LenCmp("x", "~~", 2)


class TestStructure:
    def test_operators_build_nodes(self):
        a = F.EqConst("x", "a")
        b = F.EqConst("y", "b")
        assert isinstance(a & b, F.And)
        assert isinstance(a | b, F.Or)
        assert isinstance(~a, F.Not)

    def test_variables(self):
        f = F.And((F.InRe("x", None), F.Not(F.LenCmp("y", "=", 1))))
        assert F.variables(f) == {"x", "y"}

    def test_atoms_collects_all(self):
        f = F.Or((F.EqConst("x", "a"), F.Not(F.EqConst("x", "b"))))
        assert len(F.atoms(f)) == 2

    def test_nnf_pushes_negation(self):
        f = F.Not(F.And((F.EqConst("x", "a"), F.EqConst("y", "b"))))
        normalized = F.nnf(f)
        assert isinstance(normalized, F.Or)
        assert all(isinstance(c, F.Not) for c in normalized.children)

    def test_nnf_double_negation(self):
        atom = F.EqConst("x", "a")
        assert F.nnf(F.Not(F.Not(atom))) is atom

    def test_nnf_constants(self):
        assert F.nnf(F.Not(F.TRUE)) is F.FALSE
        assert F.nnf(F.Not(F.FALSE)) is F.TRUE


class TestBooleanClassifier:
    def test_single_membership_is_not_boolean(self, bitset_builder):
        r = parse(bitset_builder, "a*")
        assert not F.is_boolean_combination(F.InRe("x", r))

    def test_two_memberships_same_var(self, bitset_builder):
        r = parse(bitset_builder, "a*")
        f = F.And((F.InRe("x", r), F.Not(F.InRe("x", r))))
        assert F.is_boolean_combination(f)

    def test_memberships_on_distinct_vars(self, bitset_builder):
        r = parse(bitset_builder, "a*")
        f = F.And((F.InRe("x", r), F.InRe("y", r)))
        assert not F.is_boolean_combination(f)

    def test_length_atoms_do_not_count(self, bitset_builder):
        r = parse(bitset_builder, "a*")
        f = F.And((F.InRe("x", r), F.LenCmp("x", "<=", 5),
                   F.Contains("x", "a")))
        assert not F.is_boolean_combination(f)
