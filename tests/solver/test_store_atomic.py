"""Atomic store persistence and concurrent-writer tolerance.

The daemon and the CLI now routinely share one ``--store FILE``;
these tests pin the contract that makes that safe: saves are atomic
(readers never see a torn file), ``save_merged`` folds in a concurrent
writer's fragments instead of clobbering them, and a two-process
hammering session always leaves a loadable file."""

import json
import multiprocessing
import os

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.solver.engine import RegexSolver
from repro.solver.result import Budget
from repro.solver.store import STORE_SCHEMA_VERSION, SolverStore


def fragment_for(pattern):
    """Capture a real fragment by solving ``pattern`` with a store."""
    builder = RegexBuilder(IntervalAlgebra(127))
    store = SolverStore()
    solver = RegexSolver(builder, store=store)
    solver.is_satisfiable(
        parse(builder, pattern), Budget(fuel=100000, seconds=5.0)
    )
    fragments = store.export_new()
    assert fragments, "no fragment captured for %r" % pattern
    return fragments


class TestAtomicSave:
    def test_save_roundtrips(self, tmp_path):
        path = tmp_path / "store.json"
        store = SolverStore()
        store.merge(fragment_for("a*b"))
        store.save(str(path))
        loaded = SolverStore()
        loaded.load(str(path))
        assert len(loaded) == len(store)

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "store.json"
        store = SolverStore()
        store.merge(fragment_for("a*b"))
        store.save(str(path))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["store.json"]

    def test_save_replaces_not_truncates(self, tmp_path):
        # the old complete file must remain readable at every instant:
        # write once, then overwrite, asserting the inode changed (a
        # rename landed, not an in-place truncate+write)
        path = tmp_path / "store.json"
        store = SolverStore()
        store.merge(fragment_for("a*b"))
        store.save(str(path))
        inode_before = os.stat(str(path)).st_ino
        store.merge(fragment_for("a|b"))
        store.save(str(path))
        assert os.stat(str(path)).st_ino != inode_before
        loaded = SolverStore().load(str(path))
        assert len(loaded) == len(store)

    def test_failed_serialization_leaves_target_intact(self, tmp_path):
        path = tmp_path / "store.json"
        good = SolverStore()
        good.merge(fragment_for("a*b"))
        good.save(str(path))
        before = path.read_text()
        bad = SolverStore()
        bad._fragments[("alg", "key")] = {"unserializable": object()}
        with pytest.raises(TypeError):
            bad.save(str(path))
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["store.json"]


class TestSaveMerged:
    def test_concurrent_writer_fragments_survive(self, tmp_path):
        path = str(tmp_path / "store.json")
        # writer A saves its fragment...
        a = SolverStore()
        a.merge(fragment_for("a*b"))
        a.save(path)
        # ...writer B, loaded before A's save (i.e. knowing nothing of
        # it), saves via the merge path: A's fragment must survive
        b = SolverStore()
        b.merge(fragment_for("a|b"))
        b.save_merged(path)
        final = SolverStore().load(path)
        assert len(final) == len(a._fragments) + len(b._fragments) - len(
            set(a._fragments) & set(b._fragments)
        )
        for key in a._fragments:
            assert key in final._fragments
        for key in b._fragments:
            assert key in final._fragments

    def test_merge_tolerates_a_torn_file(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text('{"v": 1, "fragments": [{"key": "x"')  # torn
        store = SolverStore()
        store.merge(fragment_for("a*b"))
        store.save_merged(str(path))  # must not raise
        final = SolverStore().load(str(path))
        assert len(final) == len(store)

    def test_merge_tolerates_future_schema(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"v": 999, "fragments": []}))
        store = SolverStore()
        store.merge(fragment_for("a*b"))
        store.save_merged(str(path))
        final = SolverStore().load(str(path))
        assert len(final) == len(store)


def _hammer(path, patterns, rounds, barrier):
    """One writer process: repeatedly load-merge-save real fragments."""
    fragments = []
    for pattern in patterns:
        fragments.extend(fragment_for(pattern))
    barrier.wait()
    for _ in range(rounds):
        store = SolverStore()
        store.merge(fragments)
        store.save_merged(path)


class TestTwoWriterStress:
    def test_two_processes_hammering_one_file(self, tmp_path):
        path = str(tmp_path / "store.json")
        ctx = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        a_patterns = ["a*b", "(ab){2,4}c", "[a-f]{2,5}&~(.*cc.*)"]
        b_patterns = ["a|b", "(a|b)*abb", "~(a*)&.*"]
        procs = [
            ctx.Process(target=_hammer,
                        args=(path, pats, 25, barrier))
            for pats in (a_patterns, b_patterns)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120.0)
            assert proc.exitcode == 0
        # the file is valid JSON (atomic replace: never torn) ...
        final = SolverStore()
        final.load(path)
        data = json.loads(open(path, "r", encoding="utf-8").read())
        assert data["v"] == STORE_SCHEMA_VERSION
        # ... and both writers' fragments survived the race (each
        # writer's last save_merged folded the other's work in)
        expected = SolverStore()
        for pattern in a_patterns + b_patterns:
            expected.merge(fragment_for(pattern))
        for key in expected._fragments:
            assert key in final._fragments, (
                "fragment lost in the two-writer race: %r" % (key,)
            )
        # no stray temp files
        assert sorted(p.name for p in tmp_path.iterdir()) == ["store.json"]
