"""Engine hardening: resource exhaustion during solving must surface
as a typed ``unknown`` result (with a populated ``error`` field), never
as a propagating ``RecursionError``/``MemoryError``."""

import pytest

from repro.solver import formula as F
from repro.solver.engine import RegexSolver
from repro.solver.result import Budget
from repro.solver.smt import SmtSolver


@pytest.fixture(params=[RecursionError, MemoryError])
def blown_solver(request, ascii_builder, monkeypatch):
    """A solver whose derivative engine dies with a resource error."""
    solver = RegexSolver(ascii_builder)

    def blow_up(regex):
        raise request.param("injected for test")

    monkeypatch.setattr(solver.engine, "derivative", blow_up)
    return solver


class TestRegexSolverHardening:
    def test_resource_error_maps_to_unknown(self, ascii_builder, blown_solver):
        result = blown_solver.is_satisfiable(
            ascii_builder.plus(ascii_builder.char("a"))
        )
        assert result.is_unknown
        assert result.error is not None
        assert result.error["type"] in ("RecursionError", "MemoryError")
        assert result.error["message"]
        assert result.error["type"] in result.reason

    def test_error_survives_to_dict(self, ascii_builder, blown_solver):
        result = blown_solver.is_satisfiable(
            ascii_builder.plus(ascii_builder.char("a"))
        )
        dumped = result.to_dict()
        assert dumped["status"] == "unknown"
        assert dumped["error"]["type"] == result.error["type"]

    def test_tracer_records_the_error(self, ascii_builder, monkeypatch):
        from repro.obs import Observability

        obs = Observability.tracing()
        solver = RegexSolver(ascii_builder, obs=obs)
        monkeypatch.setattr(
            solver.engine, "derivative",
            lambda regex: (_ for _ in ()).throw(RecursionError("deep")),
        )
        result = solver.is_satisfiable(ascii_builder.plus(ascii_builder.char("a")))
        assert result.is_unknown
        explore = [
            e for e in obs.tracer.events if e["name"] == "solver.explore"
        ]
        assert explore
        assert explore[0]["args"].get("error") == "RecursionError"

    def test_derived_queries_propagate_unknown(self, ascii_builder, blown_solver):
        sub = ascii_builder.char("a")
        sup = ascii_builder.char("b")
        result = blown_solver.contains(sub, sup)
        assert result.is_unknown
        assert result.error is not None


class TestSmtSolverHardening:
    def test_resource_error_in_branch(self, ascii_builder, blown_solver):
        smt = SmtSolver(ascii_builder, blown_solver)
        phi = F.InRe("x", ascii_builder.plus(ascii_builder.char("a")))
        result = smt.solve(phi)
        assert result.is_unknown

    def test_resource_error_outside_engine(self, ascii_builder, monkeypatch):
        smt = SmtSolver(ascii_builder)
        monkeypatch.setattr(
            "repro.solver.smt._disjuncts",
            lambda node: (_ for _ in ()).throw(RecursionError("deep nnf")),
        )
        result = smt.solve(F.InRe("x", ascii_builder.char("a")))
        assert result.is_unknown
        assert result.error["type"] == "RecursionError"

    def test_check_is_an_alias_for_solve(self, ascii_builder):
        smt = SmtSolver(ascii_builder)
        result = smt.check(F.InRe("x", ascii_builder.char("a")), budget=Budget())
        assert result.is_sat
        assert result.model == {"x": "a"}


class TestDeepRegexEndToEnd:
    def test_deeply_nested_pattern_never_crashes(self, ascii_builder):
        """A 600-deep group both parses and solves without an uncaught
        interpreter error (the original crash reproducer)."""
        from repro.regex import parse

        regex = parse(ascii_builder, "(" * 600 + "a" + ")" * 600)
        solver = RegexSolver(ascii_builder)
        result = solver.is_satisfiable(regex, Budget(fuel=10000, seconds=5.0))
        # the nested groups collapse to the single character, so this
        # must actually be decided sat
        assert result.is_sat
        assert result.witness == "a"
