"""The literal Figure 3 propagation engine: agreement with the
optimized solver, and rule-firing accounting."""

from hypothesis import given, settings

from repro.regex import parse
from repro.solver import Budget, PropagationEngine, RegexSolver, RuleTrace
from repro.solver.result import UNKNOWN
from tests.strategies import extended_regexes


def test_agrees_with_engine_on_random_regexes(bitset_builder):
    solver = RegexSolver(bitset_builder)
    rules = PropagationEngine(solver)

    @settings(max_examples=120, deadline=None)
    @given(extended_regexes(bitset_builder))
    def check(r):
        fast = solver.is_satisfiable(r, Budget(fuel=50000))
        slow = rules.solve(r, Budget(fuel=50000))
        assert fast.status == slow.status

    check()


def test_witness_is_valid(bitset_builder, bitset_matcher):
    solver = RegexSolver(bitset_builder)
    rules = PropagationEngine(solver)
    r = parse(bitset_builder, "(.*0.*)&~(.*01.*)&.{2,}")
    result = rules.solve(r)
    assert result.is_sat
    assert bitset_matcher.matches(r, result.witness)


def test_der_fires_on_every_expansion(bitset_builder):
    solver = RegexSolver(bitset_builder)
    rules = PropagationEngine(solver)
    trace = RuleTrace()
    rules.solve(parse(bitset_builder, "ab"), trace=trace)
    assert trace.counts["der"] >= 2
    assert trace.counts["upd"] >= 1
    assert trace.counts["ere"] >= 1


def test_ite_fires_on_conditionals(bitset_builder):
    solver = RegexSolver(bitset_builder)
    rules = PropagationEngine(solver)
    trace = RuleTrace()
    rules.solve(parse(bitset_builder, "a|0"), trace=trace)
    assert trace.counts.get("ite", 0) >= 1


def test_bot_fires_on_dead_regexes(bitset_builder):
    solver = RegexSolver(bitset_builder)
    rules = PropagationEngine(solver)
    r = parse(bitset_builder, "(a&b)a*")  # empty head: dead immediately
    first = rules.solve(r)
    assert first.is_unsat
    trace = RuleTrace()
    second = rules.solve(r, trace=trace)
    assert second.is_unsat
    assert trace.counts.get("bot", 0) >= 1


def test_budget_exhaustion(ascii_builder):
    solver = RegexSolver(ascii_builder)
    rules = PropagationEngine(solver)
    r = parse(ascii_builder, "~(.*a.{30})&~(.*b.{30})&(a|b){40}")
    result = rules.solve(r, Budget(fuel=3))
    assert result.status == UNKNOWN


def test_trace_repr_and_limit():
    trace = RuleTrace(limit=2)
    for _ in range(5):
        trace.fire("der", "detail")
    assert trace.counts["der"] == 5
    assert len(trace.entries) == 2
    assert "der=5" in repr(trace)
