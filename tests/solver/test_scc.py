"""Incremental SCC maintenance, cross-checked against Tarjan on the
accumulated edge set."""

from hypothesis import given, settings, strategies as st

from repro.solver.scc import IncrementalSCC


def tarjan_sccs(nodes, edges):
    """Reference: classic iterative Tarjan."""
    adjacency = {n: [] for n in nodes}
    for a, b in edges:
        adjacency[a].append(b)
    index = {}
    low = {}
    on_stack = set()
    stack = []
    result = {}
    counter = [0]

    def strongconnect(v):
        work = [(v, 0)]
        while work:
            node, pi = work.pop()
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            for i in range(pi, len(adjacency[node])):
                w = adjacency[node][i]
                if w not in index:
                    work.append((node, i + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if recurse:
                continue
            if low[node] == index[node]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                rep = min(component)
                for w in component:
                    result[w] = rep
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for n in nodes:
        if n not in index:
            strongconnect(n)
    return result


edge_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=30
)


@settings(max_examples=200, deadline=None)
@given(edge_lists)
def test_matches_tarjan(edges):
    scc = IncrementalSCC()
    nodes = set()
    for a, b in edges:
        nodes.add(a)
        nodes.add(b)
        scc.add_edge(a, b)
    reference = tarjan_sccs(nodes, edges)
    for a in nodes:
        for b in nodes:
            assert scc.same_component(a, b) == (reference[a] == reference[b])


def test_simple_cycle_collapse():
    scc = IncrementalSCC()
    scc.add_edge(1, 2)
    scc.add_edge(2, 3)
    assert not scc.same_component(1, 3)
    merged = scc.add_edge(3, 1)
    assert merged
    assert scc.same_component(1, 3) and scc.same_component(2, 3)


def test_self_loop_is_noop():
    scc = IncrementalSCC()
    scc.add_node(5)
    assert scc.add_edge(5, 5) == set()
    assert scc.same_component(5, 5)


def test_successors_exclude_own_component():
    scc = IncrementalSCC()
    scc.add_edge(1, 2)
    scc.add_edge(2, 1)
    scc.add_edge(1, 3)
    assert scc.successors(2) == {scc.find(3)}
