"""The regex reachability graph: Alive/Dead semantics of Section 5."""

import pytest

from repro.solver.graph import RegexGraph


@pytest.fixture
def graph():
    # vertices are strings; "final" vertices end with '!'
    return RegexGraph(is_final=lambda v: v.endswith("!"))


def test_final_vertex_is_alive(graph):
    graph.add_vertex("win!")
    assert graph.is_alive("win!")
    assert graph.is_final("win!")


def test_alive_propagates_backwards(graph):
    graph.add_vertex("a")
    graph.update("a", ["b"])
    graph.update("b", ["c!"])
    assert graph.is_alive("a") and graph.is_alive("b")


def test_alive_propagates_through_late_edges(graph):
    graph.add_vertex("a")
    graph.update("a", ["b"])
    assert not graph.is_alive("a")
    graph.update("b", ["ok!"])
    assert graph.is_alive("a")


def test_dead_requires_closed(graph):
    graph.add_vertex("a")
    graph.update("a", ["b"])
    # b is not closed yet: a cannot be declared dead
    assert not graph.is_dead("a")
    graph.update("b", [])
    assert graph.is_dead("a") and graph.is_dead("b")


def test_dead_cycle(graph):
    graph.add_vertex("x")
    graph.update("x", ["y"])
    graph.update("y", ["x"])
    assert graph.is_dead("x") and graph.is_dead("y")


def test_alive_cycle_not_dead(graph):
    graph.add_vertex("x")
    graph.update("x", ["y"])
    graph.update("y", ["x", "exit!"])
    assert not graph.is_dead("x")
    assert graph.is_alive("x")


def test_dead_is_cached_and_permanent(graph):
    graph.add_vertex("a")
    graph.update("a", [])
    assert graph.is_dead("a")
    assert graph.dead_count == 1
    assert graph.is_dead("a")


def test_update_is_idempotent_once_closed(graph):
    graph.add_vertex("a")
    graph.update("a", ["b"])
    graph.update("a", ["c!"])  # ignored: a is closed
    assert "c!" not in graph.successors("a")


def test_unknown_vertex_not_dead(graph):
    assert not graph.is_dead("nowhere")


def test_stats(graph):
    graph.add_vertex("a")
    graph.update("a", ["b!", "c"])
    stats = graph.stats()
    assert stats["vertices"] == 3
    assert stats["edges"] == 2
    assert stats["final"] == 1
    assert stats["closed"] == 1
    assert stats["alive"] >= 2


def test_same_scc(graph):
    graph.add_vertex("p")
    graph.update("p", ["q"])
    graph.update("q", ["p"])
    assert graph.same_scc("p", "q")


def test_len_and_contains(graph):
    graph.add_vertex("v")
    assert "v" in graph and len(graph) == 1
