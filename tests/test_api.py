"""Public API surface: the README quickstart must keep working."""

import repro
from repro import (
    Budget, IntervalAlgebra, RegexBuilder, RegexSolver, SmtSolver, parse,
    matches, to_pattern,
)


def test_version():
    assert repro.__version__


def test_quickstart_snippet():
    algebra = IntervalAlgebra()
    builder = RegexBuilder(algebra)
    solver = RegexSolver(builder)

    r = parse(builder, r"(.*\d.*)&~(.*01.*)")
    result = solver.is_satisfiable(r)
    assert result.is_sat
    assert matches(algebra, r, result.witness)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_smt_level_quickstart():
    builder = RegexBuilder(IntervalAlgebra())
    solver = SmtSolver(builder)
    f = repro.formula.And((
        repro.formula.InRe("s", parse(builder, r"\d{4}-[a-zA-Z]{3}-\d{2}")),
        repro.formula.InRe("s", parse(builder, "2020.*")),
    ))
    result = solver.solve(f, budget=Budget(fuel=100000))
    assert result.is_sat
    assert result.model["s"].startswith("2020-")


def test_pattern_printing_is_exposed():
    builder = RegexBuilder(IntervalAlgebra())
    r = parse(builder, "a{2,3}")
    assert to_pattern(r, builder.algebra) == "a{2,3}"


def test_smtlib_is_exposed():
    builder = RegexBuilder(IntervalAlgebra())
    result = repro.run_script(
        builder,
        '(set-logic QF_S)(declare-const x String)'
        '(assert (str.in_re x (re.+ (str.to_re "ok"))))(check-sat)',
    )
    assert result.is_sat and result.model["x"] == "ok"
