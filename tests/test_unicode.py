"""Unicode/BMP-specific behaviour: the paper's point (1) — regexes in
practice live over a symbolic Unicode alphabet, and solvers must not
enumerate it."""

from repro.alphabet import IntervalAlgebra, charclass
from repro.regex import RegexBuilder, parse, matches
from repro.solver import Budget, RegexSolver


def test_bmp_domain_size():
    algebra = IntervalAlgebra()
    assert algebra.count(algebra.top) == 0x10000


def test_digit_class_matches_nonascii_digits(bmp_builder):
    r = parse(bmp_builder, r"\d+")
    # Arabic-Indic, Devanagari, Thai, fullwidth digits
    for s in ("٠١٢", "०१२", "๑๒๓", "１２３", "123"):
        assert matches(bmp_builder.algebra, r, s), s
    assert not matches(bmp_builder.algebra, r, "abc")


def test_word_class_covers_scripts(bmp_builder):
    r = parse(bmp_builder, r"\w+")
    for s in ("hello", "привет", "γειά", "שלום", "你好"):
        assert matches(bmp_builder.algebra, r, s), s


def test_solving_never_enumerates_the_alphabet(bmp_builder):
    """A constraint over the full BMP solves in a handful of steps —
    the whole point of symbolic derivatives (contrast: naive
    per-character derivation would need 65536 branches per step)."""
    solver = RegexSolver(bmp_builder)
    r = parse(bmp_builder, r"(.*\d.*)&(.*\w.*)&~(.*\s.*)")
    result = solver.is_satisfiable(r, Budget(fuel=500))
    assert result.is_sat
    assert result.stats["fuel_used"] < 100
    assert result.stats["sat_checks"] < 2000


def test_negated_unicode_class_is_huge_but_cheap(bmp_builder):
    algebra = bmp_builder.algebra
    non_word = charclass.not_word(algebra)
    # tens of thousands of codepoints, one predicate object
    assert algebra.count(non_word) > 40000
    r = bmp_builder.plus(bmp_builder.pred(non_word))
    solver = RegexSolver(bmp_builder)
    result = solver.is_satisfiable(r)
    assert result.is_sat
    assert not algebra.member(result.witness[0], charclass.word(algebra))


def test_witnesses_prefer_printable(bmp_builder):
    solver = RegexSolver(bmp_builder)
    r = parse(bmp_builder, r"\w{5}")
    result = solver.is_satisfiable(r)
    assert result.witness.isprintable()


def test_supplementary_plane_domain():
    algebra = IntervalAlgebra(0x10FFFF)
    builder = RegexBuilder(algebra)
    emoji = builder.pred(algebra.from_ranges([(0x1F600, 0x1F64F)]))
    r = builder.plus(emoji)
    assert matches(algebra, r, "😀😁")
    solver = RegexSolver(builder)
    result = solver.is_satisfiable(builder.inter([r, builder.any_length(2, 2)]))
    assert result.is_sat and len(result.witness) == 2


def test_unicode_escape_in_patterns(bmp_builder):
    r = parse(bmp_builder, r"☃+")  # snowman
    assert matches(bmp_builder.algebra, r, "☃☃")
    assert not matches(bmp_builder.algebra, r, "x")
