"""Seeded differential fuzzing: derivative membership vs ``re``.

Generates random patterns restricted to the classical fragment both
engines understand (no intersection/complement, no lazy semantics
distinctions — we only test *membership*, which agrees for lazy and
greedy), parses each with our parser, and compares
:func:`repro.regex.semantics.matches` against ``re.fullmatch`` on a
pile of short strings plus strings sampled near the pattern.

The generator is seeded, so the suite is deterministic; the frozen
``REGRESSION_CORPUS`` below pins previously interesting cases
independently of the generator, making this a tier-1 regression suite
rather than a flake source.
"""

import random
import re
import sys

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.regex.printer import to_pattern
from repro.regex.semantics import Matcher, matches

ALPHABET = "ab01"
SEED = 0x5BD
N_PATTERNS = 120
N_STRINGS = 40
MAX_STRING_LEN = 6

#: Cases that earlier fuzz runs (or the satellite bug reports) found
#: interesting; frozen so they are re-checked forever.
REGRESSION_CORPUS = [
    "(a|b)*",
    "a{2,4}",
    "(ab){1,3}",
    "a?b+",
    "[ab]{0,3}",
    "(a{1,2})?",          # quantified loop under an outer quantifier
    "((a|b){2}|0)*1?",
    "a..b",
    "[^a]",
    "(0|1){3}",
    "(" * 60 + "a" + ")" * 60,   # nesting, shallow enough for re
    "a*b*a*",
    "(a?){4}",
    "[a-b0-1]+",
    # divergences the oracle found (PR 4): {,n} shorthand, numeric and
    # escape literal forms, and leading-] classes
    "a{,3}",
    "(ab){,2}",
    "a{,}b?",
    "\\x61{,2}",          # \x61 = "a"
    "\\141|b",            # \141 = "a" (three-octal-digit form)
    "\\060*1",            # \060 = "0"
    "[\\060-\\062]+",
    "[\\x30b]{1,3}",
    "[]a]*",              # leading ] is a literal member
    "[]ab]{,3}",
    "[^]a]",
    # anchors and lookarounds as first-class constructs (PR 10)
    "^a*$",
    "^(a|b)+$",
    "\\Aab\\Z",
    "a$|^b",
    "(?=a)a",
    "(?=a*b)a+",
    "(?!ab)a.",
    "a(?<=a)b",
    "ab(?<!a)",
    "\\ba\\b",
    "\\bab\\b a",
    "\\Bb",
    ".*\\bab\\b.*",
    "(?:(?!aa).)*",
    "^(?=.*a)(?=.*b).{2,4}$",
    "^(?!.*b1).*$",
    "[\\b]",              # inside a class \b stays the backspace char
]


class PatternGen:
    """Random patterns over the re-compatible operator set, including
    the escape/bound/class spellings PR 4's parser fixes cover and
    (with ``looks=True``) the PR 10 zero-width assertions: anchors,
    word boundaries, lookarounds with re-acceptable (fixed-width)
    lookbehind bodies."""

    #: alternative spellings of the alphabet characters that both
    #: engines must read identically: hex, octal-with-leading-zero,
    #: and three-digit octal escapes
    ESCAPES = {
        "a": ["\\x61", "\\141"],
        "b": ["\\x62", "\\142"],
        "0": ["\\x30", "\\060"],
        "1": ["\\x31", "\\061"],
    }

    def __init__(self, rng, looks=False):
        self.rng = rng
        self.looks = looks

    def literal(self):
        char = self.rng.choice(ALPHABET)
        if self.rng.random() < 0.15:
            return self.rng.choice(self.ESCAPES[char])
        return char

    def charclass(self):
        chars = self.rng.sample(ALPHABET, self.rng.randint(1, 3))
        if self.rng.random() < 0.1:
            # leading ] as a literal class member ("[]ab]" style)
            return "[]%s]" % "".join(sorted(chars))
        negate = "^" if self.rng.random() < 0.2 else ""
        body = "".join(sorted(chars))
        if self.rng.random() < 0.15:
            body = "".join(
                self.rng.choice(self.ESCAPES[c])
                if self.rng.random() < 0.5 else c
                for c in body
            )
        return "[%s%s]" % (negate, body)

    def atom(self, depth):
        roll = self.rng.random()
        if depth <= 0 or roll < 0.55:
            return self.literal()
        if roll < 0.7:
            return self.charclass()
        if roll < 0.8:
            return "."
        return "(%s)" % self.pattern(depth - 1)

    def piece(self, depth):
        atom = self.atom(depth)
        roll = self.rng.random()
        if roll < 0.6:
            return atom
        if roll < 0.7:
            return atom + "*"
        if roll < 0.8:
            return atom + "+"
        if roll < 0.85:
            return atom + "?"
        if roll < 0.9:
            # the {,n} lower-bound shorthand (means {0,n}, as in re)
            return "%s{,%d}" % (atom, self.rng.randint(0, 3))
        low = self.rng.randint(0, 2)
        high = low + self.rng.randint(0, 2)
        return "%s{%d,%d}" % (atom, low, high)

    def assertion(self, depth):
        roll = self.rng.random()
        if roll < 0.35:
            return self.rng.choice(["\\b", "\\b", "\\B"])
        if roll < 0.55:
            # lookbehind bodies must be fixed-width for re to accept
            body = "".join(
                self.rng.choice(ALPHABET)
                for _ in range(self.rng.randint(1, 2))
            )
            return "(?<%s%s)" % (self.rng.choice("=!"), body)
        return "(?%s%s)" % (
            self.rng.choice("=!"), self.branch(max(depth - 1, 0))
        )

    def branch(self, depth):
        pieces = [self.piece(depth) for _ in range(self.rng.randint(1, 4))]
        if self.looks and self.rng.random() < 0.3:
            pieces.insert(
                self.rng.randint(0, len(pieces)), self.assertion(depth)
            )
        return "".join(pieces)

    def pattern(self, depth=3):
        branches = [self.branch(depth) for _ in range(self.rng.randint(1, 3))]
        out = "|".join(branches)
        if self.looks and len(branches) == 1:
            if self.rng.random() < 0.25:
                out = self.rng.choice(["^", "\\A"]) + out
            if self.rng.random() < 0.25:
                out = out + self.rng.choice(["$", "\\Z"])
        return out


def sample_strings(rng, pattern):
    """Short random strings plus mutations of strings the pattern's
    own literals suggest (more likely to land near the boundary)."""
    out = {""}
    while len(out) < N_STRINGS:
        length = rng.randint(0, MAX_STRING_LEN)
        out.add("".join(rng.choice(ALPHABET) for _ in range(length)))
    literals = [c for c in pattern if c in ALPHABET]
    if literals:
        for _ in range(10):
            take = rng.randint(0, min(len(literals), MAX_STRING_LEN))
            out.add("".join(literals[:take]))
    if "]" in pattern:
        # leading-] classes can match the bracket itself
        out.update(["]", "]]", "a]"])
    return sorted(out)


def _skip_empty(pattern):
    """Before 3.12, re's ``\\B`` never matches in the empty string;
    this engine (like 3.12+) reads it as not-``\\b``, which does.
    Differential checks skip the empty text on old interpreters."""
    return "\\B" in pattern and sys.version_info < (3, 12)


def check_pattern(builder, pattern, strings):
    compiled = re.compile(pattern)
    regex = parse(builder, pattern)
    skip_empty = _skip_empty(pattern)
    disagreements = []
    for string in strings:
        if skip_empty and string == "":
            continue
        expected = compiled.fullmatch(string) is not None
        got = matches(builder.algebra, regex, string)
        if got != expected:
            disagreements.append((string, expected, got))
    return disagreements


@pytest.fixture(scope="module")
def builder():
    return RegexBuilder(IntervalAlgebra(127))


def test_frozen_regression_corpus(builder):
    rng = random.Random(SEED)
    failures = {}
    for pattern in REGRESSION_CORPUS:
        bad = check_pattern(builder, pattern, sample_strings(rng, pattern))
        if bad:
            failures[pattern] = bad[:3]
    assert not failures, failures


def test_seeded_fuzz_membership_agrees_with_re(builder):
    rng = random.Random(SEED)
    gen = PatternGen(rng, looks=True)
    checked = 0
    failures = {}
    while checked < N_PATTERNS:
        pattern = gen.pattern()
        try:
            re.compile(pattern)
        except re.error:  # pragma: no cover - generator stays in-fragment
            continue
        checked += 1
        bad = check_pattern(builder, pattern, sample_strings(rng, pattern))
        if bad:
            failures[pattern] = bad[:3]
    assert not failures, (
        "membership disagrees with re.fullmatch on %d/%d patterns: %r"
        % (len(failures), checked, failures)
    )


def test_generator_is_deterministic():
    first = [PatternGen(random.Random(SEED)).pattern() for _ in range(10)]
    second = [PatternGen(random.Random(SEED)).pattern() for _ in range(10)]
    assert first == second


_ASSERTION_MARKS = re.compile(r"\(\?<?[=!]|\\b|\\B|\\A|\\Z|[\^$]")


def test_seeded_lookaround_fuzz_agrees_with_re(builder):
    """Generated assertion-bearing patterns: fullmatch equality,
    search existence + start position, and print->parse->print
    fixpoint.  Search end positions are not compared — the positional
    matcher returns the smallest end for the leftmost start, re the
    greedy one."""
    rng = random.Random(SEED + 3)
    gen = PatternGen(rng, looks=True)
    matcher = Matcher(builder.algebra)
    checked = 0
    failures = {}
    while checked < 60:
        pattern = gen.pattern(depth=2)
        if not _ASSERTION_MARKS.search(pattern):
            continue
        try:
            compiled = re.compile(pattern)
        except re.error:  # pragma: no cover - generator stays in-fragment
            continue
        checked += 1
        regex = parse(builder, pattern)
        printed = to_pattern(regex)
        assert to_pattern(parse(builder, printed)) == printed
        skip_empty = _skip_empty(pattern)
        for string in sample_strings(rng, pattern):
            if skip_empty and string == "":
                continue
            expected = compiled.fullmatch(string) is not None
            got = matcher.matches(regex, string)
            if got != expected:
                failures.setdefault(pattern, []).append(
                    ("fullmatch", string, expected, got)
                )
                continue
            hit = compiled.search(string)
            span = matcher.search(regex, string)
            if (hit is None) != (span is None) or (
                hit is not None and hit.start() != span[0]
            ):
                failures.setdefault(pattern, []).append(
                    ("search", string,
                     None if hit is None else hit.start(),
                     None if span is None else span[0])
                )
    assert not failures, failures


ASTRAL = "\U0001F600"
ASTRAL_STRINGS = ["", ASTRAL, "a" + ASTRAL, ASTRAL + "b", "ab", ASTRAL * 2]


def test_unicode_domain_agrees_with_re_on_astral_input():
    """With the full Unicode domain, astral characters behave like any
    other out-of-pattern character — both engines must agree."""
    from repro.alphabet.intervals import UNICODE_MAX

    unicode_builder = RegexBuilder(IntervalAlgebra(UNICODE_MAX))
    rng = random.Random(SEED + 1)
    gen = PatternGen(rng)
    checked = 0
    failures = {}
    while checked < 25:
        pattern = gen.pattern(depth=2)
        try:
            compiled = re.compile(pattern)
        except re.error:  # pragma: no cover - generator stays in-fragment
            continue
        checked += 1
        regex = parse(unicode_builder, pattern)
        for string in ASTRAL_STRINGS:
            expected = compiled.fullmatch(string) is not None
            got = matches(unicode_builder.algebra, regex, string)
            if got != expected:
                failures.setdefault(pattern, []).append(string)
    assert not failures, failures


def test_bmp_domain_astral_input_is_clean_non_match(builder):
    """On the BMP-only module builder, astral input never raises — it
    is simply not in the language (a documented divergence from re,
    which matches astral chars against ``.`` and negated classes)."""
    rng = random.Random(SEED + 2)
    gen = PatternGen(rng)
    for _ in range(25):
        pattern = gen.pattern(depth=2)
        try:
            regex = parse(builder, pattern)
        except Exception:  # pragma: no cover - generator stays in-fragment
            continue
        for string in ASTRAL_STRINGS:
            if any(ord(c) > 127 for c in string):
                assert matches(builder.algebra, regex, string) is False
