"""Normal forms: NNF, lift and DNF (Sections 4.1 and 5)."""

from hypothesis import given, settings

from repro.derivatives.derivative import derivative
from repro.derivatives.dnf import delta_dnf, dnf, is_dnf, successors
from repro.derivatives.lift import lift
from repro.derivatives.nnf import is_nnf, nnf
from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, apply,
)
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_nnf_removes_complement_nodes(bitset_builder):
    b = bitset_builder

    @settings(max_examples=100, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        tau = derivative(b, r)
        normalized = nnf(b, tau)
        assert is_nnf(normalized)

    check()


def test_nnf_preserves_semantics(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=100, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        tau = derivative(b, r)
        normalized = nnf(b, tau)
        for ch in ALPHABET:
            assert lang(matcher, apply(b, tau, ch)) == lang(
                matcher, apply(b, normalized, ch)
            )

    check()


def test_nnf_conditional_rule(bitset_builder):
    """NNF(~if(phi, t, f)) = if(phi, NNF(~t), NNF(~f))."""
    b = bitset_builder
    phi = b.algebra.from_char("a")
    tau = TRCompl(TRCond(phi, TRLeaf(b.char("b")), TRLeaf(b.epsilon)))
    normalized = nnf(b, tau)
    assert isinstance(normalized, TRCond)
    assert normalized.then == TRLeaf(b.compl(b.char("b")))
    assert normalized.other == TRLeaf(b.compl(b.epsilon))


def test_lift_requires_nnf(bitset_builder):
    import pytest

    b = bitset_builder
    with pytest.raises(ValueError):
        lift(b, TRCompl(TRLeaf(b.char("a"))))


def test_lift_pushes_intersection_to_leaves(bitset_builder):
    b = bitset_builder
    phi_a = b.algebra.from_char("a")
    phi_b = b.algebra.from_char("b")
    tau = TRInter((
        TRCond(phi_a, TRLeaf(b.string("ab")), TRLeaf(b.char("b"))),
        TRCond(phi_b, TRLeaf(b.string("ba")), TRLeaf(b.char("a"))),
    ))
    lifted = lift(b, tau)
    assert is_dnf(lifted)


def test_lift_prunes_unsat_branches(bitset_builder):
    """if(a, x, y) & if(a, z, w) never pairs x with w."""
    b = bitset_builder
    phi_a = b.algebra.from_char("a")
    x, y = b.string("ab"), b.string("a0")
    z, w = b.string("ba"), b.string("b0")
    tau = TRInter((
        TRCond(phi_a, TRLeaf(x), TRLeaf(y)),
        TRCond(phi_a, TRLeaf(z), TRLeaf(w)),
    ))
    lifted = lift(b, tau)
    assert isinstance(lifted, TRCond)
    assert lifted.then == TRLeaf(b.inter([x, z]))
    assert lifted.other == TRLeaf(b.inter([y, w]))


def test_dnf_preserves_semantics(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=100, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        tau = derivative(b, r)
        normal = dnf(b, tau)
        assert is_dnf(normal)
        for ch in ALPHABET:
            assert lang(matcher, apply(b, tau, ch)) == lang(
                matcher, apply(b, normal, ch)
            )

    check()


def test_example_5_1(ascii_builder):
    """delta_dnf(~(.*01.*)) = if(0, r & ~(1.*), r)."""
    b = ascii_builder
    r = parse(b, "~(.*01.*)")
    normal = delta_dnf(b, r)
    zero = b.algebra.from_char("0")
    assert isinstance(normal, TRCond)
    assert normal.pred == zero
    assert apply(b, normal, "0") is b.inter([r, b.compl(parse(b, "1.*"))])
    assert apply(b, normal, "x") is r


def test_example_5_1_second_step(ascii_builder):
    """delta_dnf(r & ~(1.*)) = if(0, r & ~(1.*), if(1, bottom, r))."""
    b = ascii_builder
    r = parse(b, "~(.*01.*)")
    state = b.inter([r, b.compl(parse(b, "1.*"))])
    normal = delta_dnf(b, state)
    assert apply(b, normal, "0") is state
    assert apply(b, normal, "1") is b.empty
    assert apply(b, normal, "x") is r


def test_successors_of_section_2(ascii_builder):
    """The literal pipeline yields the paper's three successor states,
    possibly plus redundant conjunction refinements of them (the fused
    engine merges those away — see test_condtree)."""
    b = ascii_builder
    R = parse(b, r"(.*\d.*)&~(.*01.*)")
    R2 = parse(b, r"~(.*01.*)")
    R3 = b.inter([R2, b.compl(parse(b, "1.*"))])
    succ = successors(b, R)
    assert {R, R2, R3} <= succ
    # anything extra is subsumed: an intersection refining one of the three
    assert succ <= {R, R2, R3, b.inter([R, b.compl(parse(b, "1.*"))])}


def test_fused_engine_successors_exact(ascii_builder):
    from repro.derivatives.condtree import DerivativeEngine

    b = ascii_builder
    R = parse(b, r"(.*\d.*)&~(.*01.*)")
    R2 = parse(b, r"~(.*01.*)")
    R3 = b.inter([R2, b.compl(parse(b, "1.*"))])
    engine = DerivativeEngine(b)
    assert engine.successors(R) == {R, R2, R3}
