"""Classical Brzozowski derivatives and the finitization view."""

from hypothesis import given, settings

from repro.alphabet.minterms import partition_check
from repro.derivatives.brzozowski import (
    brzozowski, derive_string, matches, minterm_transitions,
    sorted_predicates,
)
from repro.regex import parse
from repro.regex.semantics import Matcher
from tests.strategies import extended_regexes, short_strings


def test_matching_via_derivatives(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=150, deadline=None)
    @given(extended_regexes(b), short_strings(4))
    def check(r, s):
        assert matches(b, r, s) == matcher.matches(r, s)

    check()


def test_derive_string_composes(bitset_builder):
    b = bitset_builder
    r = parse(b, "(ab)*")
    assert derive_string(b, r, "ab") is r
    assert derive_string(b, r, "a") is b.concat([b.char("b"), r])


def test_derivative_of_complement_commutes(bitset_builder):
    b = bitset_builder
    r = parse(b, ".*01.*")
    for ch in "ab01":
        assert brzozowski(b, b.compl(r), ch) is b.compl(brzozowski(b, r, ch))


def test_minterm_transitions_partition(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a|b)*0&~(.*1)")
    transitions = minterm_transitions(b, r)
    assert partition_check(b.algebra, [phi for phi, _ in transitions])


def test_minterm_transitions_agree_with_pointwise(bitset_builder):
    b = bitset_builder
    r = parse(b, "(.*a.*)&(.*0.*)")
    for part, target in minterm_transitions(b, r):
        for ch in "ab01":
            if b.algebra.member(ch, part):
                assert brzozowski(b, r, ch) is target


def test_minterm_count_exponential_in_predicates(ascii_builder):
    """k classes in general position produce 2**k satisfiable minterms
    — the Section 8.3 bottleneck the symbolic approach avoids."""
    b = ascii_builder
    algebra = b.algebra
    # class_i selects the codepoints 0x40..0x4F whose bit i is set
    classes = [
        b.pred(algebra.from_ranges(
            [(0x40 + c, 0x40 + c) for c in range(16) if c >> i & 1]
        ))
        for i in range(4)
    ]
    r = b.inter([b.contains(cls) for cls in classes])
    transitions = minterm_transitions(b, r)
    # 15 nonempty bit patterns + the all-zero region + outside chars
    assert len(transitions) >= 2 ** 4
    assert len(sorted_predicates(r)) == 5  # 4 classes + dot


def test_sorted_predicates_deterministic(bitset_builder):
    b = bitset_builder
    r = parse(b, "[ab]|[b0]|[01]")
    assert sorted_predicates(r) == sorted_predicates(r)
