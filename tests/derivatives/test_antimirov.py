"""Antimirov linear forms and partial derivatives."""

import pytest
from hypothesis import given, settings

from repro.derivatives.antimirov import (
    linear_form, matches, partial_derivatives, reachable_states,
)
from repro.derivatives.brzozowski import brzozowski
from repro.errors import UnsupportedError
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import short_strings, standard_regexes


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_union_of_partial_derivatives_is_brzozowski(bitset_builder):
    """∂_a(R) unioned equals D_a(R) (as languages)."""
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=120, deadline=None)
    @given(standard_regexes(b))
    def check(r):
        for ch in ALPHABET:
            parts = partial_derivatives(b, r, ch)
            union = b.union(list(parts))
            assert lang(matcher, union) == lang(matcher, brzozowski(b, r, ch))

    check()


def test_matching_agrees_with_oracle(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=120, deadline=None)
    @given(standard_regexes(b), short_strings(4))
    def check(r, s):
        assert matches(b, r, s) == matcher.matches(r, s)

    check()


def test_linear_form_guards_satisfiable(bitset_builder):
    b = bitset_builder

    @settings(max_examples=100, deadline=None)
    @given(standard_regexes(b))
    def check(r):
        for phi, _ in linear_form(b, r):
            assert b.algebra.is_sat(phi)

    check()


def test_intersection_product_rule(bitset_builder):
    b = bitset_builder
    r = b.inter([parse(b, ".*a.*"), parse(b, ".*b.*")])
    pairs = linear_form(b, r)
    assert pairs  # product of the two linear forms
    matcher = Matcher(b.algebra)
    for ch in ALPHABET:
        union = b.union(sorted(
            (t for phi, t in pairs if b.algebra.member(ch, phi)),
            key=lambda x: x.uid,
        ))
        assert lang(matcher, union) == lang(matcher, brzozowski(b, r, ch))


def test_complement_unsupported(bitset_builder):
    b = bitset_builder
    with pytest.raises(UnsupportedError):
        linear_form(b, b.compl(parse(b, "ab")))


def test_reachable_states_linear_for_standard(bitset_builder):
    """The Antimirov state space of a standard regex stays small
    (linear in the regex size)."""
    b = bitset_builder
    r = parse(b, "(a|b)*0(a|b)(a|b)(a|b)")
    states = reachable_states(b, r)
    assert len(states) <= r.size()


def test_reachable_states_limit(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a|b)*0.{8}")
    with pytest.raises(UnsupportedError):
        reachable_states(b, r, limit=2)
