"""Transition regexes: semantics of apply, negate (Lemma 4.2) and
concatenation lifting (Lemma 4.1)."""

import pytest
from hypothesis import given, settings

from repro.derivatives.derivative import derivative
from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, TRUnion, apply, guards, negate,
    nontrivial_terminals, pretty, terminals, tr_concat,
)
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


@pytest.fixture
def cond(bitset_builder):
    b = bitset_builder
    return TRCond(
        b.algebra.from_char("a"), TRLeaf(b.string("b0")), TRLeaf(b.char("b"))
    )


class TestApply:
    def test_leaf_is_constant(self, bitset_builder):
        leaf = TRLeaf(bitset_builder.char("b"))
        for ch in ALPHABET:
            assert apply(bitset_builder, leaf, ch) is bitset_builder.char("b")

    def test_cond_branches(self, bitset_builder, cond):
        assert apply(bitset_builder, cond, "a") is bitset_builder.string("b0")
        assert apply(bitset_builder, cond, "b") is bitset_builder.char("b")

    def test_union_inter_compl(self, bitset_builder):
        b = bitset_builder
        t1, t2 = TRLeaf(b.char("a")), TRLeaf(b.char("b"))
        assert apply(b, TRUnion((t1, t2)), "a") is b.union(
            [b.char("a"), b.char("b")]
        )
        assert apply(b, TRInter((t1, t2)), "a") is b.inter(
            [b.char("a"), b.char("b")]
        )
        assert apply(b, TRCompl(t1), "a") is b.compl(b.char("a"))

    def test_apply_rejects_garbage(self, bitset_builder):
        with pytest.raises(TypeError):
            apply(bitset_builder, "nope", "a")


class TestNegate:
    def test_negate_eliminates_top_complement(self, bitset_builder, cond):
        dual = negate(bitset_builder, TRCompl(cond))
        assert dual == cond

    def test_lemma_4_2_pointwise(self, bitset_builder):
        """negate(tau)(a) == ~(tau(a)) for derivative-built TRs."""
        b = bitset_builder
        matcher = Matcher(b.algebra)

        @settings(max_examples=100, deadline=None)
        @given(extended_regexes(b))
        def check(r):
            tau = derivative(b, r)
            dual = negate(b, tau)
            for ch in ALPHABET:
                lhs = apply(b, dual, ch)
                rhs = b.compl(apply(b, tau, ch))
                assert lang(matcher, lhs) == lang(matcher, rhs)

        check()

    def test_negate_swaps_union_inter(self, bitset_builder):
        b = bitset_builder
        t = TRUnion((TRLeaf(b.char("a")), TRLeaf(b.char("b"))))
        assert isinstance(negate(b, t), TRInter)


class TestConcat:
    def test_lemma_4_1_pointwise(self, bitset_builder):
        """(tau . R)(a) has language tau(a) . L(R)."""
        b = bitset_builder
        matcher = Matcher(b.algebra)
        suffix = parse(b, "(0|1)*")

        @settings(max_examples=100, deadline=None)
        @given(extended_regexes(b))
        def check(r):
            tau = derivative(b, r)
            lifted = tr_concat(b, tau, suffix)
            for ch in "a0":
                lhs = apply(b, lifted, ch)
                rhs = b.concat([apply(b, tau, ch), suffix])
                assert lang(matcher, lhs) == lang(matcher, rhs)

        check()

    def test_concat_epsilon_identity(self, bitset_builder, cond):
        assert tr_concat(bitset_builder, cond, bitset_builder.epsilon) is cond


class TestStructure:
    def test_terminals(self, bitset_builder, cond):
        terms = terminals(cond)
        assert bitset_builder.string("b0") in terms
        assert bitset_builder.char("b") in terms

    def test_nontrivial_terminals_drop_bottom_and_full(self, bitset_builder):
        b = bitset_builder
        t = TRUnion((TRLeaf(b.empty), TRLeaf(b.full), TRLeaf(b.char("a"))))
        assert nontrivial_terminals(b, t) == {b.char("a")}

    def test_guards(self, bitset_builder, cond):
        assert guards(cond) == {bitset_builder.algebra.from_char("a")}

    def test_pretty_contains_if(self, bitset_builder, cond):
        text = pretty(cond, bitset_builder.algebra)
        assert text.startswith("if(")

    def test_structural_equality_and_hash(self, bitset_builder):
        b = bitset_builder
        t1 = TRCond(b.algebra.from_char("a"), TRLeaf(b.epsilon), TRLeaf(b.empty))
        t2 = TRCond(b.algebra.from_char("a"), TRLeaf(b.epsilon), TRLeaf(b.empty))
        assert t1 == t2 and hash(t1) == hash(t2)
