"""Keil–Thiemann positive/negative derivatives: the sandwich lemma
([36, Lemma 3]) and its strictness — the motivation for transition
regexes."""

from hypothesis import given, settings

from repro.alphabet.minterms import minterms
from repro.derivatives.approx import is_exact_for, negative, positive
from repro.derivatives.brzozowski import brzozowski
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes, predicates


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_sandwich_lemma(bitset_builder):
    """neg(B,R) ⊆ D_a(R) ⊆ pos(B,R) for every a in B."""
    b = bitset_builder
    algebra = b.algebra
    matcher = Matcher(algebra)

    @settings(max_examples=120, deadline=None)
    @given(extended_regexes(b, max_leaves=4), predicates(algebra))
    def check(r, pred):
        under = lang(matcher, negative(b, pred, r))
        over = lang(matcher, positive(b, pred, r))
        for ch in ALPHABET:
            if not algebra.member(ch, pred):
                continue
            exact = lang(matcher, brzozowski(b, r, ch))
            assert under <= exact <= over

    check()


def test_strictness_witness(bitset_builder):
    """Both inclusions are strict in general: with B = {0,1} and
    R = 0.*, the positive derivative accepts too much for a='1' and
    the negative one too little for a='0'."""
    b = bitset_builder
    algebra = b.algebra
    matcher = Matcher(algebra)
    B = algebra.from_chars("01")
    r = parse(b, "0.*")
    over = lang(matcher, positive(b, B, r))
    under = lang(matcher, negative(b, B, r))
    exact_0 = lang(matcher, brzozowski(b, r, "0"))
    exact_1 = lang(matcher, brzozowski(b, r, "1"))
    assert under < exact_0          # under-approximation loses members
    assert exact_1 < over           # over-approximation invents members


def test_complement_swaps_polarity(bitset_builder):
    """pos(B, ~R) = ~neg(B, R): a fixed polarity cannot survive
    complement — the paper's core argument for conditionals."""
    b = bitset_builder
    B = b.algebra.from_chars("0a")
    r = parse(b, ".*01.*")
    assert positive(b, B, b.compl(r)) is b.compl(negative(b, B, r))
    assert negative(b, B, b.compl(r)) is b.compl(positive(b, B, r))


def test_exact_on_minterms(bitset_builder):
    """Restricted to a minterm of Psi_R, both derivatives agree with
    the classical one — the local-mintermization escape hatch, at up
    to 2^n minterms."""
    b = bitset_builder
    algebra = b.algebra
    matcher = Matcher(algebra)
    r = parse(b, "(.*0.*)&~(.*01.*)&(a|0)*")
    for part in minterms(algebra, sorted(r.predicates(), key=repr)):
        over = positive(b, part, r)
        under = negative(b, part, r)
        ch = algebra.pick(part)
        exact = brzozowski(b, r, ch)
        assert lang(matcher, over) == lang(matcher, exact)
        assert lang(matcher, under) == lang(matcher, exact)


def test_singleton_predicate_is_exact(bitset_builder):
    b = bitset_builder

    @settings(max_examples=80, deadline=None)
    @given(extended_regexes(b, max_leaves=4))
    def check(r):
        matcher = Matcher(b.algebra)
        pred = b.algebra.from_char("a")
        over = positive(b, pred, r)
        exact = brzozowski(b, r, "a")
        assert lang(matcher, over) == lang(matcher, exact)

    check()


def test_is_exact_for_helper(bitset_builder):
    b = bitset_builder
    r = parse(b, "[ab].*")
    assert is_exact_for(b, b.algebra.from_chars("ab"), r)
    assert not is_exact_for(b, b.algebra.from_chars("a0"), r)
