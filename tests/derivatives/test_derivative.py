"""Theorem 4.3: the symbolic derivative evaluated at any character is
the Brzozowski derivative, for the whole ERE class."""

from hypothesis import given, settings

from repro.derivatives.brzozowski import brzozowski
from repro.derivatives.derivative import brzozowski_via_delta, derivative
from repro.derivatives.transition import apply
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes, standard_regexes


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_theorem_4_3_extended(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=150, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        for ch in ALPHABET:
            via_delta = brzozowski_via_delta(b, r, ch)
            classical = brzozowski(b, r, ch)
            assert lang(matcher, via_delta) == lang(matcher, classical)

    check()


def test_derivative_characterizes_membership(bitset_builder):
    """s0 s1.. in L(R)  iff  s1.. in L(delta(R)(s0))."""
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=150, deadline=None)
    @given(standard_regexes(b))
    def check(r):
        for s in enumerate_strings(ALPHABET, 3):
            if not s:
                continue
            derived = apply(b, derivative(b, r), s[0])
            assert matcher.matches(r, s) == matcher.matches(derived, s[1:])

    check()


def test_derivative_of_pred(bitset_builder):
    b = bitset_builder
    tau = derivative(b, b.char("a"))
    assert apply(b, tau, "a") is b.epsilon
    assert apply(b, tau, "b") is b.empty


def test_derivative_of_dot_is_epsilon_leaf(bitset_builder):
    b = bitset_builder
    tau = derivative(b, b.dot)
    for ch in ALPHABET:
        assert apply(b, tau, ch) is b.epsilon


def test_derivative_of_star(bitset_builder):
    b = bitset_builder
    r = b.star(b.string("ab"))
    tau = derivative(b, r)
    assert apply(b, tau, "a") is b.concat([b.char("b"), r])
    assert apply(b, tau, "b") is b.empty


def test_derivative_of_loop_counts_down(bitset_builder):
    b = bitset_builder
    r = b.loop(b.char("a"), 3, 5)
    assert apply(b, derivative(b, r), "a") is b.loop(b.char("a"), 2, 4)


def test_derivative_of_loop_exact(bitset_builder):
    b = bitset_builder
    r = b.loop(b.char("a"), 2, 2)
    step1 = apply(b, derivative(b, r), "a")
    assert step1 is b.char("a")
    step2 = apply(b, derivative(b, step1), "a")
    assert step2 is b.epsilon


def test_derivative_of_complement_is_dual(bitset_builder):
    b = bitset_builder
    r = parse(b, ".*01.*")
    for ch in ALPHABET:
        direct = apply(b, derivative(b, b.compl(r)), ch)
        expected = b.compl(apply(b, derivative(b, r), ch))
        assert direct is expected


def test_section_2_running_example(ascii_builder):
    """The derivation of Section 2, end to end."""
    b = ascii_builder
    R1 = parse(b, r".*\d.*")
    R2 = parse(b, r"~(.*01.*)")
    R = b.inter([R1, R2])
    tau = derivative(b, R)
    # on '0' (a digit and the start of "01"): ~(.*01.* | 1.*),
    # the De-Morgan-folded form of R2 & ~(1.*)
    on_zero = apply(b, tau, "0")
    assert on_zero is b.compl(b.union([parse(b, ".*01.*"), parse(b, "1.*")]))
    # on another digit: R2 alone (R1 is satisfied)
    assert apply(b, tau, "7") is R2
    # on a non-digit non-zero: back to R
    assert apply(b, tau, "x") is R
