"""The fused clean-conditional-tree engine vs the literal pipeline."""

from hypothesis import given, settings

from repro.derivatives.condtree import DerivativeEngine
from repro.derivatives.dnf import delta_dnf
from repro.derivatives.transition import apply
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from tests.conftest import ALPHABET
from tests.strategies import extended_regexes, short_strings


def lang(matcher, regex, max_len=3):
    return frozenset(
        s for s in enumerate_strings(ALPHABET, max_len)
        if matcher.matches(regex, s)
    )


def test_agrees_with_literal_pipeline(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    matcher = Matcher(b.algebra)

    @settings(max_examples=120, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        literal = delta_dnf(b, r)
        for ch in ALPHABET:
            fused = engine.derive_regex(r, ch)
            assert lang(matcher, fused) == lang(matcher, apply(b, literal, ch))

    check()


def test_matches_agrees_with_oracle(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    matcher = Matcher(b.algebra)

    @settings(max_examples=150, deadline=None)
    @given(extended_regexes(b), short_strings(4))
    def check(r, s):
        assert engine.matches(r, s) == matcher.matches(r, s)

    check()


def test_tree_is_clean(bitset_builder):
    """Every branch of every derivative tree is satisfiable on its
    path, and the leaf guards partition the alphabet."""
    b = bitset_builder
    engine = DerivativeEngine(b)

    @settings(max_examples=100, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        transitions = engine.transitions(r)
        algebra = b.algebra
        union = algebra.bot
        for guard, _ in transitions:
            assert algebra.is_sat(guard)
            assert not algebra.is_sat(algebra.conj(union, guard))
            union = algebra.disj(union, guard)
        assert algebra.is_valid(union)

    check()


def test_leaves_never_contain_bottom_and_full_absorbs(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    leaf = engine.leaf([b.empty, b.char("a")])
    assert b.empty not in leaf.regexes
    leaf2 = engine.leaf([b.full, b.char("a")])
    assert leaf2.regexes == frozenset({b.full})


def test_tree_interning(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    t1 = engine.derivative(parse(b, "(a|b)*"))
    t2 = engine.derivative(parse(b, "(a|b)*"))
    assert t1 is t2


def test_node_collapses_equal_branches(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    leaf = engine.leaf([b.char("a")])
    assert engine.node(b.algebra.from_char("a"), leaf, leaf) is leaf


def test_negate_involution_on_singleton_leaves(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    tree = engine.derivative(parse(b, "~(.*01.*)"))  # leaves are single
    assert engine.negate(engine.negate(tree)) is tree


def test_negate_twice_preserves_semantics(bitset_builder):
    """On union leaves, double negation leaves a De-Morgan-folded but
    equivalent regex."""
    b = bitset_builder
    engine = DerivativeEngine(b)
    matcher = Matcher(b.algebra)
    tree = engine.derivative(parse(b, ".*01.*"))
    twice = engine.negate(engine.negate(tree))
    for ch in ALPHABET:
        assert lang(matcher, engine.apply(tree, ch)) == lang(
            matcher, engine.apply(twice, ch)
        )


def test_derive_string(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    r = parse(b, "a*b")
    assert engine.derive_string(r, "aab") is b.epsilon
    assert engine.derive_string(r, "ba") is b.empty


def test_successors_exclude_trivial(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    succ = engine.successors(parse(b, "a.*"))
    assert b.full not in succ and b.empty not in succ


def test_memoization_reuses_work(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    r = parse(b, "(.*a.{5})&(.*b.{5})")
    engine.derivative(r)
    checks_before = engine.sat_checks
    engine.derivative(r)
    assert engine.sat_checks == checks_before


def test_sat_check_counter_moves(bitset_builder):
    b = bitset_builder
    engine = DerivativeEngine(b)
    engine.derivative(parse(b, "(a.*)&(b.*|0.*)"))
    assert engine.sat_checks > 0
