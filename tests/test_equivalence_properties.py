"""Property tests for the bisimulation equivalence checker.

Three oracles, on all three alphabet algebras:

* agreement with ``RegexSolver.equivalent`` (symmetric-difference
  emptiness) — two entirely different algorithms for one question;
* metamorphic invariance: equivalence is preserved by reversal and by
  complementation of both sides;
* witness validity: a claimed distinguishing string must actually be
  in exactly one of the two languages.
"""

import random

import pytest

from repro.alphabet import BDDAlgebra, BitsetAlgebra, IntervalAlgebra
from repro.regex import RegexBuilder, reverse, to_pattern
from repro.regex.semantics import Matcher
from repro.solver import Budget, RegexSolver
from repro.solver.equivalence import BisimulationChecker
from repro.verify.campaign import RegexGen

ALPHABET = "ab01"
CASES = 25


def _budget():
    return Budget(fuel=300000, seconds=5)


def _algebra(name):
    if name == "interval":
        return IntervalAlgebra(127)
    if name == "bitset":
        return BitsetAlgebra(ALPHABET + "z")
    return BDDAlgebra(8)


@pytest.fixture(params=["interval", "bitset", "bdd"])
def builder(request):
    return RegexBuilder(_algebra(request.param))


def _pairs(builder, seed, count=CASES):
    rng = random.Random(seed)
    gen = RegexGen(rng, builder, ALPHABET)
    for _ in range(count):
        yield gen.regex(rng.randint(1, 3)), gen.regex(rng.randint(1, 3))


def test_bisimulation_agrees_with_symmetric_difference(builder):
    checker = BisimulationChecker(builder)
    solver = RegexSolver(builder)
    for left, right in _pairs(builder, seed=1):
        bis = checker.equivalent(left, right, _budget())
        ref = solver.equivalent(left, right, _budget())
        if bis.status in ("sat", "unsat") and ref.status in ("sat", "unsat"):
            assert bis.status == ref.status, (
                to_pattern(left, builder.algebra),
                to_pattern(right, builder.algebra),
            )


def test_distinguishing_witness_is_valid(builder):
    checker = BisimulationChecker(builder)
    matcher = Matcher(builder.algebra)
    for left, right in _pairs(builder, seed=2):
        result = checker.equivalent(left, right, _budget())
        if result.status != "unsat" or result.witness is None:
            continue
        witness = result.witness
        assert matcher.matches(left, witness) != \
            matcher.matches(right, witness), (
                to_pattern(left, builder.algebra),
                to_pattern(right, builder.algebra), witness,
            )


def test_equivalence_invariant_under_reversal(builder):
    checker = BisimulationChecker(builder)
    for left, right in _pairs(builder, seed=3):
        direct = checker.equivalent(left, right, _budget())
        rev = checker.equivalent(
            reverse(builder, left), reverse(builder, right), _budget()
        )
        if direct.status in ("sat", "unsat") and \
                rev.status in ("sat", "unsat"):
            assert direct.status == rev.status


def test_equivalence_invariant_under_complement(builder):
    checker = BisimulationChecker(builder)
    for left, right in _pairs(builder, seed=4):
        direct = checker.equivalent(left, right, _budget())
        comp = checker.equivalent(
            builder.compl(left), builder.compl(right), _budget()
        )
        if direct.status in ("sat", "unsat") and \
                comp.status in ("sat", "unsat"):
            assert direct.status == comp.status


def test_self_equivalence_and_absorption(builder):
    checker = BisimulationChecker(builder)
    rng = random.Random(6)
    gen = RegexGen(rng, builder, ALPHABET)
    for _ in range(CASES):
        regex = gen.regex(rng.randint(1, 3))
        assert checker.equivalent(regex, regex, _budget()).status == "sat"
        doubled = builder.union([regex, regex])
        assert checker.equivalent(regex, doubled, _budget()).status == "sat"
