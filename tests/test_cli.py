"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def run(capsys, *argv):
    status = main(list(argv))
    return status, capsys.readouterr().out


def test_check_sat(capsys):
    status, out = run(capsys, "--ascii", "check", r"(.*\d.*)&~(.*01.*)")
    assert status == 0
    assert "sat" in out and "witness" in out


def test_check_unsat(capsys):
    status, out = run(capsys, "--ascii", "check", r"a&b")
    assert status == 0
    assert out.startswith("unsat")


def test_check_unknown_exit_code(capsys):
    status, out = run(
        capsys, "--ascii", "--fuel", "2", "check",
        "~(.*a.{30})&~(.*b.{30})&(a|b){40}",
    )
    assert status == 2
    assert "unknown" in out


def test_contains(capsys):
    status, out = run(capsys, "--ascii", "contains", "a{3}", "a{2,5}")
    assert status == 0 and "holds" in out
    status, out = run(capsys, "--ascii", "contains", "a{2,5}", "a{3}")
    assert "counterexample" in out


def test_equiv(capsys):
    _, out = run(capsys, "--ascii", "equiv", "(a|b)*", "(a*b*)*")
    assert "equivalent" in out
    _, out = run(capsys, "--ascii", "equiv", "a*b*", "(a|b)*")
    assert "distinguishing" in out


def test_match(capsys):
    _, out = run(capsys, "--ascii", "match", "b+", "abba")
    assert "fullmatch: False" in out
    assert "span=(1, 3)" in out or "span=(1, 2)" in out


def test_solve_smt2(capsys, tmp_path):
    path = tmp_path / "q.smt2"
    path.write_text(
        '(set-logic QF_S)(declare-const x String)'
        '(assert (str.in_re x (re.+ (str.to_re "ab"))))(check-sat)'
    )
    status, out = run(capsys, "solve", str(path))
    assert status == 0
    assert "sat" in out and "'ab'" in out


def test_check_profile_writes_collapsed_stacks(capsys, tmp_path):
    from repro.obs.profile import read_collapsed

    path = tmp_path / "out.folded"
    status, out = run(
        capsys, "--ascii", "--profile", str(path), "check",
        r"(.*a.{8})&(.*b.{8})",
    )
    assert status == 0
    assert "profile: wrote" in out
    assert "total traced wall" in out  # hotspot table on stdout
    parsed = read_collapsed(str(path))
    assert parsed and all(count > 0 for _, count in parsed)
    names = {frame for stack, _ in parsed for frame in stack}
    assert "solver.explore" in names


def test_trace_and_profile_share_one_tracer(capsys, tmp_path):
    trace = tmp_path / "trace.jsonl"
    folded = tmp_path / "out.folded"
    status, out = run(
        capsys, "--ascii", "--trace", str(trace), "--profile", str(folded),
        "check", "a&b",
    )
    assert status == 0
    assert "trace:" in out and "profile:" in out
    assert trace.exists() and folded.exists()


def test_graph_text_and_dot(capsys):
    _, out = run(capsys, "--ascii", "graph", ".*01.*")
    assert "--[" in out
    _, out = run(capsys, "--ascii", "graph", "--dot", ".*01.*")
    assert out.startswith("digraph")


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
