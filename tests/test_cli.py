"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def run(capsys, *argv):
    status = main(list(argv))
    return status, capsys.readouterr().out


def test_check_sat(capsys):
    status, out = run(capsys, "--ascii", "check", r"(.*\d.*)&~(.*01.*)")
    assert status == 0
    assert "sat" in out and "witness" in out


def test_check_unsat(capsys):
    status, out = run(capsys, "--ascii", "check", r"a&b")
    assert status == 0
    assert out.startswith("unsat")


def test_check_unknown_exit_code(capsys):
    status, out = run(
        capsys, "--ascii", "--fuel", "2", "check",
        "~(.*a.{30})&~(.*b.{30})&(a|b){40}",
    )
    assert status == 2
    assert "unknown" in out


def test_contains(capsys):
    status, out = run(capsys, "--ascii", "contains", "a{3}", "a{2,5}")
    assert status == 0 and "holds" in out
    status, out = run(capsys, "--ascii", "contains", "a{2,5}", "a{3}")
    assert "counterexample" in out


def test_equiv(capsys):
    _, out = run(capsys, "--ascii", "equiv", "(a|b)*", "(a*b*)*")
    assert "equivalent" in out
    _, out = run(capsys, "--ascii", "equiv", "a*b*", "(a|b)*")
    assert "distinguishing" in out


def test_match(capsys):
    _, out = run(capsys, "--ascii", "match", "b+", "abba")
    assert "fullmatch: False" in out
    assert "span=(1, 3)" in out or "span=(1, 2)" in out


def test_solve_smt2(capsys, tmp_path):
    path = tmp_path / "q.smt2"
    path.write_text(
        '(set-logic QF_S)(declare-const x String)'
        '(assert (str.in_re x (re.+ (str.to_re "ab"))))(check-sat)'
    )
    status, out = run(capsys, "solve", str(path))
    assert status == 0
    assert "sat" in out and "'ab'" in out


def test_check_profile_writes_collapsed_stacks(capsys, tmp_path):
    from repro.obs.profile import read_collapsed

    path = tmp_path / "out.folded"
    status, out = run(
        capsys, "--ascii", "--profile", str(path), "check",
        r"(.*a.{8})&(.*b.{8})",
    )
    assert status == 0
    assert "profile: wrote" in out
    assert "total traced wall" in out  # hotspot table on stdout
    parsed = read_collapsed(str(path))
    assert parsed and all(count > 0 for _, count in parsed)
    names = {frame for stack, _ in parsed for frame in stack}
    assert "solver.explore" in names


def test_trace_and_profile_share_one_tracer(capsys, tmp_path):
    trace = tmp_path / "trace.jsonl"
    folded = tmp_path / "out.folded"
    status, out = run(
        capsys, "--ascii", "--trace", str(trace), "--profile", str(folded),
        "check", "a&b",
    )
    assert status == 0
    assert "trace:" in out and "profile:" in out
    assert trace.exists() and folded.exists()


def test_graph_text_and_dot(capsys):
    _, out = run(capsys, "--ascii", "graph", ".*01.*")
    assert "--[" in out
    _, out = run(capsys, "--ascii", "graph", "--dot", ".*01.*")
    assert out.startswith("digraph")


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


SMT2_SAT = (
    "(set-logic QF_S)\n(declare-const x String)\n"
    '(assert (str.in_re x (re.+ (str.to_re "ab"))))\n(check-sat)\n'
)
SMT2_UNSAT = (
    "(set-logic QF_S)\n(declare-const x String)\n"
    '(assert (str.in_re x (re.inter (str.to_re "a") (str.to_re "b"))))\n'
    "(check-sat)\n"
)


def test_solve_jobs_matches_serial(capsys, tmp_path):
    a = tmp_path / "a.smt2"
    b = tmp_path / "b.smt2"
    a.write_text(SMT2_SAT)
    b.write_text(SMT2_UNSAT)
    status_serial, out_serial = run(capsys, "solve", str(a), str(b))
    status_par, out_par = run(capsys, "solve", str(a), str(b), "--jobs", "2")
    assert status_par == status_serial == 0
    # same verdicts, same order
    assert [l.split(": ")[1].split()[0] for l in out_par.splitlines()] == \
        [l.split(": ")[1].split()[0] for l in out_serial.splitlines()]


def test_batch_directory(capsys, tmp_path):
    (tmp_path / "a.smt2").write_text(SMT2_SAT)
    (tmp_path / "b.smt2").write_text(SMT2_UNSAT)
    status, out = run(capsys, "batch", str(tmp_path), "--jobs", "2")
    assert status == 0
    lines = out.splitlines()
    assert lines[0].startswith("a.smt2: sat")
    assert lines[1].startswith("b.smt2: unsat")
    assert "2 jobs" in lines[2]


def test_batch_jsonl_with_crash_and_output(capsys, tmp_path):
    import json as json_mod

    jsonl = tmp_path / "jobs.jsonl"
    jsonl.write_text(
        '{"name": "p1", "pattern": "a|b"}\n'
        '{"name": "boom", "crash": "kill"}\n'
        '{"name": "p2", "pattern": "x*y"}\n'
    )
    results = tmp_path / "out.jsonl"
    status, out = run(capsys, "batch", str(jsonl), "--jobs", "2",
                      "--output", str(results))
    assert status == 1  # the crashed task is an error record
    lines = out.splitlines()
    assert lines[0].startswith("p1: sat")
    assert "WorkerCrashed" in lines[1]
    assert lines[2].startswith("p2: sat")
    dumped = [json_mod.loads(l) for l in results.read_text().splitlines()]
    assert [d["name"] for d in dumped] == ["p1", "boom", "p2"]
    assert dumped[1]["error"]["type"] == "WorkerCrashed"


def test_batch_empty_path_is_usage_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["batch", str(empty)]) == 2


def test_stats_prints_cache_hit_ratio(capsys):
    status, out = run(capsys, "--ascii", "--stats", "check", "(a|b)*(ab)+")
    assert status == 0
    assert "cache hit ratio:" in out
    assert "memo lookups" in out


def test_match_stats_prints_dfa_row_ratio(capsys):
    status, out = run(capsys, "--ascii", "--stats", "match", "(ab)*",
                      "abababab")
    assert status == 0
    assert "dfa: steps=8" in out
    assert "row_hits=6" in out and "row_misses=2" in out
    assert "cache hit ratio: 75.0% (6/8 row lookups)" in out


def flight_batch(capsys, tmp_path):
    jsonl = tmp_path / "jobs.jsonl"
    jsonl.write_text(
        '{"name": "easy", "pattern": "a|b"}\n'
        '{"name": "hard", "pattern": "(.*a.{6})&(.*b.{6})"}\n'
    )
    flight = tmp_path / "flight"
    status, out = run(
        capsys, "batch", str(jsonl), "--jobs", "2",
        "--flight-dir", str(flight), "--slow-explored", "2",
        "--heartbeat", "0.01",
    )
    return status, out, flight


def test_batch_flight_dir_records_and_reports(capsys, tmp_path):
    status, out, flight = flight_batch(capsys, tmp_path)
    assert status == 0
    assert "flight: %s" % flight in out
    assert "heartbeats)" in out
    assert (flight / "timeline.json").exists()
    assert (flight / "heartbeats.jsonl").exists()
    assert list((flight / "slow").glob("*.json"))


def test_status_renders_the_flight(capsys, tmp_path):
    _, _, flight = flight_batch(capsys, tmp_path)
    status, out = run(capsys, "status", str(flight))
    assert status == 0
    assert out.startswith("flight ")
    assert "latency:" in out
    assert "slow queries" in out
    assert "timeline:" in out


def test_replay_flight_dir_exits_zero_on_matching_verdicts(capsys, tmp_path):
    _, _, flight = flight_batch(capsys, tmp_path)
    status, out = run(capsys, "replay", str(flight))
    assert status == 0
    assert "-> ok" in out
    assert "0 mismatches" in out


def test_replay_single_artifact_and_mismatch_exit(capsys, tmp_path):
    import json as json_mod

    _, _, flight = flight_batch(capsys, tmp_path)
    artifact = sorted((flight / "slow").glob("*.json"))[0]
    status, out = run(capsys, "replay", str(artifact), "--json")
    assert status == 0
    assert json_mod.loads(out.splitlines()[0])["match"] is True
    # corrupt the recorded verdict: replay must flag it and exit 1
    frozen = json_mod.loads(artifact.read_text())
    frozen["status"] = "unknown"
    artifact.write_text(json_mod.dumps(frozen))
    status, out = run(capsys, "replay", str(artifact))
    assert status == 1
    assert "MISMATCH" in out


def test_replay_empty_flight_is_usage_error(capsys, tmp_path):
    empty = tmp_path / "empty-flight"
    empty.mkdir()
    assert main(["replay", str(empty)]) == 2


def test_explain_sat_narrative(capsys):
    status, out = run(capsys, "--ascii", "explain", "ab*c")
    assert status == 0
    assert "sat" in out
    assert "certificate checked: yes" in out


def test_explain_unsat_writes_certificate_and_dot(capsys, tmp_path):
    import json as json_mod

    from repro.obs.explain import check_certificate

    cert_path = tmp_path / "cert.json"
    dot_path = tmp_path / "cert.dot"
    status, out = run(
        capsys, "--ascii", "explain", "(ab)*&b.*",
        "--json", str(cert_path), "--dot", str(dot_path),
    )
    assert status == 0
    assert "unsat" in out
    cert = json_mod.loads(cert_path.read_text())
    assert check_certificate(cert).ok
    assert dot_path.read_text().startswith("digraph")


def test_explain_no_check_leaves_unchecked(capsys):
    status, out = run(capsys, "--ascii", "explain", "a&b", "--no-check")
    assert status == 0
    assert "certificate checked: yes" not in out


def test_explain_unknown_has_reason(capsys):
    status, out = run(
        capsys, "--ascii", "--fuel", "2", "explain",
        "~(.*a.{30})&~(.*b.{30})&(a|b){40}",
    )
    assert status == 2
    assert "unknown" in out


def test_check_stats_includes_explanation_summary(capsys):
    status, out = run(
        capsys, "--ascii", "--explain", "--stats", "check", "a&b"
    )
    assert status == 0
    assert "explanation: unsat" in out


def test_check_without_explain_has_no_explanation_line(capsys):
    status, out = run(capsys, "--ascii", "--stats", "check", "a&b")
    assert status == 0
    assert "explanation:" not in out


# -- status/replay diagnostics (no tracebacks, clean exit codes) --------------


def test_status_missing_dir_is_clean_diagnostic(capsys, tmp_path):
    status = main(["status", str(tmp_path / "never-recorded")])
    captured = capsys.readouterr()
    assert status == 2
    assert "is not a directory" in captured.err
    assert "Traceback" not in captured.err


def test_status_empty_dir_is_clean_diagnostic(capsys, tmp_path):
    empty = tmp_path / "empty-flight"
    empty.mkdir()
    status = main(["status", str(empty)])
    captured = capsys.readouterr()
    assert status == 2
    assert "no flight streams" in captured.err
    assert "Traceback" not in captured.err


def test_status_torn_event_line_still_renders(capsys, tmp_path):
    """A crash mid-write leaves a torn last line; status must render
    what is readable instead of dying on the tail."""
    torn = tmp_path / "torn-flight"
    torn.mkdir()
    (torn / "events-w0.jsonl").write_text(
        '{"type": "ev", "ts": 1.0, "name": "pool.start"}\n{"half'
    )
    status, out = run(capsys, "status", str(torn))
    assert status == 0
    assert out.startswith("flight ")


def test_replay_missing_path_is_clean_diagnostic(capsys, tmp_path):
    status = main(["replay", str(tmp_path / "nothing-here")])
    captured = capsys.readouterr()
    assert status == 2
    assert "does not exist" in captured.err
    assert "Traceback" not in captured.err


def test_replay_torn_artifact_is_skipped_with_diagnostic(capsys, tmp_path):
    flight = tmp_path / "flight"
    slow = flight / "slow"
    slow.mkdir(parents=True)
    (slow / "torn.json").write_text('{"torn": ')
    status = main(["replay", str(flight)])
    captured = capsys.readouterr()
    assert status == 2  # nothing replayable survived
    assert "skipping" in captured.err
    assert "1 skipped" in captured.out
    assert "Traceback" not in captured.err


# -- the warm store through the CLI -------------------------------------------


def test_check_store_roundtrip_warm_hit(capsys, tmp_path):
    store = tmp_path / "store.json"
    pattern = "(a|b)*abb"
    cold_status, cold_out = run(
        capsys, "--store", str(store), "--stats", "check", pattern
    )
    assert cold_status == 0
    assert store.exists()
    assert "store: " in cold_out  # save line reports fragment count
    warm_status, warm_out = run(
        capsys, "--store", str(store), "--stats", "check", pattern
    )
    assert warm_status == 0
    assert cold_out.splitlines()[0] == warm_out.splitlines()[0]
    assert "store hit ratio: 100.0% (1/1 fragment lookups)" in warm_out


def test_check_store_corrupt_file_starts_cold(capsys, tmp_path):
    store = tmp_path / "store.json"
    store.write_text("{not json")
    status = main(["--store", str(store), "check", "a|b"])
    captured = capsys.readouterr()
    assert status == 0  # verdict unaffected
    assert "starting cold" in captured.err
    # and the save path rewrites a valid snapshot over the corrupt one
    import json as json_mod

    assert "fragments" in json_mod.loads(store.read_text())
