"""Hypothesis strategies for regexes and predicates.

``regexes(builder)`` draws arbitrary EREs (including ``&``/``~`` and
bounded loops) over the test alphabet; ``standard_regexes`` restricts
to RE; ``b_re_regexes`` draws Boolean combinations of standard regexes
(the Theorem 7.3 class).
"""

from hypothesis import strategies as st

from tests.conftest import ALPHABET


def predicates(algebra):
    """Non-bottom predicates of a BitsetAlgebra."""
    return st.sets(
        st.sampled_from(list(ALPHABET)), min_size=1, max_size=len(ALPHABET)
    ).map(algebra.from_chars)


def _leaves(builder):
    return st.one_of(
        st.just(builder.epsilon),
        predicates(builder.algebra).map(builder.pred),
        st.sampled_from(list(ALPHABET)).map(builder.char),
    )


def standard_regexes(builder, max_leaves=8, bounded_loops=True):
    """Standard regexes (RE): no intersection, no complement.

    ``bounded_loops=False`` restricts to the paper's star-only RE
    grammar (bounded loops are sugar that expands the predicate count,
    which matters for the Theorem 7.3 bound).
    """

    def extend(children):
        options = [
            st.lists(children, min_size=2, max_size=3).map(builder.concat),
            st.lists(children, min_size=2, max_size=3).map(builder.union),
            children.map(builder.star),
        ]
        if bounded_loops:
            options += [
                children.map(builder.plus),
                children.map(builder.opt),
                st.tuples(children, st.integers(0, 3), st.integers(0, 2)).map(
                    lambda t: builder.loop(t[0], t[1], t[1] + t[2])
                ),
            ]
        return st.one_of(*options)

    return st.recursive(_leaves(builder), extend, max_leaves=max_leaves)


def b_re_regexes(builder, max_leaves=6, bounded_loops=True):
    """Boolean combinations of standard regexes: the B(RE) class."""
    base = standard_regexes(
        builder, max_leaves=max_leaves, bounded_loops=bounded_loops
    )

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=2, max_size=3).map(builder.union),
            st.lists(children, min_size=2, max_size=3).map(builder.inter),
            children.map(builder.compl),
        )

    return st.recursive(base, extend, max_leaves=4)


def extended_regexes(builder, max_leaves=6):
    """Arbitrary EREs: Boolean operators may nest under concat/loops."""

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=2, max_size=3).map(builder.concat),
            st.lists(children, min_size=2, max_size=3).map(builder.union),
            st.lists(children, min_size=2, max_size=2).map(builder.inter),
            children.map(builder.compl),
            children.map(builder.star),
            st.tuples(children, st.integers(0, 2), st.integers(0, 2)).map(
                lambda t: builder.loop(t[0], t[1], t[1] + t[2])
            ),
        )

    return st.recursive(_leaves(builder), extend, max_leaves=max_leaves)


def lookarounds(builder, max_leaves=4):
    """Zero-width assertion nodes over standard bodies."""
    body = standard_regexes(builder, max_leaves=max_leaves)
    return st.one_of(
        body.map(builder.lookahead),
        body.map(builder.neg_lookahead),
        body.map(builder.lookbehind),
        body.map(builder.neg_lookbehind),
    )


def lookaround_regexes(builder, max_leaves=6):
    """EREs with lookarounds mixed into the concatenation structure:
    assertion nodes appear as leaves next to consuming material, the
    shape the elimination pipeline and the positional matcher see."""
    leaves = st.one_of(_leaves(builder), lookarounds(builder))

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=2, max_size=3).map(builder.concat),
            st.lists(children, min_size=2, max_size=3).map(builder.union),
            children.map(builder.star),
            children.map(builder.opt),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def short_strings(max_length=5):
    """Strings over the test alphabet."""
    return st.text(alphabet=ALPHABET, max_size=max_length)
