"""Tier-1 replay of the frozen-failure corpus.

Every entry under ``tests/corpus/`` is a shrunk reproducer of a bug
that was found by the verification campaigns (or by hand) and fixed;
replaying them here makes every fix permanent.  ``make corpus-replay``
runs just this module.
"""

import pytest

from repro.verify.corpus import default_corpus_dir, load_all, replay_entry

ENTRIES = load_all()


def test_corpus_exists_and_is_nonempty():
    assert ENTRIES, (
        "no corpus entries under %s — the frozen reproducers are part "
        "of the suite" % default_corpus_dir()
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry["id"] for entry in ENTRIES]
)
def test_corpus_entry_replays(entry):
    ok, detail = replay_entry(entry)
    assert ok, "%s regressed: %s" % (entry["id"], detail)
