"""The cache-correctness gate: a seeded campaign, solved cold and then
pre-warmed, must agree on everything observable.

A warm solve replays recorded transition rows instead of deriving
them, so *any* divergence — verdict, witness, or certificate shape —
is a store bug (stale fragment, key aliasing, row-order drift).  Every
case runs on a fresh builder both times; the only difference between
the phases is the store's content.  A disagreement is shrunk to its
pattern and frozen into ``tests/corpus/`` before the test fails, so
the reproducer outlives the failing run.
"""

import random

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse, to_pattern
from repro.solver import Budget, RegexSolver
from repro.solver.store import SolverStore
from repro.verify.campaign import RegexGen
from repro.verify.corpus import freeze

SEED = 0x5BD
CASES = 60
ALPHABET = "ab01"


def _campaign_patterns():
    """The seeded pattern list (text form, so each phase re-parses on
    its own fresh builder)."""
    rng = random.Random(SEED)
    builder = RegexBuilder(IntervalAlgebra(127))
    gen = RegexGen(rng, builder, ALPHABET)
    patterns = []
    while len(patterns) < CASES:
        regex = gen.regex(rng.randint(1, 3))
        patterns.append(to_pattern(regex, builder.algebra))
    return patterns


def _normalize_certificate(cert):
    """Certificates embed builder uids, which differ between builders
    by construction; map every uid to its pattern text so cold and
    warm certificates become comparable."""
    if cert is None:
        return None
    names = {s["uid"]: s["pattern"] for s in cert["states"]}

    def state_key(state):
        rows = sorted(
            (
                tuple(tuple(r) for r in row["guard"]),
                tuple(sorted(names[t] for t in row["targets"])),
            )
            for row in state.get("rows", [])
        )
        return (state["pattern"], state.get("nullable"), tuple(rows))

    out = {
        "kind": cert["kind"],
        "pattern": cert["pattern"],
        "states": sorted(state_key(s) for s in cert["states"]),
    }
    if "witness" in cert:
        out["witness"] = cert["witness"]
    return out


def _solve(pattern, store):
    builder = RegexBuilder(IntervalAlgebra(127))
    solver = RegexSolver(builder, store=store, explain=True)
    result = solver.is_satisfiable(
        parse(builder, pattern), Budget(fuel=200000, seconds=10.0)
    )
    cert = None
    explanation = result.explanation
    if explanation is not None and explanation.certifiable():
        cert = explanation.certificate()
    return result, _normalize_certificate(cert)


def _freeze_disagreement(pattern, cold, warm):
    entry = {
        "id": "store-parity-%08x" % (hash(pattern) & 0xFFFFFFFF),
        "kind": "sat",
        "description": "Cold and warm-store solves disagreed on this "
                       "pattern (cold %s, warm %s): a warm replay must "
                       "be observably identical to the cold build."
                       % (cold.status, warm.status),
        "found_by": "store cold/warm parity campaign (seed 0x5BD)",
        "pattern": pattern,
        "expected": cold.status,
    }
    return freeze(entry)


def test_campaign_cold_then_warm_is_observably_identical():
    patterns = _campaign_patterns()
    store = SolverStore()
    cold = {}
    for pattern in patterns:
        cold[pattern] = _solve(pattern, store)
    assert store.hits + store.misses >= len(set(patterns))
    captured = len(store)
    assert captured > 0, "campaign captured no fragments at all"

    # phase 2: fresh store preloaded with phase 1's fragments only
    # (serialization round-trip included, as serve workers would see)
    warmed = SolverStore().from_dict(store.to_dict())
    for pattern in patterns:
        cold_result, cold_cert = cold[pattern]
        warm_result, warm_cert = _solve(pattern, warmed)
        if (warm_result.status != cold_result.status
                or warm_result.witness != cold_result.witness):
            path = _freeze_disagreement(pattern, cold_result, warm_result)
            pytest.fail(
                "cold/warm disagreement on %r (cold %s/%r, warm %s/%r); "
                "frozen as %s" % (
                    pattern, cold_result.status, cold_result.witness,
                    warm_result.status, warm_result.witness, path,
                )
            )
        assert warm_cert == cold_cert, (
            "certificates diverged on %r" % pattern
        )
    assert warmed.hits > 0, "pre-warmed campaign never hit the store"
