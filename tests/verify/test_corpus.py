"""Corpus freeze/load/replay machinery (on a scratch directory)."""

from repro.verify.corpus import (
    entry_pattern, freeze, load_all, replay_entry,
)


def test_freeze_load_roundtrip(tmp_path):
    entry = {
        "id": "scratch-sat",
        "kind": "sat",
        "description": "scratch entry",
        "pattern": "a+",
        "expected": "sat",
    }
    path = freeze(entry, str(tmp_path))
    assert path.endswith("scratch-sat.json")
    loaded = load_all(str(tmp_path))
    assert loaded == [entry]


def test_replay_each_kind(tmp_path):
    good = [
        {"id": "s1", "kind": "search", "pattern": "b+", "text": "abba",
         "expected": [1, 2]},
        {"id": "s2", "kind": "sat", "pattern": "a&b", "expected": "unsat"},
        {"id": "s3", "kind": "smt2", "expected": "sat",
         "script": '(declare-const x String)\n'
                   '(assert (str.in_re x (re.+ (str.to_re "a"))))\n'},
        {"id": "s4", "kind": "print", "pattern": "(a|b){2,3}&~(ab)"},
    ]
    for entry in good:
        ok, detail = replay_entry(entry)
        assert ok, (entry["id"], detail)


def test_replay_detects_regression():
    bad = {"id": "x", "kind": "search", "pattern": "a", "text": "ba",
           "expected": [0, 1]}
    ok, detail = replay_entry(bad)
    assert not ok
    assert "expected [0, 1]" in detail


def test_repeat_spec_expansion():
    entry = {"id": "deep", "kind": "print",
             "repeat": {"prefix": "a(b|", "core": "a", "suffix": ")",
                        "count": 3}}
    assert entry_pattern(entry) == "a(b|a(b|a(b|a)))"
    ok, detail = replay_entry(entry)
    assert ok, detail


def test_load_all_missing_directory(tmp_path):
    assert load_all(str(tmp_path / "nope")) == []
