"""Metamorphic identities hold on the real solver and catch a liar."""

import random

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.solver.result import SolverResult
from repro.verify.campaign import RegexGen
from repro.verify.metamorphic import check_identities


@pytest.fixture()
def builder():
    return RegexBuilder(IntervalAlgebra(127))


@pytest.mark.parametrize("pattern", [
    "a+", "(a|b)*01", "~(a*)&b+", "a{2,4}", "[]", "()", "~([])",
    "(0|1)+&~(.*01.*)",
])
def test_identities_hold(builder, pattern):
    assert check_identities(builder, parse(builder, pattern)) == []


def test_identities_hold_on_random_regexes(builder):
    rng = random.Random(11)
    gen = RegexGen(rng, builder)
    for _ in range(40):
        regex = gen.regex(rng.randint(1, 3))
        violations = check_identities(builder, regex)
        assert violations == [], (regex, violations)


def test_lying_solver_is_flagged(builder):
    class Liar:
        """Claims everything unsat; the derivative expansion of a sat
        regex contradicts it."""

        def is_satisfiable(self, regex, budget=None):
            return SolverResult("unsat")

        def equivalent(self, left, right, budget=None):
            return SolverResult("sat")

    # a *consistent* liar agrees with its own derivative expansion, but
    # cannot satisfy the excluded middle: R | ~R is never unsat
    violations = check_identities(
        builder, parse(builder, "ab"), solver=Liar()
    )
    assert "compl-union" in {v.identity for v in violations}
    # a nullable regex is sat with no solving at all: the expansion
    # flags the lie even without derivatives
    violations = check_identities(
        builder, parse(builder, "a*"), solver=Liar()
    )
    assert any(v.identity == "derivative-expansion" for v in violations)
