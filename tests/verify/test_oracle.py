"""Cross-engine oracle: consistency on healthy engines, detection of
deliberately broken ones."""

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.solver.result import SolverResult
from repro.verify.oracle import CrossEngineOracle, make_engines


@pytest.fixture()
def builder():
    return RegexBuilder(IntervalAlgebra(127))


@pytest.mark.parametrize("pattern", [
    "a+", "(a|b)*01", "~(a*)&b+", "(0|1)+&~(.*01.*)", "a{2,4}", "[]",
    "()", "~([])",
])
def test_healthy_engines_agree(builder, pattern):
    oracle = CrossEngineOracle(builder)
    assert oracle.check(parse(builder, pattern)) == []


def test_verdict_disagreement_detected(builder):
    class Liar:
        def is_satisfiable(self, regex, budget=None):
            return SolverResult("unsat")

    engines = make_engines(builder)
    engines["liar"] = Liar()
    findings = CrossEngineOracle(builder, engines=engines).check(
        parse(builder, "a+")
    )
    assert [f.kind for f in findings] == ["verdict"]
    assert findings[0].verdicts["liar"] == "unsat"
    assert findings[0].verdicts["dz3"] == "sat"


def test_invalid_witness_detected(builder):
    class BadWitness:
        def is_satisfiable(self, regex, budget=None):
            return SolverResult("sat", witness="zzz")

    engines = make_engines(builder)
    engines["bad"] = BadWitness()
    findings = CrossEngineOracle(builder, engines=engines).check(
        parse(builder, "a+")
    )
    assert [f.kind for f in findings] == ["witness"]
    assert "zzz" in findings[0].detail


def test_unknowns_are_not_disagreements(builder):
    class Shrug:
        def is_satisfiable(self, regex, budget=None):
            return SolverResult("unknown", reason="always")

    engines = make_engines(builder)
    engines["shrug"] = Shrug()
    assert CrossEngineOracle(builder, engines=engines).check(
        parse(builder, "a+")
    ) == []


def test_finding_serializes(builder):
    class Liar:
        def is_satisfiable(self, regex, budget=None):
            return SolverResult("unsat")

    engines = make_engines(builder)
    engines["liar"] = Liar()
    finding = CrossEngineOracle(builder, engines=engines).check(
        parse(builder, "a")
    )[0]
    as_dict = finding.to_dict()
    assert as_dict["kind"] == "verdict"
    assert as_dict["verdicts"]["liar"] == "unsat"


def test_dz3_runs_with_provenance(builder):
    engines = make_engines(builder)
    assert engines["dz3"].explain is True


def test_certificates_are_checked_during_oracle_runs(builder):
    oracle = CrossEngineOracle(builder)
    assert oracle.check(parse(builder, "a+&b+")) == []
    # the dz3 verdict must have carried a checked certificate
    result = oracle.engines["dz3"].is_satisfiable(parse(builder, "a+&b+"))
    assert result.explanation is not None
    assert result.explanation.check().ok


def test_rejected_certificate_is_a_finding(builder, monkeypatch):
    from repro.obs.explain import CheckResult, Explanation

    monkeypatch.setattr(
        Explanation, "check",
        lambda self: CheckResult(False, ["forged row"]),
    )
    findings = CrossEngineOracle(builder).check(parse(builder, "a&b"))
    kinds = {f.kind for f in findings}
    assert "certificate" in kinds
    finding = next(f for f in findings if f.kind == "certificate")
    assert "forged row" in finding.detail
    assert "dz3" in finding.detail
