"""Shrinker: preserves the failure predicate, reduces hard."""

import random

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse, to_pattern
from repro.regex.semantics import Matcher
from repro.verify.campaign import RegexGen
from repro.verify.shrink import _cost, candidates, shrink


def test_shrinks_to_minimal_membership_reproducer():
    builder = RegexBuilder(IntervalAlgebra(127))
    big = parse(builder, "(x|ab1(0|1)*)&~(c+)|zz")
    matcher = Matcher(builder.algebra)
    predicate = lambda r: matcher.matches(r, "ab1")
    small = shrink(builder, big, predicate)
    assert predicate(small)
    assert to_pattern(small, builder.algebra) == "ab1"


def test_charclass_narrowing():
    builder = RegexBuilder(IntervalAlgebra(127))
    regex = parse(builder, "[ab01]{1,3}")
    matcher = Matcher(builder.algebra)
    small = shrink(builder, regex, lambda r: matcher.matches(r, "1"))
    assert to_pattern(small, builder.algebra) == "1"


def test_predicate_exceptions_count_as_gone():
    builder = RegexBuilder(IntervalAlgebra(127))
    regex = parse(builder, "ab")
    full = parse(builder, "ab")

    def fragile(candidate):
        if candidate is not full:
            raise RuntimeError("boom")
        return True

    assert shrink(builder, regex, fragile) is full


def test_result_is_fixpoint_and_smaller():
    builder = RegexBuilder(IntervalAlgebra(127))
    rng = random.Random(5)
    gen = RegexGen(rng, builder)
    matcher = Matcher(builder.algebra)
    for _ in range(20):
        regex = gen.regex(rng.randint(2, 4))
        predicate = lambda r: matcher.matches(r, "a")
        if not predicate(regex):
            continue
        small = shrink(builder, regex, predicate)
        assert predicate(small)
        assert small.size() <= regex.size()
        # 1-minimality: no cost-reducing rewrite of the result still
        # reproduces the failure
        for candidate in candidates(builder, small):
            if _cost(builder, candidate) < _cost(builder, small):
                assert not predicate(candidate)
