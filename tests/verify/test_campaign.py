"""Campaign driver: determinism, clean runs, and bug detection."""

import random

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse, to_pattern
from repro.verify.campaign import (
    RegexGen, run_campaign, run_shard, search_mismatch, solver_findings,
)


def test_clean_campaign_inline():
    report = run_campaign(seed=0, budget_seconds=5, jobs=1, max_cases=40)
    assert report["cases"] == 40
    assert report["findings"] == []
    assert report["unexplained"] == 0


def test_generator_is_deterministic():
    def stream(seed):
        builder = RegexBuilder(IntervalAlgebra(127))
        gen = RegexGen(random.Random(seed), builder)
        return [to_pattern(gen.regex(3), builder.algebra)
                for _ in range(20)]

    assert stream(7) == stream(7)
    assert stream(7) != stream(8)


def test_shard_respects_max_cases():
    shard = run_shard((0, 60.0, 120000, 3.0, "ab01", 10))
    assert shard["cases"] == 10
    assert shard["seed"] == 0


def test_solver_findings_empty_on_healthy_stack():
    builder = RegexBuilder(IntervalAlgebra(127))
    gen = RegexGen(random.Random(3), builder)
    for _ in range(10):
        assert solver_findings(builder, gen.regex(2)) == []


def test_search_mismatch_none_on_fixed_matcher():
    builder = RegexBuilder(IntervalAlgebra(127))
    rng = random.Random(9)
    gen = RegexGen(rng, builder)
    texts = ["", "ab1", "b01a", "abba", "0110"]
    for _ in range(15):
        regex = gen.standard_regex(2)
        assert search_mismatch(builder, regex, texts) is None


def test_known_findings_are_explained(tmp_path):
    # a finding whose shrunk pattern is frozen counts as explained;
    # simulate by freezing first, then post-processing a fake report
    from repro.verify.corpus import freeze

    freeze({"id": "known", "kind": "sat", "pattern": "a+",
            "expected": "sat"}, str(tmp_path))
    report = run_campaign(seed=0, budget_seconds=2, jobs=1, max_cases=5,
                          corpus_dir=str(tmp_path))
    assert report["unexplained"] == len(report["findings"])


def test_rejected_certificates_flow_into_campaign_findings(monkeypatch):
    """A broken certificate is a campaign finding like any other: it
    enters solver_findings and therefore the shrink-and-freeze path."""
    from repro.obs.explain import CheckResult, Explanation

    monkeypatch.setattr(
        Explanation, "check",
        lambda self: CheckResult(False, ["forged certificate"]),
    )
    builder = RegexBuilder(IntervalAlgebra(127))
    found = solver_findings(builder, parse(builder, "a&b"))
    assert any(f["kind"] == "certificate" for f in found)
