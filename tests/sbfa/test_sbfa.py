"""SBFAs: Theorem 7.2 (language correctness) and the forward/backward
acceptance agreement."""

from hypothesis import given, settings

from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.sbfa import boolstate as B
from repro.sbfa.sbfa import delta_plus, from_regex
from tests.conftest import ALPHABET
from tests.strategies import b_re_regexes, extended_regexes


def test_theorem_7_2(bitset_builder):
    """L(SBFA(R)) = L(R)."""
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=60, deadline=None)
    @given(extended_regexes(b))
    def check(r):
        sbfa = from_regex(b, r)
        for s in enumerate_strings(ALPHABET, 3):
            assert sbfa.accepts(s) == matcher.matches(r, s)

    check()


def test_forward_backward_agree(bitset_builder):
    b = bitset_builder

    @settings(max_examples=40, deadline=None)
    @given(b_re_regexes(b))
    def check(r):
        sbfa = from_regex(b, r)
        for s in enumerate_strings(ALPHABET, 3):
            assert sbfa.accepts(s) == sbfa.accepts_backward(s)

    check()


def test_delta_plus_examples(bitset_builder):
    """The paper's delta+ examples: delta+(b(ab)*) includes the start,
    delta+(ab) does not."""
    b = bitset_builder
    r1 = parse(b, "b(ab)*")
    dp1 = delta_plus(b, r1)
    assert r1 in dp1
    assert parse(b, "(ab)*") in dp1

    r2 = parse(b, "ab")
    dp2 = delta_plus(b, r2)
    assert r2 not in dp2
    assert b.char("b") in dp2
    assert b.epsilon in dp2


def test_states_include_r_bottom_full(bitset_builder):
    b = bitset_builder
    r = parse(b, "a0*")
    sbfa = from_regex(b, r)
    assert {r, b.empty, b.full} <= sbfa.states


def test_bottom_self_loop(bitset_builder):
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "ab"))
    assert sbfa.tr_apply(sbfa.delta[b.empty], "a") == B.FALSE


def test_finals_are_nullable_states(bitset_builder):
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "a*b"))
    for q in sbfa.states:
        assert (q in sbfa.finals) == q.nullable


def test_nu_lifting(bitset_builder):
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "a*&~(b)"))
    full, empty = b.full, b.empty
    assert sbfa.nu(B.st(full))
    assert not sbfa.nu(B.st(empty))
    assert sbfa.nu(B.conj(B.st(full), B.neg(B.st(empty))))


def test_guards_extracted_from_regex(bitset_builder):
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "[ab]*0"))
    assert b.algebra.from_chars("ab") in sbfa.guards()
    assert b.algebra.from_char("0") in sbfa.guards()
