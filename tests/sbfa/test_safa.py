"""SAFA conversions (Propositions 8.2 and 8.3)."""

from hypothesis import given, settings

from repro.alphabet.bitset import BitsetAlgebra
from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.sbfa import boolstate as B
from repro.sbfa.safa import SAFA, from_sbfa, to_sbfa
from repro.sbfa.sbfa import from_regex
from tests.conftest import ALPHABET
from tests.strategies import b_re_regexes

import pytest


def test_safa_rejects_negative_targets():
    alg = BitsetAlgebra("ab")
    with pytest.raises(ValueError):
        SAFA(alg, {"q"}, B.neg(B.st("q")), set(), [])


def test_proposition_8_3_from_sbfa(bitset_builder):
    """SAFA(M) accepts the same language as M."""
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=30, deadline=None)
    @given(b_re_regexes(b, max_leaves=4))
    def check(r):
        sbfa = from_regex(b, r)
        safa = from_sbfa(sbfa)
        for s in enumerate_strings(ALPHABET, 3):
            assert safa.accepts(s) == matcher.matches(r, s)

    check()


def test_proposition_8_2_round_trip(bitset_builder):
    """to_sbfa(from_sbfa(M)) still accepts L(M)."""
    b = bitset_builder
    matcher = Matcher(b.algebra)
    r = parse(b, "(.*0.*)&~(.*01.*)")
    sbfa = from_regex(b, r)
    safa = from_sbfa(sbfa)
    back = to_sbfa(safa)
    for s in enumerate_strings(ALPHABET, 3):
        assert back.accepts(s) == matcher.matches(r, s)


def test_state_doubling(bitset_builder):
    """Complement elimination doubles the state space."""
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "~(.*01.*)"))
    safa = from_sbfa(sbfa)
    assert safa.state_count == 2 * sbfa.state_count


def test_handwritten_safa_acceptance():
    """A small alternating automaton: accepts strings that contain
    both 'a' (branch 1) and 'b' (branch 2)."""
    alg = BitsetAlgebra("ab")
    a, bb = alg.from_char("a"), alg.from_char("b")
    transitions = [
        ("qa", a, B.st("ok")), ("qa", bb, B.st("qa")),
        ("qb", bb, B.st("ok")), ("qb", a, B.st("qb")),
        ("ok", alg.top, B.st("ok")),
    ]
    safa = SAFA(alg, {"qa", "qb", "ok"}, B.conj(B.st("qa"), B.st("qb")),
                {"ok"}, transitions)
    assert safa.accepts("ab")
    assert safa.accepts("ba")
    assert not safa.accepts("aa")
    assert not safa.accepts("")


def test_safa_guards_partition_locally(bitset_builder):
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "[ab]*0&~(1*)"))
    safa = from_sbfa(sbfa)
    algebra = b.algebra
    by_state = {}
    for q, pred, _ in safa.transitions:
        by_state.setdefault(q, []).append(pred)
    for preds in by_state.values():
        for i, p in enumerate(preds):
            for q in preds[i + 1:]:
                assert not algebra.is_sat(algebra.conj(p, q))
