"""Proposition 8.1: SBFAs over a finite alphabet are classical BFAs."""

from hypothesis import given, settings

from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.sbfa.bfa import from_sbfa
from repro.sbfa.sbfa import from_regex
from tests.conftest import ALPHABET
from tests.strategies import b_re_regexes


def test_proposition_8_1(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=40, deadline=None)
    @given(b_re_regexes(b, max_leaves=4))
    def check(r):
        bfa = from_sbfa(from_regex(b, r), ALPHABET)
        for s in enumerate_strings(ALPHABET, 3):
            assert bfa.accepts(s) == matcher.matches(r, s)

    check()


def test_backward_evaluation_matches_forward(bitset_builder):
    b = bitset_builder
    bfa = from_sbfa(from_regex(b, parse(b, "(.*0.*)&~(.*01.*)")), ALPHABET)
    for s in enumerate_strings(ALPHABET, 4):
        assert bfa.accepts(s) == bfa.accepts_backward(s)


def test_table_is_total(bitset_builder):
    b = bitset_builder
    bfa = from_sbfa(from_regex(b, parse(b, "a|b0")), ALPHABET)
    for q in bfa.states:
        for ch in ALPHABET:
            assert (q, ch) in bfa.table


def test_out_of_alphabet_rejected(bitset_builder):
    b = bitset_builder
    bfa = from_sbfa(from_regex(b, parse(b, "a*")), "ab")
    assert not bfa.accepts("a0")
    assert not bfa.accepts_backward("a0")
