"""Theorem 7.3: for clean, normalized R in B(RE),
|Q_SBFA(R)| <= #(R) + 3.

The paper states the theorem for the star-only RE grammar; our bounded
loops are sugar whose expansion multiplies the predicate count, so for
regexes with loops the bound is checked against the *expanded* count.
"""

from hypothesis import given, settings

from repro.regex import parse
from repro.regex.ast import INF, LOOP, PRED
from repro.sbfa.sbfa import from_regex
from tests.strategies import b_re_regexes, standard_regexes


def expanded_pred_count(regex):
    """#(R) of the loop-expanded regex: R{l,h} ~ h copies of R
    (l+1 copies for R{l,inf}, via R^l . R*)."""
    if regex.kind == PRED:
        return 1
    total = sum(expanded_pred_count(c) for c in regex.children or ())
    if regex.kind == LOOP:
        factor = (regex.lo + 1) if regex.hi is INF else max(regex.hi, 1)
        total *= factor
    return total


def strict_bound(regex):
    return regex.pred_count() + 3


def expanded_bound(regex):
    return expanded_pred_count(regex) + 3


def test_theorem_7_3_star_only_strict(bitset_builder):
    """The paper's exact bound, on the paper's exact grammar."""
    b = bitset_builder

    @settings(max_examples=150, deadline=None)
    @given(b_re_regexes(b, bounded_loops=False))
    def check(r):
        if not r.is_clean():
            return
        sbfa = from_regex(b, r)
        assert sbfa.state_count <= strict_bound(r), (r, sbfa.state_count)

    check()


def test_theorem_7_3_with_loops_expanded(bitset_builder):
    b = bitset_builder

    @settings(max_examples=100, deadline=None)
    @given(b_re_regexes(b))
    def check(r):
        if not r.is_clean():
            return
        sbfa = from_regex(b, r)
        assert sbfa.state_count <= expanded_bound(r), (r, sbfa.state_count)

    check()


def test_theorem_7_3_on_random_standard(bitset_builder):
    b = bitset_builder

    @settings(max_examples=100, deadline=None)
    @given(standard_regexes(b, bounded_loops=False))
    def check(r):
        if not r.is_clean():
            return
        sbfa = from_regex(b, r)
        assert sbfa.state_count <= strict_bound(r)

    check()


def test_paper_examples(ascii_builder):
    b = ascii_builder
    for pattern in [
        r"(.*\d.*)&~(.*01.*)",
        r"(.*a.*)&(.*b.*)",
        r"~(a*b*)",
        r"(a|b)*ab(a|b)*&~(b*)",
    ]:
        r = parse(b, pattern)
        assert r.in_b_re()
        sbfa = from_regex(b, r)
        assert sbfa.state_count <= expanded_bound(r)


def test_blowup_family_is_linear_in_k(ascii_builder):
    """The determinization-blowup family has linearly many derivative
    states — the heart of the paper's performance claim (a DFA needs
    2**k states; derivatives need O(k))."""
    b = ascii_builder
    counts = []
    for k in (4, 8, 16):
        r = parse(b, "(.*a.{%d})&(.*b.{%d})" % (k, k))
        sbfa = from_regex(b, r)
        assert sbfa.state_count <= expanded_bound(r)
        assert sbfa.state_count < 2 ** k or k <= 4
        counts.append(sbfa.state_count)
    # growth is linear: doubling k roughly doubles states
    assert counts[2] - counts[1] <= 3 * (counts[1] - counts[0])


def test_general_ere_may_exceed_bound(bitset_builder):
    """Outside B(RE) the linear bound does not apply (the paper notes
    lifting can blow up); the construction must still terminate."""
    b = bitset_builder
    r = b.star(b.inter([parse(b, "(a|b)(a|b)"), parse(b, "(ab|ba|aa)")]))
    sbfa = from_regex(b, r)
    assert sbfa.state_count >= 1  # terminates; no bound asserted
