"""Boolean state combinations."""

from repro.sbfa import boolstate as B


def test_constructors_simplify():
    q, p = B.st("q"), B.st("p")
    assert B.conj(q, B.TRUE) == q
    assert B.conj(q, B.FALSE) == B.FALSE
    assert B.disj(q, B.FALSE) == q
    assert B.disj(q, B.TRUE) == B.TRUE
    assert B.conj(q, q) == q
    assert B.disj() == B.FALSE
    assert B.conj() == B.TRUE


def test_flattening():
    q, p, r = B.st("q"), B.st("p"), B.st("r")
    nested = B.conj(q, B.conj(p, r))
    assert nested == ("and", q, p, r)


def test_negation():
    q = B.st("q")
    assert B.neg(B.neg(q)) == q
    assert B.neg(B.TRUE) == B.FALSE


def test_states_of():
    combo = B.conj(B.st("a"), B.neg(B.disj(B.st("b"), B.st("c"))))
    assert B.states_of(combo) == {"a", "b", "c"}


def test_evaluate():
    combo = B.conj(B.st("a"), B.neg(B.st("b")))
    assert B.evaluate(combo, lambda q: q == "a")
    assert not B.evaluate(combo, lambda q: True)


def test_map_states():
    combo = B.disj(B.st(1), B.st(2))
    doubled = B.map_states(combo, lambda q: B.st(q * 2))
    assert B.states_of(doubled) == {2, 4}


def test_map_states_can_collapse():
    combo = B.disj(B.st(1), B.st(2))
    collapsed = B.map_states(combo, lambda q: B.TRUE)
    assert collapsed == B.TRUE


def test_is_positive():
    assert B.is_positive(B.conj(B.st("a"), B.st("b")))
    assert not B.is_positive(B.neg(B.st("a")))


def test_pretty():
    text = B.pretty(B.conj(B.st("a"), B.neg(B.st("b"))), render=str)
    assert "&" in text and "~" in text
