"""Boolean operations on SBFAs: constant-time and correct."""

import pytest
from hypothesis import given, settings

from repro.regex import parse
from repro.regex.semantics import Matcher, enumerate_strings
from repro.sbfa import boolstate as B
from repro.sbfa import ops
from repro.sbfa.sbfa import from_regex
from tests.conftest import ALPHABET
from tests.strategies import b_re_regexes


def test_union_inter_complement_semantics(bitset_builder):
    b = bitset_builder
    matcher = Matcher(b.algebra)

    @settings(max_examples=40, deadline=None)
    @given(b_re_regexes(b, max_leaves=4), b_re_regexes(b, max_leaves=4))
    def check(r, s):
        m, n = from_regex(b, r), from_regex(b, s)
        u = ops.union(m, n)
        i = ops.inter(m, n)
        c = ops.complement(m)
        for w in enumerate_strings(ALPHABET, 3):
            in_r, in_s = matcher.matches(r, w), matcher.matches(s, w)
            assert u.accepts(w) == (in_r or in_s)
            assert i.accepts(w) == (in_r and in_s)
            assert c.accepts(w) == (not in_r)

    check()


def test_complement_adds_no_states(bitset_builder):
    b = bitset_builder
    m = from_regex(b, parse(b, "(.*0.*)&~(.*01.*)"))
    c = ops.complement(m)
    assert c.state_count == m.state_count
    assert c.delta == m.delta
    assert c.initial == B.neg(m.initial)


def test_double_complement_restores_initial(bitset_builder):
    b = bitset_builder
    m = from_regex(b, parse(b, "(ab)*"))
    assert ops.complement(ops.complement(m)).initial == m.initial


def test_difference(bitset_builder):
    b = bitset_builder
    m = from_regex(b, parse(b, "(a|b)*"))
    n = from_regex(b, parse(b, ".*ab.*"))
    d = ops.difference(m, n)
    assert d.accepts("ba")
    assert not d.accepts("ab")
    assert not d.accepts("a0")


def test_shared_states_merge_not_duplicate(bitset_builder):
    b = bitset_builder
    r = parse(b, "(a|b)*0")
    m, n = from_regex(b, r), from_regex(b, parse(b, "(a|b)*0|ab"))
    u = ops.union(m, n)
    # the shared derivative states appear once
    assert u.state_count <= m.state_count + n.state_count


def test_mismatched_algebras_rejected(bitset_builder, ascii_builder):
    m = from_regex(bitset_builder, parse(bitset_builder, "a"))
    n = from_regex(ascii_builder, parse(ascii_builder, "a"))
    with pytest.raises(ValueError):
        ops.union(m, n)
