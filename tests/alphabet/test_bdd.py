"""BDD algebra, cross-checked against the interval algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.alphabet.bdd import BDDAlgebra
from repro.alphabet.intervals import IntervalAlgebra
from repro.errors import AlgebraError

BITS = 8
MAX = (1 << BITS) - 1

range_sets = st.lists(
    st.tuples(st.integers(0, MAX), st.integers(0, MAX)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=4,
)


@pytest.fixture
def bdd():
    return BDDAlgebra(BITS)


@pytest.fixture
def ref():
    return IntervalAlgebra(MAX)


def members(bdd, phi):
    return {c for c in range(MAX + 1) if bdd.member(c, phi)}


@given(range_sets)
def test_from_ranges_matches_reference(pairs):
    bdd, ref = BDDAlgebra(BITS), IntervalAlgebra(MAX)
    assert members(bdd, bdd.from_ranges(pairs)) == set(ref.from_ranges(pairs))


@given(range_sets, range_sets)
def test_conj_disj_match_reference(p1, p2):
    bdd = BDDAlgebra(BITS)
    a, b = bdd.from_ranges(p1), bdd.from_ranges(p2)
    assert members(bdd, bdd.conj(a, b)) == members(bdd, a) & members(bdd, b)
    assert members(bdd, bdd.disj(a, b)) == members(bdd, a) | members(bdd, b)


@given(range_sets)
def test_neg_and_canonicity(pairs):
    bdd = BDDAlgebra(BITS)
    a = bdd.from_ranges(pairs)
    assert bdd.neg(bdd.neg(a)) is a  # ROBDDs are canonical: same node
    assert members(bdd, bdd.neg(a)) == set(range(MAX + 1)) - members(bdd, a)


@given(range_sets)
def test_count(pairs):
    bdd = BDDAlgebra(BITS)
    a = bdd.from_ranges(pairs)
    assert bdd.count(a) == len(members(bdd, a))


@given(range_sets)
def test_pick_returns_member(pairs):
    bdd = BDDAlgebra(BITS)
    a = bdd.from_ranges(pairs)
    if bdd.is_sat(a):
        assert bdd.member(bdd.pick(a), a)


def test_pick_empty_raises(bdd):
    with pytest.raises(AlgebraError):
        bdd.pick(bdd.bot)


def test_member_out_of_domain_is_clean_non_match(bdd):
    assert bdd.member(chr(MAX + 1), bdd.top) is False
    assert bdd.in_domain(chr(MAX + 1)) is False
    assert bdd.in_domain(chr(MAX)) is True


def test_terminals(bdd):
    assert bdd.is_valid(bdd.top)
    assert not bdd.is_sat(bdd.bot)
    assert bdd.conj(bdd.top, bdd.bot) is bdd.bot


def test_interning_shares_nodes(bdd):
    a = bdd.from_ranges([(0, 10)])
    b = bdd.from_ranges([(0, 10)])
    assert a is b


def test_node_count_is_small_for_ranges(bdd):
    # a contiguous range needs at most ~2*bits nodes
    phi = bdd.from_ranges([(37, 201)])
    assert bdd.node_count(phi) <= 2 * BITS


def test_singleton(bdd):
    phi = bdd.from_char("A")
    assert bdd.count(phi) == 1
    assert bdd.pick(phi) == "A"
