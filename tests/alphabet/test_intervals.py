"""Interval algebra: CharSet canonicalization and Boolean-algebra laws."""

import pytest
from hypothesis import given, strategies as st

from repro.alphabet.intervals import BMP_MAX, CharSet, IntervalAlgebra
from repro.errors import AlgebraError

MAX = 255


@pytest.fixture
def alg():
    return IntervalAlgebra(MAX)


range_sets = st.lists(
    st.tuples(st.integers(0, MAX), st.integers(0, MAX)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=5,
)


def to_set(charset):
    return set(charset)


class TestCharSet:
    def test_normalize_merges_adjacent(self):
        cs = CharSet.normalize([(5, 9), (10, 12)])
        assert cs.ranges == ((5, 12),)

    def test_normalize_merges_overlap(self):
        cs = CharSet.normalize([(1, 8), (4, 12), (20, 22)])
        assert cs.ranges == ((1, 12), (20, 22))

    def test_normalize_drops_empty_pairs(self):
        assert CharSet.normalize([(5, 4)]).ranges == ()

    def test_contains_binary_search(self):
        cs = CharSet.normalize([(10, 20), (30, 40), (50, 60)])
        for code in (10, 20, 35, 60):
            assert code in cs
        for code in (9, 21, 29, 61, 0):
            assert code not in cs

    def test_len_and_iter(self):
        cs = CharSet.normalize([(0, 2), (5, 5)])
        assert len(cs) == 4
        assert list(cs) == [0, 1, 2, 5]

    def test_min_of_empty_raises(self):
        with pytest.raises(AlgebraError):
            CharSet(()).min()

    @given(range_sets)
    def test_normalization_is_canonical(self, pairs):
        a = CharSet.normalize(pairs)
        b = CharSet.normalize(list(reversed(pairs)))
        assert a == b and hash(a) == hash(b)

    @given(range_sets)
    def test_ranges_disjoint_sorted_nonadjacent(self, pairs):
        cs = CharSet.normalize(pairs)
        for (lo1, hi1), (lo2, hi2) in zip(cs.ranges, cs.ranges[1:]):
            assert hi1 + 1 < lo2


class TestAlgebraLaws:
    @given(range_sets, range_sets)
    def test_union_denotation(self, p1, p2):
        alg = IntervalAlgebra(MAX)
        a, b = alg.from_ranges(p1), alg.from_ranges(p2)
        assert to_set(alg.disj(a, b)) == to_set(a) | to_set(b)

    @given(range_sets, range_sets)
    def test_intersection_denotation(self, p1, p2):
        alg = IntervalAlgebra(MAX)
        a, b = alg.from_ranges(p1), alg.from_ranges(p2)
        assert to_set(alg.conj(a, b)) == to_set(a) & to_set(b)

    @given(range_sets)
    def test_complement_involution(self, pairs):
        alg = IntervalAlgebra(MAX)
        a = alg.from_ranges(pairs)
        assert alg.neg(alg.neg(a)) == a

    @given(range_sets, range_sets)
    def test_de_morgan(self, p1, p2):
        alg = IntervalAlgebra(MAX)
        a, b = alg.from_ranges(p1), alg.from_ranges(p2)
        assert alg.neg(alg.conj(a, b)) == alg.disj(alg.neg(a), alg.neg(b))

    @given(range_sets)
    def test_extensionality(self, pairs):
        alg = IntervalAlgebra(MAX)
        a = alg.from_ranges(pairs)
        rebuilt = alg.from_ranges([(c, c) for c in a])
        assert rebuilt == a

    def test_top_bottom(self, alg):
        assert alg.is_valid(alg.top)
        assert not alg.is_sat(alg.bot)
        assert alg.neg(alg.top) == alg.bot

    def test_implies(self, alg):
        small = alg.from_ranges([(10, 20)])
        big = alg.from_ranges([(0, 30)])
        assert alg.implies(small, big)
        assert not alg.implies(big, small)

    def test_count(self, alg):
        assert alg.count(alg.from_ranges([(0, 9), (20, 20)])) == 11

    def test_diff_xor(self, alg):
        a = alg.from_ranges([(0, 10)])
        b = alg.from_ranges([(5, 15)])
        assert to_set(alg.diff(a, b)) == set(range(0, 5))
        assert to_set(alg.xor(a, b)) == set(range(0, 5)) | set(range(11, 16))


class TestPickAndMembership:
    def test_pick_prefers_printable(self, alg):
        phi = alg.from_ranges([(0, 5), (0x41, 0x42)])
        assert alg.pick(phi) == "A"

    def test_pick_falls_back_to_minimum(self, alg):
        phi = alg.from_ranges([(1, 3)])
        assert alg.pick(phi) == "\x01"

    def test_pick_empty_raises(self, alg):
        with pytest.raises(AlgebraError):
            alg.pick(alg.bot)

    def test_member_out_of_domain_is_clean_non_match(self, alg):
        # out-of-domain characters are in no predicate's denotation:
        # a non-match, never an AlgebraError
        assert alg.member(chr(300), alg.top) is False
        assert alg.in_domain(chr(300)) is False
        assert alg.in_domain(chr(255)) is True

    def test_from_char_string_and_int(self, alg):
        assert alg.from_char("a") == alg.from_char(0x61)

    def test_from_chars(self, alg):
        phi = alg.from_chars("abc")
        assert alg.count(phi) == 3
        assert alg.member("b", phi)

    def test_domain_clamps_ranges(self):
        alg = IntervalAlgebra(0x7F)
        phi = alg.from_ranges([(0x70, 0x200)])
        assert to_set(phi) == set(range(0x70, 0x80))


def test_bmp_default_domain():
    alg = IntervalAlgebra()
    assert alg.max_code == BMP_MAX
    assert alg.count(alg.top) == BMP_MAX + 1
