"""Bitset algebra over explicit finite alphabets."""

import pytest
from hypothesis import given, strategies as st

from repro.alphabet.bitset import BitsetAlgebra
from repro.errors import AlgebraError

char_sets = st.sets(st.sampled_from("abcd"))


@pytest.fixture
def alg():
    return BitsetAlgebra("abcd")


def test_rejects_empty_alphabet():
    with pytest.raises(AlgebraError):
        BitsetAlgebra("")


def test_rejects_duplicates():
    with pytest.raises(AlgebraError):
        BitsetAlgebra("aa")


def test_top_bot(alg):
    assert alg.count(alg.top) == 4
    assert alg.count(alg.bot) == 0
    assert alg.is_valid(alg.top) and not alg.is_sat(alg.bot)


@given(char_sets, char_sets)
def test_boolean_ops_match_set_ops(s1, s2):
    alg = BitsetAlgebra("abcd")
    a, b = alg.from_chars(s1), alg.from_chars(s2)
    assert set(alg.chars(alg.conj(a, b))) == s1 & s2
    assert set(alg.chars(alg.disj(a, b))) == s1 | s2
    assert set(alg.chars(alg.neg(a))) == set("abcd") - s1


@given(char_sets)
def test_extensionality(s):
    alg = BitsetAlgebra("abcd")
    assert alg.from_chars(s) == alg.from_chars(sorted(s))


def test_pick_first_member(alg):
    assert alg.pick(alg.from_chars("cb")) == "b"


def test_pick_empty_raises(alg):
    with pytest.raises(AlgebraError):
        alg.pick(alg.bot)


def test_member(alg):
    phi = alg.from_chars("ad")
    assert alg.member("a", phi) and alg.member("d", phi)
    assert not alg.member("b", phi)


def test_member_out_of_alphabet_is_clean_non_match(alg):
    assert alg.member("z", alg.top) is False
    assert alg.in_domain("z") is False
    assert alg.in_domain("a") is True


def test_from_ranges(alg):
    phi = alg.from_ranges([("a", "c")])
    assert alg.chars(phi) == ["a", "b", "c"]


def test_cross_algebra_guard(alg):
    other = BitsetAlgebra("abcd")
    with pytest.raises(AlgebraError):
        alg.conj(alg.top, other.top)
