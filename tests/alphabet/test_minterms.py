"""Minterm generation: partition properties and sizes."""

from hypothesis import given, strategies as st

from repro.alphabet.bitset import BitsetAlgebra
from repro.alphabet.intervals import IntervalAlgebra
from repro.alphabet.minterms import minterms, partition_check

preds = st.lists(
    st.sets(st.sampled_from("abcd")).map(lambda s: frozenset(s)), max_size=4
)


@given(preds)
def test_minterms_partition_bitset(pred_sets):
    alg = BitsetAlgebra("abcd")
    phis = [alg.from_chars(s) for s in pred_sets]
    parts = minterms(alg, phis)
    assert partition_check(alg, parts)


@given(preds)
def test_every_input_is_union_of_minterms(pred_sets):
    alg = BitsetAlgebra("abcd")
    phis = [alg.from_chars(s) for s in pred_sets]
    parts = minterms(alg, phis)
    for phi in phis:
        covered = alg.disj_all(
            p for p in parts if alg.is_sat(alg.conj(p, phi))
        )
        assert covered == phi or not alg.is_sat(phi)


def test_minterm_count_bound():
    alg = IntervalAlgebra(255)
    phis = [alg.from_ranges([(i * 10, i * 10 + 15)]) for i in range(5)]
    parts = minterms(alg, phis)
    assert len(parts) <= 2 ** 5
    assert partition_check(alg, parts)


def test_empty_input_gives_top():
    alg = IntervalAlgebra(255)
    assert minterms(alg, []) == [alg.top]


def test_disjoint_preds_linear_minterms():
    alg = IntervalAlgebra(255)
    phis = [alg.from_ranges([(i * 20, i * 20 + 9)]) for i in range(4)]
    parts = minterms(alg, phis)
    # n disjoint predicates + the rest: n + 1 minterms, not 2^n
    assert len(parts) == 5


def test_exponential_worst_case_exists():
    # predicates in "general position" produce 2^n minterms
    alg = IntervalAlgebra(255)
    phis = [
        alg.from_ranges([(b, b) for b in range(256) if b >> i & 1])
        for i in range(4)
    ]
    parts = minterms(alg, phis)
    assert len(parts) == 16
