"""Character classes over the BMP."""

import pytest

from repro.alphabet import charclass
from repro.alphabet.intervals import IntervalAlgebra
from repro.errors import AlgebraError


@pytest.fixture
def alg():
    return IntervalAlgebra()


def test_digit_is_multi_range(alg):
    phi = charclass.digit(alg)
    assert len(phi.ranges) > 1  # genuinely symbolic, not one interval
    assert alg.member("7", phi)
    assert alg.member("٤", phi)   # Arabic-Indic four
    assert not alg.member("x", phi)


def test_word_includes_underscore_and_letters(alg):
    phi = charclass.word(alg)
    for ch in "_aZ9б":   # Cyrillic small be
        assert alg.member(ch, phi)
    assert not alg.member("-", phi)


def test_space(alg):
    phi = charclass.space(alg)
    for ch in " \t\n  ":
        assert alg.member(ch, phi)
    assert not alg.member("x", phi)


def test_negated_classes_partition(alg):
    for pos, neg in ((charclass.digit, charclass.not_digit),
                     (charclass.word, charclass.not_word),
                     (charclass.space, charclass.not_space)):
        p, n = pos(alg), neg(alg)
        assert alg.conj(p, n) == alg.bot
        assert alg.disj(p, n) == alg.top


def test_digit_subset_of_word(alg):
    assert alg.implies(charclass.digit(alg), charclass.word(alg))


def test_posix_classes(alg):
    assert alg.member("f", charclass.posix(alg, "xdigit"))
    assert not alg.member("g", charclass.posix(alg, "xdigit"))
    assert alg.member("!", charclass.posix(alg, "punct"))
    assert alg.member("\x00", charclass.posix(alg, "cntrl"))


def test_posix_unknown_raises(alg):
    with pytest.raises(AlgebraError):
        charclass.posix(alg, "nosuch")


def test_escape_class_dispatch(alg):
    assert charclass.escape_class(alg, "d") == charclass.digit(alg)
    assert charclass.escape_class(alg, "W") == charclass.not_word(alg)


def test_escape_class_unknown_raises(alg):
    with pytest.raises(AlgebraError):
        charclass.escape_class(alg, "q")


def test_classes_clamp_to_small_domains():
    ascii_alg = IntervalAlgebra(127)
    phi = charclass.digit(ascii_alg)
    assert phi.ranges == ((0x30, 0x39),)
