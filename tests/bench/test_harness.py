"""The benchmark harness and reporting machinery."""

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder, parse
from repro.bench.engines import default_engines, reference_engine
from repro.bench.harness import (
    Problem, cumulative, run_matrix, run_problem, summarize,
)
from repro.bench.reporting import (
    figure_4a_table, figure_4b_series, figure_4c_table, render_4b,
    speedup_vs,
)
from repro.bench.suites import suite_inventory
from repro.solver import formula as F


@pytest.fixture(scope="module")
def builder():
    return RegexBuilder(IntervalAlgebra())


@pytest.fixture(scope="module")
def problems(builder):
    sat = Problem(
        "p_sat", "mini", "H",
        F.InRe("x", parse(builder, "(.*0.*)&~(.*01.*)")), "sat",
    )
    unsat = Problem(
        "p_unsat", "mini", "B",
        F.And((F.InRe("x", parse(builder, "a+")),
               F.Not(F.InRe("x", parse(builder, "a*"))))), "unsat",
    )
    easy = Problem(
        "p_easy", "mini", "NB", F.EqConst("x", "hello"), "sat",
    )
    return [sat, unsat, easy]


def test_run_problem_correct(builder, problems):
    engine = reference_engine()
    for problem in problems:
        record = run_problem(engine, builder, problem, fuel=50000, seconds=5.0)
        assert record.outcome == "correct"
        assert record.solved


def test_run_problem_timeout(builder):
    engine = reference_engine()
    hard = Problem(
        "p_hard", "mini", "H",
        F.InRe("x", parse(builder, "~(.*a.{28})&~(.*b.{28})&(a|b){40}")),
        "sat",
    )
    record = run_problem(engine, builder, hard, fuel=3, seconds=5.0)
    assert record.outcome == "timeout"
    assert not record.solved


def test_wrong_label_detected(builder):
    engine = reference_engine()
    mislabeled = Problem(
        "p_bad", "mini", "NB", F.EqConst("x", "a"), "unsat",
    )
    record = run_problem(engine, builder, mislabeled, fuel=50000, seconds=5.0)
    assert record.outcome == "wrong"


def test_unlabeled_counts_unchecked(builder):
    engine = reference_engine()
    unlabeled = Problem("p_unk", "mini", "NB", F.EqConst("x", "a"), None)
    record = run_problem(engine, builder, unlabeled, fuel=50000, seconds=5.0)
    assert record.outcome == "unchecked"
    assert record.solved


def test_matrix_and_reports(builder, problems):
    engines = default_engines()
    records = run_matrix(engines, problems, builder, fuel=50000, seconds=5.0)
    assert len(records) == len(engines) * len(problems)

    summary = summarize(records, budget_seconds=5.0)
    cell = summary[("sbd", "H")]
    assert cell["total"] == 1 and cell["solved"] == 1
    assert cell["solved_pct"] == 100.0

    table = figure_4a_table(records, 5.0)
    assert "sbd" in table and "eager-sfa" in table

    series = figure_4b_series(records)
    assert series["H"]["sbd"][-1][1] == 1
    assert "sbd" in render_4b(series)

    ratios = speedup_vs(records, 5.0)
    assert all(v > 0 for group in ratios.values() for v in group.values())


def test_cumulative_sorted(builder, problems):
    engine = reference_engine()
    records = [
        run_problem(engine, builder, p, fuel=50000, seconds=5.0)
        for p in problems
    ]
    times = cumulative(records, "sbd")
    assert times == sorted(times)
    assert len(times) == 3


def test_figure_4c_table(builder):
    text = figure_4c_table(suite_inventory(builder))
    assert "blowup" in text and "total" in text


def test_run_matrix_jobs_matches_serial(builder, problems):
    """The acceptance property: fanning the matrix over worker
    processes must not change any verdict or outcome."""
    engines = default_engines()[:2]
    serial = run_matrix(engines, problems, builder, fuel=50000, seconds=5.0)
    par = run_matrix(engines, problems, builder, fuel=50000, seconds=5.0,
                     jobs=2)
    assert len(par) == len(serial)
    for s, p in zip(serial, par):
        assert (p.engine, p.problem.name) == (s.engine, s.problem.name)
        assert (p.status, p.outcome) == (s.status, s.outcome)


def test_run_matrix_parallel_rejects_unknown_engine(builder, problems):
    from repro.bench.harness import Engine

    bogus = Engine("no-such-engine", lambda b: None)
    with pytest.raises(KeyError, match="no-such-engine"):
        run_matrix([bogus], problems, builder, fuel=1000, seconds=1.0, jobs=2)
