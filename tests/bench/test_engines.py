"""The engine line-up: names, independence, and a mini end-to-end
consistency run over a real suite."""

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder
from repro.bench.engines import default_engines, reference_engine
from repro.bench.generators import dates
from repro.bench.harness import run_matrix, run_problem


@pytest.fixture(scope="module")
def builder():
    return RegexBuilder(IntervalAlgebra())


def test_engine_names_are_the_papers_families():
    names = [e.name for e in default_engines()]
    assert names == [
        "sbd", "eager-sfa", "eager-dfa", "antimirov-pd",
        "brzozowski-minterm",
    ]


def test_fresh_solver_per_problem(builder):
    engine = reference_engine()
    first = engine.fresh_solver(builder)
    second = engine.fresh_solver(builder)
    assert first is not second


def test_no_engine_answers_wrong_on_dates(builder):
    """Every engine either solves a date problem correctly or times
    out — wrong answers are bugs, not slowness."""
    suite = dates.generate(builder)
    records = run_matrix(
        default_engines(), suite, builder, fuel=100000, seconds=2.0
    )
    wrong = [
        (r.engine, r.problem.name) for r in records if r.outcome == "wrong"
    ]
    assert not wrong


def test_progress_callback(builder):
    suite = dates.generate(builder) * 3  # 60 problems -> callback fires
    calls = []
    run_matrix(
        [reference_engine()], suite, builder, fuel=50000, seconds=2.0,
        progress=lambda name, done, total: calls.append((name, done, total)),
    )
    assert calls and calls[0][0] == "sbd"


def test_reference_solves_each_date_problem(builder):
    engine = reference_engine()
    for problem in dates.generate(builder):
        record = run_problem(engine, builder, problem, fuel=100000, seconds=5.0)
        assert record.outcome == "correct", problem.name
