"""Suite export: .smt2 round trips."""

import os

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder
from repro.bench.export import export_problem, export_suite
from repro.bench.generators import dates, passwords
from repro.smtlib.interp import run_file
from repro.smtlib.parser import parse_script
from repro.solver.result import Budget

import pytest


@pytest.fixture(scope="module")
def builder():
    return RegexBuilder(IntervalAlgebra())


def test_export_problem_is_valid_smtlib(builder):
    problem = dates.generate(builder)[0]
    text = export_problem(problem, builder.algebra)
    script = parse_script(builder, text)
    assert script.expected_status() == problem.expected
    assert "date" in script.variables


def test_export_suite_layout(builder, tmp_path):
    problems = dates.generate(builder)[:5]
    paths = export_suite(problems, str(tmp_path), algebra=builder.algebra)
    assert len(paths) == 5
    assert all(os.path.exists(p) for p in paths)
    assert all(os.path.dirname(p).endswith("date") for p in paths)


def test_exported_files_solve_to_their_labels(builder, tmp_path):
    problems = passwords.generate(builder)[:8]
    paths = export_suite(problems, str(tmp_path), algebra=builder.algebra)
    for problem, path in zip(problems, paths):
        result = run_file(builder, path, budget=Budget(500000, 20.0))
        assert result.status == problem.expected, path
