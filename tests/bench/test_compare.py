"""The noise-aware regression gate: threshold semantics, the injected
slowdown fixture, report rendering, and the ``bench_ci`` entry point."""

import importlib.util
import json
import os
import sys

import pytest

from repro.bench.compare import (
    DEFAULT_TIME_ABS, DEFAULT_TIME_REL, compare, has_regressions,
    render_report,
)

SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "scripts", "bench_ci.py",
)


def bench_ci():
    spec = importlib.util.spec_from_file_location("bench_ci", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def cell(engine="sbd", suite="kaluza", total=40, solved=40, timeouts=0,
         wrong=0, median_s=0.2, p90_s=0.4):
    return {
        "engine": engine, "suite": suite, "total": total, "solved": solved,
        "timeouts": timeouts, "wrong": wrong,
        "timeout_rate": timeouts / total,
        "median_s": median_s, "p90_s": p90_s,
        "mean_s": median_s, "max_s": p90_s, "counters": {},
    }


def snap(seq, cells):
    return {
        "schema": 1, "seq": seq, "git": {"sha": "cafe%04d" % seq},
        "cells": cells,
    }


def test_identical_snapshots_are_clean():
    cells = {"sbd/kaluza": cell(), "sbd/slog": cell(suite="slog")}
    report = compare(snap(1, cells), snap(2, dict(cells)))
    assert not has_regressions(report)
    assert report["compared"] == 2
    assert report["improvements"] == []


def test_injected_slowdown_names_the_regressed_cell():
    """The acceptance fixture: slow one (engine, suite) cell down past
    both gates and the compare step must flag exactly that cell."""
    before = {"sbd/kaluza": cell(), "eager-sfa/slog": cell("eager-sfa", "slog")}
    after = {
        "sbd/kaluza": cell(median_s=0.6, p90_s=1.2),  # 3x, +0.4s/+0.8s
        "eager-sfa/slog": cell("eager-sfa", "slog"),
    }
    report = compare(snap(1, before), snap(2, after))
    assert has_regressions(report)
    regressed = {(e["cell"], e["metric"]) for e in report["regressions"]}
    assert regressed == {("sbd/kaluza", "median_s"), ("sbd/kaluza", "p90_s")}
    entry = next(e for e in report["regressions"] if e["metric"] == "median_s")
    assert entry["before"] == pytest.approx(0.2)
    assert entry["after"] == pytest.approx(0.6)
    assert entry["ratio"] == pytest.approx(3.0)
    text = render_report(report, snap(1, before), snap(2, after))
    assert "sbd/kaluza" in text and "median_s" in text
    assert "eager-sfa/slog" not in text


def test_absolute_floor_gates_microsecond_noise():
    """A 10x swing on a sub-millisecond cell stays under the absolute
    floor — the scheduler-jitter case the gate must not trip on."""
    before = {"sbd/kaluza": cell(median_s=0.0004, p90_s=0.001)}
    after = {"sbd/kaluza": cell(median_s=0.004, p90_s=0.01)}
    report = compare(snap(1, before), snap(2, after))
    assert not has_regressions(report)


def test_relative_gate_protects_slow_suites():
    """A +60ms drift on a 10s cell clears the absolute floor but not
    the relative gate — within noise for a suite that slow."""
    before = {"sbd/blowup": cell(suite="blowup", median_s=10.0, p90_s=12.0)}
    after = {"sbd/blowup": cell(suite="blowup", median_s=10.06, p90_s=12.06)}
    report = compare(snap(1, before), snap(2, after))
    assert not has_regressions(report)
    # both gates crossed -> regression
    after2 = {"sbd/blowup": cell(suite="blowup", median_s=13.0, p90_s=12.0)}
    report2 = compare(snap(1, before), snap(2, after2))
    assert [e["metric"] for e in report2["regressions"]] == ["median_s"]


def test_solved_drop_is_never_noise():
    before = {"sbd/kaluza": cell(solved=40)}
    after = {"sbd/kaluza": cell(solved=39, timeouts=1)}
    report = compare(snap(1, before), snap(2, after))
    metrics = [e["metric"] for e in report["regressions"]]
    assert "solved" in metrics


def test_timeout_rate_rise_regresses():
    before = {"sbd/kaluza": cell(timeouts=0)}
    after = {"sbd/kaluza": cell(solved=40, timeouts=8)}  # 20% timeout rate
    report = compare(snap(1, before), snap(2, after))
    assert any(e["metric"] == "timeout_rate" for e in report["regressions"])


def test_improvements_and_cell_churn_are_reported():
    before = {"sbd/kaluza": cell(median_s=1.0, p90_s=2.0),
              "sbd/gone": cell(suite="gone")}
    after = {"sbd/kaluza": cell(median_s=0.4, p90_s=0.8),
             "sbd/new": cell(suite="new")}
    report = compare(snap(1, before), snap(2, after))
    assert not has_regressions(report)
    improved = {e["metric"] for e in report["improvements"]}
    assert improved == {"median_s", "p90_s"}
    assert report["added"] == ["sbd/new"]
    assert report["removed"] == ["sbd/gone"]
    text = render_report(report)
    assert "improvements" in text and "sbd/new" in text


def test_custom_thresholds():
    before = {"sbd/kaluza": cell(median_s=1.0, p90_s=1.0)}
    after = {"sbd/kaluza": cell(median_s=1.2, p90_s=1.0)}
    loose = compare(snap(1, before), snap(2, after))
    assert not has_regressions(loose)  # +20% < default 25%
    strict = compare(snap(1, before), snap(2, after),
                     time_rel=0.10, time_abs=0.01)
    assert [e["metric"] for e in strict["regressions"]] == ["median_s"]
    assert DEFAULT_TIME_REL == 0.25 and DEFAULT_TIME_ABS == 0.05


# -- the bench_ci entry point -------------------------------------------------


def write_snap(path, snapshot):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle)
    return str(path)


def test_bench_ci_compare_only_clean_exits_zero(tmp_path, capsys):
    module = bench_ci()
    cells = {"sbd/kaluza": cell()}
    prev = write_snap(tmp_path / "BENCH_0001.json", snap(1, cells))
    cur = write_snap(tmp_path / "BENCH_0002.json", snap(2, dict(cells)))
    assert module.main(["--compare-only", prev, cur]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_bench_ci_compare_only_injected_slowdown_exits_nonzero(
        tmp_path, capsys):
    module = bench_ci()
    prev = write_snap(tmp_path / "BENCH_0001.json",
                      snap(1, {"sbd/kaluza": cell()}))
    cur = write_snap(
        tmp_path / "BENCH_0002.json",
        snap(2, {"sbd/kaluza": cell(median_s=0.9, p90_s=1.8)}),
    )
    status = module.main(["--compare-only", prev, cur])
    assert status == 1
    out = capsys.readouterr().out
    assert "regressions" in out and "sbd/kaluza" in out


def test_bench_ci_compare_only_bad_file_exits_two(tmp_path, capsys):
    module = bench_ci()
    missing = str(tmp_path / "nope.json")
    ok = write_snap(tmp_path / "BENCH_0001.json", snap(1, {}))
    assert module.main(["--compare-only", missing, ok]) == 2


def test_bench_ci_rejects_bad_root(capsys):
    module = bench_ci()
    assert module.main(["--root", "/nonexistent/dir/xyz"]) == 2


def test_timing_gates_skipped_when_job_counts_differ():
    """Wall-clock percentiles from runs with different worker counts
    are not comparable; only correctness metrics may gate."""
    before = snap(1, {"sbd/kaluza": cell()})
    before["config"] = {"jobs": 1}
    after = snap(2, {"sbd/kaluza": cell(median_s=0.9, p90_s=1.8)})
    after["config"] = {"jobs": 2}
    report = compare(before, after)
    assert not has_regressions(report)
    assert report["time_gated"] is False
    assert "timing gates skipped" in render_report(report)

    # solved drops still gate across differing job counts
    after["cells"]["sbd/kaluza"]["solved"] = 30
    report = compare(before, after)
    assert has_regressions(report)
