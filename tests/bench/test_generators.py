"""Benchmark generators: determinism, counts, and label validity.

Label validity is the crucial one: every label claimed "by
construction" is audited here against the reference solver, and sat
labels additionally against the independent membership oracle.
"""

import pytest

from repro.alphabet import IntervalAlgebra
from repro.regex import RegexBuilder
from repro.bench.generators import (
    blowup, boolean_loops, dates, kaluza, norn, passwords, regexlib, slog,
    sygus,
)
from repro.bench.suites import (
    PAPER_COUNTS, all_suites, label_problems, suite_inventory,
)
from repro.solver.result import Budget
from repro.solver.smt import SmtSolver


@pytest.fixture(scope="module")
def builder():
    return RegexBuilder(IntervalAlgebra())


@pytest.fixture(scope="module")
def solver(builder):
    return SmtSolver(builder)


HANDWRITTEN = [
    (dates.generate, 20), (passwords.generate, 34),
    (boolean_loops.generate, 21), (blowup.generate, 14),
]


@pytest.mark.parametrize("generate,count", HANDWRITTEN)
def test_handwritten_counts(builder, generate, count):
    assert len(generate(builder)) == count


@pytest.mark.parametrize("generate,count", HANDWRITTEN)
def test_handwritten_labels_audited(builder, solver, generate, count):
    """Every constructed label matches the solver's verdict, and every
    sat model passes the independent oracle."""
    for problem in generate(builder):
        result = solver.solve(problem.formula, budget=Budget(2000000, 30.0))
        assert result.status == problem.expected, problem.name
        if result.is_sat:
            assert solver.check_model(problem.formula, result.model), problem.name


def test_generated_suites_deterministic(builder):
    first = [p.name for p in kaluza.generate(builder)]
    second = [p.name for p in kaluza.generate(builder)]
    assert first == second
    f1 = [repr(p.formula) for p in sygus.generate(builder)]
    f2 = [repr(p.formula) for p in sygus.generate(builder)]
    assert f1 == f2


@pytest.mark.parametrize("generate", [
    kaluza.generate, slog.generate, norn.generate_nb, norn.generate_b,
    sygus.generate,
])
def test_standard_suite_labels_sampled(builder, solver, generate):
    """Audit a sample of each scaled suite (full audits run in the
    benchmark harness itself)."""
    problems = generate(builder)
    for problem in problems[::7]:
        result = solver.solve(problem.formula, budget=Budget(500000, 20.0))
        assert result.status == problem.expected, problem.name


def test_regexlib_constructed_subsets_hold(builder, solver):
    for problem in regexlib.generate_subset(builder):
        if problem.expected == "unsat" and "loop" in problem.name:
            result = solver.solve(problem.formula, budget=Budget(500000, 20.0))
            assert result.is_unsat, problem.name


def test_labeling_fills_all_gaps(builder):
    problems = regexlib.generate_intersection(builder, count=10)
    assert all(p.expected is None for p in problems)
    label_problems(builder, problems)
    assert all(p.expected in ("sat", "unsat") for p in problems)


def test_group_tags(builder):
    problems = all_suites(builder)
    assert {p.group for p in problems} == {"NB", "B", "H"}
    # the Boolean group really is Boolean in the paper's sense
    boolean = [p for p in problems if p.group == "B"]
    assert sum(p.is_boolean() for p in boolean) > len(boolean) * 0.9


def test_inventory_matches_paper_suites(builder):
    inventory = suite_inventory(builder)
    assert set(inventory) == set(PAPER_COUNTS)
    for suite, cell in inventory.items():
        assert cell["ours"] > 0, suite
        # small suites are reproduced at full size
        if cell["paper"] <= 100:
            assert cell["ours"] == cell["paper"], suite
