"""BENCH snapshot building: cell aggregation, the BENCH_<seq>.json
sequence, provenance stamping, and per-suite subsampling."""

import json

import pytest

from repro.bench.harness import Problem, Record
from repro.bench.snapshot import (
    SCHEMA_VERSION, aggregate_cells, build_snapshot, host_info,
    list_snapshots, load_snapshot, next_seq, previous_snapshot,
    snapshot_path, subsample, suite_key, write_snapshot,
)


def rec(engine, suite, seconds, outcome="correct", group="NB", stats=None,
        name=None):
    problem = Problem(name or "p", suite, group, formula=None)
    status = "sat" if outcome in ("correct", "unchecked") else "unknown"
    return Record(problem, engine, status, seconds, outcome, stats or {})


def test_aggregate_cells_median_p90_and_rates():
    records = [
        rec("sbd", "kaluza", t / 100.0) for t in range(1, 11)  # 0.01..0.10
    ] + [
        rec("sbd", "kaluza", 1.0, outcome="timeout"),
        rec("sbd", "slog", 0.02),
    ]
    cells = aggregate_cells(records, budget_seconds=2.0)
    assert set(cells) == {"sbd/kaluza", "sbd/slog"}
    cell = cells["sbd/kaluza"]
    assert cell["total"] == 11
    assert cell["solved"] == 10
    assert cell["timeouts"] == 1
    assert cell["timeout_rate"] == pytest.approx(1 / 11)
    # the timeout is charged the full 2s budget
    assert cell["max_s"] == 2.0
    assert cell["median_s"] == pytest.approx(0.06)
    # nearest-rank p90 of 11 sorted samples = the 10th (0.10)
    assert cell["p90_s"] == pytest.approx(0.10)


def test_aggregate_cells_sums_counters_and_nested_metrics():
    records = [
        rec("sbd", "norn", 0.01,
            stats={"case_splits": 2, "metrics": {"solver.explored": 5}}),
        rec("sbd", "norn", 0.01,
            stats={"case_splits": 3,
                   "metrics": {"solver.explored": 7,
                               "deriv.sizes": {"count": 1}}}),
    ]
    cell = aggregate_cells(records, 1.0)["sbd/norn_nb"]
    assert cell["counters"]["case_splits"] == 5
    assert cell["counters"]["solver.explored"] == 12
    # histogram dicts (and the nested metrics dict itself) don't sum
    assert "deriv.sizes" not in cell["counters"]
    assert "metrics" not in cell["counters"]


def test_suite_key_splits_norn_by_group():
    assert suite_key(Problem("x", "norn", "NB", None)) == "norn_nb"
    assert suite_key(Problem("x", "norn", "B", None)) == "norn_b"
    assert suite_key(Problem("x", "kaluza", "NB", None)) == "kaluza"


def test_wrong_answers_charged_like_timeouts():
    records = [rec("sbd", "slog", 0.01),
               rec("sbd", "slog", 0.01, outcome="wrong")]
    cell = aggregate_cells(records, 3.0)["sbd/slog"]
    assert cell["wrong"] == 1
    assert cell["solved"] == 1
    assert cell["max_s"] == 3.0


def test_snapshot_sequence_and_round_trip(tmp_path):
    root = str(tmp_path)
    assert next_seq(root) == 1
    records = [rec("sbd", "kaluza", 0.01)]
    snap1 = build_snapshot(records, 1.0, {"quick": True}, root)
    path1 = write_snapshot(snap1, root)
    assert path1.endswith("BENCH_0001.json")
    assert next_seq(root) == 2
    snap2 = build_snapshot(records, 1.0, {"quick": True}, root)
    path2 = write_snapshot(snap2, root)
    assert path2.endswith("BENCH_0002.json")

    assert [s for s, _ in list_snapshots(root)] == [1, 2]
    assert previous_snapshot(root, 2) == path1
    assert previous_snapshot(root, 1) is None

    loaded = load_snapshot(path2)
    assert loaded["seq"] == 2
    assert loaded["schema"] == SCHEMA_VERSION
    assert loaded["cells"] == json.loads(json.dumps(snap2["cells"]))


def test_snapshot_carries_provenance_and_config(tmp_path):
    snap = build_snapshot(
        [rec("sbd", "kaluza", 0.01)], 1.0,
        {"quick": False, "fuel": 7}, str(tmp_path),
        profile={"total_s": 1.0, "attributed_pct": 100.0, "hotspots": []},
    )
    assert set(snap["git"]) == {"sha", "branch"}
    assert snap["host"]["cpus"] >= 1
    assert snap["config"]["fuel"] == 7
    assert snap["profile"]["attributed_pct"] == 100.0
    assert "T" in snap["created"]  # ISO-8601 UTC stamp


def test_load_snapshot_rejects_unknown_schema(tmp_path):
    path = snapshot_path(str(tmp_path), 1)
    with open(path, "w") as handle:
        json.dump({"schema": 999, "seq": 1, "cells": {}}, handle)
    with pytest.raises(ValueError):
        load_snapshot(path)


def test_host_info_shape():
    info = host_info()
    assert set(info) == {"platform", "python", "machine", "cpus"}


def test_collect_end_to_end_tiny(tmp_path):
    """The full pipeline on a heavily subsampled matrix: every engine
    and suite gets a cell, the profile attributes >= 90% of traced
    wall time, and a second run gates cleanly against the first."""
    from repro.bench.compare import compare, has_regressions
    from repro.bench.snapshot import collect

    root = str(tmp_path)
    # 0.4s budget: the k=5 blowup instance runs ~0.19s on this tier,
    # and a 0.2s cap made the run-to-run gate below a coin flip
    snap = collect(root, quick=True, stride=60, fuel=3000, seconds=0.4)
    path = write_snapshot(snap, root)
    assert path.endswith("BENCH_0001.json")
    engines = {c["engine"] for c in snap["cells"].values()}
    assert "sbd" in engines and len(engines) >= 3
    suites = {c["suite"] for c in snap["cells"].values()}
    assert {"kaluza", "norn_nb", "norn_b", "slog"} <= suites
    # the zipfian store suite contributes its cold/warm pair, so the
    # regression gate below covers warm-replay latency too
    assert {"sbd/store_cold", "sbd/store_warm"} <= set(snap["cells"])
    assert snap["config"]["store"]["workload"] > 0
    assert snap["cells"]["sbd/store_warm"]["counters"]["store_hits"] > 0
    assert snap["config"]["stride"] == 60
    assert snap["profile"]["attributed_pct"] >= 90.0
    assert snap["profile"]["hotspots"]

    snap2 = collect(root, quick=True, stride=60, fuel=3000, seconds=0.4)
    write_snapshot(snap2, root)
    report = compare(snap, snap2)
    assert report["compared"] == len(snap["cells"])
    # identical workload, generous gates: no structural regressions
    assert not any(
        e["metric"] in ("solved", "timeout_rate")
        for e in report["regressions"]
    )
    assert not has_regressions(report) or all(
        e["metric"] in ("median_s", "p90_s") for e in report["regressions"]
    )


def test_subsample_keeps_every_suite():
    problems = (
        [Problem("k%d" % i, "kaluza", "NB", None) for i in range(20)]
        + [Problem("s%d" % i, "slog", "NB", None) for i in range(3)]
    )
    picked = subsample(problems, stride=10)
    suites = {p.suite for p in picked}
    assert suites == {"kaluza", "slog"}
    assert len([p for p in picked if p.suite == "kaluza"]) == 2
    assert len([p for p in picked if p.suite == "slog"]) == 1
    # stride 1 is the identity
    assert subsample(problems, 1) == list(problems)
