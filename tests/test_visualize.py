"""Derivative-graph and SBFA rendering."""

from repro.regex import parse
from repro.sbfa.sbfa import from_regex
from repro.visualize import (
    derivative_graph, graph_to_dot, graph_to_text, sbfa_to_text,
)


def test_derivative_graph_structure(ascii_builder):
    b = ascii_builder
    root = parse(b, ".*01.*")
    states, edges = derivative_graph(b, root)
    assert root in states
    assert parse(b, "1.*|.*01.*") in states or any(
        s.nullable for s in states
    )
    sources = {s for s, _, _ in edges}
    assert root in sources


def test_graph_text_marks_finals(ascii_builder):
    b = ascii_builder
    text = graph_to_text(b, parse(b, "ab"))
    assert "((" in text       # a final state is double-marked
    assert "--[" in text      # at least one labelled edge


def test_graph_dot_shape(ascii_builder):
    b = ascii_builder
    dot = graph_to_dot(b, parse(b, "(.*0.*)&~(.*01.*)"))
    assert dot.startswith("digraph")
    assert "doublecircle" in dot
    assert dot.rstrip().endswith("}")


def test_graph_respects_state_cap(ascii_builder):
    b = ascii_builder
    states, _ = derivative_graph(b, parse(b, "~(.*a.{10})"), max_states=5)
    assert len(states) <= 5


def test_sbfa_text(bitset_builder):
    b = bitset_builder
    sbfa = from_regex(b, parse(b, "(.*0.*)&~(.*01.*)"))
    text = sbfa_to_text(sbfa)
    assert "((F))" in text
    assert "delta =" in text
