"""Exception hierarchy and the Budget / SolverResult plumbing."""

import time

import pytest

from repro import errors
from repro.solver.result import Budget, SAT, SolverResult, UNKNOWN, UNSAT


class TestErrors:
    def test_hierarchy(self):
        for cls in (errors.AlgebraError, errors.RegexSyntaxError,
                    errors.SmtLibError, errors.UnsupportedError,
                    errors.BudgetExceeded):
            assert issubclass(cls, errors.ReproError)
        assert issubclass(errors.ReproError, Exception)

    def test_syntax_error_position_formatting(self):
        err = errors.RegexSyntaxError("boom", text="abcdef", position=3)
        assert "position 3" in str(err)
        assert err.text == "abcdef"

    def test_syntax_error_without_position(self):
        err = errors.RegexSyntaxError("boom")
        assert str(err) == "boom"

    def test_budget_exceeded_payload(self):
        err = errors.BudgetExceeded("out", fuel_used=7, elapsed=1.5)
        assert err.fuel_used == 7 and err.elapsed == 1.5


class TestBudget:
    def test_unlimited_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.tick()
        assert budget.fuel_used == 1000
        assert budget.remaining() is None

    def test_fuel_exhaustion(self):
        budget = Budget(fuel=3)
        budget.tick(3)
        with pytest.raises(errors.BudgetExceeded):
            budget.tick()

    def test_remaining(self):
        budget = Budget(fuel=10)
        budget.tick(4)
        assert budget.remaining() == 6

    def test_wall_clock(self):
        budget = Budget(seconds=0.0)
        with pytest.raises(errors.BudgetExceeded):
            # the clock check fires on multiples of 64 ticks
            budget.tick(64)

    def test_elapsed_moves(self):
        budget = Budget()
        time.sleep(0.01)
        assert budget.elapsed > 0


class TestSolverResult:
    def test_flags(self):
        assert SolverResult(SAT).is_sat
        assert SolverResult(UNSAT).is_unsat
        assert SolverResult(UNKNOWN).is_unknown
        assert not SolverResult(SAT).is_unsat

    def test_repr_mentions_witness_and_reason(self):
        r = SolverResult(SAT, witness="ab")
        assert "'ab'" in repr(r)
        u = SolverResult(UNKNOWN, reason="fuel")
        assert "fuel" in repr(u)

    def test_stats_default_dict(self):
        assert SolverResult(SAT).stats == {}
