# Convenience targets; CI runs the same commands (.github/workflows/ci.yml).

PY ?= python

.PHONY: test corpus-replay verify bench

# Tier-1: the full test suite, including the corpus replay.
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Replay every frozen reproducer in tests/corpus/ through all engines.
corpus-replay:
	PYTHONPATH=src $(PY) -m pytest -q tests/test_corpus_replay.py

# Cross-engine differential verification: corpus replay + fuzz campaign.
verify:
	PYTHONPATH=src $(PY) scripts/verify_ci.py --seed 0 --budget 60 --jobs 2

# Benchmark snapshot + regression gate (CI-sized tier).
bench:
	PYTHONPATH=src $(PY) scripts/bench_ci.py --quick
