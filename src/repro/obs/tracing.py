"""Nested span tracing with JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` records *spans* — named, timed, nested intervals such
as ``solver.explore`` or ``deriv.tree`` — via a context manager::

    with tracer.span("solver.explore"):
        ...

Finished spans accumulate on ``tracer.events`` and can be exported as

* JSONL (one JSON object per line: ``name``, ``ts``, ``dur``, ``depth``,
  ``args``), the machine-friendly format the tests round-trip, or
* the Chrome ``trace_event`` JSON object format, which loads directly
  in ``chrome://tracing`` and https://ui.perfetto.dev.

A span exited via an exception records the exception type under
``args["error"]``, and spans still open at export time are flushed as
events carrying ``"unfinished": True`` (duration measured up to the
export call) rather than silently dropped — a trace taken from a
crashed or budget-killed run stays attributable.

The :class:`NullTracer` (:data:`NULL_TRACER`) makes every ``span()``
call return a shared no-op context manager, so traced hot paths cost
one attribute lookup plus an empty call when tracing is off.
"""

import json
import time


class Span:
    """An open span; records itself on the tracer when exited."""

    __slots__ = ("tracer", "name", "args", "start", "depth")

    def __init__(self, tracer, name, args):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self):
        tracer = self.tracer
        self.depth = tracer._depth
        tracer._depth += 1
        tracer._open.append(self)
        self.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self.tracer
        end = tracer._clock()
        tracer._depth -= 1
        tracer._open.pop()
        args = self.args
        if exc_type is not None:
            args = dict(args)
            args["error"] = exc_type.__name__
        tracer.events.append({
            "name": self.name,
            "ts": self.start - tracer._t0,
            "dur": end - self.start,
            "depth": self.depth,
            "args": args,
        })
        return False


class Tracer:
    """Collects nested spans from a single-threaded solver run."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self._depth = 0
        #: spans entered but not yet exited, outermost first
        self._open = []
        #: finished spans, in completion order
        self.events = []

    def span(self, name, **args):
        return Span(self, name, args)

    def instant(self, name, **args):
        """A zero-duration marker event."""
        self.events.append({
            "name": name,
            "ts": self._clock() - self._t0,
            "dur": 0.0,
            "depth": self._depth,
            "args": args,
            "instant": True,
        })

    def clear(self):
        self.events = []

    # -- export ------------------------------------------------------------

    def export_events(self):
        """Finished events plus snapshots of still-open spans.

        Open spans are flushed innermost first (so children precede
        parents, like completion order) with their duration measured up
        to now and an ``"unfinished": True`` marker; the spans stay
        open on the tracer and will still record normally when exited.
        """
        if not self._open:
            return list(self.events)
        now = self._clock()
        flushed = []
        for span in reversed(self._open):
            flushed.append({
                "name": span.name,
                "ts": span.start - self._t0,
                "dur": now - span.start,
                "depth": span.depth,
                "args": span.args,
                "unfinished": True,
            })
        return self.events + flushed

    def export_jsonl(self, path):
        """One JSON object per line; see :func:`read_jsonl`."""
        events = self.export_events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return len(events)

    def export_chrome(self, path):
        """Chrome ``trace_event`` JSON object format (Perfetto-loadable)."""
        events = self.export_events()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(events), handle)
        return len(events)

    def export(self, path):
        """Export choosing the format by extension: ``.jsonl`` writes
        JSONL, anything else the Chrome format."""
        if str(path).endswith(".jsonl"):
            return self.export_jsonl(path)
        return self.export_chrome(path)


def chrome_trace(events, default_pid=0, default_tid=0, lanes=None):
    """Events rendered as a Chrome ``trace_event`` object.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; instants become ``"ph": "i"``.  An event carrying
    ``"pid"``/``"tid"`` keys lands on that lane — how the flight
    recorder renders each worker process as its own track — and events
    without them land on ``default_pid``/``default_tid``, matching the
    solver's single-threaded execution.  ``lanes`` optionally maps
    ``pid -> display name``; each entry becomes a ``process_name``
    metadata event so Perfetto labels the lanes.
    """
    trace_events = []
    for pid, label in sorted((lanes or {}).items()):
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": str(label)},
        })
    for event in events:
        args = dict(event.get("args") or {})
        if event.get("unfinished"):
            args["unfinished"] = True
        out = {
            "name": event["name"],
            "cat": "repro",
            "ts": event["ts"] * 1e6,
            "pid": event.get("pid", default_pid),
            "tid": event.get("tid", default_tid),
            "args": args,
        }
        if event.get("instant"):
            out["ph"] = "i"
            out["s"] = "t"
        else:
            out["ph"] = "X"
            out["dur"] = event["dur"] * 1e6
        trace_events.append(out)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def read_jsonl(path):
    """Parse a JSONL trace back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def read_chrome(path):
    """Parse a Chrome-format trace file, validating its structure.

    Returns the list of trace events; raises ``ValueError`` if the file
    is not a well-formed trace (the shape ``chrome://tracing`` checks).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("not a Chrome trace: missing traceEvents")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for event in events:
        if not isinstance(event, dict):
            raise ValueError("trace event must be an object: %r" % (event,))
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError("trace event missing %r: %r" % (field, event))
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError("complete event missing dur: %r" % (event,))
    return events


# -- the null backend ---------------------------------------------------------


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in whose spans are shared no-ops."""

    enabled = False
    events = ()

    def span(self, name, **args):
        return _NULL_SPAN

    def instant(self, name, **args):
        pass

    def clear(self):
        pass

    def export_events(self):
        return []

    def export_jsonl(self, path):
        raise ValueError("tracing is disabled; nothing to export")

    export_chrome = export_jsonl
    export = export_jsonl


NULL_TRACER = NullTracer()
