"""The solver flight recorder: cross-process timelines, heartbeats,
slow-query capture.

A *flight directory* is the durable record of one batch run: every
process appends its own streams while the batch flies, and the pool
merges them into one timeline when (or after — the files are
append-only JSONL, so a crashed run merges just as well) the batch
lands.  Layout::

    flight-dir/
      events-pool.jsonl     pool lifecycle events (spawn/crash/reap/...)
      events-<wid>.jsonl    per-worker structured events (task.start, ...)
      spans-<wid>.jsonl     per-worker tracer spans (one task-level span
                            per job by default; the solver's internal
                            spans too with ``trace_solver`` — much
                            slower, debugging only), ts rebased to epoch
                            and stamped with pid/worker for lane merging
      heartbeats.jsonl      periodic per-worker vitals, written by the
                            pool as they arrive on the result channel
      slow/NNNN-<name>.json replayable slow-query artifacts
      timeline.json         the merged Chrome trace (written at the end)

Every stream is line-flushed so a SIGKILLed worker's record survives up
to its last completed write; :func:`repro.obs.events.read_events`
tolerates the torn final line such a death leaves behind.

**Heartbeats.**  Each worker runs a daemon thread that periodically
ships ``{"type": "heartbeat", ...}`` messages up the existing result
channel: queue depth (0 or 1 — the pool dispatches depth-one), tasks
done, the in-flight job, RSS and the ``cache.*`` gauge levels.  The
pool records them to ``heartbeats.jsonl`` and onto the
:class:`~repro.serve.report.BatchReport`, so a wedged worker is visible
*while* it hangs (its heartbeats stop, or keep naming the same job),
not after the batch report lands.

**Slow-query capture.**  When a task exceeds the latency threshold
(``slow_s``) or the derivative-count threshold (``slow_explored``,
compared against the solver's ``explored`` stat), the worker freezes a
self-contained JSON artifact — payload, kind, budget, verdict, stats —
into ``slow/``.  :func:`replay_artifact` re-solves it through the very
worker executor that produced it (same budgets, fresh state) and
reports whether the verdict reproduces; the ``repro replay`` CLI wraps
that.

**Timeline.**  :func:`merge_timeline` fuses all span and event streams
into a Chrome ``trace_event`` object with one pid lane per process
(named via ``process_name`` metadata), structured events as instant
markers, and heartbeat RSS / cache levels as counter tracks — load it
in ``chrome://tracing`` or https://ui.perfetto.dev.  ``repro status``
renders the same data as text: per-worker lanes, p50/p90/p99 job
latency, top-N slow queries, crash/recycle events.
"""

import json
import os
import threading
import time

from repro.obs.events import EventLog, read_events
from repro.obs.tracing import Tracer, chrome_trace

#: Schema version stamped on slow-query artifacts.
ARTIFACT_SCHEMA_VERSION = 1

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_S = 0.25

#: Default latency threshold for slow-query capture (seconds).
DEFAULT_SLOW_S = 1.0

POOL_LANE = "pool"
TIMELINE_NAME = "timeline.json"
HEARTBEATS_NAME = "heartbeats.jsonl"
SLOW_DIR = "slow"


def events_path(flight_dir, lane):
    return os.path.join(flight_dir, "events-%s.jsonl" % lane)


def spans_path(flight_dir, lane):
    return os.path.join(flight_dir, "spans-%s.jsonl" % lane)


def slow_dir(flight_dir):
    return os.path.join(flight_dir, SLOW_DIR)


def _lane_of(filename, prefix):
    base = filename[len(prefix):]
    return base[:-len(".jsonl")] if base.endswith(".jsonl") else base


def list_streams(flight_dir):
    """``(event_files, span_files)`` as ``{lane: path}`` dicts."""
    event_files = {}
    span_files = {}
    try:
        names = sorted(os.listdir(flight_dir))
    except OSError:
        return event_files, span_files
    for name in names:
        path = os.path.join(flight_dir, name)
        if name.startswith("events-") and name.endswith(".jsonl"):
            event_files[_lane_of(name, "events-")] = path
        elif name.startswith("spans-") and name.endswith(".jsonl"):
            span_files[_lane_of(name, "spans-")] = path
    return event_files, span_files


def list_artifacts(flight_dir):
    """Paths of the captured slow-query artifacts, sorted."""
    root = slow_dir(flight_dir)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    return [os.path.join(root, n) for n in names if n.endswith(".json")]


def read_heartbeats(path):
    """Parse ``heartbeats.jsonl``; tolerates a torn final line."""
    out = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return out
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                beat = json.loads(line)
            except ValueError:
                continue
            if isinstance(beat, dict):
                out.append(beat)
    return out


def load_flight(flight_dir):
    """Everything a flight directory holds, parsed.

    Returns ``{"events", "spans", "heartbeats", "artifacts", "lanes"}``
    where ``events``/``spans`` merge every per-lane stream *stably* by
    timestamp (ties keep each lane's own file order — per-worker event
    ordering is part of the contract) and ``lanes`` maps pid to the
    lane (worker id) that produced it.
    """
    event_files, span_files = list_streams(flight_dir)
    events = []
    spans = []
    lanes = {}
    for lane, path in event_files.items():
        for event in read_events(path):
            lanes.setdefault(event.get("pid"), event.get("worker", lane))
            events.append(event)
    for lane, path in span_files.items():
        for event in read_events(path):
            lanes.setdefault(event.get("pid"), event.get("worker", lane))
            spans.append(event)
    lanes.pop(None, None)
    events.sort(key=lambda e: e.get("ts", 0.0))
    spans.sort(key=lambda e: e.get("ts", 0.0))
    return {
        "events": events,
        "spans": spans,
        "heartbeats": read_heartbeats(
            os.path.join(flight_dir, HEARTBEATS_NAME)
        ),
        "artifacts": list_artifacts(flight_dir),
        "lanes": lanes,
    }


# -- the merged timeline ------------------------------------------------------


def merge_timeline(flight_dir):
    """One Chrome trace over every stream in the flight directory.

    Workers land on their own pid lanes (labelled by worker id via
    ``process_name`` metadata), structured events become instant
    markers on their emitter's lane, and heartbeats become ``rss_mb`` /
    ``cache_entries`` counter tracks.  Timestamps are rebased to the
    earliest one observed, so the trace starts at zero.
    """
    flight = load_flight(flight_dir)
    stamped = []
    for event in flight["spans"]:
        stamped.append(event)
    for event in flight["events"]:
        marker = {
            "name": event.get("kind", "event"),
            "ts": event.get("ts", 0.0),
            "dur": 0.0,
            "depth": 0,
            "instant": True,
            "pid": event.get("pid", 0),
            "args": {
                k: v for k, v in event.items()
                if k not in ("kind", "ts", "pid", "v")
            },
        }
        stamped.append(marker)
    beats = flight["heartbeats"]
    times = [e["ts"] for e in stamped if "ts" in e]
    times.extend(b["ts"] for b in beats if "ts" in b)
    t0 = min(times) if times else 0.0
    rebased = []
    for event in stamped:
        copy = dict(event)
        copy["ts"] = copy.get("ts", t0) - t0
        rebased.append(copy)
    rebased.sort(key=lambda e: e["ts"])
    trace = chrome_trace(rebased, lanes=flight["lanes"])
    for beat in beats:
        pid = beat.get("pid")
        if pid is None:
            continue
        ts = (beat.get("ts", t0) - t0) * 1e6
        for counter, value in (
            ("rss_mb", beat.get("rss_bytes", 0) / 1048576.0),
            ("cache_entries", (beat.get("caches") or {}).get(
                "entries_total", 0)),
            ("queue_depth", beat.get("queue_depth", 0)),
        ):
            trace["traceEvents"].append({
                "name": counter,
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "args": {counter: value},
            })
    return trace


def write_timeline(flight_dir, path=None):
    """Write :func:`merge_timeline` to ``timeline.json`` (or ``path``);
    returns the path written."""
    trace = merge_timeline(flight_dir)
    if path is None:
        path = os.path.join(flight_dir, TIMELINE_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return path


# -- latency + status ---------------------------------------------------------


def _percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return None
    rank = max(int(-(-q * len(sorted_values) // 1)), 1)
    return sorted_values[min(rank - 1, len(sorted_values) - 1)]


def latency_stats(events):
    """p50/p90/p99 over the ``task.end`` events' elapsed times."""
    laps = sorted(
        e.get("elapsed", 0.0) for e in events if e.get("kind") == "task.end"
    )
    if not laps:
        return {"count": 0, "p50_s": None, "p90_s": None, "p99_s": None,
                "max_s": None}
    return {
        "count": len(laps),
        "p50_s": _percentile(laps, 0.50),
        "p90_s": _percentile(laps, 0.90),
        "p99_s": _percentile(laps, 0.99),
        "max_s": laps[-1],
    }


def worker_lanes(flight):
    """Per-worker summary rows from a loaded flight: tasks finished,
    busy seconds, last heartbeat vitals, crash/reap/recycle marks."""
    rows = {}

    def row(worker):
        return rows.setdefault(worker, {
            "worker": worker, "pid": None, "tasks": 0, "busy_s": 0.0,
            "heartbeats": 0, "rss_mb": None, "cache_entries": None,
            "crashed": 0, "reaped": 0, "recycled": 0, "last_job": None,
        })

    for event in flight["events"]:
        kind = event.get("kind")
        worker = event.get("worker")
        if kind == "task.end" and worker:
            cell = row(worker)
            cell["tasks"] += 1
            cell["busy_s"] += event.get("elapsed", 0.0)
            cell["pid"] = event.get("pid", cell["pid"])
        elif kind == "worker.crash":
            row(event.get("crashed", "?"))["crashed"] += 1
        elif kind == "worker.reap":
            row(event.get("reaped", "?"))["reaped"] += 1
        elif kind == "worker.recycle":
            row(event.get("recycled", "?"))["recycled"] += 1
    for beat in flight["heartbeats"]:
        worker = beat.get("worker")
        if not worker:
            continue
        cell = row(worker)
        cell["heartbeats"] += 1
        cell["pid"] = beat.get("pid", cell["pid"])
        cell["rss_mb"] = beat.get("rss_bytes", 0) / 1048576.0
        caches = beat.get("caches") or {}
        cell["cache_entries"] = caches.get("entries_total")
        cell["last_job"] = beat.get("job")
    return [rows[w] for w in sorted(rows)]


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) or "payload" not in artifact:
        raise ValueError("not a slow-query artifact: %s" % path)
    if artifact.get("v", 0) > ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            "artifact schema %r newer than %d in %s"
            % (artifact.get("v"), ARTIFACT_SCHEMA_VERSION, path)
        )
    return artifact


def render_status(flight_dir, top=5):
    """The ``repro status`` text: per-worker lanes, latency quantiles,
    top slow queries, and fleet incidents."""
    flight = load_flight(flight_dir)
    lines = ["flight %s" % flight_dir]
    lanes = worker_lanes(flight)
    if lanes:
        lines.append("%-8s %7s %6s %8s %7s %9s %7s  %s" % (
            "worker", "pid", "tasks", "busy(s)", "beats", "rss(MiB)",
            "cache", "notes",
        ))
        for cell in lanes:
            notes = []
            if cell["crashed"]:
                notes.append("crashed x%d" % cell["crashed"])
            if cell["reaped"]:
                notes.append("reaped x%d" % cell["reaped"])
            if cell["recycled"]:
                notes.append("recycled x%d" % cell["recycled"])
            if cell["last_job"]:
                notes.append("last job %s" % cell["last_job"])
            lines.append("%-8s %7s %6d %8.2f %7d %9s %7s  %s" % (
                cell["worker"], cell["pid"] if cell["pid"] else "-",
                cell["tasks"], cell["busy_s"], cell["heartbeats"],
                "%.1f" % cell["rss_mb"] if cell["rss_mb"] is not None
                else "-",
                cell["cache_entries"]
                if cell["cache_entries"] is not None else "-",
                " ".join(notes) or "-",
            ))
    else:
        lines.append("no worker lanes recorded")
    lat = latency_stats(flight["events"])
    if lat["count"]:
        lines.append(
            "latency: %d tasks, p50 %.3fs p90 %.3fs p99 %.3fs max %.3fs"
            % (lat["count"], lat["p50_s"], lat["p90_s"], lat["p99_s"],
               lat["max_s"])
        )
    slow = []
    for path in flight["artifacts"]:
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError):
            continue
        slow.append((artifact.get("elapsed", 0.0), path, artifact))
    slow.sort(key=lambda cell: -cell[0])
    if slow:
        lines.append("slow queries (top %d of %d):"
                     % (min(top, len(slow)), len(slow)))
        for elapsed, path, artifact in slow[:top]:
            lines.append("  %.3fs %-10s %s (%s)  replay: %s" % (
                elapsed, artifact.get("status", "?"),
                artifact.get("name", "?"), artifact.get("kind", "?"),
                os.path.relpath(path, flight_dir),
            ))
    incidents = [
        e for e in flight["events"]
        if e.get("kind") in ("worker.crash", "worker.reap",
                             "worker.recycle", "task.retry")
    ]
    if incidents:
        lines.append("incidents:")
        for event in incidents:
            detail = event.get("name") or event.get("reason") or ""
            who = (event.get("crashed") or event.get("reaped")
                   or event.get("recycled") or "")
            lines.append(
                ("  %s %s %s" % (event["kind"], who, detail)).rstrip()
            )
    if os.path.exists(os.path.join(flight_dir, TIMELINE_NAME)):
        lines.append("timeline: %s"
                     % os.path.join(flight_dir, TIMELINE_NAME))
    return "\n".join(lines)


# -- slow-query artifacts + replay --------------------------------------------


def capture_artifact(flight_dir, task, out, config, worker=None, pid=None,
                     trigger=None):
    """Freeze one slow task as a replayable JSON artifact under
    ``slow/``; returns the artifact path."""
    root = slow_dir(flight_dir)
    os.makedirs(root, exist_ok=True)
    safe = "".join(
        ch if ch.isalnum() or ch in "._-" else "_"
        for ch in str(task.get("name", "task"))
    )[:80] or "task"
    path = os.path.join(
        root, "%04d-%s.json" % (task.get("index", 0), safe)
    )
    artifact = {
        "v": ARTIFACT_SCHEMA_VERSION,
        "name": task.get("name"),
        "index": task.get("index", 0),
        "kind": task.get("kind"),
        "payload": task.get("payload"),
        "expected": task.get("expected"),
        "budget": {
            "fuel": config.get("fuel"),
            "seconds": config.get("seconds"),
        },
        "max_char": config.get("max_char"),
        "status": out.get("status"),
        "elapsed": out.get("elapsed"),
        "trigger": trigger,
        "worker": worker,
        "pid": pid,
        "captured": time.time(),
    }
    for key in ("witness", "model", "reason", "error", "stats", "outcome",
                "explanation"):
        if out.get(key) is not None:
            artifact[key] = out[key]
    if artifact.get("status") in ("sat", "unsat"):
        # a slow concrete verdict is exactly the one worth a proof:
        # re-solve with provenance on (same budget) and embed the
        # checked certificate.  Never let enrichment break capture.
        try:
            from repro.obs.explain import certificate_for_task

            cert = certificate_for_task(
                task.get("kind"), task.get("payload"), config
            )
            if cert is not None and cert.get("status") == artifact["status"]:
                artifact["certificate"] = cert
        except Exception:
            pass
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    return path


def replay_artifact(source):
    """Re-solve a slow-query artifact; returns a comparison dict.

    ``source`` is an artifact path or an already-loaded artifact dict.
    The replay goes through :func:`repro.serve.worker.execute_task` —
    the same executor that produced the recording — on a fresh
    :class:`~repro.serve.worker.WorkerState` with the recorded budget,
    so "replays to the same verdict" means the full task semantics
    (bench outcome rules included), not just a similar solve.
    """
    # imported lazily: repro.serve depends on repro.obs, not vice versa
    from repro.serve.worker import WorkerState, execute_task

    if isinstance(source, dict):
        artifact, path = source, None
    else:
        artifact, path = load_artifact(source), str(source)
    config = {
        "fuel": (artifact.get("budget") or {}).get("fuel"),
        "seconds": (artifact.get("budget") or {}).get("seconds"),
        "max_char": artifact.get("max_char"),
    }
    state = WorkerState(config)
    task = {
        "index": artifact.get("index", 0),
        "name": artifact.get("name", "replay"),
        "kind": artifact.get("kind", "pattern"),
        "payload": artifact.get("payload"),
        "expected": artifact.get("expected"),
        "attempts": 0,
    }
    out = execute_task(state, task)
    return {
        "artifact": path,
        "name": task["name"],
        "kind": task["kind"],
        "recorded": artifact.get("status"),
        "replayed": out.get("status"),
        "match": out.get("status") == artifact.get("status"),
        "recorded_elapsed": artifact.get("elapsed"),
        "replayed_elapsed": out.get("elapsed"),
        "witness": out.get("witness"),
        "model": out.get("model"),
        "error": out.get("error"),
    }


# -- the per-worker recorder --------------------------------------------------


class WorkerFlight:
    """One worker process's half of the flight recorder.

    Owns the worker's structured :class:`EventLog`, a live
    :class:`Tracer` whose spans are flushed (epoch-rebased, pid/worker
    stamped) to ``spans-<wid>.jsonl`` after every task, the heartbeat
    thread, and slow-query capture.  Everything it writes is
    line-flushed: a SIGKILL mid-task loses at most the open spans,
    which the pool's crash event and the dangling ``task.start``
    already attribute.
    """

    def __init__(self, flight_dir, worker_id, config, clock=time.time):
        self.flight_dir = str(flight_dir)
        self.worker_id = worker_id
        self.config = config
        os.makedirs(self.flight_dir, exist_ok=True)
        self.pid = os.getpid()
        self.events = EventLog(
            events_path(self.flight_dir, worker_id), worker=worker_id,
            keep=False,
        )
        self.tracer = Tracer()
        #: with ``config["trace_solver"]``, the solver stack shares the
        #: recorder's tracer and every internal span (deriv.tree,
        #: deriv.meld, ...) lands in the flight.  Off by default: inner-
        #: loop spans cost real time on derivative-heavy queries, and
        #: the recorder's own task-level spans already give the timeline
        #: its lanes at one span per task.
        self.trace_solver = bool(config.get("trace_solver"))
        #: epoch instant matching the tracer's ts==0, for rebasing
        self._epoch0 = clock()
        self._clock = clock
        self._spans_handle = open(
            spans_path(self.flight_dir, worker_id), "a", encoding="utf-8"
        )
        self._flushed = 0
        self.slow_s = config.get("slow_s")
        self.slow_explored = config.get("slow_explored")
        self.heartbeat_s = config.get("heartbeat_s") or DEFAULT_HEARTBEAT_S
        self.captured = 0
        self._stop = threading.Event()
        self._thread = None
        self._state = None
        self._result_q = None
        self._busy_job = None
        self._task_span = None

    def observability(self):
        """The bundle the worker's solver stack should carry: this
        recorder's event log, plus its tracer when solver-internal
        span tracing was requested (see ``trace_solver`` above)."""
        from repro.obs import Observability

        return Observability(
            tracer=self.tracer if self.trace_solver else None,
            events=self.events,
        )

    # -- heartbeats --------------------------------------------------------

    def start_heartbeats(self, state, result_q):
        """Begin shipping periodic vitals up the result channel (the
        first beat goes out immediately, so even a worker that dies on
        its first task has reported in)."""
        self._state = state
        self._result_q = result_q
        self.events.emit("worker.start", heartbeat_s=self.heartbeat_s)
        self._beat()
        self._thread = threading.Thread(
            target=self._heartbeat_loop,
            name="flight-heartbeat-%s" % self.worker_id,
            daemon=True,
        )
        self._thread.start()

    def heartbeat(self):
        """One heartbeat message (also sent on the wire by the loop)."""
        beat = {
            "type": "heartbeat",
            "worker": self.worker_id,
            "pid": self.pid,
            "ts": self._clock(),
            "queue_depth": 1 if self._busy_job is not None else 0,
            "job": self._busy_job,
        }
        state = self._state
        if state is not None:
            beat["tasks"] = state.tasks_done
            try:
                from repro.serve.worker import rss_bytes

                beat["rss_bytes"] = rss_bytes()
            except Exception:  # pragma: no cover - exotic platforms
                beat["rss_bytes"] = 0
            try:
                sizes = state.regex_solver.state.cache_sizes()
                beat["caches"] = {
                    "entries_total": sizes["entries_total"],
                    "approx_bytes": sizes["approx_bytes"],
                }
            except Exception:
                # racing the solver thread mid-rebuild: skip this beat's
                # cache levels rather than crash the heartbeat thread
                beat["caches"] = {}
        return beat

    def _beat(self):
        if self._result_q is None:
            return
        try:
            self._result_q.put(self.heartbeat())
        except Exception:  # pragma: no cover - queue torn down mid-exit
            pass

    def _heartbeat_loop(self):
        while not self._stop.wait(self.heartbeat_s):
            self._beat()

    # -- per-task hooks ----------------------------------------------------

    def task_started(self, task):
        self._busy_job = task.get("name")
        self.events.set_job(task.get("name"))
        self.events.emit(
            "task.start", name=task.get("name"),
            task_kind=task.get("kind"), index=task.get("index", 0),
        )
        # the task-level span: one per task, so the timeline shows each
        # worker's busy intervals even without solver-internal tracing
        # (a SIGKILL mid-task loses it with the rest of the process —
        # the task.start event above is the durable record)
        self._task_span = self.tracer.span(
            "task:%s" % task.get("name"), kind=task.get("kind"),
        )
        self._task_span.__enter__()

    def task_finished(self, task, out):
        """Close the task span, emit ``task.end``, run slow-query
        capture, flush new spans."""
        span, self._task_span = self._task_span, None
        if span is not None:
            span.__exit__(None, None, None)
        elapsed = out.get("elapsed", 0.0)
        self.events.emit(
            "task.end", name=task.get("name"), index=task.get("index", 0),
            status=out.get("status", "error"), elapsed=elapsed,
        )
        trigger = self._slow_trigger(out)
        if trigger is not None and task.get("kind") != "crash":
            path = capture_artifact(
                self.flight_dir, task, out, self.config,
                worker=self.worker_id, pid=self.pid, trigger=trigger,
            )
            self.captured += 1
            self.events.emit(
                "slow.capture", name=task.get("name"),
                artifact=os.path.relpath(path, self.flight_dir),
                elapsed=elapsed, trigger=trigger,
            )
        self._busy_job = None
        self.events.set_job(None)
        self.flush_spans()

    def _slow_trigger(self, out):
        elapsed = out.get("elapsed", 0.0)
        if self.slow_s is not None and elapsed >= self.slow_s:
            return "latency>=%.3fs" % self.slow_s
        if self.slow_explored:
            stats = out.get("stats") or {}
            explored = stats.get("explored", 0) if isinstance(stats, dict) \
                else 0
            if explored >= self.slow_explored:
                return "explored>=%d" % self.slow_explored
        return None

    # -- span flushing -----------------------------------------------------

    def _write_span(self, event, unfinished=False):
        copy = dict(event)
        copy["ts"] = self._epoch0 + event["ts"]
        copy["pid"] = self.pid
        copy["worker"] = self.worker_id
        if unfinished:
            copy["unfinished"] = True
        self._spans_handle.write(json.dumps(copy, sort_keys=True,
                                            default=str))
        self._spans_handle.write("\n")

    def flush_spans(self, final=False):
        """Append the tracer's newly finished spans to the span stream;
        with ``final``, also snapshot still-open spans as
        ``"unfinished"`` (mirroring ``Tracer.export_events``)."""
        finished = self.tracer.events
        new = finished[self._flushed:]
        self._flushed = len(finished)
        try:
            for event in new:
                self._write_span(event)
            if final:
                for event in self.tracer.export_events()[len(finished):]:
                    self._write_span(event, unfinished=True)
            self._spans_handle.flush()
        except (OSError, ValueError):  # pragma: no cover - disk gone
            pass
        return len(new)

    def close(self, tasks=0, retiring=False, reason=None):
        """Final flush: stop heartbeats, record ``worker.exit``, drain
        spans (open ones included) and close every handle."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        self._beat()
        self.events.emit(
            "worker.exit", tasks=tasks, retiring=bool(retiring),
            reason=reason,
        )
        self.flush_spans(final=True)
        try:
            self._spans_handle.close()
        except OSError:  # pragma: no cover
            pass
        self.events.close()


# -- the pool-side recorder ---------------------------------------------------


class PoolFlight:
    """The parent process's half: fleet lifecycle events, the heartbeat
    ledger, and the end-of-batch timeline merge."""

    def __init__(self, flight_dir):
        self.flight_dir = str(flight_dir)
        os.makedirs(self.flight_dir, exist_ok=True)
        os.makedirs(slow_dir(self.flight_dir), exist_ok=True)
        self.events = EventLog(
            events_path(self.flight_dir, POOL_LANE), worker=POOL_LANE,
            keep=False,
        )
        self._beats_handle = open(
            os.path.join(self.flight_dir, HEARTBEATS_NAME), "a",
            encoding="utf-8",
        )
        self.heartbeats = []

    def record_heartbeat(self, beat):
        self.heartbeats.append(beat)
        try:
            self._beats_handle.write(json.dumps(beat, sort_keys=True,
                                                default=str))
            self._beats_handle.write("\n")
            self._beats_handle.flush()
        except (OSError, ValueError):  # pragma: no cover - disk gone
            pass

    def finish(self, results=0):
        """Close the streams and write the merged ``timeline.json``;
        returns the timeline path (None if merging failed)."""
        self.events.emit("pool.end", results=results)
        self.events.close()
        try:
            self._beats_handle.close()
        except OSError:  # pragma: no cover
            pass
        try:
            return write_timeline(self.flight_dir)
        except (OSError, ValueError):  # pragma: no cover - disk gone
            return None
