"""Verdict provenance: checkable certificates for every solver answer.

The decision procedure of Section 5 is itself a proof object: a ``sat``
answer is a concrete path of minterm choices through conditional
derivatives ending in a nullable state, and an ``unsat`` answer is a
finite explored closure in which no state is nullable.  This module
captures that evidence instead of discarding it:

* :class:`ExplainRecorder` — a per-query provenance recorder threaded
  through :class:`~repro.solver.engine.RegexSolver`; when enabled it
  collects the witness path (sat) or the explored closure with the
  minterm partition and transition rows at every state (unsat);
* :class:`Explanation` — the typed evidence attached to
  :class:`~repro.solver.result.SolverResult`, with a one-line
  ``summary()``, a human narrative, and a JSON ``certificate()``;
* :func:`check_certificate` — an **independent checker** that
  re-verifies nullability (reference semantics), minterm-cover
  exhaustiveness (algebra only), and transition correctness (fresh
  re-derivation plus classical-Brzozowski spot checks) without ever
  touching the producing engine's caches, graph, or interned tables,
  so a tampered or stale certificate is rejected.

Trust boundary (see DESIGN.md "Verdict provenance"): the checker
trusts the character algebra, the reference membership semantics
(:mod:`repro.regex.semantics`), the classical derivative rules
(:mod:`repro.derivatives.brzozowski`) and the derivative-rule code it
re-runs on a *fresh* builder — it trusts nothing produced by the
engine instance whose verdict is being certified.
"""

import json

from repro.errors import ReproError

#: Version stamp embedded in every certificate.  Bump on any change to
#: the schema; the checker rejects certificates from the future.
CERT_SCHEMA_VERSION = 1

#: Closure-size cap for recording: an explanation whose closure would
#: exceed this many states is marked truncated and carries no
#: certificate (the narrative still reports what happened).
DEFAULT_MAX_STATES = 20000


class CertificateError(ReproError):
    """A certificate could not be recorded or is structurally broken."""


# -- predicate (de)serialization ----------------------------------------------


def algebra_spec(algebra):
    """A JSON-serializable description of ``algebra``, sufficient for
    the checker to rebuild an equivalent instance from scratch."""
    max_code = getattr(algebra, "max_code", None)
    if max_code is not None:
        return {"kind": "interval", "max_code": max_code}
    alphabet = getattr(algebra, "alphabet", None)
    if alphabet is not None:
        return {"kind": "bitset", "alphabet": alphabet}
    raise CertificateError(
        "cannot serialize certificates over %r (no interval/bitset "
        "description)" % (algebra,)
    )


def algebra_from_spec(spec):
    """Rebuild a fresh algebra from :func:`algebra_spec` output."""
    kind = spec.get("kind")
    if kind == "interval":
        from repro.alphabet.intervals import IntervalAlgebra

        return IntervalAlgebra(int(spec["max_code"]))
    if kind == "bitset":
        from repro.alphabet.bitset import BitsetAlgebra

        return BitsetAlgebra(spec["alphabet"])
    raise CertificateError("unknown algebra spec %r" % (spec,))


def pred_ranges(algebra, pred):
    """Serialize a predicate as sorted inclusive codepoint ranges."""
    ranges = getattr(pred, "ranges", None)
    if ranges is not None:
        return [[lo, hi] for lo, hi in ranges]
    if hasattr(algebra, "chars"):
        codes = sorted(ord(c) for c in algebra.chars(pred))
        out = []
        for code in codes:
            if out and code == out[-1][1] + 1:
                out[-1][1] = code
            else:
                out.append([code, code])
        return out
    raise CertificateError("cannot serialize predicate %r" % (pred,))


def _canon_ranges(ranges):
    """Hashable canonical form of serialized guard ranges."""
    return tuple((int(lo), int(hi)) for lo, hi in ranges)


# -- the recorder --------------------------------------------------------------


class ExplainRecorder:
    """Per-query provenance collector owned by a ``RegexSolver``.

    The solver feeds it the transition rows it computes anyway (so the
    common path records for free) and, at query end, asks it to build
    the :class:`Explanation`: for unsat verdicts any states skipped by
    the ``bot`` rule (proved dead in an earlier query) have their rows
    filled in from the memoized derivative trees.
    """

    __slots__ = ("solver", "max_states", "rows", "sat_steps")

    def __init__(self, solver, max_states=DEFAULT_MAX_STATES):
        self.solver = solver
        self.max_states = max_states
        #: regex -> list of (guard, frozenset-of-successor-regexes),
        #: bottom rows included (empty successor sets), so the guards
        #: of each state partition the whole character domain
        self.rows = {}
        #: (state, guard, char, successor) steps left behind by the
        #: exploration loop when it reaches a nullable state
        self.sat_steps = None

    def record_rows(self, state, rows):
        """Remember the full (bottom rows included) transition rows of
        one expanded state."""
        self.rows[state] = rows

    # -- explanation construction ------------------------------------------

    def sat(self, root, witness, steps):
        """Explanation for a sat verdict from the exploration's parent
        chain: ``steps`` is a list of (state, guard, char, successor)."""
        states = [root]
        seen = {root}
        for state, _guard, _char, successor in steps:
            for node in (state, successor):
                if node not in seen:
                    seen.add(node)
                    states.append(node)
        return Explanation(
            "sat", root, self.solver.algebra, witness=witness,
            steps=list(steps), states=states,
        )

    def unsat(self, root):
        """Explanation for an unsat verdict: the explored closure.

        The closure walk is *deferred*: this method only captures the
        per-query row table (already recorded for free) and a thunk;
        :class:`Explanation` runs the walk on first access to its
        states/rows.  The solve path therefore pays nothing beyond the
        row recording itself — the proof is assembled only when
        somebody asks for it.
        """
        solver = self.solver
        recorded = self.rows
        max_states = self.max_states

        def materialize(explanation):
            # Walks the derivative graph from the root over the rows
            # recorded during the query, computing rows for any
            # reachable state the exploration skipped (dead ends
            # proved by earlier queries never get expanded again — the
            # ``bot`` rule — but their rows are one memoized tree-walk
            # away).  Deterministic whenever it runs: the recorded
            # rows are frozen per query and the engine's transitions
            # are memoized pure functions of the state.
            engine = solver.engine
            graph = solver.graph
            states = []
            rows = {}
            stack = [root]
            seen = {root}
            while stack:
                state = stack.pop()
                states.append(state)
                state_rows = recorded.get(state)
                if state_rows is None:
                    state_rows = engine.transitions(state)
                rows[state] = state_rows
                for _guard, targets in state_rows:
                    for target in targets:
                        if target not in seen:
                            if len(seen) >= max_states:
                                explanation.kind = "truncated"
                                explanation.reason = (
                                    "closure exceeds %d states" % max_states
                                )
                                return
                            seen.add(target)
                            stack.append(target)
            explanation._states = states
            explanation._rows = rows
            explanation._flags = {
                state: graph.classify(state) for state in states
            }

        return Explanation(
            "unsat", root, self.solver.algebra, pending=materialize,
        )

    def unknown(self, root, reason):
        return Explanation(
            "unknown", root, self.solver.algebra, reason=reason,
        )


def explain_witness(solver, root, witness):
    """Rebuild a checkable witness path for a known witness string.

    Used by solvers that find witnesses without a parent chain (the
    rule-by-rule :class:`~repro.solver.rules.PropagationEngine`): walks
    the conditional trees from ``root``, choosing at each position the
    row whose guard admits the witness character and, among its
    alternatives, a successor that still accepts the remaining suffix
    (decided by the reference semantics, so the chosen path is exactly
    what the checker will re-verify).  Returns None if no such path
    exists — which, for a genuine witness, cannot happen.
    """
    from repro.regex.semantics import Matcher

    engine = solver.engine
    algebra = solver.algebra
    semantics = Matcher(algebra)
    state = root
    steps = []
    for i, char in enumerate(witness):
        suffix = witness[i + 1:]
        chosen = None
        for guard, targets in engine.transitions(state):
            if not algebra.member(char, guard):
                continue
            for target in targets:
                if semantics.matches(target, suffix):
                    chosen = (state, guard, char, target)
                    break
            break  # the guards partition the domain: only one row fits
        if chosen is None:
            return None
        steps.append(chosen)
        state = chosen[3]
    if not state.nullable:
        return None
    recorder = ExplainRecorder(solver)
    return recorder.sat(root, witness, steps)


# -- the typed evidence --------------------------------------------------------


class Explanation:
    """Typed provenance for one verdict.

    ``kind`` is ``"sat"``, ``"unsat"``, ``"unknown"`` or
    ``"truncated"``.  Regexes and guards are held live; serialization
    to the JSON certificate happens lazily in :meth:`certificate` (and
    is cached), so enabled-mode recording never pays rendering costs
    unless somebody exports.

    Unsat closures are doubly lazy: the recorder hands over a
    ``pending`` thunk instead of the walked closure, and the first
    access to :attr:`states`/:attr:`rows`/:attr:`flags` runs it (an
    over-large closure flips ``kind`` to ``"truncated"`` at that
    point).  The solve path never pays for proof assembly.
    """

    __slots__ = (
        "kind", "root", "algebra", "witness", "steps", "_states", "_rows",
        "_flags", "reason", "checked", "_certificate", "_pending",
    )

    def __init__(self, kind, root, algebra, witness=None, steps=None,
                 states=None, rows=None, flags=None, reason=None,
                 pending=None):
        self.kind = kind
        self.root = root
        self.algebra = algebra
        self.witness = witness
        self.steps = steps if steps is not None else []
        self._states = states if states is not None else []
        self._rows = rows if rows is not None else {}
        self._flags = flags if flags is not None else {}
        self.reason = reason
        #: tri-state: None until :meth:`check` runs, then True/False
        self.checked = None
        self._certificate = None
        self._pending = pending

    def _materialize(self):
        if self._pending is not None:
            thunk, self._pending = self._pending, None
            thunk(self)

    @property
    def states(self):
        self._materialize()
        return self._states

    @property
    def rows(self):
        self._materialize()
        return self._rows

    @property
    def flags(self):
        self._materialize()
        return self._flags

    # -- summaries ----------------------------------------------------------

    @property
    def witness_length(self):
        return len(self.witness) if self.witness is not None else None

    @property
    def closure_size(self):
        return len(self.states) if self.kind == "unsat" else 0

    def row_count(self):
        return sum(len(rows) for rows in self.rows.values())

    def summary(self):
        """The one-line form printed by ``--stats`` and batch reports."""
        checked = {None: "unchecked", True: "yes", False: "NO"}[self.checked]
        if self.kind == "sat":
            return ("sat: witness length %d, path %d steps, %d states, "
                    "certificate checked: %s") % (
                self.witness_length, len(self.steps), len(self.states),
                checked,
            )
        if self.kind == "unsat":
            return ("unsat: closure %d states, %d transition rows, "
                    "certificate checked: %s") % (
                self.closure_size, self.row_count(), checked,
            )
        return "%s: %s" % (self.kind, self.reason or "no certificate")

    def to_dict(self):
        """Compact JSON-ready summary embedded in ``SolverResult.
        to_dict()`` (the full certificate stays behind
        :meth:`certificate` — it can be large)."""
        out = {
            "kind": self.kind,
            "witness_length": self.witness_length,
            "closure_size": self.closure_size,
            "rows": self.row_count(),
            "certificate_checked": self.checked,
        }
        if self.reason is not None:
            out["reason"] = self.reason
        return out

    # -- certificate --------------------------------------------------------

    def certifiable(self):
        # materialize first: an over-large unsat closure only reveals
        # itself (kind -> "truncated") once the deferred walk runs
        self._materialize()
        return self.kind in ("sat", "unsat")

    def certificate(self):
        """The self-contained, JSON-serializable proof object.

        Everything the independent checker needs is embedded: the
        algebra description, every state as re-parseable pattern text
        with its claimed nullability, and — per kind — the witness path
        or the full transition-row table.  Raises
        :class:`CertificateError` for unknown/truncated explanations.
        """
        if self._certificate is not None:
            return self._certificate
        if not self.certifiable():
            raise CertificateError(
                "no certificate for a %r explanation (%s)"
                % (self.kind, self.reason or "not a concrete verdict")
            )
        from repro.regex.printer import to_pattern

        algebra = self.algebra
        uids = {}
        states = []
        for state in self.states:
            uids[state] = state.uid
            states.append({
                "uid": state.uid,
                "pattern": to_pattern(state, algebra),
                "nullable": state.nullable,
            })
        cert = {
            "v": CERT_SCHEMA_VERSION,
            "kind": self.kind,
            "algebra": algebra_spec(algebra),
            "root": self.root.uid,
            "pattern": to_pattern(self.root, algebra),
            "states": states,
        }
        if self.kind == "sat":
            cert["witness"] = self.witness
            cert["path"] = [
                {
                    "state": state.uid,
                    "guard": pred_ranges(algebra, guard),
                    "char": ord(char),
                    "successor": successor.uid,
                }
                for state, guard, char, successor in self.steps
            ]
        else:
            rows = {}
            for state, state_rows in self.rows.items():
                rows[str(state.uid)] = [
                    {
                        "guard": pred_ranges(algebra, guard),
                        "targets": sorted(t.uid for t in targets),
                    }
                    for guard, targets in state_rows
                ]
            for entry in states:
                entry["rows"] = rows.get(str(entry["uid"]), [])
        self._certificate = cert
        return cert

    def check(self):
        """Run the independent checker on this explanation's
        certificate; stamps and returns the :class:`CheckResult`."""
        if not self.certifiable():
            return CheckResult(False, ["%s explanation carries no "
                                       "certificate" % self.kind])
        outcome = check_certificate(self.certificate())
        self.checked = outcome.ok
        return outcome

    # -- narrative ----------------------------------------------------------

    def narrative(self):
        """Step-by-step textual rendering (the ``repro explain`` body)."""
        from repro.regex.printer import render_pred, to_pattern

        algebra = self.algebra
        lines = []
        if self.kind == "sat":
            lines.append(
                "sat: %r is a witness for %s" % (
                    self.witness, to_pattern(self.root, algebra),
                )
            )
            for i, (state, guard, char, successor) in enumerate(self.steps):
                lines.append(
                    "  step %d: %s --[%s, chose %r]--> %s" % (
                        i + 1, to_pattern(state, algebra),
                        render_pred(guard, algebra), char,
                        to_pattern(successor, algebra),
                    )
                )
            final = self.steps[-1][3] if self.steps else self.root
            lines.append(
                "  final state %s is nullable: it accepts the empty "
                "suffix" % to_pattern(final, algebra)
            )
        elif self.kind == "unsat":
            lines.append(
                "unsat: the closure of %s has %d states, none nullable"
                % (to_pattern(self.root, algebra), len(self.states))
            )
            for state in self.states:
                marks = [
                    name for name in ("final", "dead", "closed")
                    if self.flags.get(state, {}).get(name)
                ]
                lines.append("  state %s%s" % (
                    to_pattern(state, algebra),
                    "  [%s]" % ", ".join(marks) if marks else "",
                ))
                for guard, targets in self.rows.get(state, ()):
                    lines.append("    --[%s]--> %s" % (
                        render_pred(guard, algebra),
                        "{%s}" % ", ".join(
                            sorted(to_pattern(t, algebra) for t in targets)
                        ) if targets else "bottom (dead end)",
                    ))
        else:
            lines.append("%s: %s" % (self.kind,
                                     self.reason or "no explanation"))
        if self.checked is not None:
            lines.append("certificate checked: %s"
                         % ("yes" if self.checked else "NO — REJECTED"))
        return "\n".join(lines)

    def __repr__(self):
        return "Explanation(%s)" % self.summary()


class SmtExplanation:
    """Boolean-structure wrapper: per-variable regex explanations.

    The lazy-DNF front end of :class:`~repro.solver.smt.SmtSolver` is
    not itself certified (the trust boundary is the per-variable ERE
    verdicts); this container holds, for a sat model, one certified
    explanation per variable of the satisfied branch, and for unsat
    the refuting explanation of every enumerated branch.
    """

    __slots__ = ("kind", "branches", "checked")

    def __init__(self, kind, branches):
        self.kind = kind
        #: list of {"case": int, "var": str, "explanation": Explanation}
        self.branches = branches
        self.checked = None

    def summary(self):
        checked = {None: "unchecked", True: "yes", False: "NO"}[self.checked]
        return "%s: %d certified sub-verdicts, certificates checked: %s" % (
            self.kind, len(self.branches), checked,
        )

    def to_dict(self):
        return {
            "kind": self.kind,
            "branches": [
                {
                    "case": b["case"],
                    "var": b["var"],
                    "explanation": b["explanation"].to_dict(),
                }
                for b in self.branches
            ],
            "certificate_checked": self.checked,
        }

    def certifiable(self):
        return self.kind in ("sat", "unsat") and bool(self.branches)

    def certificate(self):
        return {
            "v": CERT_SCHEMA_VERSION,
            "kind": "smt-" + self.kind,
            "branches": [
                {
                    "case": b["case"],
                    "var": b["var"],
                    "certificate": b["explanation"].certificate(),
                }
                for b in self.branches
            ],
        }

    def check(self):
        """Check every embedded per-variable certificate."""
        errors = []
        for branch in self.branches:
            outcome = branch["explanation"].check()
            if not outcome.ok:
                errors.extend(
                    "case %d var %s: %s" % (branch["case"], branch["var"], e)
                    for e in outcome.errors
                )
        self.checked = not errors
        return CheckResult(self.checked, errors)

    def narrative(self):
        lines = [self.summary()]
        for branch in self.branches:
            lines.append("case %d, variable %s:" % (branch["case"],
                                                    branch["var"]))
            lines.extend(
                "  " + line
                for line in branch["explanation"].narrative().splitlines()
            )
        return "\n".join(lines)

    def __repr__(self):
        return "SmtExplanation(%s)" % self.summary()


# -- the independent checker ---------------------------------------------------


class CheckResult:
    """Outcome of :func:`check_certificate`: ``ok`` plus the full list
    of verification failures (empty iff ``ok``)."""

    __slots__ = ("ok", "errors", "states_checked", "rows_checked")

    def __init__(self, ok, errors, states_checked=0, rows_checked=0):
        self.ok = ok
        self.errors = list(errors)
        self.states_checked = states_checked
        self.rows_checked = rows_checked

    def __bool__(self):
        return self.ok

    def __repr__(self):
        if self.ok:
            return ("CheckResult(ok, %d states, %d rows)"
                    % (self.states_checked, self.rows_checked))
        return "CheckResult(REJECTED: %s)" % "; ".join(self.errors[:3])


def check_certificate(cert):
    """Independently re-verify a certificate produced by
    :meth:`Explanation.certificate`.

    Everything is rebuilt from the certificate alone: a fresh algebra
    from its spec, fresh regexes by re-parsing each state's pattern
    into a fresh builder.  The checks, in order:

    1. schema shape and internal uid references;
    2. **nullability** of every state, via the reference membership
       semantics (``"" in L(q)``), cross-checked against the builder's
       structural bit;
    3. for sat — the witness path: chained uids, satisfiable guards
       containing the chosen characters, the witness equal to the
       concatenated choices, and — decisively — every path suffix
       accepted by its state under the reference semantics;
    4. for unsat — **minterm-cover exhaustiveness** (each state's
       guards pairwise disjoint, individually satisfiable, and jointly
       covering the whole domain, by algebra operations alone),
       closure-membership of every transition target, **transition
       correctness** (the rows recomputed by the derivative rules on
       the fresh builder must match the recorded rows exactly), and a
       classical-Brzozowski spot check per row (the derivative at a
       sampled character of each guard must not be nullable).

    Returns a :class:`CheckResult`; never raises on malformed input.
    """
    errors = []
    states_checked = 0
    rows_checked = 0
    try:
        if not isinstance(cert, dict):
            return CheckResult(False, ["certificate is not a mapping"])
        version = cert.get("v")
        if version != CERT_SCHEMA_VERSION:
            return CheckResult(False, [
                "unsupported certificate schema %r (checker knows %d)"
                % (version, CERT_SCHEMA_VERSION)
            ])
        kind = cert.get("kind")
        if kind not in ("sat", "unsat"):
            return CheckResult(False, ["unknown certificate kind %r" % kind])
        try:
            algebra = algebra_from_spec(cert.get("algebra") or {})
        except (CertificateError, KeyError, TypeError, ValueError) as exc:
            return CheckResult(False, ["bad algebra spec: %s" % exc])

        from repro.regex import RegexBuilder, parse
        from repro.regex.semantics import Matcher

        builder = RegexBuilder(algebra)
        semantics = Matcher(algebra)
        by_uid = {}
        node_to_uid = {}
        for entry in cert.get("states", ()):
            uid = entry.get("uid")
            try:
                node = parse(builder, entry["pattern"])
            except ReproError as exc:
                errors.append("state %r: unparseable pattern %r (%s)"
                              % (uid, entry.get("pattern"), exc))
                continue
            if uid in by_uid:
                errors.append("duplicate state uid %r" % uid)
                continue
            if node in node_to_uid:
                errors.append(
                    "states %r and %r denote the same regex %r"
                    % (node_to_uid[node], uid, entry["pattern"])
                )
                continue
            by_uid[uid] = (node, entry)
            node_to_uid[node] = uid
        if errors:
            return CheckResult(False, errors)
        root_uid = cert.get("root")
        if root_uid not in by_uid:
            return CheckResult(
                False, ["root uid %r not among the states" % root_uid]
            )

        # 2. nullability, by the reference semantics
        for uid, (node, entry) in sorted(by_uid.items()):
            states_checked += 1
            claimed = bool(entry.get("nullable"))
            semantic = semantics.matches(node, "")
            if semantic != claimed:
                errors.append(
                    "state %r claims nullable=%s but the reference "
                    "semantics says %s" % (uid, claimed, semantic)
                )
            if node.nullable != semantic:
                errors.append(
                    "state %r: structural nullability disagrees with "
                    "the reference semantics" % uid
                )
        if errors:
            return CheckResult(False, errors,
                               states_checked, rows_checked)

        if kind == "sat":
            rows_checked = _check_sat(
                cert, algebra, semantics, by_uid, root_uid, errors
            )
        else:
            rows_checked = _check_unsat(
                cert, algebra, builder, semantics, by_uid, node_to_uid,
                root_uid, errors,
            )
    except Exception as exc:  # malformed input must reject, not raise
        errors.append("malformed certificate: %s: %s"
                      % (type(exc).__name__, exc))
    return CheckResult(not errors, errors, states_checked, rows_checked)


def _check_sat(cert, algebra, semantics, by_uid, root_uid, errors):
    witness = cert.get("witness")
    path = cert.get("path", [])
    if witness is None:
        errors.append("sat certificate without a witness")
        return 0
    chars = []
    for step in path:
        code = step.get("char")
        try:
            chars.append(chr(code))
        except (TypeError, ValueError):
            errors.append("step has unusable char %r" % (code,))
            return len(path)
    if "".join(chars) != witness:
        errors.append(
            "witness %r is not the concatenation of the path "
            "characters %r" % (witness, "".join(chars))
        )
    # the chain of uids: root -> ... -> final
    chain = [root_uid]
    for i, step in enumerate(path):
        if step.get("state") != chain[-1]:
            errors.append(
                "step %d starts at state %r, expected %r"
                % (i + 1, step.get("state"), chain[-1])
            )
            return len(path)
        chain.append(step.get("successor"))
    for uid in chain:
        if uid not in by_uid:
            errors.append("path references unknown state uid %r" % uid)
            return len(path)
    # guards: satisfiable, containing the chosen character
    for i, step in enumerate(path):
        guard = algebra.from_ranges(
            [(lo, hi) for lo, hi in step.get("guard", ())]
        )
        if not algebra.is_sat(guard):
            errors.append("step %d guard is unsatisfiable" % (i + 1))
        elif not algebra.member(chars[i], guard):
            errors.append(
                "step %d chose %r outside its guard" % (i + 1, chars[i])
            )
        if not algebra.in_domain(chars[i]):
            errors.append("step %d chose out-of-domain %r"
                          % (i + 1, chars[i]))
    # the decisive check: every suffix is accepted by its state,
    # including the full witness at the root and "" at the final state
    for i, uid in enumerate(chain):
        node, _entry = by_uid[uid]
        suffix = witness[i:]
        if not semantics.matches(node, suffix):
            errors.append(
                "suffix %r is not in L(state %r) per the reference "
                "semantics" % (suffix, uid)
            )
    final_node, _ = by_uid[chain[-1]]
    if not semantics.matches(final_node, ""):
        errors.append("final state %r is not nullable" % chain[-1])
    return len(path)


def _check_unsat(cert, algebra, builder, semantics, by_uid, node_to_uid,
                 root_uid, errors):
    from repro.derivatives.brzozowski import brzozowski
    from repro.derivatives.condtree import DerivativeEngine

    rows_checked = 0
    # no state of the closure may be nullable (the per-state semantic
    # check above already validated the bits; here we insist they are
    # all False — a nullable state in the closure breaks the proof)
    for uid, (node, entry) in sorted(by_uid.items()):
        if entry.get("nullable"):
            errors.append(
                "state %r is nullable: the closure cannot prove unsat"
                % uid
            )
    if errors:
        return rows_checked

    # a fresh derivative engine: same rules, empty caches — nothing of
    # the producing engine's memo tables or graph is consulted
    engine = DerivativeEngine(builder)
    for uid, (node, entry) in sorted(by_uid.items()):
        recorded = entry.get("rows")
        if recorded is None:
            errors.append("state %r has no transition rows" % uid)
            continue
        # (a) cover exhaustiveness: pairwise disjoint, each satisfiable,
        # union the whole domain — algebra operations only
        union = algebra.bot
        guards = []
        for i, row in enumerate(recorded):
            guard = algebra.from_ranges(
                [(lo, hi) for lo, hi in row.get("guard", ())]
            )
            guards.append(guard)
            if not algebra.is_sat(guard):
                errors.append("state %r row %d: unsatisfiable guard"
                              % (uid, i))
            if algebra.is_sat(algebra.conj(union, guard)):
                errors.append(
                    "state %r row %d: guard overlaps an earlier row "
                    "(minterms must be disjoint)" % (uid, i)
                )
            union = algebra.disj(union, guard)
        if not algebra.is_valid(union):
            errors.append(
                "state %r: guards do not cover the whole domain — "
                "the cover is not exhaustive" % uid
            )
        # (b) closure: every successor is in the certified state set
        for i, row in enumerate(recorded):
            for target in row.get("targets", ()):
                if target not in by_uid:
                    errors.append(
                        "state %r row %d: successor uid %r escapes "
                        "the closure" % (uid, i, target)
                    )
        if errors:
            continue
        # (c) transition correctness: recompute the rows with the
        # derivative rules on the fresh builder and compare exactly
        want = {}
        for row in recorded:
            want[_canon_ranges(row.get("guard", ()))] = frozenset(
                row.get("targets", ())
            )
        got = {}
        recompute_failed = False
        for guard, targets in engine.transitions(node):
            target_uids = set()
            for target in targets:
                target_uid = node_to_uid.get(target)
                if target_uid is None:
                    errors.append(
                        "state %r: re-derivation reaches a regex "
                        "missing from the certificate" % uid
                    )
                    recompute_failed = True
                    break
                target_uids.add(target_uid)
            if recompute_failed:
                break
            got[_canon_ranges(pred_ranges(algebra, guard))] = frozenset(
                target_uids
            )
        if recompute_failed:
            continue
        if got != want:
            errors.append(
                "state %r: recorded rows disagree with the derivative "
                "rules (recorded %d rows, recomputed %d; first "
                "difference at guard %r)" % (
                    uid, len(want), len(got),
                    next(iter(
                        sorted(set(want) ^ set(got))
                        or sorted(k for k in want if want[k] != got.get(k))
                    ), None),
                )
            )
            continue
        rows_checked += len(recorded)
        # (d) classical-Brzozowski spot check: at a sampled character
        # of every guard, the reference derivative must not be
        # nullable (otherwise root reaches acceptance through this
        # closure, contradicting unsat)
        for guard in guards:
            if not algebra.is_sat(guard):
                continue
            char = algebra.pick(guard)
            derived = brzozowski(builder, node, char)
            if semantics.matches(derived, ""):
                errors.append(
                    "state %r: classical derivative at %r is nullable "
                    "— a one-step acceptance the certificate hides"
                    % (uid, char)
                )
    return rows_checked


# -- conveniences --------------------------------------------------------------


def explain_pattern(pattern, max_char=None, fuel=None, seconds=None,
                    check=True):
    """One-shot: parse, solve with provenance enabled, optionally
    check, and return the :class:`~repro.solver.result.SolverResult`
    (whose ``explanation`` is populated for concrete verdicts).

    This is the engine behind the ``repro explain`` CLI subcommand and
    the flight recorder's artifact enrichment.
    """
    from repro.alphabet import IntervalAlgebra
    from repro.regex import RegexBuilder, parse
    from repro.solver.engine import RegexSolver
    from repro.solver.result import Budget

    algebra = IntervalAlgebra(max_char) if max_char else IntervalAlgebra()
    builder = RegexBuilder(algebra)
    solver = RegexSolver(builder, explain=True)
    budget = Budget(fuel=fuel, seconds=seconds)
    result = solver.is_satisfiable(parse(builder, pattern), budget)
    if check and result.explanation is not None \
            and result.explanation.certifiable():
        result.explanation.check()
    return result


def certificate_for_task(kind, payload, config, check=True):
    """Re-solve a batch task with provenance enabled; returns a JSON
    dict (summary + certificate + check outcome) or None for task
    kinds with no certified form.  Used to enrich slow-query flight
    artifacts; exceptions are the caller's problem to contain."""
    if kind in ("pattern", "check"):
        result = explain_pattern(
            payload, max_char=config.get("max_char"),
            fuel=config.get("fuel"), seconds=config.get("seconds"),
            check=check,
        )
        explanation = result.explanation
    elif kind == "smt2":
        from repro.alphabet import IntervalAlgebra
        from repro.regex import RegexBuilder
        from repro.smtlib.interp import run_script
        from repro.solver.engine import RegexSolver
        from repro.solver.result import Budget
        from repro.solver.smt import SmtSolver

        max_char = config.get("max_char")
        algebra = IntervalAlgebra(max_char) if max_char else IntervalAlgebra()
        builder = RegexBuilder(algebra)
        solver = SmtSolver(builder, RegexSolver(builder, explain=True))
        result = run_script(
            builder, payload, solver=solver,
            budget=Budget(fuel=config.get("fuel"),
                          seconds=config.get("seconds")),
        )
        explanation = result.explanation
        if check and explanation is not None:
            explanation.check()
    else:
        return None
    if explanation is None:
        return None
    out = {
        "status": result.status,
        "summary": explanation.summary(),
        "explanation": explanation.to_dict(),
    }
    try:
        out["certificate"] = explanation.certificate()
    except CertificateError:
        pass
    return out


def certificate_to_json(cert, indent=None):
    """Serialize a certificate dict to JSON text (round-trip helper)."""
    return json.dumps(cert, sort_keys=True, indent=indent)


def certificate_from_json(text):
    """Parse JSON text back to a certificate dict."""
    return json.loads(text)
