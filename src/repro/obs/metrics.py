"""Solver metrics: counters, gauges and log-scale histograms.

A :class:`MetricsRegistry` is a named tree of metrics.  Instruments are
created once (``registry.counter("sat_checks")``) and then updated on
the hot path by direct method calls (``counter.inc()``), so the cost of
staying on by default is one bound-method call per event — no string
lookups, no locks (the solver is single-threaded per query).

The null backend (:data:`NULL_METRICS`, :data:`NULL_COUNTER`, ...)
mirrors the whole API with no-ops so instrumented code needs no
``if enabled`` branches: when metrics are disabled, every update is one
attribute lookup plus an empty call.
"""

import math


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """A value that can go up and down (queue depth, memo size)."""

    __slots__ = ("name", "value")

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """A log-scale (base-2) histogram of nonnegative samples.

    Bucket ``e`` counts samples with ``2**(e-1) < x <= 2**e`` (bucket 0
    holds zeros and sub-unit samples), which keeps the bucket count
    logarithmic in the dynamic range — the right shape for state counts
    and sat-check latencies that span orders of magnitude.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name=""):
        self.name = name
        self.reset()

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(math.frexp(value)[1], 0) if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Upper bound of the bucket holding the q-quantile sample."""
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                return 2 ** bucket
        return 2 ** max(self.buckets)

    def snapshot(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": dict(sorted(self.buckets.items())),
        }

    def reset(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def __repr__(self):
        return "Histogram(%s, n=%d, mean=%.3g)" % (self.name, self.count, self.mean)


class MetricsRegistry:
    """A named tree of counters, gauges and histograms.

    ``scope(name)`` returns (and caches) a child registry whose metric
    names are prefixed ``name.``; ``snapshot()`` flattens the whole
    tree into a plain dict suitable for JSON export.
    """

    enabled = True

    def __init__(self, prefix=""):
        self._prefix = prefix
        self._metrics = {}
        self._children = {}

    def _get(self, name, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(self._prefix + name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric %r already registered as %s"
                % (self._prefix + name, type(metric).__name__)
            )
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def scope(self, name):
        child = self._children.get(name)
        if child is None:
            child = MetricsRegistry(self._prefix + name + ".")
            self._children[name] = child
        return child

    def snapshot(self):
        """Flatten the registry tree into ``{dotted-name: value}``.

        Counters and gauges flatten to their value, histograms to their
        summary dict.
        """
        out = {}
        for name, metric in self._metrics.items():
            full = self._prefix + name
            if isinstance(metric, Histogram):
                out[full] = metric.snapshot()
            else:
                out[full] = metric.value
        for child in self._children.values():
            out.update(child.snapshot())
        return out

    def reset(self):
        for metric in self._metrics.values():
            metric.reset()
        for child in self._children.values():
            child.reset()

    def __repr__(self):
        return "MetricsRegistry(%r, %d metrics)" % (
            self._prefix, len(self.snapshot())
        )


# -- the null backend ---------------------------------------------------------


class NullCounter:
    """No-op counter: hot paths pay one attribute lookup + empty call."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount=1):
        pass

    def reset(self):
        pass


class NullGauge:
    __slots__ = ()
    name = ""
    value = 0

    def set(self, value):
        pass

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def reset(self):
        pass


class NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0
    min = None
    max = None
    mean = 0.0

    def observe(self, value):
        pass

    def quantile(self, q):
        return None

    def snapshot(self):
        return {}

    def reset(self):
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullMetrics:
    """Registry stand-in that hands out shared no-op instruments."""

    enabled = False

    def counter(self, name):
        return NULL_COUNTER

    def gauge(self, name):
        return NULL_GAUGE

    def histogram(self, name):
        return NULL_HISTOGRAM

    def scope(self, name):
        return self

    def snapshot(self):
        return {}

    def reset(self):
        pass

    def __repr__(self):
        return "NullMetrics()"


NULL_METRICS = NullMetrics()
