"""Span-stream attribution: collapsed stacks and self-time hotspots.

A :class:`~repro.obs.tracing.Tracer` produces a flat list of finished
spans; this module turns that stream into *attribution* — where the
traced wall time actually went:

* :func:`build_tree` reconstructs the span forest from completion order
  and depth (children always finish before their parent in a
  single-threaded trace, so no interval arithmetic is needed);
* :func:`collapsed_stacks` renders the forest in the collapsed-stack
  format consumed by ``flamegraph.pl`` and https://speedscope.app
  (``root;child;leaf <microseconds>``, one line per unique stack);
* :func:`hotspots` aggregates per-span-name *self* time (duration minus
  time spent in child spans) into the top-K table the CLI prints for
  ``--profile`` and the BENCH snapshots embed;
* :func:`profile_summary` packages total wall, attribution percentage
  and the hotspot list as a JSON-ready dict.

Self times partition the traced wall time exactly: every root span's
duration is distributed over its subtree, so the hotspot table sums to
100% of traced wall time (gaps inside a span are charged to that
span's self time — the correct reading for "this phase needs spans
underneath it").
"""

import json


def span_events(events):
    """The duration-carrying events (instant markers attribute nothing)."""
    return [e for e in events if not e.get("instant")]


def build_tree(events):
    """Reconstruct the span forest from a tracer's event stream.

    Events arrive in completion order with their nesting ``depth``; in a
    single-threaded trace an event at depth ``d`` is the parent of every
    not-yet-claimed completed event at depth ``d+1``.  Returns a list of
    root nodes ``{"event": e, "children": [...]}``; orphans whose parent
    never finished (and was not flushed) are promoted to roots so their
    time is still attributed.

    A *merged* multi-worker stream interleaves several independent
    single-threaded traces; events carrying a ``"pid"`` key are grouped
    by it and each process's forest is reconstructed separately
    (completion-order parenting across pids would adopt one worker's
    spans into another's tree and corrupt every self time downstream).
    """
    by_pid = {}
    lanes = []
    for event in span_events(events):
        pid = event.get("pid")
        lane = by_pid.get(pid)
        if lane is None:
            lane = by_pid[pid] = []
            lanes.append(pid)
        lane.append(event)
    roots = []
    for pid in lanes:
        roots.extend(_build_tree_lane(by_pid[pid]))
    return roots


def _build_tree_lane(events):
    """The single-stream reconstruction over one pid's events."""
    pending = {}
    roots = []
    for event in events:
        depth = event["depth"]
        node = {"event": event, "children": pending.pop(depth + 1, [])}
        if depth == 0:
            roots.append(node)
        else:
            pending.setdefault(depth, []).append(node)
    for depth in sorted(pending):
        roots.extend(pending[depth])
    return roots


def iter_nodes(roots):
    """All nodes of the forest, parents before children."""
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node["children"]))


def self_time(node):
    """The node's duration minus its children's durations, floored at 0
    (a child flushed as unfinished can overshoot its parent slightly)."""
    children = sum(c["event"]["dur"] for c in node["children"])
    return max(node["event"]["dur"] - children, 0.0)


def total_wall(events):
    """Total traced wall time: the sum of root-span durations."""
    return sum(n["event"]["dur"] for n in build_tree(events))


def _frame(name):
    """A span name as a collapsed-stack frame: no separators, no spaces."""
    return str(name).replace(";", ":").replace(" ", "_") or "(anonymous)"


def _root_path(node):
    """A root node's stack path; a pid-carrying root gets a synthetic
    ``pid:<N>`` lane frame so merged multi-worker flamegraphs keep each
    worker's stacks separate instead of folding them together."""
    event = node["event"]
    frame = (_frame(event["name"]),)
    pid = event.get("pid")
    if pid is None:
        return frame
    return ("pid:%s" % pid,) + frame


def collapsed_stacks(events, scale=1e6):
    """The trace in collapsed-stack format, self time as the sample count.

    Returns a list of ``"frame;frame;... <count>"`` lines, one per
    unique stack, where the count is the stack's aggregated self time in
    microseconds (``scale=1e6``) rounded to an integer — the unit-less
    integer format ``flamegraph.pl`` and speedscope both accept.  Stacks
    whose rounded self time is zero are dropped.
    """
    weights = {}
    stack = [(node, _root_path(node)) for node in reversed(build_tree(events))]
    while stack:
        node, path = stack.pop()
        weights[path] = weights.get(path, 0.0) + self_time(node)
        for child in reversed(node["children"]):
            stack.append((child, path + (_frame(child["event"]["name"]),)))
    lines = []
    for path in sorted(weights):
        count = int(round(weights[path] * scale))
        if count > 0:
            lines.append("%s %d" % (";".join(path), count))
    return lines


def write_collapsed(events, path):
    """Write :func:`collapsed_stacks` lines to ``path``; returns the
    number of stack lines written."""
    lines = collapsed_stacks(events)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def read_collapsed(path):
    """Parse a collapsed-stack file back into ``[(frames, count), ...]``.

    Raises ``ValueError`` on a malformed line (the shape flamegraph.pl
    would reject too).
    """
    out = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            stack, sep, count = line.rpartition(" ")
            if not sep or not stack:
                raise ValueError("malformed collapsed-stack line: %r" % line)
            out.append((tuple(stack.split(";")), int(count)))
    return out


def hotspots(events, k=10):
    """Top-``k`` spans by aggregated self time.

    Returns a list of dicts ``{"name", "self_s", "count", "pct"}``
    sorted by descending self time, where ``pct`` is the share of total
    traced wall time; the shares of *all* spans (not just the returned
    top-k) sum to 100 by construction.

    Spans carrying a ``"pid"`` aggregate per ``(name, pid)`` and their
    rows carry the pid — in a merged multi-worker stream one hot span
    name is otherwise indistinguishable from N workers each mildly warm,
    and a per-worker row is what localizes a single wedged process.
    """
    totals = {}
    wall = 0.0
    for node in iter_nodes(build_tree(events)):
        event = node["event"]
        if event["depth"] == 0:
            wall += event["dur"]
        key = (event["name"], event.get("pid"))
        cell = totals.setdefault(key, [0.0, 0])
        cell[0] += self_time(node)
        cell[1] += 1
    rows = []
    for (name, pid), cell in totals.items():
        row = {
            "name": name,
            "self_s": cell[0],
            "count": cell[1],
            "pct": 100.0 * cell[0] / wall if wall else 0.0,
        }
        if pid is not None:
            row["pid"] = pid
        rows.append(row)
    rows.sort(key=lambda r: (-r["self_s"], r["name"], r.get("pid") or 0))
    return rows[:k]


def profile_summary(events, k=10):
    """JSON-ready attribution summary embedded in BENCH snapshots:
    total traced wall seconds, the percentage of it attributed to the
    reported hotspot rows, and the top-``k`` hotspot list."""
    rows = hotspots(events, k=k)
    wall = total_wall(events)
    attributed = sum(r["self_s"] for r in rows)
    return {
        "total_s": wall,
        "span_count": len(span_events(events)),
        "attributed_pct": 100.0 * attributed / wall if wall else 0.0,
        "hotspots": rows,
    }


def render_hotspots(events, k=10):
    """The top-``k`` self-time table as text (the ``--profile`` output)."""
    rows = hotspots(events, k=k)
    wall = total_wall(events)
    lines = ["%-28s %10s %8s %7s" % ("span", "self(s)", "calls", "%wall")]
    for row in rows:
        label = row["name"]
        if "pid" in row:
            label = "%s [pid %s]" % (label, row["pid"])
        lines.append("%-28s %10.4f %8d %6.1f%%" % (
            label, row["self_s"], row["count"], row["pct"],
        ))
    covered = sum(r["pct"] for r in rows)
    lines.append("total traced wall: %.4fs (%.1f%% attributed to top %d spans)"
                 % (wall, covered, len(rows)))
    return "\n".join(lines)


def write_profile_json(events, path, k=10):
    """Write :func:`profile_summary` as JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile_summary(events, k=k), handle, indent=1,
                  sort_keys=True)
    return path
