"""Structured solver events: the flight recorder's append-only log.

Metrics aggregate and spans time, but neither *narrates*: when a pool
of workers chews through a batch, the questions that matter mid-flight
are "which job is worker 3 on", "when did that compaction fire", and
"what was in flight when the process died".  An :class:`EventLog`
answers them with a **typed, append-only JSONL stream** of discrete
events, each stamped with the correlation fields that let per-process
streams be merged into one cross-process timeline
(:mod:`repro.obs.flight`):

* ``v`` — the event schema version (:data:`EVENT_SCHEMA_VERSION`);
* ``kind`` — one of :data:`EVENT_KINDS` (``task.start``,
  ``cache.compaction``, ``worker.crash``, ...);
* ``ts`` — epoch seconds (``time.time()``), comparable across
  processes, unlike the tracer's per-process monotonic clock;
* ``pid`` — the emitting process, the timeline's lane key;
* ``worker`` — the pool-assigned worker id (``"w0"``...), or
  ``"pool"`` for the parent;
* ``job`` — the name of the job being solved, when one is in flight
  (set via :meth:`EventLog.set_job` so solver-layer events correlate
  without the solver knowing about jobs).

Events are flushed line-by-line (the file handle is opened in append
mode and flushed per event), so the log survives a SIGKILL up to the
last completed write — the property the whole flight recorder exists
for.  The :class:`NullEventLog` (:data:`NULL_EVENTS`) keeps the
disabled path at one attribute lookup plus an empty call, the same
contract as the null metrics/tracer backends.
"""

import json
import os
import time

#: Version stamped on every event; bump when a kind's fields change
#: incompatibly.  Readers skip events with a newer major version.
EVENT_SCHEMA_VERSION = 1

#: The known event kinds and the extra fields each is expected to
#: carry (beyond the correlation envelope).  ``emit`` does not reject
#: unknown kinds — forward compatibility matters more in a log than
#: strictness — but :func:`validate_event` checks conformance and the
#: tests hold every emitter to it.
EVENT_KINDS = {
    # solver.engine / solver.smt — one pair per query
    "query.start": ("query",),
    "query.end": ("query", "status", "elapsed"),
    "smt.start": (),
    "smt.end": ("status", "case_splits"),
    # solver.lifecycle
    "cache.compaction": ("retired", "entries_before", "entries_after"),
    # serve.worker — the per-task narration
    "worker.start": (),
    "worker.exit": ("tasks", "retiring"),
    "task.start": ("name", "task_kind", "index"),
    "task.end": ("name", "index", "status", "elapsed"),
    "slow.capture": ("name", "artifact", "elapsed"),
    # serve.pool — fleet lifecycle, written by the parent
    "pool.start": ("jobs", "workers"),
    "pool.end": ("results",),
    "worker.spawn": ("spawned",),
    "worker.crash": ("crashed", "name"),
    "worker.reap": ("reaped", "name"),
    "worker.recycle": ("recycled",),
    "task.retry": ("name", "index"),
    # serve.daemon — the long-lived serving front end
    "daemon.start": ("address",),
    "daemon.stop": ("served",),
    "client.connect": ("client",),
    "client.disconnect": ("client",),
    "job.accept": ("client", "job", "degraded"),
    "job.reject": ("client", "reason"),
    "job.result": ("client", "job", "status", "latency_s"),
    "job.drop": ("client", "job"),
}


class EventLog:
    """Append-only structured event stream for one process.

    ``path`` may be None for an in-memory log (events accumulate on
    ``self.events`` only — what the unit tests use); with a path, every
    event is additionally written and flushed as one JSONL line.
    """

    enabled = True

    def __init__(self, path=None, worker=None, clock=time.time, pid=None,
                 keep=True):
        self.path = str(path) if path is not None else None
        self.worker = worker
        self.pid = pid if pid is not None else os.getpid()
        self.job = None
        self._clock = clock
        #: in-memory copy of emitted events (disable with keep=False for
        #: long-lived workers that only need the file)
        self.events = [] if keep else None
        self._handle = None
        if self.path is not None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def set_job(self, job):
        """Set (or clear, with None) the job correlation field stamped
        on subsequent events."""
        self.job = job

    def emit(self, kind, **fields):
        """Append one event; returns the event dict."""
        event = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "ts": self._clock(),
            "pid": self.pid,
        }
        if self.worker is not None:
            event["worker"] = self.worker
        if self.job is not None:
            event["job"] = self.job
        event.update(fields)
        if self.events is not None:
            self.events.append(event)
        if self._handle is not None:
            try:
                self._handle.write(json.dumps(event, sort_keys=True,
                                              default=str))
                self._handle.write("\n")
                self._handle.flush()
            except (OSError, ValueError):  # pragma: no cover - disk gone
                pass
        return event

    def close(self):
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "EventLog(worker=%r, path=%r)" % (self.worker, self.path)


def validate_event(event):
    """Check one event against the schema; returns a list of problems
    (empty when conformant).  Unknown kinds are a problem — emitters
    must register their kinds in :data:`EVENT_KINDS` — but unknown
    *extra* fields are not."""
    problems = []
    if not isinstance(event, dict):
        return ["event is not an object: %r" % (event,)]
    for field in ("v", "kind", "ts", "pid"):
        if field not in event:
            problems.append("missing %r" % field)
    if problems:
        return problems
    if event["v"] > EVENT_SCHEMA_VERSION:
        problems.append("schema version %r is newer than %d"
                        % (event["v"], EVENT_SCHEMA_VERSION))
    kind = event["kind"]
    required = EVENT_KINDS.get(kind)
    if required is None:
        problems.append("unknown kind %r" % (kind,))
        return problems
    for field in required:
        if field not in event:
            problems.append("%s missing %r" % (kind, field))
    return problems


def read_events(path, strict=False):
    """Parse a JSONL event file back into a list of event dicts.

    Events from a *newer* schema version are skipped (forward
    compatibility); a truncated final line — the signature of a
    SIGKILLed writer — is ignored rather than raised, unless
    ``strict``.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                if strict:
                    raise ValueError(
                        "%s:%d: bad JSON event line" % (path, lineno)
                    )
                continue  # torn final write from a killed process
            if not isinstance(event, dict):
                if strict:
                    raise ValueError(
                        "%s:%d: event is not an object" % (path, lineno)
                    )
                continue
            if event.get("v", 0) > EVENT_SCHEMA_VERSION:
                continue
            events.append(event)
    return events


# -- the null backend ---------------------------------------------------------


class NullEventLog:
    """EventLog stand-in whose emits are no-ops."""

    enabled = False
    events = ()
    path = None
    worker = None
    job = None

    def set_job(self, job):
        pass

    def emit(self, kind, **fields):
        return None

    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "NullEventLog()"


NULL_EVENTS = NullEventLog()
