"""repro.obs — solver telemetry: metrics, span tracing, trace export.

The paper's performance story is about *why* lazy symbolic derivatives
win — states explored, memo hit rates, sat-check volume — so the solver
carries an :class:`Observability` bundle through every layer:

* ``obs.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/log-scale histograms, cheap enough to stay on by
  default (the default bundle enables it);
* ``obs.tracer`` — a :class:`~repro.obs.tracing.Tracer` producing
  nested spans (``solver.explore``, ``deriv.tree``, ``deriv.meld``,
  ``algebra.sat_check``, ``smt.case_split``, ``graph.update``) with
  JSONL and Chrome ``trace_event`` export, off by default;
* :mod:`repro.obs.profile` — span-stream attribution: collapsed-stack
  output (flamegraph.pl / speedscope) and per-span self-time hotspot
  tables, driving the CLI ``--profile`` flag and the BENCH snapshots.

``Observability.disabled()`` swaps both for no-op backends so
instrumented hot paths cost one attribute lookup per event.
"""

from repro.obs.explain import (
    CERT_SCHEMA_VERSION, CertificateError, CheckResult, ExplainRecorder,
    Explanation, SmtExplanation, check_certificate, explain_pattern,
    explain_witness,
)
from repro.obs.events import (
    EVENT_KINDS, EVENT_SCHEMA_VERSION, EventLog, NULL_EVENTS, NullEventLog,
    read_events, validate_event,
)
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry,
    NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_METRICS, NullMetrics,
)
from repro.obs.profile import (
    collapsed_stacks, hotspots, profile_summary, read_collapsed,
    render_hotspots, write_collapsed,
)
from repro.obs.tracing import (
    NULL_TRACER, NullTracer, Tracer,
    chrome_trace, read_chrome, read_jsonl,
)


class Observability:
    """The bundle threaded through solver, derivatives and algebras.

    The default construction keeps metrics live, tracing off and the
    structured event log off — the recommended always-on configuration.
    """

    __slots__ = ("metrics", "tracer", "events")

    def __init__(self, metrics=None, tracer=None, events=None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = events if events is not None else NULL_EVENTS

    @classmethod
    def disabled(cls):
        """Everything off: every instrument is a shared no-op."""
        return NULL_OBS

    @classmethod
    def tracing(cls):
        """Metrics plus a live tracer (for ``--trace`` style runs)."""
        return cls(tracer=Tracer())

    @property
    def enabled(self):
        return (self.metrics.enabled or self.tracer.enabled
                or self.events.enabled)

    def __repr__(self):
        return "Observability(metrics=%s, tracing=%s, events=%s)" % (
            "on" if self.metrics.enabled else "off",
            "on" if self.tracer.enabled else "off",
            "on" if self.events.enabled else "off",
        )


#: The all-off singleton handed out by :meth:`Observability.disabled`.
NULL_OBS = Observability(
    metrics=NULL_METRICS, tracer=NULL_TRACER, events=NULL_EVENTS,
)


__all__ = [
    "Observability", "NULL_OBS",
    "CERT_SCHEMA_VERSION", "CertificateError", "CheckResult",
    "ExplainRecorder", "Explanation", "SmtExplanation",
    "check_certificate", "explain_pattern", "explain_witness",
    "EventLog", "NullEventLog", "NULL_EVENTS",
    "EVENT_KINDS", "EVENT_SCHEMA_VERSION", "read_events", "validate_event",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "NullMetrics", "NULL_METRICS", "NULL_COUNTER", "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "Tracer", "NullTracer", "NULL_TRACER",
    "chrome_trace", "read_chrome", "read_jsonl",
    "collapsed_stacks", "hotspots", "profile_summary", "read_collapsed",
    "render_hotspots", "write_collapsed",
]
