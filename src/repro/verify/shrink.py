"""Delta-debugging shrinker for failing regexes.

Given a regex and a *failure predicate* (``predicate(regex) -> bool``,
True while the bug still reproduces), :func:`shrink` greedily applies
size-reducing rewrites until no rewrite preserves the failure:

* replace any subterm by one of its children, by epsilon, or by the
  empty language;
* drop members of an ``&``/``|``/concatenation;
* narrow a character class to a single character;
* tighten loop bounds (``lo -> 0``, unbounded ``hi -> lo``,
  ``hi -> lo``) or drop the loop for its body.

Every accepted rewrite strictly decreases a cost (AST size plus the
number of multi-character classes), so the loop terminates; the
result is 1-minimal with respect to this rewrite set (no single
rewrite keeps the failure).  Predicates that crash on a candidate
count as "bug gone" — the shrinker never lets a broken candidate
escape.
"""

from repro.regex.ast import (
    COMPL, CONCAT, INF, INTER, LOOK_KINDS, LOOP, PRED, UNION,
)


def _pred_variants(builder, node, limit=4):
    """Single-character narrowings of a PRED node, when possible.

    ``pick`` only surfaces one member, so peel members off one at a
    time (up to ``limit``) — the failure may hinge on a specific
    character of the class.
    """
    algebra = builder.algebra
    if algebra.is_singleton(node.pred):
        return
    remaining = node.pred
    for _ in range(limit):
        if not algebra.is_sat(remaining):
            return
        try:
            char = algebra.pick(remaining)
        except Exception:
            return
        single = algebra.from_char(char)
        yield builder.pred(single)
        remaining = algebra.diff(remaining, single)


def _nary(builder, kind, parts):
    if kind == CONCAT:
        return builder.concat(parts)
    if kind == UNION:
        return builder.union(parts)
    return builder.inter(parts)


def _local_variants(builder, node):
    """Strictly simpler replacements for one node (not recursive)."""
    yield builder.epsilon
    yield builder.empty
    for child in node.children or ():
        yield child
    if node.kind == PRED:
        yield from _pred_variants(builder, node)
    elif node.kind == LOOP:
        body = node.children[0]
        lo, hi = node.lo, node.hi
        if lo > 0:
            yield builder.loop(body, 0, hi)
            yield builder.loop(body, 1, hi)
        if hi is INF:
            yield builder.loop(body, lo, max(lo, 1))
        elif hi > lo:
            yield builder.loop(body, lo, lo)
    elif node.kind in (CONCAT, UNION, INTER) and node.children:
        parts = node.children
        if len(parts) > 2:
            for i in range(len(parts)):
                yield _nary(
                    builder, node.kind, list(parts[:i] + parts[i + 1:])
                )


def _rebuild(builder, node, index, replacement):
    """``node`` with child ``index`` replaced."""
    parts = list(node.children)
    parts[index] = replacement
    if node.kind == COMPL:
        return builder.compl(parts[0])
    if node.kind in LOOK_KINDS:
        return builder.look(node.kind, parts[0])
    if node.kind == LOOP:
        return builder.loop(parts[0], node.lo, node.hi)
    return _nary(builder, node.kind, parts)


def candidates(builder, regex):
    """All one-rewrite reductions of ``regex`` (any position)."""

    def walk(node):
        # rewrites at this position
        yield from _local_variants(builder, node)
        # rewrites below, re-wrapped
        for index, child in enumerate(node.children or ()):
            for replacement in walk(child):
                if replacement is child:
                    continue
                yield _rebuild(builder, node, index, replacement)

    seen = {regex.uid}
    for candidate in walk(regex):
        if candidate.uid in seen:
            continue
        seen.add(candidate.uid)
        yield candidate


def _cost(builder, regex):
    """Shrink ordering: AST size, breaking ties toward regexes with
    fewer multi-character classes (``[01]`` and ``1`` have the same
    node count, but the singleton is the better reproducer)."""
    algebra = builder.algebra
    wide = sum(
        1 for n in regex.iter_subterms()
        if n.kind == PRED and not algebra.is_singleton(n.pred)
    )
    return regex.size() + wide


def shrink(builder, regex, predicate, max_checks=5000):
    """Greedy fixpoint reduction preserving ``predicate``.

    ``predicate(regex)`` must be True on entry (the caller observed
    the failure); the return value is a regex on which it is still
    True and which no single rewrite can reduce further.  Every
    accepted rewrite strictly decreases :func:`_cost`, so the loop
    terminates.
    """
    current = regex
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        current_cost = _cost(builder, current)
        for candidate in candidates(builder, current):
            if _cost(builder, candidate) >= current_cost:
                continue
            checks += 1
            try:
                still_failing = bool(predicate(candidate))
            except Exception:
                still_failing = False
            if still_failing:
                current = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return current
