"""Seeded, budgeted, pool-parallel verification campaigns.

A campaign draws random EREs from :class:`RegexGen`, runs each through
the cross-engine oracle and the metamorphic identities, and — on the
standard fragment — cross-checks the matcher's leftmost search against
Python's ``re``.  A third stream generates pattern *texts* with
anchors and lookarounds and runs them differentially against Python
``re`` (fullmatch, search start, solver soundness) on the same source
text.  Anything flagged is shrunk to a minimal reproducer
(:mod:`repro.verify.shrink`) and reported; findings whose shrunk
pattern is already frozen in the corpus are *explained*, everything
else is a new bug and fails CI.

Determinism: worker ``i`` of ``jobs`` uses ``seed + i`` and its own
:class:`random.Random`; given the same seed, budget-independent parts
of the stream are reproducible case by case.
"""

import itertools
import random
import re as stdlib_re
import time

from repro.regex import RegexBuilder, parse, to_pattern
from repro.verify.metamorphic import check_identities
from repro.verify.oracle import CrossEngineOracle
from repro.verify.shrink import shrink

DEFAULT_ALPHABET = "ab01"
#: Per-query budgets inside campaigns: small enough to keep case
#: throughput up, large enough that depth<=4 EREs over a 4-letter
#: alphabet essentially never come back unknown.
CASE_FUEL = 120000
CASE_SECONDS = 3.0


class RegexGen:
    """Random EREs over a builder, tuned for oracle duty: every
    operator of the paper's grammar, small depths, a 4-letter
    alphabet so brute-force cross-checks stay cheap."""

    def __init__(self, rng, builder, alphabet=DEFAULT_ALPHABET):
        self.rng = rng
        self.builder = builder
        self.alphabet = alphabet

    def leaf(self):
        rng, builder = self.rng, self.builder
        roll = rng.random()
        if roll < 0.15:
            return builder.epsilon
        if roll < 0.55:
            return builder.char(rng.choice(self.alphabet))
        chars = rng.sample(
            self.alphabet, rng.randint(1, min(3, len(self.alphabet)))
        )
        pred = builder.algebra.from_ranges(
            [(ord(c), ord(c)) for c in chars]
        )
        if rng.random() < 0.3:
            pred = builder.algebra.neg(pred)
        return builder.pred(pred)

    def regex(self, depth):
        rng, builder = self.rng, self.builder
        if depth <= 0:
            return self.leaf()
        roll = rng.random()
        if roll < 0.2:
            return self.leaf()
        if roll < 0.4:
            return builder.concat(
                [self.regex(depth - 1) for _ in range(rng.randint(2, 3))]
            )
        if roll < 0.55:
            return builder.union(
                [self.regex(depth - 1) for _ in range(rng.randint(2, 3))]
            )
        if roll < 0.7:
            return builder.inter(
                [self.regex(depth - 1), self.regex(depth - 1)]
            )
        if roll < 0.82:
            return builder.compl(self.regex(depth - 1))
        lo = rng.randint(0, 2)
        hi = None if rng.random() < 0.3 else lo + rng.randint(0, 2)
        return builder.loop(self.regex(depth - 1), lo, hi)

    def standard_regex(self, depth):
        """No ``&``/``~``: the fragment Python's ``re`` can mirror."""
        rng, builder = self.rng, self.builder
        if depth <= 0:
            return self.leaf_standard()
        roll = rng.random()
        if roll < 0.3:
            return self.leaf_standard()
        if roll < 0.6:
            return builder.concat(
                [self.standard_regex(depth - 1)
                 for _ in range(rng.randint(2, 3))]
            )
        if roll < 0.85:
            return builder.union(
                [self.standard_regex(depth - 1)
                 for _ in range(rng.randint(2, 3))]
            )
        lo = rng.randint(0, 2)
        hi = None if rng.random() < 0.3 else lo + rng.randint(0, 2)
        return builder.loop(self.standard_regex(depth - 1), lo, hi)

    def leaf_standard(self):
        rng, builder = self.rng, self.builder
        roll = rng.random()
        if roll < 0.6:
            return builder.char(rng.choice(self.alphabet))
        chars = rng.sample(
            self.alphabet, rng.randint(1, min(3, len(self.alphabet)))
        )
        return builder.pred(builder.algebra.from_ranges(
            [(ord(c), ord(c)) for c in chars]
        ))

    # -- lookaround stream: pattern *texts* both engines can read ---------

    def fragment_text(self, depth):
        """A pattern string in the fragment Python ``re`` mirrors."""
        rng = self.rng
        if depth <= 0:
            return rng.choice(self.alphabet)
        roll = rng.random()
        if roll < 0.3:
            return rng.choice(self.alphabet)
        if roll < 0.55:
            return "".join(
                self.fragment_text(depth - 1)
                for _ in range(rng.randint(2, 3))
            )
        if roll < 0.75:
            return "(?:%s|%s)" % (
                self.fragment_text(depth - 1), self.fragment_text(depth - 1),
            )
        if roll < 0.92:
            return "(?:%s)%s" % (
                self.fragment_text(depth - 1),
                rng.choice(["*", "+", "?", "{1,2}", "{0,2}"]),
            )
        return self.look_text(depth - 1)

    def look_text(self, depth):
        """One lookaround group; lookbehind bodies stay fixed-width so
        Python ``re`` accepts the pattern too."""
        rng = self.rng
        marker = rng.choice(["(?=", "(?!", "(?<=", "(?<!"])
        if marker in ("(?<=", "(?<!"):
            body = "".join(
                rng.choice(self.alphabet)
                for _ in range(rng.randint(1, 2))
            )
        else:
            body = self.fragment_text(depth)
        return marker + body + ")"

    def anchor_text(self, leading):
        anchors = ["\\b", "\\B"]
        anchors.extend(["^", "\\A"] if leading else ["$", "\\Z"])
        return self.rng.choice(anchors)

    def lookaround_pattern(self, depth=2):
        """A pattern text mixing consuming parts with anchors and
        lookarounds, in the fragment Python ``re`` can mirror."""
        rng = self.rng
        parts = []
        if rng.random() < 0.6:
            parts.append(
                self.anchor_text(True) if rng.random() < 0.5
                else self.look_text(depth)
            )
        parts.append(self.fragment_text(depth))
        if rng.random() < 0.4:
            parts.append(
                self.anchor_text(rng.random() < 0.5) if rng.random() < 0.5
                else self.look_text(max(depth - 1, 0))
            )
            parts.append(self.fragment_text(max(depth - 1, 0)))
        if rng.random() < 0.6:
            parts.append(
                self.anchor_text(False) if rng.random() < 0.5
                else self.look_text(depth)
            )
        return "".join(parts)


def solver_findings(builder, regex, fuel=CASE_FUEL, seconds=CASE_SECONDS):
    """Oracle disagreements plus metamorphic violations, as dicts."""
    oracle = CrossEngineOracle(builder)
    found = [d.to_dict() for d in oracle.check(regex, fuel, seconds)]
    found.extend(
        v.to_dict()
        for v in check_identities(builder, regex, fuel=fuel, seconds=seconds)
    )
    return found


def search_mismatch(builder, regex, texts):
    """The first text where matcher search start/existence disagrees
    with Python ``re`` on the standard fragment, or None."""
    from repro.matcher import RegexMatcher

    pattern = to_pattern(regex, builder.algebra)
    try:
        compiled = stdlib_re.compile(pattern)
    except stdlib_re.error:
        return None
    matcher = RegexMatcher(builder, regex)
    for text in texts:
        ours = matcher.search(text)
        theirs = compiled.search(text)
        if (ours is None) != (theirs is None):
            return {
                "kind": "search-existence", "text": text,
                "ours": None if ours is None else list(ours.span()),
                "theirs": None if theirs is None else list(theirs.span()),
            }
        if ours is not None and ours.start != theirs.start():
            return {
                "kind": "search-start", "text": text,
                "ours": list(ours.span()),
                "theirs": list(theirs.span()),
            }
    return None


def lookaround_mismatch(builder, pattern, texts, fuel=CASE_FUEL,
                        seconds=CASE_SECONDS):
    """First failure of the lookaround differential for one pattern
    text, or None.

    Three checks, all against Python ``re`` on the *same source text*:
    fullmatch agreement via the reference semantics, search agreement
    (existence and start position — our reference search returns the
    smallest end, not the greedy one), and solver soundness (an unsat
    verdict with an observed member, or a sat witness Python rejects,
    is a bug; unknown is not).
    """
    import sys

    from repro.regex.semantics import Matcher
    from repro.solver import Budget, RegexSolver

    try:
        compiled = stdlib_re.compile(pattern)
    except stdlib_re.error:
        return None
    regex = parse(builder, pattern)
    sem = Matcher(builder.algebra)
    # before 3.12, Python's \B never matches the empty string; 3.12+
    # (and this engine, where \B is exactly the negation of \b) says
    # it does — skip the one known-divergent input on old interpreters
    skip_empty = "\\B" in pattern and sys.version_info < (3, 12)
    member_seen = None
    for text in texts:
        if text == "" and skip_empty:
            continue
        ours_full = sem.matches(regex, text)
        theirs_full = compiled.fullmatch(text) is not None
        if ours_full != theirs_full:
            return {
                "kind": "look-fullmatch", "text": text,
                "ours": ours_full, "theirs": theirs_full,
            }
        if theirs_full and member_seen is None:
            member_seen = text
        ours_span = sem.search(regex, text)
        theirs_span = compiled.search(text)
        if (ours_span is None) != (theirs_span is None):
            return {
                "kind": "look-search-existence", "text": text,
                "ours": None if ours_span is None else list(ours_span),
                "theirs": None if theirs_span is None
                else list(theirs_span.span()),
            }
        if ours_span is not None and ours_span[0] != theirs_span.start():
            return {
                "kind": "look-search-start", "text": text,
                "ours": list(ours_span),
                "theirs": list(theirs_span.span()),
            }
    solver = RegexSolver(builder)
    verdict = solver.is_satisfiable(
        regex, Budget(fuel=fuel, seconds=seconds)
    )
    if verdict.status == "unsat" and member_seen is not None:
        return {
            "kind": "look-solver-unsat", "text": member_seen,
            "detail": "solver says unsat but %r is a member" % member_seen,
        }
    if verdict.status == "sat" and verdict.witness is not None \
            and not (verdict.witness == "" and skip_empty) \
            and compiled.fullmatch(verdict.witness) is None:
        return {
            "kind": "look-solver-witness", "text": verdict.witness,
            "detail": "sat witness %r rejected by Python re"
            % verdict.witness,
        }
    return None


def _fresh_builder(alphabet):
    from repro.alphabet import IntervalAlgebra

    max_char = max(ord(c) for c in alphabet + "z")
    return RegexBuilder(IntervalAlgebra(max(max_char, 127)))


def _sample_texts(rng, alphabet, count=24, max_len=7):
    extra = alphabet + "z"
    texts = [""]
    for _ in range(count):
        n = rng.randint(0, max_len)
        texts.append("".join(rng.choice(extra) for _ in range(n)))
    return texts


def run_shard(args):
    """One worker's share of a campaign.  ``args`` is a tuple so the
    function can cross a multiprocessing boundary."""
    (seed, budget_seconds, fuel, seconds, alphabet, max_cases) = args
    rng = random.Random(seed)
    started = time.monotonic()
    cases = 0
    findings = []
    while time.monotonic() - started < budget_seconds:
        if max_cases is not None and cases >= max_cases:
            break
        builder = _fresh_builder(alphabet)
        gen = RegexGen(rng, builder, alphabet)
        cases += 1
        if cases % 4 == 0:
            # matcher stream: leftmost search vs Python re
            regex = gen.standard_regex(rng.randint(1, 3))
            texts = _sample_texts(rng, alphabet)
            mismatch = search_mismatch(builder, regex, texts)
            if mismatch is None:
                continue
            text = mismatch["text"]
            shrunk = shrink(
                builder, regex,
                lambda r: search_mismatch(builder, r, [text]) is not None,
            )
            findings.append({
                "stream": "search",
                "pattern": to_pattern(regex, builder.algebra),
                "shrunk": to_pattern(shrunk, builder.algebra),
                "text": text,
                "details": [mismatch],
                "seed": seed,
                "case": cases,
            })
            continue
        if cases % 4 == 2:
            # lookaround stream: anchors and assertions differentially
            # against Python re on the same pattern text
            pattern = gen.lookaround_pattern(rng.randint(1, 2))
            texts = _sample_texts(rng, alphabet)
            mismatch = lookaround_mismatch(
                builder, pattern, texts, fuel, seconds
            )
            if mismatch is None:
                continue
            text = mismatch.get("text") or ""
            regex = parse(builder, pattern)
            shrunk = shrink(
                builder, regex,
                lambda r: lookaround_mismatch(
                    builder, to_pattern(r, builder.algebra), [text],
                    fuel, seconds,
                ) is not None,
            )
            findings.append({
                "stream": "lookaround",
                "pattern": pattern,
                "shrunk": to_pattern(shrunk, builder.algebra),
                "text": text,
                "details": [mismatch],
                "seed": seed,
                "case": cases,
            })
            continue
        # solver stream: oracle + metamorphic
        regex = gen.regex(rng.randint(1, 4))
        found = solver_findings(builder, regex, fuel, seconds)
        if not found:
            continue
        shrunk = shrink(
            builder, regex,
            lambda r: bool(solver_findings(builder, r, fuel, seconds)),
        )
        findings.append({
            "stream": "solver",
            "pattern": to_pattern(regex, builder.algebra),
            "shrunk": to_pattern(shrunk, builder.algebra),
            "details": found,
            "seed": seed,
            "case": cases,
        })
    return {"seed": seed, "cases": cases, "findings": findings}


def run_campaign(seed=0, budget_seconds=60.0, jobs=2, fuel=CASE_FUEL,
                 seconds=CASE_SECONDS, alphabet=DEFAULT_ALPHABET,
                 max_cases=None, corpus_dir=None):
    """Run a campaign; returns a JSON-ready report.

    ``jobs == 1`` runs in-process (deterministic, debuggable); more
    jobs fan shards over a process pool, worker ``i`` seeded with
    ``seed + i``.  A finding is *explained* when its shrunk pattern is
    already frozen in the corpus; the report's ``unexplained`` count
    is the CI gate.
    """
    shard_args = [
        (seed + i, budget_seconds, fuel, seconds, alphabet, max_cases)
        for i in range(max(jobs, 1))
    ]
    if len(shard_args) == 1:
        shards = [run_shard(shard_args[0])]
    else:
        import multiprocessing

        with multiprocessing.Pool(processes=len(shard_args)) as pool:
            shards = pool.map(run_shard, shard_args)

    from repro.verify.corpus import load_all

    known_patterns = set()
    for entry in load_all(corpus_dir):
        for key in ("pattern", "shrunk"):
            if key in entry:
                known_patterns.add(entry[key])

    findings = list(itertools.chain.from_iterable(
        shard["findings"] for shard in shards
    ))
    unexplained = [
        f for f in findings if f["shrunk"] not in known_patterns
    ]
    return {
        "seed": seed,
        "jobs": len(shard_args),
        "budget_seconds": budget_seconds,
        "cases": sum(shard["cases"] for shard in shards),
        "findings": findings,
        "unexplained": len(unexplained),
    }
