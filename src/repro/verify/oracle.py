"""The cross-engine oracle: four deciders, one question.

A disagreement between any two engines on a concrete verdict, or a
sat witness that the reference semantics rejects, is a bug *somewhere*
— the oracle does not know where, it only knows the implementations
cannot all be right.  Campaigns shrink whatever the oracle flags and
freeze it into the corpus.
"""

from repro.matcher import RegexMatcher
from repro.obs import NULL_OBS
from repro.regex.semantics import Matcher
from repro.solver import Budget, RegexSolver
from repro.solver.baselines import (
    AntimirovSolver, EagerAutomataSolver, MintermSolver,
)

#: The engine lineup; names are stable identifiers used in corpus
#: entries and reports.
ENGINE_NAMES = ("dz3", "eager", "antimirov", "minterm")


def make_engines(builder, obs=None):
    """Fresh instances of all four engines over one builder.

    The derivative engine runs with provenance recording on: every
    concrete verdict it contributes to a campaign then carries a
    certificate the oracle re-checks independently.
    """
    obs = obs or NULL_OBS
    return {
        "dz3": RegexSolver(builder, obs=obs, explain=True),
        "eager": EagerAutomataSolver(builder, obs=obs),
        "antimirov": AntimirovSolver(builder, obs=obs),
        "minterm": MintermSolver(builder, obs=obs),
    }


class Disagreement:
    """One oracle finding.

    ``kind`` is ``"verdict"`` (two engines returned opposite concrete
    statuses), ``"witness"`` (an engine's sat witness is not in the
    language, per the reference semantics), ``"matcher"`` (the
    semantics and the DFA matcher disagree on a witness), or
    ``"certificate"`` (an engine's verdict certificate was rejected by
    the independent checker — the verdict may agree with everyone and
    still rest on a broken proof).  ``detail`` is a human-readable
    sentence; ``verdicts`` maps engine name to status.
    """

    __slots__ = ("kind", "detail", "verdicts", "witnesses")

    def __init__(self, kind, detail, verdicts=None, witnesses=None):
        self.kind = kind
        self.detail = detail
        self.verdicts = dict(verdicts or {})
        self.witnesses = dict(witnesses or {})

    def to_dict(self):
        return {
            "kind": self.kind,
            "detail": self.detail,
            "verdicts": dict(self.verdicts),
            "witnesses": dict(self.witnesses),
        }

    def __repr__(self):
        return "Disagreement(%s: %s)" % (self.kind, self.detail)


class CrossEngineOracle:
    """Runs one regex through every engine and cross-checks."""

    def __init__(self, builder, obs=None, engines=None):
        self.builder = builder
        self.obs = obs or NULL_OBS
        self.engines = engines or make_engines(builder, self.obs)
        self.semantics = Matcher(builder.algebra)
        scope = self.obs.metrics.scope("verify")
        self._c_checked = scope.counter("oracle_checked")
        self._c_flagged = scope.counter("oracle_flagged")

    def budget(self, fuel=200000, seconds=5.0):
        return Budget(fuel=fuel, seconds=seconds)

    def check(self, regex, fuel=200000, seconds=5.0):
        """All oracle findings for one regex (empty list = consistent).

        Engines that answer ``unknown`` (budget, state caps) are
        excluded from the diff — an incomplete engine is not a wrong
        engine.
        """
        self._c_checked.inc()
        verdicts = {}
        witnesses = {}
        explanations = {}
        for name, engine in self.engines.items():
            result = engine.is_satisfiable(
                regex, self.budget(fuel, seconds)
            )
            verdicts[name] = result.status
            if result.witness is not None:
                witnesses[name] = result.witness
            explanation = getattr(result, "explanation", None)
            if explanation is not None and explanation.certifiable():
                explanations[name] = explanation

        findings = []
        # certificate-check every concrete verdict that carries one:
        # an agreed-upon verdict resting on a broken proof is a finding
        for name, explanation in sorted(explanations.items()):
            outcome = explanation.check()
            if not outcome.ok:
                findings.append(Disagreement(
                    "certificate",
                    "%s %s certificate rejected by the independent "
                    "checker: %s" % (
                        name, explanation.kind,
                        "; ".join(outcome.errors[:3]),
                    ),
                    verdicts, witnesses,
                ))
        concrete = {n: s for n, s in verdicts.items()
                    if s in ("sat", "unsat")}
        if len(set(concrete.values())) > 1:
            findings.append(Disagreement(
                "verdict",
                "engines disagree: %s" % ", ".join(
                    "%s=%s" % kv for kv in sorted(concrete.items())
                ),
                verdicts, witnesses,
            ))
        for name, witness in sorted(witnesses.items()):
            if verdicts.get(name) != "sat":
                continue
            if not self.semantics.matches(regex, witness):
                findings.append(Disagreement(
                    "witness",
                    "%s witness %r rejected by the reference semantics"
                    % (name, witness),
                    verdicts, witnesses,
                ))
            elif regex.has_look:
                # the DFA matcher has no sound derivative rule for
                # zero-width assertions; the reference semantics above
                # is the only witness check available
                continue
            elif not RegexMatcher(self.builder, regex).fullmatch(witness):
                findings.append(Disagreement(
                    "matcher",
                    "%s witness %r accepted by the semantics but "
                    "rejected by the DFA matcher" % (name, witness),
                    verdicts, witnesses,
                ))
        if findings:
            self._c_flagged.inc()
        return findings
