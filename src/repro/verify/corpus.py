"""The frozen-failure corpus under ``tests/corpus/``.

Every bug the verification campaigns find is shrunk and frozen as one
JSON file here; the tier-1 suite replays every entry forever after
(``make corpus-replay``), so a fixed bug cannot silently return.

Entry schema (one JSON object per file)::

    {
      "id":          stable slug, also the file name,
      "kind":        "search" | "sat" | "smt2" | "print",
      "description": what was wrong, one sentence,
      "found_by":    how it was found (campaign seed, by hand, ...),
      ... kind-specific payload and expectation ...
    }

Kinds:

* ``search`` — ``pattern``/``text``/``expected`` span: the matcher's
  leftmost-shortest search must return exactly that span;
* ``sat`` — ``pattern``/``expected`` status: every engine that
  answers concretely must answer ``expected``, with valid witnesses;
* ``smt2`` — ``script``/``expected``: the mini-SMT front end on an
  SMT-LIB script;
* ``print`` — ``pattern`` (or a ``repeat`` spec for deep nesting):
  parse, print, reparse to the identical node, serialize to SMT-LIB,
  compute structural bounds and one simplification pass — none of
  which may crash, however deep the term.
"""

import json
import os

from repro.solver import Budget

#: Replay budgets: generous for a CI box, small enough that a frozen
#: entry can never stall the tier-1 suite.
REPLAY_FUEL = 300000
REPLAY_SECONDS = 10.0


def default_corpus_dir():
    """``tests/corpus/`` resolved relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "corpus")


def freeze(entry, directory=None):
    """Write one corpus entry; returns the file path."""
    directory = directory or default_corpus_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "%s.json" % entry["id"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_all(directory=None):
    """All corpus entries, sorted by id."""
    directory = directory or default_corpus_dir()
    entries = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as handle:
            entries.append(json.load(handle))
    return entries


def entry_pattern(entry):
    """The concrete pattern text of an entry (expands ``repeat``)."""
    if "repeat" in entry:
        spec = entry["repeat"]
        return (
            spec["prefix"] * spec["count"]
            + spec["core"]
            + spec["suffix"] * spec["count"]
        )
    return entry["pattern"]


def replay_entry(entry, builder=None):
    """Replay one entry.  Returns ``(ok, detail)``."""
    from repro.alphabet import IntervalAlgebra
    from repro.regex import RegexBuilder

    builder = builder or RegexBuilder(IntervalAlgebra(0x110000))
    kind = entry["kind"]
    if kind == "search":
        return _replay_search(builder, entry)
    if kind == "sat":
        return _replay_sat(builder, entry)
    if kind == "smt2":
        return _replay_smt2(builder, entry)
    if kind == "print":
        return _replay_print(builder, entry)
    return False, "unknown corpus kind %r" % kind


def _replay_search(builder, entry):
    from repro.matcher import RegexMatcher
    from repro.regex import parse

    matcher = RegexMatcher(builder, parse(builder, entry["pattern"]))
    found = matcher.search(entry["text"])
    expected = entry["expected"]
    got = None if found is None else list(found.span())
    if got != expected:
        return False, "search(%r, %r) returned %s, expected %s" % (
            entry["pattern"], entry["text"], got, expected,
        )
    return True, "span %s" % got


def _replay_sat(builder, entry):
    from repro.regex import parse
    from repro.regex.semantics import Matcher
    from repro.verify.oracle import make_engines

    regex = parse(builder, entry["pattern"])
    expected = entry["expected"]
    semantics = Matcher(builder.algebra)
    for name, engine in make_engines(builder).items():
        result = engine.is_satisfiable(
            regex, Budget(fuel=REPLAY_FUEL, seconds=REPLAY_SECONDS)
        )
        if result.status not in ("sat", "unsat"):
            continue
        if result.status != expected:
            return False, "%s answered %s for %r, expected %s" % (
                name, result.status, entry["pattern"], expected,
            )
        if result.status == "sat" and result.witness is not None and \
                not semantics.matches(regex, result.witness):
            return False, "%s produced invalid witness %r for %r" % (
                name, result.witness, entry["pattern"],
            )
    return True, "all engines agree on %s" % expected


def _replay_smt2(builder, entry):
    from repro.smtlib.parser import parse_script
    from repro.solver import SmtSolver
    from repro.solver import formula as F

    script = parse_script(builder, entry["script"])
    assertions = list(script.assertions)
    if not assertions:
        return False, "script has no assertions"
    formula = assertions[0] if len(assertions) == 1 else F.And(assertions)
    result = SmtSolver(builder).solve(
        formula, Budget(fuel=REPLAY_FUEL, seconds=REPLAY_SECONDS)
    )
    if result.status != entry["expected"]:
        return False, "smt solver answered %s, expected %s" % (
            result.status, entry["expected"],
        )
    return True, "solver answered %s" % result.status


def _replay_print(builder, entry):
    from repro.analysis.lengths import structural_max, structural_min
    from repro.regex import parse, to_pattern
    from repro.regex.simplify import simplify
    from repro.smtlib.writer import regex_to_smtlib

    pattern = entry_pattern(entry)
    regex = parse(builder, pattern)
    text = to_pattern(regex, builder.algebra)
    back = parse(builder, text)
    if back is not regex:
        return False, "print/reparse is not the identity"
    regex_to_smtlib(regex, builder.algebra)
    structural_min(regex)
    structural_max(regex)
    simplify(builder, regex)
    return True, "printed and reparsed %d chars" % len(text)
