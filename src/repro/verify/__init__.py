"""repro.verify — cross-engine differential verification.

The solver stack has four independent deciders for the same question
(dZ3's lazy derivative search and the eager-automata, Antimirov and
minterm baselines), a reference semantics, and a matcher.  This
package turns that redundancy into an oracle:

* :mod:`repro.verify.oracle` — solve each constraint with every
  engine, diff the verdicts, and validate every sat witness against
  the reference semantics and the matcher;
* :mod:`repro.verify.metamorphic` — identities that need no second
  engine: the derivative expansion of sat, reversal invariance,
  Boolean-algebra laws, and length-analysis consistency;
* :mod:`repro.verify.shrink` — a delta-debugging reducer that turns a
  failing regex into a minimal reproducer;
* :mod:`repro.verify.corpus` — frozen reproducers under
  ``tests/corpus/``, replayed by the tier-1 suite forever after;
* :mod:`repro.verify.campaign` — the seeded, budgeted, pool-parallel
  fuzz driver behind ``repro verify`` and ``scripts/verify_ci.py``.
"""

from repro.verify.oracle import CrossEngineOracle, Disagreement
from repro.verify.metamorphic import check_identities
from repro.verify.shrink import shrink
from repro.verify.corpus import (
    default_corpus_dir, freeze, load_all, replay_entry,
)
from repro.verify.campaign import RegexGen, run_campaign

__all__ = [
    "CrossEngineOracle",
    "Disagreement",
    "check_identities",
    "shrink",
    "freeze",
    "load_all",
    "replay_entry",
    "default_corpus_dir",
    "RegexGen",
    "run_campaign",
]
