"""Metamorphic identities: single-engine self-consistency checks.

Each identity relates a solver answer on a regex to the answer on a
*transformed* regex that provably has the same (or a determined)
answer.  A violated identity is a bug with no second engine needed:

* **derivative expansion** (Theorem 4.3): ``sat(R)`` iff ``R`` is
  nullable or some satisfiable derivative branch is sat;
* **reversal**: ``L(rev R)`` is the reversed language, so ``sat``
  status, emptiness, and length windows coincide;
* **Boolean laws** on the solver (not just the builder): ``R & ~R``
  is unsat, ``R | ~R`` is universal, and De Morgan duals are
  equivalent;
* **length consistency**: a witness's length lies inside the
  structural ``[min, max]`` bounds of :mod:`repro.analysis.lengths`.

Returns :class:`Violation` records, shaped like oracle findings so
campaigns treat the two streams uniformly.
"""

from repro.analysis.lengths import (
    NO_MEMBER, UNBOUNDED, structural_max, structural_min,
)
from repro.derivatives.condtree import DerivativeEngine
from repro.regex.transform import reverse
from repro.solver import Budget, RegexSolver


class Violation:
    """A failed identity: ``identity`` names it, ``detail`` explains."""

    __slots__ = ("identity", "detail")

    def __init__(self, identity, detail):
        self.identity = identity
        self.detail = detail

    def to_dict(self):
        return {"identity": self.identity, "detail": self.detail}

    def __repr__(self):
        return "Violation(%s: %s)" % (self.identity, self.detail)


def check_identities(builder, regex, solver=None, fuel=200000, seconds=5.0):
    """All identity violations for one regex (empty list = clean).

    Identities are only *checked* when both sides produced concrete
    answers inside the budget; unknowns are skipped, never flagged.
    """
    solver = solver or RegexSolver(builder)
    budget = lambda: Budget(fuel=fuel, seconds=seconds)
    violations = []

    def sat_status(r):
        return solver.is_satisfiable(r, budget())

    base = sat_status(regex)
    if base.status not in ("sat", "unsat"):
        return violations

    # -- derivative expansion: sat(R) <=> nullable(R) or some branch sat
    # (skipped for zero-width assertions: the condtree engine has no
    # sound derivative rule for them, by design)
    algebra = builder.algebra
    engine = DerivativeEngine(builder)
    expanded = None
    if regex.has_look:
        expanded = None
    elif regex.nullable:
        expanded = "sat"
    else:
        expanded = "unsat"
        for guard, leaves in engine.transitions(regex):
            if not algebra.is_sat(guard):
                continue
            branch = sat_status(builder.union(list(leaves)))
            if branch.status == "sat":
                expanded = "sat"
                break
            if branch.status not in ("sat", "unsat"):
                expanded = None  # a branch timed out: inconclusive
                break
    if expanded is not None and expanded != base.status:
        violations.append(Violation(
            "derivative-expansion",
            "sat(R)=%s but nullable/derivative expansion says %s"
            % (base.status, expanded),
        ))

    # -- reversal invariance
    reversed_regex = reverse(builder, regex)
    rev = sat_status(reversed_regex)
    if rev.status in ("sat", "unsat") and rev.status != base.status:
        violations.append(Violation(
            "reverse", "sat(R)=%s but sat(rev R)=%s"
            % (base.status, rev.status),
        ))

    # -- Boolean laws through the solver
    contradiction = sat_status(builder.inter([regex, builder.compl(regex)]))
    if contradiction.status == "sat":
        violations.append(Violation(
            "compl-inter", "R & ~R reported sat (witness %r)"
            % (contradiction.witness,),
        ))
    excluded_middle = sat_status(builder.union([regex, builder.compl(regex)]))
    if excluded_middle.status == "unsat":
        violations.append(Violation(
            "compl-union", "R | ~R reported unsat",
        ))

    # -- De Morgan: ~(R & S) == ~R | ~S with S = rev R (an arbitrary
    # second operand that costs nothing to build)
    other = reversed_regex
    left = builder.compl(builder.inter([regex, other]))
    right = builder.union(
        [builder.compl(regex), builder.compl(other)]
    )
    de_morgan = solver.equivalent(left, right, budget())
    if de_morgan.status == "unsat":
        violations.append(Violation(
            "de-morgan",
            "~(R & S) != ~R | ~S, distinguished by %r"
            % (de_morgan.witness,),
        ))

    # -- length-analysis consistency (structural bounds are undefined
    # for zero-width assertions and refuse them with a typed error)
    if regex.has_look:
        return violations
    low, high = structural_min(regex), structural_max(regex)
    if base.status == "sat":
        if low is NO_MEMBER:
            violations.append(Violation(
                "length-min",
                "sat regex but structural_min reports no member",
            ))
        elif base.witness is not None:
            n = len(base.witness)
            if n < low:
                violations.append(Violation(
                    "length-min",
                    "witness length %d below structural minimum %d"
                    % (n, low),
                ))
            if high is not NO_MEMBER and high is not UNBOUNDED and n > high:
                violations.append(Violation(
                    "length-max",
                    "witness length %d above structural maximum %s"
                    % (n, high),
                ))
    return violations
