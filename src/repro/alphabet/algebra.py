"""Effective Boolean algebras over a character domain (paper, Section 3).

An *effective Boolean algebra* is a tuple ``(D, Psi, [[_]], bot, top,
or, and, not)`` where ``Psi`` is a set of predicates closed under the
Boolean connectives, ``[[_]]`` maps predicates to subsets of the domain
``D``, and satisfiability of predicates is decidable.

Every concrete algebra in this package is additionally *extensional*:
equivalent predicates are represented by the same canonical object, so
semantic checks like ``phi /\\ psi == bot`` reduce to structural ones.
This is what keeps the "clean conditional regex" machinery of Section 4
cheap.

Concrete implementations:

* :class:`repro.alphabet.intervals.IntervalAlgebra` — codepoint
  interval sets (the default; models Z3's Unicode character theory).
* :class:`repro.alphabet.bitset.BitsetAlgebra` — tiny finite alphabets
  encoded as machine-integer bitmasks (handy for exhaustive testing).
* :class:`repro.alphabet.bdd.BDDAlgebra` — binary decision diagrams
  over the bit encoding of codepoints (models the BDD representation
  used by dZ3 / MONA-style transition sharing).
"""

from abc import ABC, abstractmethod

from repro.errors import AlgebraError


class BooleanAlgebra(ABC):
    """Abstract effective Boolean algebra over a character domain.

    Subclasses choose the predicate representation.  Predicates are
    opaque values as far as clients are concerned; only the operations
    below may be used to combine or inspect them.
    """

    # -- The two distinguished predicates ---------------------------------

    @property
    @abstractmethod
    def bot(self):
        """The predicate denoting the empty set."""

    @property
    @abstractmethod
    def top(self):
        """The predicate denoting the whole domain."""

    # -- Boolean connectives ----------------------------------------------

    @abstractmethod
    def conj(self, phi, psi):
        """Conjunction: ``[[conj(phi, psi)]] = [[phi]] & [[psi]]``."""

    @abstractmethod
    def disj(self, phi, psi):
        """Disjunction: ``[[disj(phi, psi)]] = [[phi]] | [[psi]]``."""

    @abstractmethod
    def neg(self, phi):
        """Negation: ``[[neg(phi)]] = D \\ [[phi]]``."""

    # -- Decision problems --------------------------------------------------

    @abstractmethod
    def is_sat(self, phi):
        """True iff ``[[phi]]`` is nonempty."""

    @abstractmethod
    def is_valid(self, phi):
        """True iff ``[[phi]] = D``."""

    @abstractmethod
    def member(self, char, phi):
        """True iff ``char in [[phi]]``."""

    @abstractmethod
    def pick(self, phi):
        """Return some element of ``[[phi]]``.

        Raises :class:`AlgebraError` if ``phi`` is unsatisfiable.
        Implementations prefer printable characters when available so
        that generated witnesses are readable.
        """

    # -- Construction --------------------------------------------------------

    @abstractmethod
    def from_char(self, char):
        """Singleton predicate ``{char}``."""

    @abstractmethod
    def from_ranges(self, ranges):
        """Predicate for a union of inclusive codepoint ranges.

        ``ranges`` is an iterable of ``(lo, hi)`` pairs of codepoints
        (or single characters); the result denotes their union.
        """

    # -- Derived operations (shared implementations) -------------------------

    def diff(self, phi, psi):
        """Set difference ``[[phi]] \\ [[psi]]``."""
        return self.conj(phi, self.neg(psi))

    def xor(self, phi, psi):
        """Symmetric difference."""
        return self.disj(self.diff(phi, psi), self.diff(psi, phi))

    def conj_all(self, phis):
        """Conjunction of an iterable of predicates (``top`` if empty)."""
        result = self.top
        for phi in phis:
            result = self.conj(result, phi)
            if result == self.bot:
                break
        return result

    def disj_all(self, phis):
        """Disjunction of an iterable of predicates (``bot`` if empty)."""
        result = self.bot
        for phi in phis:
            result = self.disj(result, phi)
            if result == self.top:
                break
        return result

    def equiv(self, phi, psi):
        """Semantic equivalence.  Extensional algebras make this ``==``."""
        return phi == psi

    def implies(self, phi, psi):
        """True iff ``[[phi]]`` is a subset of ``[[psi]]``."""
        return not self.is_sat(self.diff(phi, psi))

    def is_singleton(self, phi):
        """True iff ``[[phi]]`` contains exactly one character."""
        count = self.count(phi)
        return count == 1

    def count(self, phi):
        """Number of characters in ``[[phi]]`` (may be expensive)."""
        raise NotImplementedError

    def require_sat(self, phi):
        """Raise :class:`AlgebraError` unless ``phi`` is satisfiable."""
        if not self.is_sat(phi):
            raise AlgebraError("predicate is unsatisfiable: %r" % (phi,))
