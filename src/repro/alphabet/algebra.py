"""Effective Boolean algebras over a character domain (paper, Section 3).

An *effective Boolean algebra* is a tuple ``(D, Psi, [[_]], bot, top,
or, and, not)`` where ``Psi`` is a set of predicates closed under the
Boolean connectives, ``[[_]]`` maps predicates to subsets of the domain
``D``, and satisfiability of predicates is decidable.

Every concrete algebra in this package is additionally *extensional*:
equivalent predicates are represented by the same canonical object, so
semantic checks like ``phi /\\ psi == bot`` reduce to structural ones.
This is what keeps the "clean conditional regex" machinery of Section 4
cheap.

Concrete implementations:

* :class:`repro.alphabet.intervals.IntervalAlgebra` — codepoint
  interval sets (the default; models Z3's Unicode character theory).
* :class:`repro.alphabet.bitset.BitsetAlgebra` — tiny finite alphabets
  encoded as machine-integer bitmasks (handy for exhaustive testing).
* :class:`repro.alphabet.bdd.BDDAlgebra` — binary decision diagrams
  over the bit encoding of codepoints (models the BDD representation
  used by dZ3 / MONA-style transition sharing).
"""

from abc import ABC, abstractmethod

from repro.errors import AlgebraError
from repro.obs.tracing import NULL_TRACER


class BooleanAlgebra(ABC):
    """Abstract effective Boolean algebra over a character domain.

    Subclasses choose the predicate representation.  Predicates are
    opaque values as far as clients are concerned; only the operations
    below may be used to combine or inspect them.
    """

    # -- telemetry hooks ----------------------------------------------------
    #
    # Counting stays on always: concrete algebras bump the plain ints
    # ``_op_count`` in conj/disj/neg and ``_sat_count`` in
    # is_sat/is_valid — a bare ``+=`` is cheaper than any instrument
    # call at predicate-operation frequencies.  ``bind_metrics``
    # remembers a registry so ``sync_metrics`` can publish the totals;
    # a *live* tracer additionally shadows ``is_sat`` with a
    # span-emitting wrapper, so untraced runs pay nothing for it.

    _op_count = 0
    _sat_count = 0
    _metrics = None
    _tracer = NULL_TRACER

    def bind_metrics(self, registry, tracer=None):
        """Attach this algebra to a :class:`~repro.obs.metrics.
        MetricsRegistry` (``algebra`` scope) and optionally a tracer."""
        self._metrics = registry
        if tracer is not None and tracer.enabled:
            self._tracer = tracer
            inner = type(self).is_sat

            def traced_is_sat(phi, _inner=inner, _self=self, _span=tracer.span):
                with _span("algebra.sat_check"):
                    return _inner(_self, phi)

            self.is_sat = traced_is_sat
        return self

    def sync_metrics(self):
        """Publish the operation/sat-check totals into the bound
        registry (no-op when unbound or metrics are disabled)."""
        if self._metrics is None or not self._metrics.enabled:
            return
        scope = self._metrics.scope("algebra")
        scope.counter("ops").value = self._op_count
        scope.counter("sat_checks").value = self._sat_count

    @property
    def op_count(self):
        """Boolean connective applications on this algebra."""
        return self._op_count

    @property
    def sat_check_count(self):
        """``is_sat``/``is_valid`` decisions on this algebra."""
        return self._sat_count

    # -- The two distinguished predicates ---------------------------------

    @property
    @abstractmethod
    def bot(self):
        """The predicate denoting the empty set."""

    @property
    @abstractmethod
    def top(self):
        """The predicate denoting the whole domain."""

    # -- Boolean connectives ----------------------------------------------

    @abstractmethod
    def conj(self, phi, psi):
        """Conjunction: ``[[conj(phi, psi)]] = [[phi]] & [[psi]]``."""

    @abstractmethod
    def disj(self, phi, psi):
        """Disjunction: ``[[disj(phi, psi)]] = [[phi]] | [[psi]]``."""

    @abstractmethod
    def neg(self, phi):
        """Negation: ``[[neg(phi)]] = D \\ [[phi]]``."""

    # -- Decision problems --------------------------------------------------

    @abstractmethod
    def is_sat(self, phi):
        """True iff ``[[phi]]`` is nonempty."""

    @abstractmethod
    def is_valid(self, phi):
        """True iff ``[[phi]] = D``."""

    @abstractmethod
    def member(self, char, phi):
        """True iff ``char in [[phi]]``.

        Characters outside the domain ``D`` are in no predicate's
        denotation, so ``member`` returns False for them — never an
        error (an astral-plane character fed to a BMP algebra is a
        non-match, not a crash).
        """

    def in_domain(self, char):
        """True iff ``char`` is an element of the domain ``D``.

        Matching entry points must check this *before* structural
        evaluation: languages are subsets of ``D*``, so a string with
        an out-of-domain character is in no language over ``D`` — not
        even a complemented one (complement is relative to ``D*``).
        Predicate-level ``member`` checks alone cannot enforce this,
        because valid predicates (e.g. ``.``) are short-circuited to
        unconditional branches during derivative construction.
        """
        return True

    @abstractmethod
    def pick(self, phi):
        """Return some element of ``[[phi]]``.

        Raises :class:`AlgebraError` if ``phi`` is unsatisfiable.
        Implementations prefer printable characters when available so
        that generated witnesses are readable.
        """

    # -- Construction --------------------------------------------------------

    @abstractmethod
    def from_char(self, char):
        """Singleton predicate ``{char}``."""

    @abstractmethod
    def from_ranges(self, ranges):
        """Predicate for a union of inclusive codepoint ranges.

        ``ranges`` is an iterable of ``(lo, hi)`` pairs of codepoints
        (or single characters); the result denotes their union.
        """

    # -- Derived operations (shared implementations) -------------------------

    def diff(self, phi, psi):
        """Set difference ``[[phi]] \\ [[psi]]``."""
        return self.conj(phi, self.neg(psi))

    def xor(self, phi, psi):
        """Symmetric difference."""
        return self.disj(self.diff(phi, psi), self.diff(psi, phi))

    def conj_all(self, phis):
        """Conjunction of an iterable of predicates (``top`` if empty)."""
        result = self.top
        for phi in phis:
            result = self.conj(result, phi)
            if result == self.bot:
                break
        return result

    def disj_all(self, phis):
        """Disjunction of an iterable of predicates (``bot`` if empty)."""
        result = self.bot
        for phi in phis:
            result = self.disj(result, phi)
            if result == self.top:
                break
        return result

    def equiv(self, phi, psi):
        """Semantic equivalence.  Extensional algebras make this ``==``."""
        return phi == psi

    def implies(self, phi, psi):
        """True iff ``[[phi]]`` is a subset of ``[[psi]]``."""
        return not self.is_sat(self.diff(phi, psi))

    def is_singleton(self, phi):
        """True iff ``[[phi]]`` contains exactly one character."""
        count = self.count(phi)
        return count == 1

    def count(self, phi):
        """Number of characters in ``[[phi]]`` (may be expensive)."""
        raise NotImplementedError

    def require_sat(self, phi):
        """Raise :class:`AlgebraError` unless ``phi`` is satisfiable."""
        if not self.is_sat(phi):
            raise AlgebraError("predicate is unsatisfiable: %r" % (phi,))
