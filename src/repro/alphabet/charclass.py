"""Standard character classes (``\\d``, ``\\w``, ``\\s``, POSIX names).

The paper stresses that practical regexes use character classes over a
large symbolic alphabet (Unicode BMP).  We model the .NET/Unicode
flavour with a compact but genuinely multi-range table: e.g. ``\\d``
includes the ASCII digits plus several BMP digit blocks, so digit
predicates are *not* single intervals and exercise the symbolic
machinery the way real Unicode categories do.
"""

from repro.errors import AlgebraError

# Inclusive codepoint ranges.  ASCII core first, then representative BMP
# blocks (Arabic-Indic digits, Devanagari digits, fullwidth forms, Greek
# and Cyrillic letters, CJK punctuation spaces...).
DIGIT_RANGES = (
    (0x30, 0x39),        # 0-9
    (0x0660, 0x0669),    # Arabic-Indic
    (0x06F0, 0x06F9),    # Extended Arabic-Indic
    (0x0966, 0x096F),    # Devanagari
    (0x0E50, 0x0E59),    # Thai
    (0xFF10, 0xFF19),    # Fullwidth
)

_ASCII_WORD = (
    (0x30, 0x39),        # 0-9
    (0x41, 0x5A),        # A-Z
    (0x5F, 0x5F),        # _
    (0x61, 0x7A),        # a-z
)

_LETTER_BLOCKS = (
    (0xC0, 0xD6), (0xD8, 0xF6), (0xF8, 0xFF),   # Latin-1 letters
    (0x0100, 0x017F),    # Latin Extended-A
    (0x0386, 0x0386), (0x0388, 0x03CE),          # Greek incl. accented
    (0x0400, 0x045F),    # Cyrillic incl. extensions
    (0x05D0, 0x05EA),    # Hebrew
    (0x4E00, 0x9FFF),    # CJK Unified Ideographs
)

WORD_RANGES = _ASCII_WORD + _LETTER_BLOCKS + DIGIT_RANGES[1:]

SPACE_RANGES = (
    (0x09, 0x0D),        # tab..carriage return
    (0x20, 0x20),        # space
    (0x85, 0x85),        # next line
    (0xA0, 0xA0),        # no-break space
    (0x2000, 0x200A),    # en quad .. hair space
    (0x2028, 0x2029),    # line/paragraph separator
    (0x3000, 0x3000),    # ideographic space
)

POSIX_CLASSES = {
    "alpha": ((0x41, 0x5A), (0x61, 0x7A)) + _LETTER_BLOCKS,
    "digit": DIGIT_RANGES,
    "alnum": ((0x30, 0x39), (0x41, 0x5A), (0x61, 0x7A)) + _LETTER_BLOCKS,
    "upper": ((0x41, 0x5A), (0xC0, 0xD6), (0xD8, 0xDE), (0x0391, 0x03A9)),
    "lower": ((0x61, 0x7A), (0xDF, 0xF6), (0xF8, 0xFF), (0x03B1, 0x03C9)),
    "space": SPACE_RANGES,
    "word": WORD_RANGES,
    "punct": ((0x21, 0x2F), (0x3A, 0x40), (0x5B, 0x60), (0x7B, 0x7E)),
    "xdigit": ((0x30, 0x39), (0x41, 0x46), (0x61, 0x66)),
    "ascii": ((0x00, 0x7F),),
    "blank": ((0x09, 0x09), (0x20, 0x20)),
    "cntrl": ((0x00, 0x1F), (0x7F, 0x7F)),
    "print": ((0x20, 0x7E),),
    "graph": ((0x21, 0x7E),),
}


def digit(algebra):
    """The predicate for ``\\d``."""
    return algebra.from_ranges(DIGIT_RANGES)


def word(algebra):
    """The predicate for ``\\w``."""
    return algebra.from_ranges(WORD_RANGES)


def space(algebra):
    """The predicate for ``\\s``."""
    return algebra.from_ranges(SPACE_RANGES)


def not_digit(algebra):
    """The predicate for ``\\D``."""
    return algebra.neg(digit(algebra))


def not_word(algebra):
    """The predicate for ``\\W``."""
    return algebra.neg(word(algebra))


def not_space(algebra):
    """The predicate for ``\\S``."""
    return algebra.neg(space(algebra))


def posix(algebra, name):
    """The predicate for a POSIX class name like ``alpha`` or ``digit``."""
    try:
        ranges = POSIX_CLASSES[name]
    except KeyError:
        raise AlgebraError("unknown POSIX class %r" % name) from None
    return algebra.from_ranges(ranges)


ESCAPE_CLASSES = {
    "d": digit,
    "D": not_digit,
    "w": word,
    "W": not_word,
    "s": space,
    "S": not_space,
}


def case_fold(algebra, pred):
    """Close a predicate under ASCII case swapping.

    Used for ``(?i)`` patterns: every Latin letter in the predicate
    gains its other-case twin.  Works over any algebra via membership
    probes (52 checks), so no interval arithmetic is assumed.
    """
    extra = []
    for i in range(26):
        lower, upper = 0x61 + i, 0x41 + i
        if algebra.member(chr(lower), pred):
            extra.append((upper, upper))
        if algebra.member(chr(upper), pred):
            extra.append((lower, lower))
    if not extra:
        return pred
    return algebra.disj(pred, algebra.from_ranges(extra))


def escape_class(algebra, letter):
    """Predicate for a ``\\X`` class escape (``X`` in ``dDwWsS``)."""
    try:
        build = ESCAPE_CLASSES[letter]
    except KeyError:
        raise AlgebraError("unknown class escape \\%s" % letter) from None
    return build(algebra)
