"""BDD-based character algebra.

Predicates are reduced ordered binary decision diagrams over the bits
of the codepoint (most significant bit first).  ROBDDs are canonical,
so this algebra is extensional like the others.  dZ3 represents its
transition structure with multi-terminal BDDs (the paper cites MONA's
implementation secrets); this module provides the same predicate
backbone as an alternative to interval sets, and the benchmark suite
compares the two.
"""

from repro.alphabet.algebra import BooleanAlgebra
from repro.errors import AlgebraError


class BDDNode:
    """An interned BDD node: branch on ``var`` (bit index, 0 = MSB)."""

    __slots__ = ("var", "lo", "hi", "manager_id", "_hash")

    def __init__(self, var, lo, hi, manager_id):
        self.var = var
        self.lo = lo  # child when the bit is 0
        self.hi = hi  # child when the bit is 1
        self.manager_id = manager_id
        self._hash = hash((var, id(lo), id(hi), manager_id))

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "BDDNode(var=%d)" % self.var


class _Terminal:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "BDD-%s" % ("TRUE" if self.value else "FALSE")


class BDDAlgebra(BooleanAlgebra):
    """Character algebra whose predicates are ROBDDs over codepoint bits.

    ``bits`` is the codepoint width: 16 covers the BMP, 21 all of
    Unicode, smaller values give compact test domains of size
    ``2**bits``.
    """

    def __init__(self, bits=16):
        if bits < 1:
            raise AlgebraError("need at least one bit")
        self.bits = bits
        self.max_code = (1 << bits) - 1
        self._id = id(self)
        self._false = _Terminal(False)
        self._true = _Terminal(True)
        self._nodes = {}
        self._apply_cache = {}
        self._neg_cache = {}

    # -- node construction -------------------------------------------------

    def _mk(self, var, lo, hi):
        if lo is hi:
            return lo
        key = (var, id(lo), id(hi))
        node = self._nodes.get(key)
        if node is None:
            node = BDDNode(var, lo, hi, self._id)
            self._nodes[key] = node
        return node

    def _is_terminal(self, node):
        return isinstance(node, _Terminal)

    # -- the distinguished predicates ---------------------------------------

    @property
    def bot(self):
        return self._false

    @property
    def top(self):
        return self._true

    # -- connectives ---------------------------------------------------------

    def _apply(self, op, a, b):
        if self._is_terminal(a) and self._is_terminal(b):
            if op == "and":
                return self._true if a.value and b.value else self._false
            if op == "or":
                return self._true if a.value or b.value else self._false
            raise AlgebraError("unknown op %r" % op)
        # short circuits
        if op == "and":
            if a is self._false or b is self._false:
                return self._false
            if a is self._true:
                return b
            if b is self._true:
                return a
            if a is b:
                return a
        else:  # or
            if a is self._true or b is self._true:
                return self._true
            if a is self._false:
                return b
            if b is self._false:
                return a
            if a is b:
                return a
        key = (op, id(a), id(b)) if id(a) <= id(b) else (op, id(b), id(a))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var_a = a.var if not self._is_terminal(a) else self.bits
        var_b = b.var if not self._is_terminal(b) else self.bits
        var = min(var_a, var_b)
        a_lo, a_hi = (a.lo, a.hi) if var_a == var else (a, a)
        b_lo, b_hi = (b.lo, b.hi) if var_b == var else (b, b)
        result = self._mk(
            var, self._apply(op, a_lo, b_lo), self._apply(op, a_hi, b_hi)
        )
        self._apply_cache[key] = result
        return result

    def conj(self, phi, psi):
        self._op_count += 1
        return self._apply("and", phi, psi)

    def disj(self, phi, psi):
        self._op_count += 1
        return self._apply("or", phi, psi)

    def neg(self, phi):
        self._op_count += 1
        return self._neg(phi)

    def _neg(self, phi):
        if phi is self._true:
            return self._false
        if phi is self._false:
            return self._true
        cached = self._neg_cache.get(id(phi))
        if cached is not None:
            return cached
        result = self._mk(phi.var, self._neg(phi.lo), self._neg(phi.hi))
        self._neg_cache[id(phi)] = result
        self._neg_cache[id(result)] = phi
        return result

    # -- decision problems -----------------------------------------------------

    def is_sat(self, phi):
        self._sat_count += 1
        return phi is not self._false

    def is_valid(self, phi):
        self._sat_count += 1
        return phi is self._true

    def member(self, char, phi):
        code = ord(char) if isinstance(char, str) else int(char)
        if code > self.max_code:
            return False  # out-of-domain: clean non-match, never an error
        node = phi
        while not self._is_terminal(node):
            bit = code >> (self.bits - 1 - node.var) & 1
            node = node.hi if bit else node.lo
        return node.value

    def in_domain(self, char):
        code = ord(char) if isinstance(char, str) else int(char)
        return code <= self.max_code

    def pick(self, phi):
        if phi is self._false:
            raise AlgebraError("cannot pick from the empty predicate")
        code = 0
        node = phi
        var = 0
        while not self._is_terminal(node):
            # fill skipped (don't-care) bits with 0
            var = node.var
            if node.lo is not self._false:
                node = node.lo
            else:
                code |= 1 << (self.bits - 1 - var)
                node = node.hi
        return chr(code)

    # -- construction --------------------------------------------------------

    def from_char(self, char):
        code = ord(char) if isinstance(char, str) else int(char)
        return self.from_ranges([(code, code)])

    def from_chars(self, chars):
        result = self._false
        for char in chars:
            result = self.disj(result, self.from_char(char))
        return result

    def from_ranges(self, ranges):
        result = self._false
        for lo, hi in ranges:
            lo = ord(lo) if isinstance(lo, str) else int(lo)
            hi = ord(hi) if isinstance(hi, str) else int(hi)
            hi = min(hi, self.max_code)
            if lo <= hi:
                result = self.disj(result, self._range(lo, hi, 0))
        return result

    def _range(self, lo, hi, var):
        """BDD for ``lo <= code <= hi`` deciding bits from ``var`` down."""
        if var == self.bits:
            return self._true
        width = self.bits - var
        full = (1 << width) - 1
        if lo == 0 and hi == full:
            return self._true
        if lo > hi:
            return self._false
        half = 1 << (width - 1)
        if hi < half:
            return self._mk(var, self._range(lo, hi, var + 1), self._false)
        if lo >= half:
            return self._mk(
                var, self._false, self._range(lo - half, hi - half, var + 1)
            )
        return self._mk(
            var,
            self._range(lo, half - 1, var + 1),
            self._range(0, hi - half, var + 1),
        )

    def count(self, phi):
        cache = {}

        def walk(node, var):
            if self._is_terminal(node):
                return (1 << (self.bits - var)) if node.value else 0
            key = (id(node), var)
            if key in cache:
                return cache[key]
            skipped = node.var - var
            total = (walk(node.lo, node.var + 1) + walk(node.hi, node.var + 1)) << skipped
            cache[key] = total
            return total

        return walk(phi, 0)

    def node_count(self, phi):
        """Number of distinct BDD nodes reachable from ``phi``."""
        seen = set()
        stack = [phi]
        while stack:
            node = stack.pop()
            if self._is_terminal(node) or id(node) in seen:
                continue
            seen.add(id(node))
            stack.append(node.lo)
            stack.append(node.hi)
        return len(seen)

    def __repr__(self):
        return "BDDAlgebra(bits=%d)" % self.bits
