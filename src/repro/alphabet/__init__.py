"""Character theories: effective Boolean algebras over character domains.

The solver is parametric in an :class:`~repro.alphabet.algebra.BooleanAlgebra`
exactly as the paper's theory is parametric in the alphabet theory
:math:`\\mathcal{A}`.
"""

from repro.alphabet.algebra import BooleanAlgebra
from repro.alphabet.intervals import BMP_MAX, UNICODE_MAX, CharSet, IntervalAlgebra
from repro.alphabet.bitset import BitsetAlgebra, BitsetPred
from repro.alphabet.bdd import BDDAlgebra
from repro.alphabet.minterms import minterms, partition_check
from repro.alphabet import charclass

__all__ = [
    "BooleanAlgebra",
    "IntervalAlgebra",
    "CharSet",
    "BMP_MAX",
    "UNICODE_MAX",
    "BitsetAlgebra",
    "BitsetPred",
    "BDDAlgebra",
    "minterms",
    "partition_check",
    "charclass",
]
