"""Minterm generation (paper, Section 3 and Section 8.3).

Given a finite set ``S`` of predicates, a *minterm* is a satisfiable
conjunction choosing, for each predicate in ``S``, either it or its
negation.  The satisfiable minterms partition the domain; there are at
most ``2**|S|`` of them — the blowup that global mintermization-based
approaches pay up front and that symbolic derivatives avoid.

The implementation refines a partition incrementally instead of
enumerating all ``2**|S|`` sign vectors, so it is linear in the number
of *satisfiable* minterms per refinement step.
"""


def minterms(algebra, predicates):
    """Return a list of pairwise-disjoint satisfiable predicates that
    partition the domain and refine every predicate in ``predicates``.

    Every input predicate is a union of returned minterms, and distinct
    returned minterms are disjoint.  The top predicate is returned for
    an empty input.
    """
    parts = [algebra.top]
    for phi in predicates:
        refined = []
        for part in parts:
            inside = algebra.conj(part, phi)
            outside = algebra.diff(part, phi)
            if algebra.is_sat(inside):
                refined.append(inside)
            if algebra.is_sat(outside):
                refined.append(outside)
        parts = refined
    return parts


def minterms_of_regex_preds(algebra, preds):
    """Alias used by the classical baselines; kept separate so call
    sites document *why* they mintermize (finitizing the alphabet)."""
    return minterms(algebra, preds)


def partition_check(algebra, parts):
    """True iff ``parts`` are pairwise disjoint and cover the domain.

    Used by tests and by the classical automata code to validate local
    mintermization before building deterministic transitions.
    """
    union = algebra.bot
    for i, part in enumerate(parts):
        if not algebra.is_sat(part):
            return False
        for other in parts[i + 1:]:
            if algebra.is_sat(algebra.conj(part, other)):
                return False
        union = algebra.disj(union, part)
    return algebra.is_valid(union)
