"""Codepoint-interval character algebra.

Predicates are canonical :class:`CharSet` values: sorted tuples of
disjoint, non-adjacent, inclusive codepoint ranges.  This mirrors how
Z3 (and dZ3) represent Unicode character predicates, supports the full
Unicode range including the Basic Multilingual Plane the paper calls
out, and is *extensional*: two predicates denote the same set iff they
are equal.
"""

from repro.alphabet.algebra import BooleanAlgebra
from repro.errors import AlgebraError

#: Highest codepoint of the Basic Multilingual Plane (Plane 0).
BMP_MAX = 0xFFFF

#: Highest Unicode codepoint.
UNICODE_MAX = 0x10FFFF


def _as_codepoint(value):
    """Accept an int codepoint or a 1-character string."""
    if isinstance(value, str):
        if len(value) != 1:
            raise AlgebraError("expected a single character, got %r" % (value,))
        return ord(value)
    return int(value)


class CharSet:
    """An immutable set of codepoints stored as canonical ranges.

    ``ranges`` is a tuple of ``(lo, hi)`` pairs, inclusive on both ends,
    sorted, pairwise disjoint, and with no two ranges adjacent (so the
    representation of any set is unique).
    """

    __slots__ = ("ranges", "_hash")

    def __init__(self, ranges):
        self.ranges = tuple(ranges)
        self._hash = hash(self.ranges)

    @staticmethod
    def normalize(pairs):
        """Build a :class:`CharSet` from arbitrary (lo, hi) pairs."""
        cleaned = sorted(
            (lo, hi) for lo, hi in pairs if lo <= hi
        )
        merged = []
        for lo, hi in cleaned:
            if merged and lo <= merged[-1][1] + 1:
                if hi > merged[-1][1]:
                    merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        return CharSet(tuple(merged))

    def __eq__(self, other):
        return isinstance(other, CharSet) and self.ranges == other.ranges

    def __hash__(self):
        return self._hash

    def __contains__(self, char):
        code = _as_codepoint(char)
        lo_idx, hi_idx = 0, len(self.ranges)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            lo, hi = self.ranges[mid]
            if code < lo:
                hi_idx = mid
            elif code > hi:
                lo_idx = mid + 1
            else:
                return True
        return False

    def __bool__(self):
        return bool(self.ranges)

    def __len__(self):
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def __iter__(self):
        for lo, hi in self.ranges:
            for code in range(lo, hi + 1):
                yield code

    def min(self):
        if not self.ranges:
            raise AlgebraError("empty CharSet has no minimum")
        return self.ranges[0][0]

    def __repr__(self):
        parts = []
        for lo, hi in self.ranges[:8]:
            if lo == hi:
                parts.append("%#x" % lo)
            else:
                parts.append("%#x-%#x" % (lo, hi))
        if len(self.ranges) > 8:
            parts.append("...")
        return "CharSet[%s]" % ", ".join(parts)


def _union(a, b):
    return CharSet.normalize(a.ranges + b.ranges)


def _complement(a, max_code):
    out = []
    prev = 0
    for lo, hi in a.ranges:
        if prev < lo:
            out.append((prev, lo - 1))
        prev = hi + 1
    if prev <= max_code:
        out.append((prev, max_code))
    return CharSet(tuple(out))


def _intersection(a, b):
    out = []
    i = j = 0
    ra, rb = a.ranges, b.ranges
    while i < len(ra) and j < len(rb):
        lo = max(ra[i][0], rb[j][0])
        hi = min(ra[i][1], rb[j][1])
        if lo <= hi:
            out.append((lo, hi))
        if ra[i][1] < rb[j][1]:
            i += 1
        else:
            j += 1
    return CharSet(tuple(out))


class IntervalAlgebra(BooleanAlgebra):
    """The default character theory: canonical codepoint interval sets.

    ``max_code`` bounds the domain; the default covers the BMP, use
    ``IntervalAlgebra(UNICODE_MAX)`` for all of Unicode or a small value
    (e.g. 127 for ASCII) for compact test domains.
    """

    def __init__(self, max_code=BMP_MAX):
        if max_code < 0:
            raise AlgebraError("domain must be nonempty")
        self.max_code = max_code
        self._bot = CharSet(())
        self._top = CharSet(((0, max_code),))

    @property
    def bot(self):
        return self._bot

    @property
    def top(self):
        return self._top

    def conj(self, phi, psi):
        self._op_count += 1
        if phi is self._top:
            return psi
        if psi is self._top:
            return phi
        return _intersection(phi, psi)

    def disj(self, phi, psi):
        self._op_count += 1
        if phi is self._bot:
            return psi
        if psi is self._bot:
            return phi
        return _union(phi, psi)

    def neg(self, phi):
        self._op_count += 1
        return _complement(phi, self.max_code)

    def is_sat(self, phi):
        self._sat_count += 1
        return bool(phi.ranges)

    def is_valid(self, phi):
        self._sat_count += 1
        return phi == self._top

    def member(self, char, phi):
        code = _as_codepoint(char)
        if code > self.max_code:
            return False  # out-of-domain: clean non-match, never an error
        return code in phi

    def in_domain(self, char):
        return _as_codepoint(char) <= self.max_code

    def pick(self, phi):
        """Pick a member, preferring printable ASCII for readable models."""
        if not phi.ranges:
            raise AlgebraError("cannot pick from the empty predicate")
        printable = _intersection(phi, CharSet(((0x20, 0x7E),)))
        chosen = printable.min() if printable.ranges else phi.min()
        return chr(chosen)

    def from_char(self, char):
        code = _as_codepoint(char)
        if code > self.max_code:
            raise AlgebraError(
                "codepoint %#x outside domain (max %#x)" % (code, self.max_code)
            )
        return CharSet(((code, code),))

    def from_ranges(self, ranges):
        pairs = []
        for lo, hi in ranges:
            lo, hi = _as_codepoint(lo), _as_codepoint(hi)
            if hi > self.max_code:
                hi = self.max_code
            if lo <= hi:
                pairs.append((lo, hi))
        return CharSet.normalize(pairs)

    def from_chars(self, chars):
        """Predicate for a finite set of characters."""
        return CharSet.normalize(
            [(c, c) for c in map(_as_codepoint, chars)]
        )

    def count(self, phi):
        return len(phi)

    def equiv(self, phi, psi):
        return phi == psi

    def __repr__(self):
        return "IntervalAlgebra(max_code=%#x)" % self.max_code
