"""Bitmask character algebra over a small explicit alphabet.

Useful for exhaustive testing: with an alphabet of, say, ``"ab01"``,
every predicate is one of 16 bitmasks and every property can be checked
by brute force against the interval algebra or against language
enumeration.
"""

from repro.alphabet.algebra import BooleanAlgebra
from repro.errors import AlgebraError


class BitsetPred:
    """A predicate over a finite alphabet, as a bitmask of members."""

    __slots__ = ("mask", "algebra_id")

    def __init__(self, mask, algebra_id):
        self.mask = mask
        self.algebra_id = algebra_id

    def __eq__(self, other):
        return (
            isinstance(other, BitsetPred)
            and self.mask == other.mask
            and self.algebra_id == other.algebra_id
        )

    def __hash__(self):
        return hash((self.mask, self.algebra_id))

    def __repr__(self):
        return "BitsetPred(%s)" % bin(self.mask)


class BitsetAlgebra(BooleanAlgebra):
    """Character algebra over an explicit, ordered, finite alphabet."""

    def __init__(self, alphabet):
        chars = list(alphabet)
        if not chars:
            raise AlgebraError("alphabet must be nonempty")
        if len(set(chars)) != len(chars):
            raise AlgebraError("alphabet contains duplicate characters")
        self.alphabet = "".join(chars)
        self._index = {c: i for i, c in enumerate(chars)}
        self._id = id(self)
        self._bot = BitsetPred(0, self._id)
        self._top = BitsetPred((1 << len(chars)) - 1, self._id)

    def _check(self, phi):
        if not isinstance(phi, BitsetPred) or phi.algebra_id != self._id:
            raise AlgebraError("predicate %r belongs to a different algebra" % (phi,))
        return phi

    @property
    def bot(self):
        return self._bot

    @property
    def top(self):
        return self._top

    def conj(self, phi, psi):
        self._op_count += 1
        return BitsetPred(self._check(phi).mask & self._check(psi).mask, self._id)

    def disj(self, phi, psi):
        self._op_count += 1
        return BitsetPred(self._check(phi).mask | self._check(psi).mask, self._id)

    def neg(self, phi):
        self._op_count += 1
        return BitsetPred(self._top.mask & ~self._check(phi).mask, self._id)

    def is_sat(self, phi):
        self._sat_count += 1
        return self._check(phi).mask != 0

    def is_valid(self, phi):
        self._sat_count += 1
        return self._check(phi).mask == self._top.mask

    def member(self, char, phi):
        if char not in self._index:
            return False  # out-of-domain: clean non-match, never an error
        return bool(self._check(phi).mask >> self._index[char] & 1)

    def in_domain(self, char):
        return char in self._index

    def pick(self, phi):
        mask = self._check(phi).mask
        if mask == 0:
            raise AlgebraError("cannot pick from the empty predicate")
        return self.alphabet[(mask & -mask).bit_length() - 1]

    def from_char(self, char):
        if char not in self._index:
            raise AlgebraError("character %r outside alphabet %r" % (char, self.alphabet))
        return BitsetPred(1 << self._index[char], self._id)

    def from_chars(self, chars):
        mask = 0
        for char in chars:
            if char not in self._index:
                raise AlgebraError(
                    "character %r outside alphabet %r" % (char, self.alphabet)
                )
            mask |= 1 << self._index[char]
        return BitsetPred(mask, self._id)

    def from_ranges(self, ranges):
        chars = []
        for lo, hi in ranges:
            lo = ord(lo) if isinstance(lo, str) else lo
            hi = ord(hi) if isinstance(hi, str) else hi
            chars.extend(c for c in self.alphabet if lo <= ord(c) <= hi)
        return self.from_chars(chars)

    def count(self, phi):
        return bin(self._check(phi).mask).count("1")

    def chars(self, phi):
        """All characters denoted by ``phi``, in alphabet order."""
        mask = self._check(phi).mask
        return [c for i, c in enumerate(self.alphabet) if mask >> i & 1]

    def __repr__(self):
        return "BitsetAlgebra(%r)" % self.alphabet
