"""The symbolic derivative ``delta`` (paper, Section 4).

``delta(R)`` is a transition regex such that for every character ``a``,
``L(delta(R)(a)) = L(D_a(R))`` — the Brzozowski derivative — *without
knowing* ``a`` (Theorem 4.3).  The conditional construct is what makes
the definition closed under complement and intersection.

Rules (plus the loop generalization used for bounded quantifiers)::

    delta(eps) = delta(bot) = bot
    delta(phi) = if(phi, eps, bot)
    delta(R . R') = delta(R) . R' | delta(R')   if nullable(R)
                  = delta(R) . R'               otherwise
    delta(R*) = delta(R) . R*
    delta(R{lo,hi}) = delta(R) . R{max(lo-1,0), hi-1}
    delta(R | R') = delta(R) | delta(R')
    delta(R & R') = delta(R) & delta(R')
    delta(~R) = ~delta(R)
"""

from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOK_KINDS, LOOP, PRED,
    UNION,
)
from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, TRUnion, apply, tr_concat,
)


def derivative(builder, regex):
    """Compute the symbolic derivative ``delta(regex)`` as a TR."""
    if regex.kind in (EMPTY, EPSILON):
        return TRLeaf(builder.empty)
    if regex.kind == PRED:
        if builder.algebra.is_valid(regex.pred):
            return TRLeaf(builder.epsilon)
        return TRCond(regex.pred, TRLeaf(builder.epsilon), TRLeaf(builder.empty))
    if regex.kind == CONCAT:
        head = regex.children[0]
        tail = builder.concat(list(regex.children[1:]))
        left = tr_concat(builder, derivative(builder, head), tail)
        if head.nullable:
            return TRUnion((left, derivative(builder, tail)))
        return left
    if regex.kind == LOOP:
        body = regex.children[0]
        rest = _loop_rest(builder, regex)
        return tr_concat(builder, derivative(builder, body), rest)
    if regex.kind == UNION:
        return TRUnion(tuple(derivative(builder, c) for c in regex.children))
    if regex.kind == INTER:
        return TRInter(tuple(derivative(builder, c) for c in regex.children))
    if regex.kind == COMPL:
        return TRCompl(derivative(builder, regex.children[0]))
    if regex.kind in LOOK_KINDS:
        # the location-based rule (SNIPPETS' SymbolicDerivative.lean):
        # an assertion is zero-width, so consuming any character from
        # it yields the empty language.  Note this is a *node-local*
        # rule: matching a pattern that concatenates assertions with
        # consuming parts additionally needs the assertion's context-
        # dependent nullability, which this engine realizes by
        # eliminating lookarounds up front (repro.regex.transform)
        # rather than by threading positions through derivatives.
        return TRLeaf(builder.empty)
    raise AssertionError("unknown node kind %r" % regex.kind)


def _loop_rest(builder, loop):
    """The loop with one iteration consumed: ``R{lo-1, hi-1}``."""
    lo = max(loop.lo - 1, 0)
    hi = loop.hi if loop.hi is INF else loop.hi - 1
    return builder.loop(loop.children[0], lo, hi)


def brzozowski_via_delta(builder, regex, char):
    """``D_a(R)`` computed by evaluating the symbolic derivative.

    By Theorem 4.3 this equals the classical Brzozowski derivative; the
    test suite checks it against :mod:`repro.derivatives.brzozowski`.
    """
    return apply(builder, derivative(builder, regex), char)
