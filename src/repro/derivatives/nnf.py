"""Negation normal form of transition regexes (paper, Section 4.1).

``nnf`` pushes complements down through conditionals (branches of a
conditional partition the character space, so negation commutes with
the conditional — this is the correctness content of Lemma 4.2) and
through ``&``/``|`` by De Morgan, until every residual complement sits
directly on an ERE leaf, where it is absorbed by the regex builder's
``~`` constructor.
"""

from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, TRUnion,
)


def nnf(builder, tr):
    """Rewrite ``tr`` so no ``TRCompl`` node remains."""
    if isinstance(tr, TRLeaf):
        return tr
    if isinstance(tr, TRCond):
        return TRCond(tr.pred, nnf(builder, tr.then), nnf(builder, tr.other))
    if isinstance(tr, TRUnion):
        return TRUnion(tuple(nnf(builder, c) for c in tr.children))
    if isinstance(tr, TRInter):
        return TRInter(tuple(nnf(builder, c) for c in tr.children))
    if isinstance(tr, TRCompl):
        return _nnf_neg(builder, tr.child)
    raise TypeError("not a transition regex: %r" % (tr,))


def _nnf_neg(builder, tr):
    """NNF of ``~tr``."""
    if isinstance(tr, TRLeaf):
        return TRLeaf(builder.compl(tr.regex))
    if isinstance(tr, TRCond):
        # NNF(~if(phi, t, f)) = if(phi, NNF(~t), NNF(~f))
        return TRCond(tr.pred, _nnf_neg(builder, tr.then), _nnf_neg(builder, tr.other))
    if isinstance(tr, TRUnion):
        return TRInter(tuple(_nnf_neg(builder, c) for c in tr.children))
    if isinstance(tr, TRInter):
        return TRUnion(tuple(_nnf_neg(builder, c) for c in tr.children))
    if isinstance(tr, TRCompl):
        return nnf(builder, tr.child)
    raise TypeError("not a transition regex: %r" % (tr,))


def is_nnf(tr):
    """True iff ``tr`` contains no ``TRCompl`` node."""
    stack = [tr]
    while stack:
        node = stack.pop()
        if isinstance(node, TRCompl):
            return False
        if isinstance(node, TRCond):
            stack.append(node.then)
            stack.append(node.other)
        elif isinstance(node, (TRUnion, TRInter)):
            stack.extend(node.children)
    return True
