"""Transition regexes ``TR`` (paper, Section 4).

A transition regex denotes a function from characters to regexes::

    TR ::= Q | if(phi, TR, TR) | TR "|" TR | TR "&" TR | ~TR

where ``Q`` is the leaf type (``ERE`` here; Section 7 instantiates the
same grammar with automaton states).  The crucial operations are:

* :func:`apply` — evaluate ``tau(a)`` for a concrete character;
* :func:`tr_concat` — the lifting of regex concatenation to
  ``tau . R`` used by the derivative of concatenations and loops;
* :func:`negate` — the paper's overline operation, the *dual* of a
  transition regex, which eliminates a top-level ``~`` (Lemma 4.2:
  ``~tau == negate(tau)``).

This module implements the calculus literally for study and testing;
the solver uses the fused, clean form in
:mod:`repro.derivatives.condtree`.
"""


class TRLeaf:
    """A leaf: the constant function returning ``regex``.

    The leaf payload is normally an ERE, but Section 7 instantiates the
    same grammar with automaton states, so any hashable value works.
    """

    __slots__ = ("regex",)

    def __init__(self, regex):
        self.regex = regex

    def __eq__(self, other):
        return isinstance(other, TRLeaf) and self.regex == other.regex

    def __hash__(self):
        return hash(("leaf", self.regex))

    def __repr__(self):
        return "TRLeaf(%r)" % self.regex


class TRCond:
    """A conditional regex ``if(phi, then, other)``."""

    __slots__ = ("pred", "then", "other")

    def __init__(self, pred, then, other):
        self.pred = pred
        self.then = then
        self.other = other

    def __eq__(self, other):
        return (
            isinstance(other, TRCond)
            and self.pred == other.pred
            and self.then == other.then
            and self.other == other.other
        )

    def __hash__(self):
        return hash(("cond", self.pred, self.then, self.other))

    def __repr__(self):
        return "TRCond(%r, %r, %r)" % (self.pred, self.then, self.other)


class TRUnion:
    """Disjunction of transition regexes."""

    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def __eq__(self, other):
        return isinstance(other, TRUnion) and self.children == other.children

    def __hash__(self):
        return hash(("union", self.children))

    def __repr__(self):
        return "TRUnion(%r)" % (self.children,)


class TRInter:
    """Conjunction of transition regexes."""

    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def __eq__(self, other):
        return isinstance(other, TRInter) and self.children == other.children

    def __hash__(self):
        return hash(("inter", self.children))

    def __repr__(self):
        return "TRInter(%r)" % (self.children,)


class TRCompl:
    """Complement of a transition regex."""

    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def __eq__(self, other):
        return isinstance(other, TRCompl) and self.child == other.child

    def __hash__(self):
        return hash(("compl", self.child))

    def __repr__(self):
        return "TRCompl(%r)" % (self.child,)


def apply(builder, tr, char):
    """Evaluate the denoted function: ``tr(char)`` as a regex.

    Out-of-domain characters evaluate to bottom (checked up front:
    negated subtrees would otherwise wrongly admit them).
    """
    algebra = builder.algebra
    if not algebra.in_domain(char):
        return builder.empty
    if isinstance(tr, TRLeaf):
        return tr.regex
    if isinstance(tr, TRCond):
        branch = tr.then if algebra.member(char, tr.pred) else tr.other
        return apply(builder, branch, char)
    if isinstance(tr, TRUnion):
        return builder.union([apply(builder, c, char) for c in tr.children])
    if isinstance(tr, TRInter):
        return builder.inter([apply(builder, c, char) for c in tr.children])
    if isinstance(tr, TRCompl):
        return builder.compl(apply(builder, tr.child, char))
    raise TypeError("not a transition regex: %r" % (tr,))


def negate(builder, tr):
    """The paper's overline: the dual transition regex.

    ``negate(tau)(a) == ~(tau(a))`` for every character (Lemma 4.2),
    but the result has no top-level complement node.
    """
    if isinstance(tr, TRLeaf):
        return TRLeaf(builder.compl(tr.regex))
    if isinstance(tr, TRCond):
        return TRCond(tr.pred, negate(builder, tr.then), negate(builder, tr.other))
    if isinstance(tr, TRUnion):
        return TRInter(tuple(negate(builder, c) for c in tr.children))
    if isinstance(tr, TRInter):
        return TRUnion(tuple(negate(builder, c) for c in tr.children))
    if isinstance(tr, TRCompl):
        return tr.child
    raise TypeError("not a transition regex: %r" % (tr,))


def tr_concat(builder, tr, regex):
    """Concatenation lifted to transition regexes: ``tau . R``.

    Follows the four rules of Section 4; the intersection case routes
    through :func:`repro.derivatives.lift.lift` to reach conditional
    form first.
    """
    if regex is builder.epsilon:
        return tr
    if isinstance(tr, TRLeaf):
        return TRLeaf(builder.concat([tr.regex, regex]))
    if isinstance(tr, TRCond):
        return TRCond(
            tr.pred,
            tr_concat(builder, tr.then, regex),
            tr_concat(builder, tr.other, regex),
        )
    if isinstance(tr, TRUnion):
        return TRUnion(tuple(tr_concat(builder, c, regex) for c in tr.children))
    if isinstance(tr, TRCompl):
        return tr_concat(builder, negate(builder, tr.child), regex)
    if isinstance(tr, TRInter):
        from repro.derivatives.lift import lift
        from repro.derivatives.nnf import nnf

        return tr_concat(builder, lift(builder, nnf(builder, tr)), regex)
    raise TypeError("not a transition regex: %r" % (tr,))


def terminals(tr):
    """All leaf regexes of ``tr`` (the paper's *terminals*)."""
    out = []
    stack = [tr]
    while stack:
        node = stack.pop()
        if isinstance(node, TRLeaf):
            out.append(node.regex)
        elif isinstance(node, TRCond):
            stack.append(node.then)
            stack.append(node.other)
        elif isinstance(node, (TRUnion, TRInter)):
            stack.extend(node.children)
        elif isinstance(node, TRCompl):
            stack.append(node.child)
        else:
            raise TypeError("not a transition regex: %r" % (node,))
    return out


def nontrivial_terminals(builder, tr):
    """``Q(tau)``: terminals except the trivial ``bottom`` and ``.*``."""
    return {
        r for r in terminals(tr) if r is not builder.empty and r is not builder.full
    }


def guards(tr):
    """All branch predicates occurring in ``tr``."""
    out = set()
    stack = [tr]
    while stack:
        node = stack.pop()
        if isinstance(node, TRCond):
            out.add(node.pred)
            stack.append(node.then)
            stack.append(node.other)
        elif isinstance(node, (TRUnion, TRInter)):
            stack.extend(node.children)
        elif isinstance(node, TRCompl):
            stack.append(node.child)
    return out


def pretty(tr, algebra=None):
    """Human-readable rendering, mirroring the paper's notation."""
    from repro.regex.printer import render_pred, to_pattern

    if isinstance(tr, TRLeaf):
        return to_pattern(tr.regex, algebra)
    if isinstance(tr, TRCond):
        return "if(%s, %s, %s)" % (
            render_pred(tr.pred, algebra),
            pretty(tr.then, algebra),
            pretty(tr.other, algebra),
        )
    if isinstance(tr, TRUnion):
        return "(" + " | ".join(pretty(c, algebra) for c in tr.children) + ")"
    if isinstance(tr, TRInter):
        return "(" + " & ".join(pretty(c, algebra) for c in tr.children) + ")"
    if isinstance(tr, TRCompl):
        return "~" + pretty(tr.child, algebra)
    raise TypeError("not a transition regex: %r" % (tr,))
