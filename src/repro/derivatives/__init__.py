"""Symbolic Boolean derivatives: the paper's core contribution.

* :mod:`repro.derivatives.transition` — transition regexes (Section 4);
* :mod:`repro.derivatives.derivative` — the symbolic derivative ``delta``;
* :mod:`repro.derivatives.nnf`, :mod:`repro.derivatives.lift`,
  :mod:`repro.derivatives.dnf` — the normal forms of Sections 4.1 and 5;
* :mod:`repro.derivatives.condtree` — the fused clean-conditional-tree
  engine the solver uses;
* :mod:`repro.derivatives.brzozowski`, :mod:`repro.derivatives.antimirov`
  — the classical theories compared against in Section 8.
"""

from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, TRUnion, apply, guards, negate,
    nontrivial_terminals, pretty, terminals, tr_concat,
)
from repro.derivatives.derivative import brzozowski_via_delta, derivative
from repro.derivatives.nnf import is_nnf, nnf
from repro.derivatives.lift import lift
from repro.derivatives.dnf import delta_dnf, dnf, is_dnf, successors
from repro.derivatives.condtree import DerivativeEngine, Leaf, Node
from repro.derivatives import antimirov, approx, brzozowski

__all__ = [
    "TRLeaf", "TRCond", "TRUnion", "TRInter", "TRCompl",
    "apply", "negate", "tr_concat", "terminals", "nontrivial_terminals",
    "guards", "pretty",
    "derivative", "brzozowski_via_delta",
    "nnf", "is_nnf", "lift", "dnf", "delta_dnf", "is_dnf", "successors",
    "DerivativeEngine", "Leaf", "Node",
    "antimirov", "brzozowski", "approx",
]
