"""Positive and negative derivatives w.r.t. a *predicate* —
the Keil–Thiemann approach the paper contrasts with (§1, §8.1).

Before transition regexes, the way to take a derivative "symbolically"
was w.r.t. a whole character predicate ``B`` at once:

* the **positive** derivative ``pos(B, R)`` assumes the character
  *might* be any element of ``B`` — an **over**-approximation;
* the **negative** derivative ``neg(B, R)`` assumes only what holds
  for *every* element of ``B`` — an **under**-approximation.

[36, Lemma 3]: for every ``a in B``::

    L(neg(B, R))  ⊆  D_a(L(R))  ⊆  L(pos(B, R))

and both inclusions are strict in general — taking a single symbolic
derivative of an extended regex w.r.t. a predicate *cannot* be exact,
which is precisely the gap transition regexes close (the conditional
``if(φ, ·, ·)`` keeps both cases instead of committing to one).
Complement swaps the two approximations (the dual rules below), so a
fixed choice of polarity breaks under ``~`` — the paper's §1 argument.

These functions are exact when ``B`` is a minterm of ``Psi_R`` (it then
behaves like a single letter), which is the *local mintermization*
escape hatch [36] uses — at up to ``2^n`` minterms per step.
"""

from repro.errors import UnsupportedError
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOK_KINDS, LOOP, PRED,
    UNION,
)


def positive(builder, pred, regex):
    """The over-approximating derivative ``Delta_B(R)``."""
    return _derive(builder, pred, regex, over=True)


def negative(builder, pred, regex):
    """The under-approximating derivative ``Nabla_B(R)``."""
    return _derive(builder, pred, regex, over=False)


def _derive(builder, pred, regex, over):
    algebra = builder.algebra
    kind = regex.kind
    if kind in (EMPTY, EPSILON):
        return builder.empty
    if kind == PRED:
        if over:
            # some character of B may satisfy phi
            hit = algebra.is_sat(algebra.conj(pred, regex.pred))
        else:
            # every character of B satisfies phi
            hit = algebra.implies(pred, regex.pred)
        return builder.epsilon if hit else builder.empty
    if kind == CONCAT:
        head = regex.children[0]
        tail = builder.concat(list(regex.children[1:]))
        left = builder.concat([_derive(builder, pred, head, over), tail])
        if head.nullable:
            return builder.union([left, _derive(builder, pred, tail, over)])
        return left
    if kind == LOOP:
        body = regex.children[0]
        lo = max(regex.lo - 1, 0)
        hi = regex.hi if regex.hi is INF else regex.hi - 1
        return builder.concat([
            _derive(builder, pred, body, over), builder.loop(body, lo, hi),
        ])
    if kind == UNION:
        return builder.union(
            [_derive(builder, pred, c, over) for c in regex.children]
        )
    if kind == INTER:
        return builder.inter(
            [_derive(builder, pred, c, over) for c in regex.children]
        )
    if kind == COMPL:
        # the dual rule: over-approximating ~R needs the UNDER
        # approximation of R, and vice versa
        return builder.compl(
            _derive(builder, pred, regex.children[0], not over)
        )
    if kind in LOOK_KINDS:
        raise UnsupportedError(
            "approximate derivatives do not support zero-width "
            "assertions; eliminate lookarounds first"
        )
    raise AssertionError("unknown node kind %r" % kind)


def is_exact_for(builder, pred, regex):
    """True iff ``pos`` and ``neg`` coincide syntactically for this
    (predicate, regex) pair — e.g. when ``pred`` is a minterm of the
    regex's predicates, or the regex mentions no overlapping classes."""
    return positive(builder, pred, regex) is negative(builder, pred, regex)
