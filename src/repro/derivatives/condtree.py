"""Fused, clean conditional-tree derivatives — what dZ3 actually computes.

The literal pipeline ``delta -> NNF -> lift -> DNF`` of the sibling
modules is ideal for studying the calculus but rebuilds intermediate
transition regexes.  This module fuses the whole pipeline into one
memoized recursion producing a *clean conditional tree*:

* an interned binary decision tree over character predicates,
* every branch satisfiable given the predicates on its path (the
  paper's "clean" property, maintained by on-the-fly pruning with
  the extensional character algebra),
* each leaf a finite *set* of EREs denoting their union — the leaves
  of the paper's DNF, so ``Q(delta_dnf(R))`` is literally the union of
  the leaf sets.

The engine memoizes trees per regex, so repeatedly deriving the same
state (which the solver does constantly) is a dictionary lookup.  Tests
check this engine pointwise against the literal pipeline and against
classical Brzozowski derivatives.
"""

from repro.errors import UnsupportedError
from repro.obs import Observability
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOK_KINDS, LOOP, PRED,
    UNION,
)


class Leaf:
    """A DNF leaf: a frozenset of EREs, denoting their union.

    The empty set denotes ``bottom``.  Interned by the engine.
    """

    __slots__ = ("regexes", "uid")

    def __init__(self, regexes, uid):
        self.regexes = regexes
        self.uid = uid

    is_leaf = True

    def __repr__(self):
        return "Leaf({%s})" % ", ".join(sorted(repr(r) for r in self.regexes))


class Node:
    """An internal decision node: branch on a character predicate."""

    __slots__ = ("pred", "then", "other", "uid")

    def __init__(self, pred, then, other, uid):
        self.pred = pred
        self.then = then
        self.other = other
        self.uid = uid

    is_leaf = False

    def __repr__(self):
        return "Node(%r, %r, %r)" % (self.pred, self.then, self.other)


_UNION = "union"
_INTER = "inter"


class DerivativeEngine:
    """Clean conditional-tree derivative computation for one builder."""

    def __init__(self, builder, obs=None):
        self.builder = builder
        self.algebra = builder.algebra
        self.obs = obs if obs is not None else Observability()
        self._trees = {}       # structural key -> interned tree
        self._leaves = {}      # frozenset key -> interned Leaf
        self._next_uid = 0
        self._deriv_memo = {}  # regex uid -> tree
        self._meld_memo = {}   # (op, uid, uid, path) -> tree
        # hot-path counters are plain ints (a bare ``+=`` beats even a
        # no-op method call at derivative/meld frequencies); they're
        # pushed into the registry by sync_metrics() at query boundaries
        self.sat_checks = 0
        self.deriv_memo_hits = 0
        self.deriv_memo_misses = 0
        self.meld_memo_hits = 0
        self.meld_memo_misses = 0
        #: bound ``tracer.span`` when tracing is live, else None — hot
        #: paths test this one attribute instead of entering null spans
        self._span = (
            self.obs.tracer.span if self.obs.tracer.enabled else None
        )

    def sync_metrics(self):
        """Publish the plain-int counters into the ``deriv`` scope of
        the metrics registry (no-op when metrics are disabled)."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        scope = metrics.scope("deriv")
        scope.counter("sat_checks").value = self.sat_checks
        scope.counter("deriv_memo_hits").value = self.deriv_memo_hits
        scope.counter("deriv_memo_misses").value = self.deriv_memo_misses
        scope.counter("meld_memo_hits").value = self.meld_memo_hits
        scope.counter("meld_memo_misses").value = self.meld_memo_misses

    # -- interning ---------------------------------------------------------

    def leaf(self, regexes):
        """Interned leaf for a set of regexes (normalized)."""
        builder = self.builder
        normalized = set()
        for r in regexes:
            if r is builder.empty:
                continue
            if r is builder.full:
                normalized = {builder.full}
                break
            normalized.add(r)
        key = frozenset(r.uid for r in normalized)
        cached = self._leaves.get(key)
        if cached is None:
            cached = Leaf(frozenset(normalized), self._next_uid)
            self._next_uid += 1
            self._leaves[key] = cached
        return cached

    def node(self, pred, then, other):
        """Interned decision node; collapses equal branches."""
        if then is other:
            return then
        key = (pred, then.uid, other.uid)
        cached = self._trees.get(key)
        if cached is None:
            cached = Node(pred, then, other, self._next_uid)
            self._next_uid += 1
            self._trees[key] = cached
        return cached

    @property
    def bottom_leaf(self):
        return self.leaf(())

    # -- leaf algebra --------------------------------------------------------

    def _leaf_combine(self, op, a, b):
        builder = self.builder
        if op == _UNION:
            return self.leaf(a.regexes | b.regexes)
        # intersection of two unions: cross products of conjuncts
        if not a.regexes or not b.regexes:
            return self.bottom_leaf
        return self.leaf(
            builder.inter([x, y]) for x in a.regexes for y in b.regexes
        )

    def _leaf_negate(self, a):
        builder = self.builder
        # ~(A | B | ...) = ~A & ~B & ...; ~bottom = .*
        if not a.regexes:
            return self.leaf((builder.full,))
        return self.leaf((builder.inter([builder.compl(r) for r in a.regexes]),))

    # -- tree algebra -----------------------------------------------------------

    def meld(self, op, a, b, path=None):
        """Combine two clean trees under ``op``, pruning unsat branches.

        ``path`` is the conjunction of predicates assumed so far; the
        result is clean relative to ``path``.
        """
        if path is None:
            if self._span is not None:
                with self._span("deriv.meld"):
                    return self._meld(op, a, b, self.algebra.top)
            return self._meld(op, a, b, self.algebra.top)
        return self._meld(op, a, b, path)

    def _meld(self, op, a, b, path):
        algebra = self.algebra
        if a.is_leaf and b.is_leaf:
            return self._leaf_combine(op, a, b)
        key = (op, a.uid, b.uid, path)
        cached = self._meld_memo.get(key)
        if cached is not None:
            self.meld_memo_hits += 1
            return cached
        self.meld_memo_misses += 1
        # split on whichever side has a decision node (prefer a)
        pivot, rest, swapped = (a, b, False) if not a.is_leaf else (b, a, True)
        then_path = algebra.conj(path, pivot.pred)
        else_path = algebra.conj(path, algebra.neg(pivot.pred))
        self.sat_checks += 2
        if not algebra.is_sat(then_path):
            left, right = (pivot.other, rest) if not swapped else (rest, pivot.other)
            result = self._meld(op, left, right, path)
        elif not algebra.is_sat(else_path):
            left, right = (pivot.then, rest) if not swapped else (rest, pivot.then)
            result = self._meld(op, left, right, path)
        else:
            rest_then = self._restrict(rest, then_path)
            rest_else = self._restrict(rest, else_path)
            if swapped:
                result = self.node(
                    pivot.pred,
                    self._meld(op, rest_then, pivot.then, then_path),
                    self._meld(op, rest_else, pivot.other, else_path),
                )
            else:
                result = self.node(
                    pivot.pred,
                    self._meld(op, pivot.then, rest_then, then_path),
                    self._meld(op, pivot.other, rest_else, else_path),
                )
        self._meld_memo[key] = result
        return result

    def _restrict(self, tree, path):
        """Prune branches of ``tree`` that are unsat under ``path``."""
        if tree.is_leaf:
            return tree
        algebra = self.algebra
        then_path = algebra.conj(path, tree.pred)
        else_path = algebra.conj(path, algebra.neg(tree.pred))
        self.sat_checks += 2
        if not algebra.is_sat(then_path):
            return self._restrict(tree.other, path)
        if not algebra.is_sat(else_path):
            return self._restrict(tree.then, path)
        return self.node(
            tree.pred,
            self._restrict(tree.then, then_path),
            self._restrict(tree.other, else_path),
        )

    def negate(self, tree):
        """Dual tree: complement every leaf (Lemma 4.2 at tree level)."""
        if tree.is_leaf:
            return self._leaf_negate(tree)
        return self.node(tree.pred, self.negate(tree.then), self.negate(tree.other))

    def concat(self, tree, regex):
        """``tree . regex``: append to every leaf alternative."""
        builder = self.builder
        if regex is builder.epsilon:
            return tree
        if tree.is_leaf:
            return self.leaf(builder.concat([r, regex]) for r in tree.regexes)
        return self.node(
            tree.pred, self.concat(tree.then, regex), self.concat(tree.other, regex)
        )

    # -- the derivative ------------------------------------------------------------

    def derivative(self, regex):
        """The clean conditional tree for ``delta_dnf(regex)``."""
        cached = self._deriv_memo.get(regex.uid)
        if cached is not None:
            self.deriv_memo_hits += 1
            return cached
        self.deriv_memo_misses += 1
        if self._span is not None:
            with self._span("deriv.tree", uid=regex.uid):
                result = self._derive(regex)
        else:
            result = self._derive(regex)
        self._deriv_memo[regex.uid] = result
        return result

    def _derive(self, regex):
        builder = self.builder
        kind = regex.kind
        if kind in (EMPTY, EPSILON):
            return self.bottom_leaf
        if kind == PRED:
            eps_leaf = self.leaf((builder.epsilon,))
            if self.algebra.is_valid(regex.pred):
                return eps_leaf
            return self.node(regex.pred, eps_leaf, self.bottom_leaf)
        if kind == CONCAT:
            head = regex.children[0]
            tail = builder.concat(list(regex.children[1:]))
            left = self.concat(self.derivative(head), tail)
            if head.nullable:
                return self.meld(_UNION, left, self.derivative(tail))
            return left
        if kind == LOOP:
            body = regex.children[0]
            lo = max(regex.lo - 1, 0)
            hi = regex.hi if regex.hi is INF else regex.hi - 1
            return self.concat(self.derivative(body), builder.loop(body, lo, hi))
        if kind == UNION:
            return self._fold(_UNION, regex.children)
        if kind == INTER:
            return self._fold(_INTER, regex.children)
        if kind == COMPL:
            return self.negate(self.derivative(regex.children[0]))
        if kind in LOOK_KINDS:
            # assertions are positional: their truth at a state depends
            # on context the fused automaton does not carry, and the
            # compositional concat rule above would silently mis-derive
            # through them.  Typed refusal; the solver eliminates
            # lookarounds (repro.regex.transform) before reaching here.
            raise UnsupportedError(
                "conditional-tree derivatives do not support zero-width "
                "assertions; eliminate lookarounds first"
            )
        raise AssertionError("unknown node kind %r" % kind)

    def _fold(self, op, children):
        result = self.derivative(children[0])
        for child in children[1:]:
            result = self.meld(op, result, self.derivative(child))
        return result

    # -- lifecycle -----------------------------------------------------------------

    def cache_entries(self):
        """Total entries across the engine's four tables (used by the
        lifecycle layer's accounting)."""
        return (
            len(self._trees) + len(self._leaves)
            + len(self._deriv_memo) + len(self._meld_memo)
        )

    def compact(self, live):
        """Retire cache entries for regexes not in ``live`` (a mapping
        of uid -> regex built by :class:`repro.solver.lifecycle.EngineState`).

        Keeps the derivative memo entries of live regexes, the interned
        trees reachable from those entries, and the meld memo entries
        whose operands and result all survive.  Tree uids are never
        reused (``_next_uid`` is untouched), so interning stays sound
        for any tree a caller might still hold.  Returns the number of
        retired entries.
        """
        before = self.cache_entries()
        kept_memo = {
            uid: tree for uid, tree in self._deriv_memo.items() if uid in live
        }
        live_trees = {}
        stack = list(kept_memo.values())
        while stack:
            t = stack.pop()
            if t.uid in live_trees:
                continue
            live_trees[t.uid] = t
            if not t.is_leaf:
                stack.append(t.then)
                stack.append(t.other)
        self._deriv_memo = kept_memo
        self._trees = {
            (t.pred, t.then.uid, t.other.uid): t
            for t in live_trees.values() if not t.is_leaf
        }
        self._leaves = {
            frozenset(r.uid for r in t.regexes): t
            for t in live_trees.values() if t.is_leaf
        }
        self._meld_memo = {
            key: tree for key, tree in self._meld_memo.items()
            if key[1] in live_trees and key[2] in live_trees
            and tree.uid in live_trees
        }
        return before - self.cache_entries()

    # -- consumers ------------------------------------------------------------------

    def apply(self, tree, char):
        """Evaluate the tree at a character: the derivative regex.

        Out-of-domain characters derive to bottom: the in_domain check
        is required here because valid predicates are short-circuited
        to unconditional branches (``.`` derives to an eps leaf with no
        guard to fail), so leaf-walking alone would match them.
        """
        builder = self.builder
        if not self.algebra.in_domain(char):
            return builder.empty
        node = tree
        while not node.is_leaf:
            node = node.then if self.algebra.member(char, node.pred) else node.other
        return builder.union(list(node.regexes))

    def derive_regex(self, regex, char):
        """``D_char(regex)`` via the conditional tree."""
        return self.apply(self.derivative(regex), char)

    def derive_string(self, regex, string):
        """Iterated derivative over a whole string."""
        current = regex
        for char in string:
            current = self.derive_regex(current, char)
        return current

    def successors(self, regex):
        """``Q(delta_dnf(regex))``: all nontrivial leaf alternatives."""
        builder = self.builder
        out = set()
        stack = [self.derivative(regex)]
        seen = set()
        while stack:
            tree = stack.pop()
            if tree.uid in seen:
                continue
            seen.add(tree.uid)
            if tree.is_leaf:
                out.update(
                    r for r in tree.regexes
                    if r is not builder.empty and r is not builder.full
                )
            else:
                stack.append(tree.then)
                stack.append(tree.other)
        return out

    def transitions(self, regex):
        """Enumerate ``(guard, leaf-regex-set)`` pairs: each guard is the
        satisfiable path predicate of one leaf of the derivative tree.

        The guards partition the character space; this is the "local
        minterms for free" view of the conditional tree.
        """
        algebra = self.algebra
        out = []

        def walk(tree, path):
            if tree.is_leaf:
                out.append((path, tree.regexes))
                return
            walk(tree.then, algebra.conj(path, tree.pred))
            walk(tree.other, algebra.conj(path, algebra.neg(tree.pred)))

        walk(self.derivative(regex), algebra.top)
        return out

    def matches(self, regex, string):
        """Full-match decision by iterated derivation (Theorem 4.3)."""
        return self.derive_string(regex, string).nullable
