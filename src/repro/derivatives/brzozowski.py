"""Classical Brzozowski derivatives (paper, Section 8.1).

``D_a(R)`` for a *concrete* character ``a`` extends to the whole ERE
class.  This module provides:

* the per-character derivative — the reference against which Theorem
  4.3 (``delta(R)(a) == D_a(R)``) is tested;
* derivative-based matching;
* the *finitization* view: treating ``Minterms(Psi_R)`` as a finite
  alphabet and deriving per minterm, which is the classically complete
  but potentially exponential approach the paper contrasts with
  (Section 8.3) and which backs one of the baseline solvers.
"""

from repro.alphabet.minterms import minterms
from repro.errors import UnsupportedError
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOK_KINDS, LOOP, PRED,
    UNION,
)


def brzozowski(builder, regex, char):
    """The classical derivative ``D_char(regex)``.

    Out-of-domain characters derive to bottom (checked up front:
    ``D_a(~R) = ~D_a(R)`` would otherwise wrongly admit them).
    """
    if not builder.algebra.in_domain(char):
        return builder.empty
    memo = {}

    def go(node):
        cached = memo.get(node.uid)
        if cached is not None:
            return cached
        result = _derive(builder, node, char, go)
        memo[node.uid] = result
        return result

    return go(regex)


def _derive(builder, node, char, go):
    kind = node.kind
    if kind in (EMPTY, EPSILON):
        return builder.empty
    if kind == PRED:
        if builder.algebra.member(char, node.pred):
            return builder.epsilon
        return builder.empty
    if kind == CONCAT:
        head = node.children[0]
        tail = builder.concat(list(node.children[1:]))
        left = builder.concat([go(head), tail])
        if head.nullable:
            return builder.union([left, go(tail)])
        return left
    if kind == LOOP:
        body = node.children[0]
        lo = max(node.lo - 1, 0)
        hi = node.hi if node.hi is INF else node.hi - 1
        return builder.concat([go(body), builder.loop(body, lo, hi)])
    if kind == UNION:
        return builder.union([go(c) for c in node.children])
    if kind == INTER:
        return builder.inter([go(c) for c in node.children])
    if kind == COMPL:
        return builder.compl(go(node.children[0]))
    if kind in LOOK_KINDS:
        # the zero-width node-local derivative is bottom, but iterated
        # matching through the compositional concat rule would then be
        # silently wrong (e.g. "(?=a)a" would derive to bottom on 'a'):
        # refuse with a typed error so callers degrade to unknown —
        # eliminate lookarounds first (repro.regex.transform)
        raise UnsupportedError(
            "Brzozowski derivatives do not support zero-width "
            "assertions; eliminate lookarounds first"
        )
    raise AssertionError("unknown node kind %r" % kind)


def derive_string(builder, regex, string):
    """Iterated classical derivative over a string."""
    current = regex
    for char in string:
        current = brzozowski(builder, current, char)
    return current


def matches(builder, regex, string):
    """Membership by Brzozowski's theorem: derive, then test nullable."""
    return derive_string(builder, regex, string).nullable


def minterm_transitions(builder, regex):
    """Transitions of the regex-as-state under the finitized alphabet.

    Returns ``[(minterm, derivative-regex)]`` where the minterms are
    built from *all* predicates of ``regex`` — up to ``2**n`` of them.
    This is the up-front mintermization cost the symbolic approach
    avoids; the baseline solver built on this exhibits the blowup the
    paper describes for e.g. Unicode character classes.
    """
    algebra = builder.algebra
    parts = minterms(algebra, sorted_predicates(regex))
    out = []
    for part in parts:
        witness = algebra.pick(part)
        out.append((part, brzozowski(builder, regex, witness)))
    return out


def sorted_predicates(regex):
    """``Psi_R`` in a deterministic order (for reproducible minterms)."""
    preds = list(regex.predicates())
    preds.sort(key=repr)
    return preds
