"""Antimirov partial derivatives and linear forms (paper, Section 8.1).

For standard regexes the *linear form* ``lin(R)`` is a finite set of
pairs ``(phi, R')`` such that ``L(R) = nullable-part ∪ ⋃ phi·L(R')``;
the targets are Antimirov's partial derivatives and correspond to NFA
transitions.

Following [17]/[43] (the CVC4-style approach) intersection is handled
by pairwise conjunction of linear forms — a local product construction,
quadratic per step.  Complement is *not* expressible in this framework
(the paper's key observation); :func:`linear_form` raises
:class:`~repro.errors.UnsupportedError` on ``~``, which the baseline
solver surfaces as an *unknown* answer, mirroring the behaviour of
tools without complement support in the paper's evaluation.
"""

from repro.errors import UnsupportedError
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOK_KINDS, LOOP, PRED,
    UNION,
)


def linear_form(builder, regex):
    """``lin(R)``: list of ``(predicate, continuation-regex)`` pairs.

    The pairs need not have disjoint predicates (this is an NFA view);
    unsatisfiable pairs are dropped.
    """
    algebra = builder.algebra
    kind = regex.kind
    if kind in (EMPTY, EPSILON):
        return []
    if kind == PRED:
        return [(regex.pred, builder.epsilon)]
    if kind == CONCAT:
        head = regex.children[0]
        tail = builder.concat(list(regex.children[1:]))
        pairs = [
            (phi, builder.concat([cont, tail]))
            for phi, cont in linear_form(builder, head)
        ]
        if head.nullable:
            pairs.extend(linear_form(builder, tail))
        return _dedup(pairs)
    if kind == LOOP:
        body = regex.children[0]
        lo = max(regex.lo - 1, 0)
        hi = regex.hi if regex.hi is INF else regex.hi - 1
        rest = builder.loop(body, lo, hi)
        return _dedup(
            (phi, builder.concat([cont, rest]))
            for phi, cont in linear_form(builder, body)
        )
    if kind == UNION:
        pairs = []
        for child in regex.children:
            pairs.extend(linear_form(builder, child))
        return _dedup(pairs)
    if kind == INTER:
        # pairwise product of the children's linear forms
        current = linear_form(builder, regex.children[0])
        for child in regex.children[1:]:
            child_pairs = linear_form(builder, child)
            merged = []
            for phi, cont in current:
                for psi, cont2 in child_pairs:
                    guard = algebra.conj(phi, psi)
                    if algebra.is_sat(guard):
                        merged.append((guard, builder.inter([cont, cont2])))
            current = _dedup(merged)
        return current
    if kind == COMPL:
        raise UnsupportedError(
            "Antimirov partial derivatives do not support complement"
        )
    if kind in LOOK_KINDS:
        raise UnsupportedError(
            "Antimirov partial derivatives do not support zero-width "
            "assertions; eliminate lookarounds first"
        )
    raise AssertionError("unknown node kind %r" % kind)


def _dedup(pairs):
    seen = set()
    out = []
    for phi, cont in pairs:
        key = (phi, cont.uid)
        if key not in seen:
            seen.add(key)
            out.append((phi, cont))
    return out


def partial_derivatives(builder, regex, char):
    """``∂_char(R)``: the set of partial derivatives w.r.t. a character.

    The union of the returned set is the Brzozowski derivative (tested).
    """
    algebra = builder.algebra
    return {
        cont for phi, cont in linear_form(builder, regex)
        if algebra.member(char, phi)
    }


def matches(builder, regex, string):
    """NFA-style matching with partial-derivative state sets."""
    states = {regex}
    for char in string:
        states = {
            target
            for state in states
            for target in partial_derivatives(builder, state, char)
        }
        if not states:
            return False
    return any(state.nullable for state in states)


def reachable_states(builder, regex, limit=100000):
    """All partial-derivative states reachable from ``regex``.

    This is the (symbolic) Antimirov NFA state space; for standard
    regexes it is linear in the regex size, which the tests check
    against Theorem 7.3's SBFA bound.
    """
    seen = {regex}
    stack = [regex]
    while stack:
        state = stack.pop()
        for _, target in linear_form(builder, state):
            if target not in seen:
                if len(seen) >= limit:
                    raise UnsupportedError("state limit exceeded")
                seen.add(target)
                stack.append(target)
    return seen
