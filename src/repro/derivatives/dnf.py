"""Disjunctive normal form of transition regexes (paper, Sections 4–5).

A transition regex is in DNF when it is a disjunction of conditional
regexes whose leaves are all plain EREs — union and if-then-else pushed
outwards over complement and intersection.  The decision procedure
requires its derivatives in this form (``delta_dnf``) so that the
``ite``/``or``/``ere`` propagation rules of Figure 3 apply directly and
no (incomplete) propagation rules for ``&``/``~`` are needed.
"""

from repro.derivatives.derivative import derivative
from repro.derivatives.lift import lift
from repro.derivatives.nnf import nnf
from repro.derivatives.transition import (
    TRCond, TRInter, TRLeaf, TRUnion, nontrivial_terminals,
)


def dnf(builder, tr):
    """Normalize an arbitrary transition regex into DNF."""
    return lift(builder, nnf(builder, tr))


def delta_dnf(builder, regex):
    """``delta_dnf(R)``: the symbolic derivative of ``R`` in DNF."""
    return dnf(builder, derivative(builder, regex))


def is_dnf(tr):
    """Check the DNF shape: disjunctions of conditionals over leaves,
    with no intersection or complement above the leaf level."""
    if isinstance(tr, TRUnion):
        return all(is_dnf(c) for c in tr.children)
    return _is_conditional_regex(tr)


def _is_conditional_regex(tr):
    if isinstance(tr, TRLeaf):
        return True
    if isinstance(tr, TRCond):
        return _is_conditional_over_leaves(tr)
    return False


def _is_conditional_over_leaves(tr):
    if isinstance(tr, TRLeaf):
        return True
    if isinstance(tr, TRCond):
        return _is_conditional_over_leaves(tr.then) and _is_conditional_over_leaves(
            tr.other
        )
    if isinstance(tr, TRUnion):
        # unions of leaves below a conditional are a union regex in
        # disguise; we accept them (the solver folds them on demand)
        return all(_is_conditional_over_leaves(c) for c in tr.children)
    return False


def successors(builder, regex):
    """``Q(delta_dnf(R))``: the nontrivial leaves of the DNF derivative.

    These are exactly the vertices the solver graph adds as targets of
    ``R`` (Figure 3b, the ``upd`` rule).
    """
    return nontrivial_terminals(builder, delta_dnf(builder, regex))
