"""The lift rules (paper, Section 4.1).

``lift`` transforms an NNF transition regex into an equivalent one in
which conditionals sit at the top and intersections have been pushed
into the ERE leaves.  The branch condition ``psi`` (initially the top
predicate) records the conjunction of guards on the current path; it is
kept satisfiable throughout, so dead branches are eliminated on the fly
and the resulting transition regex is *clean* — in every conditional
both branches are reachable.
"""

from repro.derivatives.transition import (
    TRCond, TRInter, TRLeaf, TRUnion,
)
from repro.derivatives.nnf import is_nnf


def lift(builder, tr):
    """Lift conditionals to the top of an NNF transition regex."""
    if not is_nnf(tr):
        raise ValueError("lift expects an NNF transition regex")
    return _lift(builder, tr, builder.algebra.top)


def _lift(builder, tr, psi):
    algebra = builder.algebra
    if not algebra.is_sat(psi):
        return TRLeaf(builder.empty)
    if isinstance(tr, TRLeaf):
        # lift_psi(R) = R when psi is top, else if(psi, R, bot); we keep
        # the plain leaf in both cases because the caller has already
        # committed to the branch — guarding again is sound but noisy.
        return tr
    if isinstance(tr, TRCond):
        then_psi = algebra.conj(psi, tr.pred)
        else_psi = algebra.conj(psi, algebra.neg(tr.pred))
        if not algebra.is_sat(then_psi):
            return _lift(builder, tr.other, psi)
        if not algebra.is_sat(else_psi):
            return _lift(builder, tr.then, psi)
        return TRCond(
            tr.pred,
            _lift(builder, tr.then, then_psi),
            _lift(builder, tr.other, else_psi),
        )
    if isinstance(tr, TRUnion):
        return TRUnion(tuple(_lift(builder, c, psi) for c in tr.children))
    if isinstance(tr, TRInter):
        return _lift_inter(builder, list(tr.children), psi)
    raise TypeError("unexpected node in NNF transition regex: %r" % (tr,))


def _lift_inter(builder, conjuncts, psi):
    """Lift an intersection of NNF transition regexes."""
    algebra = builder.algebra
    if not algebra.is_sat(psi):
        return TRLeaf(builder.empty)
    # flatten nested intersections first
    flat = []
    for c in conjuncts:
        if isinstance(c, TRInter):
            flat.extend(c.children)
        else:
            flat.append(c)
    # lift_psi((t1 | t2) & rho) = lift_psi(t1 & rho) | lift_psi(t2 & rho)
    for i, c in enumerate(flat):
        if isinstance(c, TRUnion):
            rest = flat[:i] + flat[i + 1:]
            return TRUnion(
                tuple(_lift_inter(builder, rest + [alt], psi) for alt in c.children)
            )
    # lift_psi(if(phi,t,f) & rho) = lift_psi(if(phi, t & rho, f & rho))
    for i, c in enumerate(flat):
        if isinstance(c, TRCond):
            rest = flat[:i] + flat[i + 1:]
            then_psi = algebra.conj(psi, c.pred)
            else_psi = algebra.conj(psi, algebra.neg(c.pred))
            if not algebra.is_sat(then_psi):
                return _lift_inter(builder, rest + [c.other], psi)
            if not algebra.is_sat(else_psi):
                return _lift_inter(builder, rest + [c.then], psi)
            return TRCond(
                c.pred,
                _lift_inter(builder, rest + [c.then], then_psi),
                _lift_inter(builder, rest + [c.other], else_psi),
            )
    # all conjuncts are leaves: push the intersection into the regex
    return TRLeaf(builder.inter([c.regex for c in flat]))
