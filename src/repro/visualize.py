"""Rendering derivative graphs and SBFAs (the paper's Figures 2 & 5).

Text and Graphviz-dot output for:

* the derivative transition structure of a regex (states = regexes,
  edges labelled with guard predicates — Figure 2's view);
* an SBFA's transition regexes (Figure 5's view).

Purely presentational: used by examples and docs, tested for shape.
"""

from repro.derivatives.condtree import DerivativeEngine
from repro.regex.printer import render_pred, to_pattern


def derivative_graph(builder, root, max_states=200):
    """Explore the derivative graph from ``root``.

    Returns ``(states, edges)`` where states is a list of regexes in
    discovery order and edges is a list of ``(source, guard, target)``.
    """
    engine = DerivativeEngine(builder)
    states = [root]
    seen = {root}
    edges = []
    frontier = [root]
    while frontier:
        state = frontier.pop(0)
        for guard, leaves in engine.transitions(state):
            target = builder.union(list(leaves))
            if target is builder.empty:
                continue
            edges.append((state, guard, target))
            if target not in seen:
                if len(seen) >= max_states:
                    return states, edges
                seen.add(target)
                states.append(target)
                frontier.append(target)
    return states, edges


def graph_to_text(builder, root, max_states=200):
    """A Figure 2-style textual rendering of the derivative graph."""
    algebra = builder.algebra
    states, edges = derivative_graph(builder, root, max_states)
    index = {state: i for i, state in enumerate(states)}
    lines = []
    for i, state in enumerate(states):
        marker = "((%d))" if state.nullable else "(%d)"
        lines.append(
            "%s %s" % (marker % i, to_pattern(state, algebra))
        )
    for source, guard, target in edges:
        lines.append(
            "  %d --[%s]--> %d"
            % (index[source], render_pred(guard, algebra), index[target])
        )
    return "\n".join(lines)


def graph_to_dot(builder, root, max_states=200, name="derivatives"):
    """Graphviz dot output; final states get double circles, exactly
    like the paper's figures."""
    algebra = builder.algebra
    states, edges = derivative_graph(builder, root, max_states)
    index = {state: i for i, state in enumerate(states)}
    lines = ["digraph %s {" % name, "  rankdir=LR;"]
    for i, state in enumerate(states):
        shape = "doublecircle" if state.nullable else "circle"
        label = to_pattern(state, algebra).replace("\\", "\\\\").replace('"', '\\"')
        lines.append('  n%d [shape=%s, label="%s"];' % (i, shape, label))
    for source, guard, target in edges:
        label = render_pred(guard, algebra).replace("\\", "\\\\").replace('"', '\\"')
        lines.append(
            '  n%d -> n%d [label="%s"];' % (index[source], index[target], label)
        )
    lines.append("}")
    return "\n".join(lines)


def render_explanation(explanation, name="explanation"):
    """Graphviz dot view of a verdict's provenance.

    For sat: the explored states along the witness path, with the path
    edges highlighted (bold red, labelled ``guard / chosen char``).
    For unsat: the whole explored closure — every state a plain circle
    (none can be nullable), dead states filled gray, bottom rows drawn
    as dashed edges into a single ``⊥`` sink proving the cover is
    exhaustive.  Unknown/truncated explanations render as a one-node
    note so callers need not special-case them.
    """
    algebra = explanation.algebra
    lines = ["digraph %s {" % name, "  rankdir=LR;"]

    def esc(text):
        return text.replace("\\", "\\\\").replace('"', '\\"')

    if explanation.kind not in ("sat", "unsat"):
        lines.append('  note [shape=box, label="%s: %s"];' % (
            explanation.kind, esc(explanation.reason or "no certificate"),
        ))
        lines.append("}")
        return "\n".join(lines)

    index = {state: i for i, state in enumerate(explanation.states)}
    for state, i in index.items():
        shape = "doublecircle" if state.nullable else "circle"
        attrs = ['shape=%s' % shape,
                 'label="%s"' % esc(to_pattern(state, algebra))]
        if state is explanation.root:
            attrs.append("penwidth=2")
        if explanation.flags.get(state, {}).get("dead"):
            attrs.append('style=filled, fillcolor=gray85')
        lines.append("  n%d [%s];" % (i, ", ".join(attrs)))

    if explanation.kind == "sat":
        for state, guard, char, successor in explanation.steps:
            lines.append(
                '  n%d -> n%d [label="%s / %s", color=red, penwidth=2];'
                % (index[state], index[successor],
                   esc(render_pred(guard, algebra)), esc(repr(char)))
            )
    else:
        bottom_used = False
        for state in explanation.states:
            for guard, targets in explanation.rows.get(state, ()):
                label = esc(render_pred(guard, algebra))
                if not targets:
                    bottom_used = True
                    lines.append(
                        '  n%d -> bot [label="%s", style=dashed];'
                        % (index[state], label)
                    )
                    continue
                for target in targets:
                    lines.append('  n%d -> n%d [label="%s"];'
                                 % (index[state], index[target], label))
        if bottom_used:
            lines.append('  bot [shape=point, label="", width=0.15];')
    lines.append("}")
    return "\n".join(lines)


def sbfa_to_text(sbfa, algebra=None):
    """A Figure 5-style rendering of an SBFA's transition regexes."""
    from repro.derivatives.transition import pretty

    algebra = algebra or sbfa.algebra
    lines = []
    ordered = sorted(sbfa.states, key=repr)
    for state in ordered:
        marker = "((F))" if state in sbfa.finals else "     "
        label = (
            to_pattern(state, algebra) if hasattr(state, "kind") else repr(state)
        )
        lines.append("%s %s" % (marker, label))
        lines.append("      delta = %s" % pretty(sbfa.delta[state], algebra))
    return "\n".join(lines)
