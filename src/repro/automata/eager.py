"""The eager automata compiler: "approach 1" end to end.

``eager_compile`` turns an arbitrary ERE into one SFA by recursively
compiling subterms and combining them with automaton operations:

* standard subtrees go through the Thompson construction;
* ``&`` becomes a product, ``|`` an NFA union;
* ``~`` forces determinization (subset construction) then flips finals;
* bounded loops are expanded into copies.

Everything is built *before* any question is asked — which is the
point: on adversarial inputs the :class:`~repro.automata.sfa.
StateBudget` blows before emptiness is ever checked, while the lazy
derivative solver answers in a handful of states.
"""

from repro.errors import BudgetExceeded, UnsupportedError
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOP, PRED, UNION,
)
from repro.automata.sfa import SFA, StateBudget
from repro.automata.thompson import thompson
from repro.automata import ops


def _is_standard(regex):
    return all(
        node.kind not in (INTER, COMPL) for node in regex.iter_subterms()
    )


def eager_compile(algebra, regex, budget=None):
    """Compile an ERE into an SFA, eagerly materializing all states."""
    if regex.has_look:
        raise UnsupportedError(
            "automata compilation does not support zero-width "
            "assertions; eliminate lookarounds first"
        )
    budget = budget or StateBudget()
    return _compile(algebra, regex, budget)


def _compile(algebra, regex, budget):
    if _is_standard(regex):
        return thompson(algebra, regex, budget)
    kind = regex.kind
    if kind == UNION:
        result = _compile(algebra, regex.children[0], budget)
        for child in regex.children[1:]:
            result = ops.nfa_union(result, _compile(algebra, child, budget), budget)
        return result
    if kind == INTER:
        result = _compile(algebra, regex.children[0], budget)
        for child in regex.children[1:]:
            result = ops.product(
                result, _compile(algebra, child, budget), budget, mode="inter"
            ).trim()
        return result
    if kind == COMPL:
        inner = _compile(algebra, regex.children[0], budget)
        return ops.complement(inner, budget)
    if kind == CONCAT:
        result = _compile(algebra, regex.children[0], budget)
        for child in regex.children[1:]:
            result = ops.nfa_concat(result, _compile(algebra, child, budget), budget)
        return result
    if kind == LOOP:
        body = _compile(algebra, regex.children[0], budget)
        lo, hi = regex.lo, regex.hi
        pieces = []
        for _ in range(lo):
            pieces.append(body)
        if hi is INF:
            pieces.append(ops.nfa_star(body, budget))
        else:
            optional = _optional(body, budget)
            for _ in range(hi - lo):
                pieces.append(optional)
        if not pieces:
            return _epsilon_sfa(algebra, budget)
        result = pieces[0]
        for piece in pieces[1:]:
            result = ops.nfa_concat(result, piece, budget)
        return result
    raise AssertionError("unreachable: standard kinds handled above")


def _optional(sfa, budget):
    """``A?``: add an epsilon bypass via a fresh initial/final state."""
    budget.charge(sfa.num_states + 1)
    hub = sfa.num_states
    transitions = {s: list(sfa.moves(s)) for s in range(sfa.num_states) if sfa.moves(s)}
    epsilons = {s: set(t) for s, t in sfa.epsilons.items()}
    epsilons.setdefault(hub, set()).add(sfa.initial)
    finals = set(sfa.finals) | {hub}
    return SFA(sfa.algebra, sfa.num_states + 1, hub, finals, transitions, epsilons)


def _epsilon_sfa(algebra, budget):
    budget.charge()
    return SFA(algebra, 1, 0, {0}, {}, None, deterministic=True)


class EagerSolver:
    """Baseline satisfiability solver over eager automata.

    Mirrors the legacy Z3 regex solver the paper replaced: convert the
    whole constraint to an automaton with Boolean operations, then
    check emptiness.  ``max_states`` converts state blowup into a
    budget failure, the deterministic analogue of a timeout.
    """

    def __init__(self, builder, max_states=200000):
        self.builder = builder
        self.algebra = builder.algebra
        self.max_states = max_states

    def is_satisfiable(self, regex, budget=None):
        from repro.solver.result import SAT, SolverResult, UNKNOWN, UNSAT

        states = StateBudget(self.max_states)
        try:
            sfa = eager_compile(self.algebra, regex, states)
            empty, witness = sfa.is_empty()
        except BudgetExceeded as exc:
            return SolverResult(UNKNOWN, reason=str(exc),
                                stats={"states_created": states.created})
        stats = {
            "states_created": states.created,
            "final_states": sfa.num_states,
        }
        if empty:
            return SolverResult(UNSAT, stats=stats)
        return SolverResult(SAT, witness=witness, stats=stats)
