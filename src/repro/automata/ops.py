"""Automaton-level operations: the eager Boolean pipeline.

These implement "approach 1" from the paper's introduction: propagate
logical connectives into automata operations — product for ``&``,
determinize-and-flip for ``~``.  Every operation here materializes its
full state space up front (guarded by a :class:`~repro.automata.sfa.
StateBudget`), which is exactly the blowup the symbolic-derivative
approach sidesteps.
"""

from repro.alphabet.minterms import minterms
from repro.automata.sfa import SFA, StateBudget


def remove_epsilons(sfa):
    """Equivalent epsilon-free SFA."""
    if not sfa.has_epsilons:
        return sfa
    transitions = {}
    finals = set()
    for state in range(sfa.num_states):
        closure = sfa.epsilon_closure({state})
        if closure & sfa.finals:
            finals.add(state)
        moves = []
        for reached in closure:
            moves.extend(sfa.moves(reached))
        if moves:
            transitions[state] = moves
    return SFA(
        sfa.algebra, sfa.num_states, sfa.initial, finals, transitions,
        epsilons=None, deterministic=False,
    ).trim()


def determinize(sfa, budget=None):
    """Subset construction with *local* mintermization.

    Per explored subset, the outgoing guards are refined into minterms,
    so the result is deterministic and complete (a sink subset absorbs
    the rest of the character space).  Worst case ``2**n`` subsets —
    the classical cost of complement that Figure 4's blowup benchmarks
    showcase.
    """
    budget = budget or StateBudget()
    sfa = remove_epsilons(sfa)
    algebra = sfa.algebra
    start = frozenset({sfa.initial})
    index = {start: 0}
    budget.charge()
    transitions = {}
    finals = set()
    worklist = [start]
    while worklist:
        subset = worklist.pop()
        state_id = index[subset]
        if subset & sfa.finals:
            finals.add(state_id)
        guards = []
        for state in subset:
            guards.extend(pred for pred, _ in sfa.moves(state))
        moves = []
        for part in minterms(algebra, guards):
            targets = frozenset(
                t
                for state in subset
                for pred, t in sfa.moves(state)
                if algebra.is_sat(algebra.conj(part, pred))
            )
            if targets not in index:
                budget.charge()
                index[targets] = len(index)
                worklist.append(targets)
            moves.append((part, index[targets]))
        transitions[state_id] = moves
    return SFA(
        algebra, len(index), 0, finals, transitions,
        epsilons=None, deterministic=True,
    )


def complement(sfa, budget=None):
    """``~A``: determinize (total by construction), then flip finals."""
    dfa = sfa if sfa.deterministic else determinize(sfa, budget)
    finals = set(range(dfa.num_states)) - set(dfa.finals)
    return SFA(
        dfa.algebra, dfa.num_states, dfa.initial, finals, dfa.transitions,
        epsilons=None, deterministic=True,
    )


def product(left, right, budget=None, mode="inter"):
    """Product construction: ``&`` (both accept) or ``|`` (either).

    For union the inputs must be complete (deterministic), otherwise a
    missing move on one side would wrongly kill the other's run; the
    caller determinizes first.  For intersection any epsilon-free
    automata work.
    """
    budget = budget or StateBudget()
    left = remove_epsilons(left)
    right = remove_epsilons(right)
    algebra = left.algebra
    start = (left.initial, right.initial)
    index = {start: 0}
    budget.charge()
    transitions = {}
    finals = set()
    worklist = [start]
    while worklist:
        pair = worklist.pop()
        state_id = index[pair]
        ls, rs = pair
        l_final = ls in left.finals
        r_final = rs in right.finals
        if (l_final and r_final) if mode == "inter" else (l_final or r_final):
            finals.add(state_id)
        moves = []
        for lp, lt in left.moves(ls):
            for rp, rt in right.moves(rs):
                guard = algebra.conj(lp, rp)
                if not algebra.is_sat(guard):
                    continue
                target = (lt, rt)
                if target not in index:
                    budget.charge()
                    index[target] = len(index)
                    worklist.append(target)
                moves.append((guard, index[target]))
        transitions[state_id] = moves
    deterministic = left.deterministic and right.deterministic
    return SFA(
        algebra, len(index), 0, finals, transitions,
        epsilons=None, deterministic=deterministic,
    )


def nfa_union(left, right, budget=None):
    """Disjoint union with a fresh initial state (cheap NFA ``|``)."""
    budget = budget or StateBudget()
    budget.charge(left.num_states + right.num_states + 1)
    offset_l, offset_r = 1, 1 + left.num_states
    transitions = {}
    epsilons = {0: {left.initial + offset_l, right.initial + offset_r}}
    for sfa, offset in ((left, offset_l), (right, offset_r)):
        for state in range(sfa.num_states):
            moves = [(p, t + offset) for p, t in sfa.moves(state)]
            if moves:
                transitions[state + offset] = moves
            eps = {t + offset for t in sfa.epsilons.get(state, ())}
            if eps:
                epsilons[state + offset] = eps
    finals = {s + offset_l for s in left.finals} | {s + offset_r for s in right.finals}
    total = left.num_states + right.num_states + 1
    return SFA(left.algebra, total, 0, finals, transitions, epsilons, False)


def nfa_concat(left, right, budget=None):
    """Automaton-level concatenation via epsilon links."""
    budget = budget or StateBudget()
    budget.charge(left.num_states + right.num_states)
    offset_r = left.num_states
    transitions = {}
    epsilons = {}
    for state in range(left.num_states):
        moves = left.moves(state)
        if moves:
            transitions[state] = list(moves)
        eps = set(left.epsilons.get(state, ()))
        if state in left.finals:
            eps.add(right.initial + offset_r)
        if eps:
            epsilons[state] = eps
    for state in range(right.num_states):
        moves = [(p, t + offset_r) for p, t in right.moves(state)]
        if moves:
            transitions[state + offset_r] = moves
        eps = {t + offset_r for t in right.epsilons.get(state, ())}
        if eps:
            epsilons[state + offset_r] = eps
    finals = {s + offset_r for s in right.finals}
    total = left.num_states + right.num_states
    return SFA(left.algebra, total, left.initial, finals, transitions, epsilons, False)


def nfa_star(sfa, budget=None):
    """Automaton-level Kleene star via a fresh hub state."""
    budget = budget or StateBudget()
    budget.charge(sfa.num_states + 1)
    hub = sfa.num_states
    transitions = {s: list(sfa.moves(s)) for s in range(sfa.num_states) if sfa.moves(s)}
    epsilons = {s: set(t) for s, t in sfa.epsilons.items()}
    epsilons.setdefault(hub, set()).add(sfa.initial)
    for final in sfa.finals:
        epsilons.setdefault(final, set()).add(hub)
    return SFA(
        sfa.algebra, sfa.num_states + 1, hub, {hub}, transitions, epsilons, False,
    )
