"""Symbolic finite automata (SFAs): automata modulo a character theory.

Transitions carry predicates of the character algebra instead of
letters [D'Antoni & Veanes, "Automata Modulo Theories"].  This is the
substrate for the paper's "approach 1" baseline: convert regexes to
automata eagerly, then apply Boolean operations (product, complement)
at the automaton level.

States are dense integers.  Epsilon moves are allowed (Thompson
construction produces them); most operations require them eliminated
first.
"""

from collections import deque

from repro.errors import AlgebraError, BudgetExceeded


class SFA:
    """A symbolic finite automaton.

    ``transitions`` maps each state to a list of ``(pred, target)``
    pairs; ``epsilons`` maps each state to a set of targets reachable
    without consuming input.
    """

    def __init__(self, algebra, num_states, initial, finals,
                 transitions, epsilons=None, deterministic=False):
        self.algebra = algebra
        self.num_states = num_states
        self.initial = initial
        self.finals = frozenset(finals)
        self.transitions = transitions
        self.epsilons = epsilons or {}
        self.deterministic = deterministic

    def moves(self, state):
        return self.transitions.get(state, [])

    @property
    def has_epsilons(self):
        return any(self.epsilons.values())

    def epsilon_closure(self, states):
        """All states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self.epsilons.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def accepts(self, string):
        """Membership by direct NFA simulation."""
        current = self.epsilon_closure({self.initial})
        for char in string:
            nxt = set()
            for state in current:
                for pred, target in self.moves(state):
                    if self.algebra.member(char, pred):
                        nxt.add(target)
            if not nxt:
                return False
            current = self.epsilon_closure(nxt)
        return bool(current & self.finals)

    def is_empty(self):
        """Emptiness check; returns ``(empty, witness_or_None)``."""
        algebra = self.algebra
        start = self.epsilon_closure({self.initial})
        if start & self.finals:
            return False, ""
        parent = {s: None for s in start}
        queue = deque(start)
        while queue:
            state = queue.popleft()
            for pred, target in self.moves(state):
                if not algebra.is_sat(pred):
                    continue
                for reached in self.epsilon_closure({target}):
                    if reached not in parent:
                        parent[reached] = (state, algebra.pick(pred))
                        if reached in self.finals:
                            return False, _reconstruct(parent, reached)
                        queue.append(reached)
        return True, None

    def reachable_states(self):
        """States reachable from the initial state."""
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            nexts = [t for _, t in self.moves(state)]
            nexts.extend(self.epsilons.get(state, ()))
            for target in nexts:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def trim(self):
        """Restrict to reachable states, renumbering densely."""
        keep = sorted(self.reachable_states())
        remap = {old: new for new, old in enumerate(keep)}
        transitions = {
            remap[s]: [(p, remap[t]) for p, t in self.moves(s) if t in remap]
            for s in keep
        }
        epsilons = {
            remap[s]: {remap[t] for t in self.epsilons.get(s, ()) if t in remap}
            for s in keep
        }
        return SFA(
            self.algebra, len(keep), remap[self.initial],
            {remap[s] for s in self.finals if s in remap},
            transitions, epsilons, self.deterministic,
        )

    def transition_count(self):
        return sum(len(moves) for moves in self.transitions.values())

    def check_deterministic(self):
        """Verify the determinism invariant: per-state guards are
        pairwise disjoint (used in tests)."""
        algebra = self.algebra
        if self.has_epsilons:
            return False
        for state in range(self.num_states):
            moves = self.moves(state)
            for i, (p, _) in enumerate(moves):
                for q, _ in moves[i + 1:]:
                    if algebra.is_sat(algebra.conj(p, q)):
                        return False
        return True

    def __repr__(self):
        return "SFA(states=%d, transitions=%d, det=%s)" % (
            self.num_states, self.transition_count(), self.deterministic,
        )


def _reconstruct(parent, state):
    chars = []
    node = state
    while parent[node] is not None:
        node, char = parent[node]
        chars.append(char)
    return "".join(reversed(chars))


class StateBudget:
    """Caps eager constructions; exceeding it is the state-space
    blowup the paper's lazy approach avoids."""

    def __init__(self, max_states=None):
        self.max_states = max_states
        self.created = 0

    def charge(self, amount=1):
        self.created += amount
        if self.max_states is not None and self.created > self.max_states:
            raise BudgetExceeded(
                "automaton state budget exceeded (%d states)" % self.created
            )
