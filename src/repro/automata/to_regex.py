"""Automaton-to-regex conversion by state elimination
(Brzozowski–McCluskey).

Completes the classical round trip regex → automaton → regex: edges are
relabelled with regexes, states are eliminated one at a time with the
rule ``in . loop* . out``, and the final two-state system reads off the
language.  Predicate edges become predicate regexes, so the conversion
is fully symbolic.

Used by tests as yet another independent semantics cross-check, and by
the examples to show round trips through the automata substrate.
"""

from repro.automata.ops import remove_epsilons


def to_regex(sfa, builder):
    """A regex for ``L(sfa)`` over the given builder's algebra."""
    sfa = remove_epsilons(sfa.trim())
    # generalized-NFA edge labels: (source, target) -> regex
    edges = {}

    def add_edge(source, target, regex):
        key = (source, target)
        existing = edges.get(key)
        edges[key] = (
            regex if existing is None else builder.union([existing, regex])
        )

    for state in range(sfa.num_states):
        for pred, target in sfa.moves(state):
            add_edge(state, target, builder.pred(pred))

    # fresh initial and final states with epsilon edges
    initial = sfa.num_states
    final = sfa.num_states + 1
    add_edge(initial, sfa.initial, builder.epsilon)
    for accepting in sfa.finals:
        add_edge(accepting, final, builder.epsilon)

    # eliminate original states one by one
    for victim in range(sfa.num_states):
        loop = edges.pop((victim, victim), None)
        loop_star = builder.star(loop) if loop is not None else builder.epsilon
        incoming = [
            (source, regex) for (source, target), regex in edges.items()
            if target == victim and source != victim
        ]
        outgoing = [
            (target, regex) for (source, target), regex in edges.items()
            if source == victim and target != victim
        ]
        for source, in_regex in incoming:
            del edges[(source, victim)]
        for target, out_regex in outgoing:
            del edges[(victim, target)]
        for source, in_regex in incoming:
            for target, out_regex in outgoing:
                add_edge(
                    source, target,
                    builder.concat([in_regex, loop_star, out_regex]),
                )

    return edges.get((initial, final), builder.empty)
