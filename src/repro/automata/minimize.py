"""DFA minimization modulo the character theory (Moore refinement).

Used by the eager baseline ("these can be eliminated through
minimization of automata, but only after the fact" — the paper's point
is that minimization cannot recoup the cost of having built the states
in the first place; the benchmarks measure exactly that), and by the
test suite as an equivalence check between automata.

The refinement signature of a state groups its outgoing guards by
target block; because our algebras are extensional, two predicate
unions are equal iff semantically equivalent, so signatures are plain
hashable values.
"""

from repro.automata.sfa import SFA


def minimize(dfa):
    """Minimal DFA equivalent to a deterministic, complete input."""
    if not dfa.deterministic:
        raise ValueError("minimize expects a deterministic SFA")
    dfa = dfa.trim()
    algebra = dfa.algebra
    # initial partition: finals vs non-finals
    block_of = {
        state: (1 if state in dfa.finals else 0)
        for state in range(dfa.num_states)
    }
    while True:
        signatures = {}
        for state in range(dfa.num_states):
            merged = {}
            for pred, target in dfa.moves(state):
                block = block_of[target]
                merged[block] = (
                    pred if block not in merged
                    else algebra.disj(merged[block], pred)
                )
            signatures[state] = (
                block_of[state], frozenset(merged.items()),
            )
        remap = {}
        new_block_of = {}
        for state in range(dfa.num_states):
            signature = signatures[state]
            if signature not in remap:
                remap[signature] = len(remap)
            new_block_of[state] = remap[signature]
        if len(remap) == len(set(block_of.values())):
            break
        block_of = new_block_of
    # build quotient automaton
    num_blocks = len(set(block_of.values()))
    transitions = {}
    finals = set()
    for state in range(dfa.num_states):
        block = block_of[state]
        if state in dfa.finals:
            finals.add(block)
        if block in transitions:
            continue
        merged = {}
        for pred, target in dfa.moves(state):
            tb = block_of[target]
            merged[tb] = (
                pred if tb not in merged else algebra.disj(merged[tb], pred)
            )
        transitions[block] = sorted(
            ((p, t) for t, p in merged.items()), key=lambda pt: pt[1]
        )
    return SFA(
        algebra, num_blocks, block_of[dfa.initial], finals, transitions,
        epsilons=None, deterministic=True,
    )


def equivalent(left, right):
    """Language equivalence of two deterministic complete SFAs, by
    synchronized product search for a distinguishing state pair."""
    algebra = left.algebra
    seen = {(left.initial, right.initial)}
    stack = [(left.initial, right.initial)]
    while stack:
        ls, rs = stack.pop()
        if (ls in left.finals) != (rs in right.finals):
            return False
        for lp, lt in left.moves(ls):
            for rp, rt in right.moves(rs):
                if not algebra.is_sat(algebra.conj(lp, rp)):
                    continue
                pair = (lt, rt)
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)
    return True
