"""Thompson-style construction: standard regexes to symbolic NFAs.

Bounded loops are *expanded* (``R{0,100}`` really produces ~100 copies
of the body automaton).  That is not an oversight: it is precisely the
behaviour of eager automata pipelines that the paper's blowup
benchmarks target — counting constraints translate into state counts
before any Boolean operation even starts.

Only standard regexes (no ``&``/``~``) are handled here; the eager
baseline treats Boolean operators at the automaton level
(:mod:`repro.automata.ops`).
"""

from repro.errors import UnsupportedError
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INF, INTER, LOOK_KINDS, LOOP, PRED,
    UNION,
)
from repro.automata.sfa import SFA, StateBudget


class _NfaBuilder:
    def __init__(self, algebra, budget):
        self.algebra = algebra
        self.budget = budget
        self.transitions = {}
        self.epsilons = {}
        self.count = 0

    def new_state(self):
        self.budget.charge()
        state = self.count
        self.count += 1
        return state

    def add(self, source, pred, target):
        self.transitions.setdefault(source, []).append((pred, target))

    def add_eps(self, source, target):
        self.epsilons.setdefault(source, set()).add(target)

    def fragment(self, regex):
        """Build a fragment; returns (entry, exit) states."""
        kind = regex.kind
        if kind == EMPTY:
            return self.new_state(), self.new_state()  # disconnected
        if kind == EPSILON:
            entry = self.new_state()
            exit_ = self.new_state()
            self.add_eps(entry, exit_)
            return entry, exit_
        if kind == PRED:
            entry = self.new_state()
            exit_ = self.new_state()
            self.add(entry, regex.pred, exit_)
            return entry, exit_
        if kind == CONCAT:
            entry, current = None, None
            for child in regex.children:
                c_entry, c_exit = self.fragment(child)
                if entry is None:
                    entry = c_entry
                else:
                    self.add_eps(current, c_entry)
                current = c_exit
            return entry, current
        if kind == UNION:
            entry = self.new_state()
            exit_ = self.new_state()
            for child in regex.children:
                c_entry, c_exit = self.fragment(child)
                self.add_eps(entry, c_entry)
                self.add_eps(c_exit, exit_)
            return entry, exit_
        if kind == LOOP:
            return self._loop(regex)
        if kind in (INTER, COMPL):
            raise UnsupportedError(
                "Thompson construction handles standard regexes only; "
                "%s must be applied at the automaton level" % kind
            )
        if kind in LOOK_KINDS:
            raise UnsupportedError(
                "Thompson construction does not support zero-width "
                "assertions; eliminate lookarounds first"
            )
        raise AssertionError("unknown node kind %r" % kind)

    def _loop(self, regex):
        body, lo, hi = regex.children[0], regex.lo, regex.hi
        entry = self.new_state()
        current = entry
        # mandatory copies
        for _ in range(lo):
            b_entry, b_exit = self.fragment(body)
            self.add_eps(current, b_entry)
            current = b_exit
        if hi is INF:
            # star over one more copy
            b_entry, b_exit = self.fragment(body)
            hub = self.new_state()
            self.add_eps(current, hub)
            self.add_eps(hub, b_entry)
            self.add_eps(b_exit, hub)
            return entry, hub
        exit_ = self.new_state()
        self.add_eps(current, exit_)
        # optional copies
        for _ in range(hi - lo):
            b_entry, b_exit = self.fragment(body)
            self.add_eps(current, b_entry)
            current = b_exit
            self.add_eps(current, exit_)
        return entry, exit_


def thompson(algebra, regex, budget=None):
    """Compile a standard regex to a (nondeterministic, epsilon) SFA."""
    budget = budget or StateBudget()
    nfa = _NfaBuilder(algebra, budget)
    entry, exit_ = nfa.fragment(regex)
    return SFA(
        algebra, nfa.count, entry, {exit_}, nfa.transitions, nfa.epsilons,
        deterministic=False,
    )
