"""Classical symbolic finite automata: the eager Boolean-operations
baseline ("approach 1" of the paper's introduction)."""

from repro.automata.sfa import SFA, StateBudget
from repro.automata.thompson import thompson
from repro.automata.ops import (
    complement, determinize, nfa_concat, nfa_star, nfa_union, product,
    remove_epsilons,
)
from repro.automata.minimize import equivalent, minimize
from repro.automata.eager import EagerSolver, eager_compile
from repro.automata.to_regex import to_regex

__all__ = [
    "SFA", "StateBudget", "thompson",
    "remove_epsilons", "determinize", "complement", "product",
    "nfa_union", "nfa_concat", "nfa_star",
    "minimize", "equivalent",
    "eager_compile", "EagerSolver", "to_regex",
]
