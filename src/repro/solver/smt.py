"""Mini-SMT solving of string formulas.

Boolean structure is handled by lazy DNF enumeration; each disjunct is
a conjunction of literals which — following the paper's reduction —
collapses *per variable* into one extended regex: positive membership
contributes the regex, negative membership its complement, and the
conjunction becomes an intersection.  The resulting single-variable
ERE goals are then decided by the plugged-in regex engine.

The regex engine is pluggable so that the benchmark harness can run
the identical front end over our derivative solver and over every
baseline, isolating the algorithmic comparison the paper makes.
"""

from itertools import product

from repro.errors import BudgetExceeded, UnsupportedError
from repro.solver import formula as F
from repro.solver.engine import RegexSolver
from repro.solver.result import Budget, SAT, SolverResult, UNKNOWN, UNSAT


class SmtSolver:
    """Solves quantifier-free Boolean combinations of string atoms."""

    def __init__(self, builder, regex_engine=None):
        self.builder = builder
        self.engine = regex_engine or RegexSolver(builder)

    def solve(self, formula, budget=None):
        """Decide satisfiability; on SAT the result carries a model
        mapping each variable to a witness string."""
        budget = budget or Budget()
        saw_unknown = False
        unknown_reason = None
        try:
            for literals in _disjuncts(F.nnf(formula)):
                outcome = self._solve_conjunct(literals, budget)
                if outcome is None:
                    saw_unknown = True
                    continue
                if outcome is not False:
                    return SolverResult(SAT, model=outcome)
        except BudgetExceeded as exc:
            return SolverResult(UNKNOWN, reason=str(exc))
        except UnsupportedError as exc:
            return SolverResult(UNKNOWN, reason=str(exc))
        if saw_unknown:
            return SolverResult(UNKNOWN, reason=unknown_reason or "incomplete branch")
        return SolverResult(UNSAT)

    def _solve_conjunct(self, literals, budget):
        """One DNF branch.  Returns a model dict, False (branch unsat),
        or None (branch undecided)."""
        builder = self.builder
        constraints = {}
        for literal in literals:
            positive = True
            atom = literal
            if isinstance(literal, F.Not):
                positive = False
                atom = literal.child
            if isinstance(atom, F.BoolConst):
                if atom.value != positive:
                    return False
                continue
            regex = atom.to_regex(builder)
            if not positive:
                regex = builder.compl(regex)
            prev = constraints.get(atom.var)
            constraints[atom.var] = (
                regex if prev is None else builder.inter([prev, regex])
            )
        model = {}
        undecided = False
        for var, regex in constraints.items():
            result = self.engine.is_satisfiable(regex, budget)
            if result.is_unsat:
                return False
            if result.is_unknown:
                undecided = True
                continue
            model[var] = result.witness
        if undecided:
            return None
        return model

    def check_model(self, formula, model):
        """Evaluate a candidate model against the formula (used by the
        test suite to validate produced models end to end)."""
        from repro.regex.semantics import Matcher

        matcher = Matcher(self.builder.algebra)

        def ev(node):
            if isinstance(node, F.BoolConst):
                return node.value
            if isinstance(node, F.And):
                return all(ev(c) for c in node.children)
            if isinstance(node, F.Or):
                return any(ev(c) for c in node.children)
            if isinstance(node, F.Not):
                return not ev(node.child)
            if isinstance(node, F.Atom):
                value = model.get(node.var, "")
                return matcher.matches(node.to_regex(self.builder), value)
            raise TypeError("not a formula: %r" % (node,))

        return ev(formula)


def _disjuncts(node):
    """Lazily enumerate the DNF branches of an NNF formula as lists of
    literals (atoms or negated atoms)."""
    if isinstance(node, (F.Atom, F.Not, F.BoolConst)):
        yield [node]
        return
    if isinstance(node, F.Or):
        for child in node.children:
            yield from _disjuncts(child)
        return
    if isinstance(node, F.And):
        streams = [list(_disjuncts(child)) for child in node.children]
        for combo in product(*streams):
            merged = []
            for part in combo:
                merged.extend(part)
            yield merged
        return
    raise TypeError("not an NNF formula: %r" % (node,))
