"""Mini-SMT solving of string formulas.

Boolean structure is handled by lazy DNF enumeration; each disjunct is
a conjunction of literals which — following the paper's reduction —
collapses *per variable* into one extended regex: positive membership
contributes the regex, negative membership its complement, and the
conjunction becomes an intersection.  The resulting single-variable
ERE goals are then decided by the plugged-in regex engine.

The regex engine is pluggable so that the benchmark harness can run
the identical front end over our derivative solver and over every
baseline, isolating the algorithmic comparison the paper makes.
"""

from itertools import product

from repro.errors import BudgetExceeded, UnsupportedError
from repro.obs import NULL_OBS
from repro.obs.explain import SmtExplanation
from repro.solver import formula as F
from repro.solver.engine import RegexSolver
from repro.solver.result import (
    Budget, RESOURCE_ERRORS, SAT, SolverResult, UNKNOWN, UNSAT, error_info,
)


class SmtSolver:
    """Solves quantifier-free Boolean combinations of string atoms."""

    def __init__(self, builder, regex_engine=None, obs=None):
        self.builder = builder
        if regex_engine is None:
            regex_engine = RegexSolver(builder, obs=obs)
        self.engine = regex_engine
        # share the regex engine's telemetry unless told otherwise, so
        # SMT-level case splits land in the same registry and trace
        if obs is None:
            obs = getattr(regex_engine, "obs", NULL_OBS)
        self.obs = obs
        self._c_case_splits = obs.metrics.scope("smt").counter("case_splits")
        self._tracer = obs.tracer

    def solve(self, formula, budget=None):
        """Decide satisfiability; on SAT the result carries a model
        mapping each variable to a witness string."""
        events = self.obs.events
        events.emit("smt.start")
        result = self._solve_held(formula, budget)
        if events.enabled:
            stats = result.stats or {}
            events.emit(
                "smt.end", status=result.status,
                case_splits=stats.get("case_splits", 0)
                if isinstance(stats, dict) else 0,
            )
        return result

    def _solve_held(self, formula, budget):
        state = getattr(self.engine, "state", None)
        if state is None:
            return self._solve(formula, budget)
        # the formula's atoms keep references into the regex tables, so
        # the engine state is held for the whole formula: per-variable
        # sub-queries are not query boundaries here.  The one boundary
        # is after the hold is released.
        try:
            with state.hold():
                return self._solve(formula, budget)
        finally:
            state.end_query()

    def _solve(self, formula, budget):
        budget = budget or Budget()
        saw_unknown = False
        unknown_reason = None
        case_splits = 0
        # when the regex engine records provenance, collect one entry
        # per certified per-variable sub-verdict; the Boolean front end
        # itself is outside the certificate trust boundary (DESIGN.md)
        branches = [] if getattr(self.engine, "explain", False) else None
        try:
            for literals in _disjuncts(F.nnf(formula)):
                case_splits += 1
                self._c_case_splits.inc()
                with self._tracer.span("smt.case_split", literals=len(literals)):
                    outcome = self._solve_conjunct(
                        literals, budget, case_splits - 1, branches
                    )
                if outcome is None:
                    saw_unknown = True
                    continue
                if outcome is not False:
                    explanation = None
                    if branches is not None:
                        explanation = SmtExplanation("sat", [
                            b for b in branches
                            if b["case"] == case_splits - 1
                            and b["explanation"].kind == "sat"
                        ])
                    return SolverResult(
                        SAT, model=outcome,
                        stats={"case_splits": case_splits},
                        explanation=explanation,
                    )
        except BudgetExceeded as exc:
            return SolverResult(
                UNKNOWN, reason=str(exc), stats={"case_splits": case_splits}
            )
        except UnsupportedError as exc:
            return SolverResult(
                UNKNOWN, reason=str(exc), stats={"case_splits": case_splits}
            )
        except _InvalidWitness as exc:
            # the (pluggable) regex engine reported sat but its witness
            # fails validation against the very constraints it solved:
            # never report such a model as sat — surface a structured
            # unknown instead so differential harnesses can flag it
            return SolverResult(
                UNKNOWN,
                reason=str(exc),
                error=error_info(exc),
                stats={"case_splits": case_splits},
            )
        except RESOURCE_ERRORS as exc:
            # NNF/DNF expansion or regex construction on pathologically
            # nested formulas can exhaust the stack before the regex
            # engine's own guard sees it; map it the same way
            return SolverResult(
                UNKNOWN,
                reason="%s during solving" % type(exc).__name__,
                error=error_info(exc),
                stats={"case_splits": case_splits},
            )
        if saw_unknown:
            return SolverResult(
                UNKNOWN, reason=unknown_reason or "incomplete branch",
                stats={"case_splits": case_splits},
            )
        explanation = None
        if branches is not None:
            # every branch refuted: keep the refutation of each case
            explanation = SmtExplanation("unsat", [
                b for b in branches if b["explanation"].kind == "unsat"
            ])
        return SolverResult(
            UNSAT, stats={"case_splits": case_splits},
            explanation=explanation,
        )

    #: SMT-LIB-flavoured alias for :meth:`solve` (``check-sat``).
    check = solve

    def _solve_conjunct(self, literals, budget, case=0, branches=None):
        """One DNF branch.  Returns a model dict, False (branch unsat),
        or None (branch undecided).  When ``branches`` is a list, the
        per-variable explanations produced by the regex engine are
        appended to it as ``{"case", "var", "explanation"}`` entries."""
        builder = self.builder
        constraints = {}
        length_atoms = {}
        for literal in literals:
            positive = True
            atom = literal
            if isinstance(literal, F.Not):
                positive = False
                atom = literal.child
            if isinstance(atom, F.BoolConst):
                if atom.value != positive:
                    return False
                continue
            regex = atom.to_regex(builder)
            if not positive:
                regex = builder.compl(regex)
            prev = constraints.get(atom.var)
            constraints[atom.var] = (
                regex if prev is None else builder.inter([prev, regex])
            )
            if isinstance(atom, F.LenCmp):
                length_atoms.setdefault(atom.var, []).append(
                    (atom, positive)
                )
        model = {}
        undecided = False
        for var, regex in constraints.items():
            result = self.engine.is_satisfiable(regex, budget)
            if branches is not None and result.explanation is not None:
                branches.append({
                    "case": case, "var": var,
                    "explanation": result.explanation,
                })
            if result.is_unsat:
                return False
            if result.is_unknown:
                undecided = True
                continue
            self._validate_witness(
                var, regex, result.witness, length_atoms.get(var, ())
            )
            model[var] = result.witness
        if undecided:
            return None
        return model

    def _validate_witness(self, var, regex, witness, length_atoms):
        """Check an engine-produced sat witness against *both* theories
        before it becomes part of a model: regex membership (via the
        reference semantics, independent of the engine under test) and
        the arithmetic reading of every length atom.  The engine is
        pluggable, so a buggy engine could otherwise launder an invalid
        witness straight into a reported model.

        Raises :class:`_InvalidWitness`; :meth:`_solve` maps it to an
        ``unknown`` result carrying ``error``.
        """
        from repro.regex.semantics import Matcher

        if witness is None:
            raise _InvalidWitness(
                "engine reported sat for %s without a witness" % var
            )
        if not Matcher(self.builder.algebra).matches(regex, witness):
            raise _InvalidWitness(
                "engine witness %r for %s is not in the constraint "
                "language" % (witness, var)
            )
        for atom, positive in length_atoms:
            holds = _len_cmp(len(witness), atom.op, atom.bound)
            if holds != positive:
                raise _InvalidWitness(
                    "engine witness %r for %s violates length atom "
                    "%s(str.len %s) %s %d" % (
                        witness, var, "" if positive else "not ",
                        var, atom.op, atom.bound,
                    )
                )

    def check_model(self, formula, model):
        """Evaluate a candidate model against the formula (used by the
        test suite to validate produced models end to end)."""
        from repro.regex.semantics import Matcher

        matcher = Matcher(self.builder.algebra)

        def ev(node):
            if isinstance(node, F.BoolConst):
                return node.value
            if isinstance(node, F.And):
                return all(ev(c) for c in node.children)
            if isinstance(node, F.Or):
                return any(ev(c) for c in node.children)
            if isinstance(node, F.Not):
                return not ev(node.child)
            if isinstance(node, F.Atom):
                value = model.get(node.var, "")
                return matcher.matches(node.to_regex(self.builder), value)
            raise TypeError("not a formula: %r" % (node,))

        return ev(formula)


class _InvalidWitness(Exception):
    """An engine-produced witness failed post-hoc validation."""


def _len_cmp(length, op, bound):
    """Arithmetic reading of a length atom on a concrete length."""
    if op == "=":
        return length == bound
    if op == "!=":
        return length != bound
    if op == "<":
        return length < bound
    if op == "<=":
        return length <= bound
    if op == ">":
        return length > bound
    if op == ">=":
        return length >= bound
    raise AssertionError("unknown length operator %r" % op)


def _disjuncts(node):
    """Lazily enumerate the DNF branches of an NNF formula as lists of
    literals (atoms or negated atoms)."""
    if isinstance(node, (F.Atom, F.Not, F.BoolConst)):
        yield [node]
        return
    if isinstance(node, F.Or):
        for child in node.children:
            yield from _disjuncts(child)
        return
    if isinstance(node, F.And):
        streams = [list(_disjuncts(child)) for child in node.children]
        for combo in product(*streams):
            merged = []
            for part in combo:
                merged.extend(part)
            yield merged
        return
    raise TypeError("not an NNF formula: %r" % (node,))
