"""Language equivalence by bisimulation over symbolic derivatives.

An alternative to reducing equivalence to emptiness of the symmetric
difference (what :meth:`RegexSolver.equivalent` does): explore pairs of
regexes in lockstep, requiring equal nullability, and deriving both
sides under a *joint* refinement of their conditional trees.  This is
the derivative-based analogue of Hopcroft–Karp, and it is the style of
algorithm the KAT literature uses for equivalence (paper §1, [53]) —
implemented here over the full ERE class, which KAT cannot express.

The congruence-closure trick (union-find over visited pairs) merges
pairs already known equivalent, so the procedure often terminates well
before exploring the full product space.
"""

from repro.derivatives.condtree import DerivativeEngine
from repro.errors import BudgetExceeded, UnsupportedError
from repro.regex.transform import eliminate_lookarounds
from repro.solver.result import Budget, SAT, SolverResult, UNKNOWN, UNSAT
from repro.solver.unionfind import UnionFind


class BisimulationChecker:
    """Equivalence and containment by symbolic bisimulation."""

    def __init__(self, builder, engine=None):
        self.builder = builder
        self.algebra = builder.algebra
        self.engine = engine or DerivativeEngine(builder)

    def equivalent(self, left, right, budget=None):
        """Decide ``L(left) == L(right)``; on failure the result's
        witness is a distinguishing string."""
        budget = budget or Budget()
        # bisimulation derives both sides with the condtree engine,
        # which has no sound rule for zero-width assertions: rewrite
        # them away first, or answer a typed unknown — never guess
        if left.has_look:
            left = eliminate_lookarounds(self.builder, left)
        if right.has_look:
            right = eliminate_lookarounds(self.builder, right)
        if left is None or right is None:
            return SolverResult(
                UNKNOWN,
                reason="lookaround elimination incomplete: bisimulation "
                "cannot derive zero-width assertions",
            )
        uf = UnionFind()
        # stack of (left, right, path-string)
        stack = [(left, right, "")]
        try:
            while stack:
                budget.tick()
                l, r, path = stack.pop()
                if l is r:
                    continue
                uf.add(l)
                uf.add(r)
                if uf.same(l, r):
                    continue
                if l.nullable != r.nullable:
                    return SolverResult(
                        UNSAT, witness=path, reason="distinguishing string"
                    )
                # congruence: assume equivalent while checking successors
                uf.union(l, r)
                for guard, l_next, r_next in self._joint_steps(l, r):
                    budget.tick()
                    char = self.algebra.pick(guard)
                    stack.append((l_next, r_next, path + char))
        except BudgetExceeded as exc:
            return SolverResult(UNKNOWN, reason=str(exc))
        except UnsupportedError as exc:
            return SolverResult(UNKNOWN, reason=str(exc))
        return SolverResult(SAT)

    def contains(self, sub, sup, budget=None):
        """Containment via equivalence: L(sub) ⊆ L(sup) iff
        L(sub | sup) == L(sup)."""
        return self.equivalent(self.builder.union([sub, sup]), sup, budget)

    def _joint_steps(self, left, right):
        """Joint refinement of both derivative trees: triples
        ``(guard, D(left), D(right))`` whose guards partition the
        alphabet and on which both derivatives are constant."""
        algebra = self.algebra
        engine = self.engine
        l_tree = engine.derivative(left)
        r_tree = engine.derivative(right)
        out = []

        def walk(lt, rt, path):
            if not lt.is_leaf:
                then_path = algebra.conj(path, lt.pred)
                else_path = algebra.conj(path, algebra.neg(lt.pred))
                if algebra.is_sat(then_path):
                    walk(lt.then, rt, then_path)
                if algebra.is_sat(else_path):
                    walk(lt.other, rt, else_path)
                return
            if not rt.is_leaf:
                then_path = algebra.conj(path, rt.pred)
                else_path = algebra.conj(path, algebra.neg(rt.pred))
                if algebra.is_sat(then_path):
                    walk(lt, rt.then, then_path)
                if algebra.is_sat(else_path):
                    walk(lt, rt.other, else_path)
                return
            out.append((
                path,
                self.builder.union(list(lt.regexes)),
                self.builder.union(list(rt.regexes)),
            ))

        walk(l_tree, r_tree, algebra.top)
        return out
