"""A literal implementation of the membership propagation rules
(paper, Figure 3).

:class:`PropagationEngine` treats the rules as an explicit rewrite
system over goals, firing **der**, **ite**, **or**, **ere**, **bot**
and **upd** one at a time and recording a trace.  It exists to make
the decision procedure of Section 5 inspectable (examples print the
traces) and to cross-check the optimized :class:`~repro.solver.engine.
RegexSolver` — both must agree on every instance (tested).

Goals:

* ``in(s, r)`` — the symbolic suffix ``s`` (of which ``prefix`` has
  already been fixed) must match the ERE ``r``;
* ``in_tr(s, t)`` — ditto for a transition regex ``t``, only reachable
  under the side constraint ``|s| > 0``.

The disjunctions produced by **der**/**ite**/**or** become branches on
a worklist; the prefix plays the role of the character-theory model
that the host solver would accumulate.
"""

from collections import deque

from repro.errors import BudgetExceeded
from repro.obs.explain import ExplainRecorder, explain_witness
from repro.solver.result import Budget, SAT, SolverResult, UNKNOWN, UNSAT


class RuleTrace:
    """Bounded log of rule firings.

    When ``metrics`` (a registry scope) is supplied, every firing also
    bumps a per-rule counter there, so rule activity shows up on the
    same dashboards as the optimized engine's counters.
    """

    def __init__(self, limit=10000, metrics=None):
        self.entries = []
        self.counts = {}
        self.limit = limit
        self._metrics = metrics

    def fire(self, rule, detail=""):
        self.counts[rule] = self.counts.get(rule, 0) + 1
        if self._metrics is not None:
            self._metrics.counter(rule).inc()
        if len(self.entries) < self.limit:
            self.entries.append((rule, detail))

    def __repr__(self):
        return "RuleTrace(%s)" % ", ".join(
            "%s=%d" % kv for kv in sorted(self.counts.items())
        )


class PropagationEngine:
    """Figure 3's rules, fired explicitly over a goal worklist."""

    def __init__(self, solver):
        # shares the derivative engine and persistent graph G with a
        # RegexSolver so that the `bot` rule sees prior dead regexes
        self.solver = solver
        self.builder = solver.builder
        self.algebra = solver.algebra

    def solve(self, regex, budget=None, trace=None, explain=False):
        """Run the propagation rules to decide ``exists s. in(s, r)``.

        With ``explain=True`` the result carries the same checkable
        :class:`~repro.obs.explain.Explanation` the optimized engine
        produces: the rule engine tracks prefixes rather than parent
        chains, so a sat witness path is rebuilt after the fact
        (:func:`~repro.obs.explain.explain_witness`) and an unsat
        closure is collected from the memoized derivative trees.
        """
        budget = budget or Budget()
        obs = self.solver.obs
        if trace is None:
            trace = RuleTrace(metrics=obs.metrics.scope("rules"))
        graph = self.solver.graph
        engine = self.solver.engine
        # each work item: (regex goal, prefix string fixed so far)
        work = deque([(regex, "")])
        expanded = set()
        try:
            while work:
                budget.tick()
                goal, prefix = work.popleft()
                graph.add_vertex(goal)
                if graph.is_dead(goal):
                    # bot: in(s, r) with r dead rewrites to false
                    trace.fire("bot", repr(goal))
                    continue
                # der: |s| = 0 /\ nullable(r) branch
                trace.fire("der", repr(goal))
                if goal.nullable:
                    return SolverResult(
                        SAT, witness=prefix, stats={"trace": trace.counts},
                        explanation=(
                            explain_witness(self.solver, regex, prefix)
                            if explain else None
                        ),
                    )
                if goal in expanded:
                    continue
                expanded.add(goal)
                # der: |s| > 0 /\ in_tr(s, delta_dnf(r)), plus upd
                tree = engine.derivative(goal)
                branches = self._ite(tree, self.algebra.top, trace)
                targets = set()
                for guard, leaf_regexes in branches:
                    targets |= leaf_regexes
                graph.update(goal, targets)
                trace.fire("upd", "%d targets" % len(targets))
                for guard, leaf_regexes in branches:
                    char = self.algebra.pick(guard)
                    # or: a union leaf splits into its alternatives
                    if len(leaf_regexes) > 1:
                        trace.fire("or", "%d alternatives" % len(leaf_regexes))
                    for alternative in leaf_regexes:
                        # ere: in_tr(s, r') becomes in(s1.., r')
                        trace.fire("ere", repr(alternative))
                        work.append((alternative, prefix + char))
        except BudgetExceeded as exc:
            return SolverResult(
                UNKNOWN, reason=str(exc), stats={"trace": trace.counts},
                explanation=(
                    ExplainRecorder(self.solver).unknown(regex, str(exc))
                    if explain else None
                ),
            )
        return SolverResult(
            UNSAT, stats={"trace": trace.counts},
            explanation=(
                ExplainRecorder(self.solver).unsat(regex) if explain else None
            ),
        )

    def _ite(self, tree, path, trace):
        """Fire the **ite** rule down a clean conditional tree, yielding
        ``(guard, leaf regex set)`` branches with satisfiable guards."""
        if tree.is_leaf:
            if tree.regexes:
                return [(path, set(tree.regexes))]
            return []
        trace.fire("ite", repr(tree.pred))
        out = self._ite(tree.then, self.algebra.conj(path, tree.pred), trace)
        out += self._ite(
            tree.other, self.algebra.conj(path, self.algebra.neg(tree.pred)), trace
        )
        return out
