"""Quantifier-free string formulas: the fragment the mini-SMT layer
solves.

Atoms are regex membership (``str.in_re``), length comparisons
(``str.len``), equality with a string literal, and the derived
prefix/suffix/contains predicates — every one reducible to a regex
constraint on a single variable, which is exactly the reduction the
paper applies before running the derivative-based procedure
(Section 2: conjunction becomes ``&``, negation becomes ``~``).
"""

from repro.errors import SmtLibError
from repro.regex.ast import INF

# -- formula nodes -----------------------------------------------------------


class Formula:
    """Base class; subclasses are immutable value objects."""

    def __and__(self, other):
        return And((self, other))

    def __or__(self, other):
        return Or((self, other))

    def __invert__(self):
        return Not(self)


class BoolConst(Formula):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = bool(value)

    def __repr__(self):
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class And(Formula):
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def __repr__(self):
        return "(and %s)" % " ".join(map(repr, self.children))


class Or(Formula):
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = tuple(children)

    def __repr__(self):
        return "(or %s)" % " ".join(map(repr, self.children))


class Not(Formula):
    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def __repr__(self):
        return "(not %r)" % (self.child,)


class Atom(Formula):
    """Base class of atoms; each knows the variable it constrains and
    how to express itself as a regex over that variable."""

    var = None

    def to_regex(self, builder):
        raise NotImplementedError


class InRe(Atom):
    """``(str.in_re var regex)``."""

    __slots__ = ("var", "regex")

    def __init__(self, var, regex):
        self.var = var
        self.regex = regex

    def to_regex(self, builder):
        return self.regex

    def __repr__(self):
        return "(str.in_re %s %r)" % (self.var, self.regex)


_LEN_OPS = {"=", "<", "<=", ">", ">=", "!="}


class LenCmp(Atom):
    """``(op (str.len var) bound)`` for a nonnegative integer bound."""

    __slots__ = ("var", "op", "bound")

    def __init__(self, var, op, bound):
        if op not in _LEN_OPS:
            raise SmtLibError("unsupported length comparison %r" % op)
        self.var = var
        self.op = op
        self.bound = bound

    def to_regex(self, builder):
        op, n = self.op, self.bound
        if op == "=":
            if n < 0:
                return builder.empty
            return builder.any_length(n, n)
        if op == "<":
            op, n = "<=", n - 1
        if op == ">":
            op, n = ">=", n + 1
        if op == "<=":
            if n < 0:
                return builder.empty
            return builder.any_length(0, n)
        if op == ">=":
            return builder.any_length(max(n, 0), INF)
        # !=
        if n < 0:
            return builder.full
        return builder.union([
            builder.any_length(0, n - 1) if n > 0 else builder.empty,
            builder.any_length(n + 1, INF),
        ])

    def __repr__(self):
        return "(%s (str.len %s) %d)" % (self.op, self.var, self.bound)


class EqConst(Atom):
    """``(= var "literal")``."""

    __slots__ = ("var", "value")

    def __init__(self, var, value):
        self.var = var
        self.value = value

    def to_regex(self, builder):
        return builder.string(self.value)

    def __repr__(self):
        return '(= %s "%s")' % (self.var, self.value)


class Contains(Atom):
    """``(str.contains var "literal")``."""

    __slots__ = ("var", "value")

    def __init__(self, var, value):
        self.var = var
        self.value = value

    def to_regex(self, builder):
        return builder.contains(builder.string(self.value))

    def __repr__(self):
        return '(str.contains %s "%s")' % (self.var, self.value)


class PrefixOf(Atom):
    """``(str.prefixof "literal" var)``."""

    __slots__ = ("var", "value")

    def __init__(self, value, var):
        self.var = var
        self.value = value

    def to_regex(self, builder):
        return builder.starts_with(builder.string(self.value))

    def __repr__(self):
        return '(str.prefixof "%s" %s)' % (self.value, self.var)


class SuffixOf(Atom):
    """``(str.suffixof "literal" var)``."""

    __slots__ = ("var", "value")

    def __init__(self, value, var):
        self.var = var
        self.value = value

    def to_regex(self, builder):
        return builder.ends_with(builder.string(self.value))

    def __repr__(self):
        return '(str.suffixof "%s" %s)' % (self.value, self.var)


# -- traversals ----------------------------------------------------------------


def variables(formula):
    """All string variables mentioned by a formula."""
    out = set()
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.add(node.var)
        elif isinstance(node, And) or isinstance(node, Or):
            stack.extend(node.children)
        elif isinstance(node, Not):
            stack.append(node.child)
    return out


def atoms(formula):
    """All atoms of a formula (positive and negative occurrences)."""
    out = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.append(node)
        elif isinstance(node, (And, Or)):
            stack.extend(node.children)
        elif isinstance(node, Not):
            stack.append(node.child)
    return out


def nnf(formula):
    """Negation normal form: negations pushed onto atoms."""
    return _nnf(formula, positive=True)


def _nnf(node, positive):
    if isinstance(node, BoolConst):
        return TRUE if node.value == positive else FALSE
    if isinstance(node, Not):
        return _nnf(node.child, not positive)
    if isinstance(node, And):
        children = tuple(_nnf(c, positive) for c in node.children)
        return And(children) if positive else Or(children)
    if isinstance(node, Or):
        children = tuple(_nnf(c, positive) for c in node.children)
        return Or(children) if positive else And(children)
    if isinstance(node, Atom):
        return node if positive else Not(node)
    raise SmtLibError("not a formula: %r" % (node,))


def is_boolean_combination(formula):
    """True iff some variable carries more than one regex membership
    constraint — the paper's criterion for classifying a benchmark as
    *Boolean* (length/equality side constraints do not count)."""
    counts = {}
    for atom in atoms(formula):
        if isinstance(atom, InRe):
            counts[atom.var] = counts.get(atom.var, 0) + 1
    return any(n > 1 for n in counts.values())
