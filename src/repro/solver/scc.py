"""Incremental strongly-connected-component maintenance.

A simplified variant of incremental cycle detection / SCC maintenance
in the spirit of Bender, Fineman, Gilbert and Tarjan (the algorithm the
paper says dZ3 implements a simplified variant of): components are
kept in a Union-Find condensation; inserting an edge that closes a
cycle collapses every component on a path between the endpoints.

Edge insertions are O(size of condensation) in the worst case, which is
fine for the regex graphs the solver produces (they are small relative
to the work of computing derivatives).
"""

from repro.solver.unionfind import UnionFind


class IncrementalSCC:
    """Condensation DAG of a growing directed graph."""

    def __init__(self):
        self._uf = UnionFind()
        # adjacency between component representatives; lazily cleaned
        self._succ = {}
        self._pred = {}

    def add_node(self, node):
        """Register a vertex (idempotent)."""
        if node not in self._uf:
            self._uf.add(node)
            self._succ[node] = set()
            self._pred[node] = set()

    def find(self, node):
        """Component representative of ``node``."""
        return self._uf.find(node)

    def add_edge(self, source, target):
        """Insert an edge, collapsing components if a cycle appears.

        Returns the set of representatives merged into one component
        (empty if no cycle was created).
        """
        self.add_node(source)
        self.add_node(target)
        rs, rt = self._uf.find(source), self._uf.find(target)
        if rs == rt:
            return set()
        # does target's component reach source's component?
        on_path = self._nodes_reaching(rt, rs)
        if not on_path:
            self._succ[rs].add(rt)
            self._pred[rt].add(rs)
            return set()
        # collapse: every component reachable from rt that reaches rs
        merged = on_path
        new_rep = rs
        for rep in merged:
            new_rep = self._uf.union(new_rep, rep)
        # rebuild adjacency of the merged component
        succ = set()
        pred = set()
        for rep in merged | {rs}:
            succ |= self._succ.pop(rep, set())
            pred |= self._pred.pop(rep, set())
        succ = {self._uf.find(r) for r in succ} - {new_rep}
        pred = {self._uf.find(r) for r in pred} - {new_rep}
        self._succ[new_rep] = succ
        self._pred[new_rep] = pred
        # re-point neighbours at the new representative
        for other, edges in self._succ.items():
            if other != new_rep:
                stale = {r for r in edges if self._uf.find(r) == new_rep}
                if stale:
                    edges -= stale
                    edges.add(new_rep)
        for other, edges in self._pred.items():
            if other != new_rep:
                stale = {r for r in edges if self._uf.find(r) == new_rep}
                if stale:
                    edges -= stale
                    edges.add(new_rep)
        return merged | {rs}

    def _nodes_reaching(self, start, goal):
        """Components on some path ``start ->* goal`` (empty if none).

        Computed as (reachable from start) ∩ (co-reachable to goal).
        """
        forward = self._reach(start, self._succ)
        if goal not in forward:
            return set()
        backward = self._reach(goal, self._pred)
        return forward & backward

    def _reach(self, start, adjacency):
        seen = {start}
        stack = [start]
        while stack:
            rep = stack.pop()
            for nxt in adjacency.get(rep, ()):
                nxt = self._uf.find(nxt)
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def successors(self, node):
        """Representatives of the successor components of ``node``'s
        component (self-loops excluded)."""
        rep = self._uf.find(node)
        return {self._uf.find(r) for r in self._succ.get(rep, ())} - {rep}

    def same_component(self, a, b):
        """True iff ``a`` and ``b`` are in one strongly connected
        component."""
        return self._uf.same(a, b)
