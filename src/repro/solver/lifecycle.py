"""Engine-state lifecycle: cache accounting, pinning, and compaction.

The paper's procedure is fast *because* state persists: hash-consed
regex nodes, interned conditional trees, derivative/meld memo tables,
lazy-DFA transition rows and the solver graph's dead-state cache are
all kept across queries on purpose.  Left alone they also grow without
bound, which a long-lived service cannot afford.  This module makes
that state a managed resource:

* **Accounting** — :meth:`EngineState.cache_sizes` reports entry counts
  and approximate bytes per cache, published as ``cache.*`` gauges in
  the :mod:`repro.obs` metrics registry and surfaced through
  ``SolverStats.caches``, benchmark snapshots and CLI ``--stats``.

* **Compaction** — :meth:`EngineState.compact` runs a mark-and-rebuild
  pass at a *query boundary*: the live set is the closure of the keep
  roots, pinned regexes and the builder's primordial nodes under
  subterm children, memoized derivative-tree leaves, graph successors
  and registered DFA-row targets; every table is then rebuilt keeping
  only live entries.  Uids are never reused, so node identity stays
  canonical (see DESIGN.md for the soundness argument).

* **Policy** — :class:`CompactionPolicy` trips compaction when the
  total entry count crosses a watermark; :meth:`EngineState.end_query`
  applies it between queries and is a no-op while a :meth:`hold` is
  active (the SMT front end holds the state for the whole formula, so
  per-variable sub-queries never compact mid-solve).
"""

from contextlib import contextmanager

from repro.obs import Observability

#: Rough *shallow* per-entry heap costs (CPython, 64-bit): object header
#: plus slots plus the owning table's key/bucket overhead.  These are
#: deliberately constants — the gauges track growth and trip watermarks;
#: they are not an allocator census.
_BYTES_PER_REGEX = 220
_BYTES_PER_TREE = 140
_BYTES_PER_MEMO = 90
_BYTES_PER_VERTEX = 330
_BYTES_PER_EDGE = 120
_BYTES_PER_ROW = 180


class CompactionPolicy:
    """When to compact: an entry-count watermark checked per query.

    ``max_entries`` bounds :meth:`EngineState.cache_sizes`'s
    ``entries_total``; crossing it triggers compaction at the next
    query boundary.  ``min_retained`` suppresses thrashing: if a
    compaction retires fewer than this many entries, the watermark is
    raised to the post-compaction size plus ``max_entries`` (the live
    set is simply that big; compacting again would burn CPU for
    nothing).
    """

    __slots__ = ("max_entries", "min_retained", "_floor")

    def __init__(self, max_entries=100000, min_retained=256):
        self.max_entries = max_entries
        self.min_retained = min_retained
        self._floor = 0

    def should_compact(self, sizes):
        if self.max_entries is None:
            return False
        return sizes["entries_total"] > self._floor + self.max_entries

    def note_result(self, sizes_after, retired):
        """Adapt the watermark after a compaction (anti-thrash)."""
        if retired < self.min_retained:
            self._floor = sizes_after["entries_total"]


class EngineState:
    """Facade over one builder + derivative engine + graph (+ DFAs).

    The solver layers own their caches; this class owns their
    *lifecycle*: measuring them, compacting them between queries, and
    resetting them.  All mutation happens at query boundaries — callers
    mid-query take :meth:`hold` to fence compaction off.
    """

    def __init__(self, builder, engine=None, graph=None, obs=None,
                 policy=None):
        self.builder = builder
        self.engine = engine
        self.graph = graph
        self.obs = obs if obs is not None else Observability()
        self.policy = policy
        self._dfas = []
        self._pins = {}
        self._root_providers = []
        self._holds = 0
        scope = self.obs.metrics.scope("cache")
        self._scope = scope
        self._c_compactions = scope.counter("compactions")
        self._c_retired = scope.counter("retired_entries")

    # -- wiring ------------------------------------------------------------

    def register_dfa(self, dfa):
        """Track a :class:`~repro.matcher.dfa_cache.LazyDfa` so its
        transition rows are accounted and compacted with the rest."""
        if dfa not in self._dfas:
            self._dfas.append(dfa)

    def add_root_provider(self, provider):
        """Register a callable returning extra mark roots for every
        compaction.  The warm store registers one so its instantiated
        fragment rows stay live: compaction must never evict a node a
        later query can still key into — evicting it would re-intern
        the same pattern to a *new* uid while the fragment's rows keep
        referencing the old node, silently turning warm hits cold (the
        stale-uid resurrection bug; see DESIGN.md compaction
        soundness)."""
        if provider not in self._root_providers:
            self._root_providers.append(provider)

    def pin(self, *regexes):
        """Keep these regexes (and everything reachable from them)
        across compactions until :meth:`unpin`."""
        for regex in regexes:
            self._pins[regex.uid] = regex

    def unpin(self, *regexes):
        for regex in regexes:
            self._pins.pop(regex.uid, None)

    @contextmanager
    def hold(self):
        """Fence compaction off for the duration (reentrant).  The SMT
        front end holds the state across a formula's sub-queries, since
        its atoms keep references into the regex tables."""
        self._holds += 1
        try:
            yield self
        finally:
            self._holds -= 1

    @property
    def held(self):
        return self._holds > 0

    # -- accounting --------------------------------------------------------

    def cache_sizes(self):
        """Entry counts and approximate bytes for every managed cache."""
        sizes = {"regex_nodes": len(self.builder._table)}
        approx = sizes["regex_nodes"] * _BYTES_PER_REGEX
        engine = self.engine
        if engine is not None:
            sizes["deriv_trees"] = len(engine._trees) + len(engine._leaves)
            sizes["deriv_memo"] = len(engine._deriv_memo)
            sizes["meld_memo"] = len(engine._meld_memo)
            approx += (
                sizes["deriv_trees"] * _BYTES_PER_TREE
                + (sizes["deriv_memo"] + sizes["meld_memo"]) * _BYTES_PER_MEMO
            )
        graph = self.graph
        if graph is not None:
            sizes["graph_vertices"] = len(graph)
            sizes["graph_edges"] = graph.edge_count
            approx += (
                sizes["graph_vertices"] * _BYTES_PER_VERTEX
                + sizes["graph_edges"] * _BYTES_PER_EDGE
            )
        if self._dfas:
            sizes["dfa_rows"] = sum(len(d._rows) for d in self._dfas)
            approx += sizes["dfa_rows"] * _BYTES_PER_ROW
        sizes["entries_total"] = sum(
            v for k, v in sizes.items() if k != "graph_edges"
        )
        sizes["approx_bytes"] = approx
        return sizes

    def publish_gauges(self):
        """Push the current sizes into the ``cache.*`` gauges; returns
        the sizes dict."""
        sizes = self.cache_sizes()
        if self.obs.metrics.enabled:
            for key, value in sizes.items():
                self._scope.gauge(key).set(value)
        return sizes

    # -- lifecycle ---------------------------------------------------------

    def end_query(self, keep=()):
        """Query-boundary hook: publish gauges, then compact if the
        policy's watermark tripped.  No-op while held."""
        sizes = self.publish_gauges()
        if self.held or self.policy is None:
            return None
        if not self.policy.should_compact(sizes):
            return None
        report = self.compact(keep=keep)
        self.policy.note_result(self.publish_gauges(), report["retired"])
        return report

    def compact(self, keep=()):
        """Mark-and-rebuild compaction; only call between queries.

        ``keep`` lists the roots of the current working set (for the
        solver: the query regex).  Everything unreachable from keep,
        pins and the builder's primordial nodes is retired from every
        table.  Returns a report of retired entry counts.
        """
        if self.held:
            raise RuntimeError(
                "cannot compact while the engine state is held"
            )
        events = self.obs.events
        entries_before = (
            self.cache_sizes()["entries_total"] if events.enabled else 0
        )
        live = self._mark(keep)
        report = {"live_regexes": len(live)}
        retired = self.builder_compact(live)
        report["regex_nodes"] = retired
        engine = self.engine
        if engine is not None:
            report["deriv_entries"] = engine.compact(live)
            retired += report["deriv_entries"]
        graph = self.graph
        if graph is not None:
            report["graph_vertices"] = graph.compact(
                lambda v: v.uid in live
            )
            retired += report["graph_vertices"]
        rows = 0
        for dfa in self._dfas:
            rows += dfa.compact(live)
        if self._dfas:
            report["dfa_rows"] = rows
            retired += rows
        report["retired"] = retired
        self._c_compactions.inc()
        self._c_retired.inc(retired)
        if events.enabled:
            events.emit(
                "cache.compaction", retired=retired,
                entries_before=entries_before,
                entries_after=self.cache_sizes()["entries_total"],
                live_regexes=report["live_regexes"],
            )
        return report

    def reset(self):
        """Drop everything except pins and the primordial nodes."""
        return self.compact(keep=())

    # -- the mark phase ----------------------------------------------------

    def _mark(self, keep):
        """The live set: uid -> node, closed under subterm children,
        memoized derivative-tree leaves, graph successors and DFA-row
        targets of every live node."""
        builder = self.builder
        engine = self.engine
        graph = self.graph
        live = {}
        walked_trees = set()
        stack = [builder.empty, builder.epsilon, builder.dot, builder.full]
        stack.extend(self._pins.values())
        stack.extend(keep)
        for provider in self._root_providers:
            stack.extend(provider())

        def push_tree_leaves(tree):
            tstack = [tree]
            while tstack:
                t = tstack.pop()
                if t.uid in walked_trees:
                    continue
                walked_trees.add(t.uid)
                if t.is_leaf:
                    stack.extend(t.regexes)
                else:
                    tstack.append(t.then)
                    tstack.append(t.other)

        while stack:
            node = stack.pop()
            if node.uid in live:
                continue
            live[node.uid] = node
            stack.extend(node.children)
            if engine is not None:
                tree = engine._deriv_memo.get(node.uid)
                if tree is not None:
                    push_tree_leaves(tree)
            if graph is not None and node in graph:
                stack.extend(graph.successors(node))
            for dfa in self._dfas:
                row = dfa._rows.get(node.uid)
                if row is not None:
                    stack.extend(target for _, target in row)
        return live

    def builder_compact(self, live):
        """Rebuild the builder's interning table over the live set.

        Uids are never reused (``_next_uid`` is untouched), so any
        stale node a caller still holds remains semantically valid —
        it merely stops deduplicating against newly built nodes.
        """
        table = self.builder._table
        kept = {
            key: node for key, node in table.items() if node.uid in live
        }
        retired = len(table) - len(kept)
        self.builder._table = kept
        return retired

    def __repr__(self):
        sizes = self.cache_sizes()
        return "EngineState(entries=%d, ~%dKiB%s)" % (
            sizes["entries_total"], sizes["approx_bytes"] // 1024,
            ", held" if self.held else "",
        )
