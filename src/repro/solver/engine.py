"""The derivative-based decision procedure (paper, Section 5).

:class:`RegexSolver` decides emptiness/satisfiability of extended
regexes by lazily unfolding symbolic derivatives, maintaining the
persistent reachability graph ``G`` for dead-end detection, and
producing witness strings from the clean conditional trees' branch
guards.  Theorem 5.2: for a decidable character theory the procedure
answers ``unsat`` iff ``L(r)`` is empty (our character algebras are
decidable, so the only source of ``unknown`` is an explicit budget).
"""

import time
from collections import deque

from repro.derivatives.condtree import DerivativeEngine
from repro.errors import BudgetExceeded
from repro.obs import Observability
from repro.obs.explain import ExplainRecorder
from repro.solver.graph import RegexGraph
from repro.solver.lifecycle import EngineState
from repro.solver.result import (
    Budget, RESOURCE_ERRORS, SAT, SolverResult, SolverStats, UNKNOWN, UNSAT,
    error_info,
)


class RegexSolver:
    """Satisfiability, containment and equivalence of EREs.

    The solver owns a :class:`DerivativeEngine` and a persistent
    :class:`RegexGraph`; both accumulate knowledge across queries, so
    related queries get faster, exactly as dZ3's global graph does.

    ``obs`` is an :class:`~repro.obs.Observability` bundle; the default
    keeps metrics on (they are cheap) and tracing off.  Pass
    ``Observability.tracing()`` to record spans, or
    ``Observability.disabled()`` to strip even the counters.
    """

    def __init__(self, builder, strategy="dfs", obs=None, compaction=None,
                 explain=False):
        self.builder = builder
        self.algebra = builder.algebra
        self.obs = obs if obs is not None else Observability()
        self.algebra.bind_metrics(self.obs.metrics, self.obs.tracer)
        self.engine = DerivativeEngine(builder, obs=self.obs)
        self.graph = RegexGraph(is_final=lambda r: r.nullable, obs=self.obs)
        #: lifecycle facade over the solver's persistent caches; pass a
        #: CompactionPolicy as ``compaction`` to bound their growth
        self.state = EngineState(
            builder, engine=self.engine, graph=self.graph, obs=self.obs,
            policy=compaction,
        )
        if strategy not in ("dfs", "bfs"):
            raise ValueError("strategy must be 'dfs' or 'bfs'")
        # dZ3's unfolding is model-guided depth-first: it commits to one
        # branch of each case split and backtracks, so satisfiable deep
        # instances resolve without enumerating whole breadth levels.
        # BFS yields shortest witnesses; DFS is the default.
        self.strategy = strategy
        #: when True every query carries a checkable provenance record
        #: (witness path / unsat closure) on ``result.explanation``
        self.explain = explain
        scope = self.obs.metrics.scope("solver")
        self._c_queries = scope.counter("queries")
        self._c_witnesses = scope.counter("witnesses")
        self._h_query_states = scope.histogram("query_states")
        self._tracer = self.obs.tracer
        #: states popped across all queries (plain int on the hot path;
        #: published to the registry by _sync_registry per query)
        self._explored_n = 0

    def _sync_registry(self):
        """Push the plain-int hot-path counters of every layer into the
        metrics registry — called once per query, so ``obs.metrics.
        snapshot()`` is consistent at query boundaries."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.scope("solver").counter("explored").value = self._explored_n
        self.engine.sync_metrics()
        self.graph.sync_metrics()
        self.algebra.sync_metrics()

    # -- public queries -------------------------------------------------------

    def is_satisfiable(self, regex, budget=None):
        """Is ``L(regex)`` nonempty?  Returns a result with a witness
        string when satisfiable.

        A query boundary: afterwards the engine state publishes its
        cache gauges and, when a compaction policy is armed, compacts
        everything unreachable from ``regex`` (and any pins).
        """
        events = self.obs.events
        if not events.enabled:
            try:
                return self._is_satisfiable(regex, budget)
            finally:
                self.state.end_query(keep=(regex,))
        # flight-recorder narration: one start/end event pair per query,
        # correlated by the hash-consed root's uid
        query = "uid:%d" % regex.uid
        events.emit("query.start", query=query)
        started = time.perf_counter()
        try:
            result = self._is_satisfiable(regex, budget)
        except BaseException as exc:
            events.emit(
                "query.end", query=query, status="raised",
                elapsed=time.perf_counter() - started,
                error=type(exc).__name__,
            )
            raise
        finally:
            self.state.end_query(keep=(regex,))
        stats = result.stats
        events.emit(
            "query.end", query=query, status=result.status,
            elapsed=time.perf_counter() - started,
            explored=getattr(stats, "explored", 0) or 0,
            fuel_used=getattr(stats, "fuel_used", 0) or 0,
        )
        return result

    def _is_satisfiable(self, regex, budget):
        budget = budget or Budget()
        self._c_queries.inc()
        mark = self._mark(budget)
        recorder = ExplainRecorder(self) if self.explain else None
        # exceptions propagate *through* the span so the tracer records
        # args["error"] (= "BudgetExceeded", "RecursionError", ...) on it
        try:
            with self._tracer.span("solver.explore", strategy=self.strategy):
                witness = self._explore(regex, budget, recorder)
        except BudgetExceeded as exc:
            return SolverResult(
                UNKNOWN, reason=str(exc), stats=self._stats(mark, budget),
                explanation=(recorder.unknown(regex, str(exc))
                             if recorder else None),
            )
        except RESOURCE_ERRORS as exc:
            # pathological inputs (deeply nested regexes above all) can
            # blow the interpreter stack mid-derivative; answer a typed
            # unknown so one bad query can never abort a batch
            try:
                stats = self._stats(mark, budget)
            except Exception:
                stats = None
            return SolverResult(
                UNKNOWN,
                reason="%s during derivative exploration"
                       % type(exc).__name__,
                error=error_info(exc),
                stats=stats,
                explanation=(
                    recorder.unknown(
                        regex, "%s during exploration" % type(exc).__name__
                    ) if recorder else None
                ),
            )
        if witness is None:
            # the unsat certificate: the explored closure (states the
            # bot rule skipped get their rows filled in from the
            # memoized derivative trees)
            return SolverResult(
                UNSAT, stats=self._stats(mark, budget),
                explanation=recorder.unsat(regex) if recorder else None,
            )
        self._c_witnesses.inc()
        return SolverResult(
            SAT, witness=witness, stats=self._stats(mark, budget),
            explanation=(recorder.sat(regex, witness, recorder.sat_steps)
                         if recorder else None),
        )

    def is_empty(self, regex, budget=None):
        """Is ``L(regex)`` empty?  (The complement view of sat.)"""
        result = self.is_satisfiable(regex, budget)
        if result.is_sat:
            return SolverResult(
                UNSAT, witness=result.witness, stats=result.stats,
                explanation=result.explanation,
            )
        if result.is_unsat:
            return SolverResult(
                SAT, stats=result.stats, explanation=result.explanation
            )
        return result

    def contains(self, sub, sup, budget=None):
        """Language containment ``L(sub) ⊆ L(sup)``.

        Reduces to emptiness of ``sub & ~sup``; a witness (when the
        containment fails) is a string in the difference.
        """
        difference = self.builder.inter([sub, self.builder.compl(sup)])
        result = self.is_satisfiable(difference, budget)
        if result.is_sat:
            return SolverResult(
                UNSAT, witness=result.witness, stats=result.stats,
                reason="containment counterexample",
                explanation=result.explanation,
            )
        if result.is_unsat:
            return SolverResult(
                SAT, stats=result.stats, explanation=result.explanation
            )
        return result

    def equivalent(self, left, right, budget=None):
        """Language equivalence, via the symmetric difference
        ``(left & ~right) | (right & ~left)`` (Section 5's reduction of
        inequivalence constraints to membership)."""
        builder = self.builder
        sym_diff = builder.union([
            builder.inter([left, builder.compl(right)]),
            builder.inter([right, builder.compl(left)]),
        ])
        result = self.is_satisfiable(sym_diff, budget)
        if result.is_sat:
            return SolverResult(
                UNSAT, witness=result.witness, stats=result.stats,
                reason="distinguishing string",
                explanation=result.explanation,
            )
        if result.is_unsat:
            return SolverResult(
                SAT, stats=result.stats, explanation=result.explanation
            )
        return result

    def membership(self, string, regex):
        """Concrete membership via iterated derivatives (no search)."""
        return self.engine.matches(regex, string)

    # -- exploration -----------------------------------------------------------

    def _explore(self, root, budget, recorder=None):
        """Lazy unfolding: BFS over derivative successors.

        Returns a witness string if a nullable regex is reachable, or
        None once the reachable space is exhausted (root is dead).
        When ``recorder`` is set, every expanded state's full transition
        rows are recorded and a sat verdict leaves its path steps on
        ``recorder.sat_steps``.
        """
        graph = self.graph
        graph.add_vertex(root)
        if root.nullable:
            if recorder is not None:
                recorder.sat_steps = []
            return ""
        # the bot rule: a regex already proved dead is unsat immediately
        if graph.is_dead(root):
            return None
        parent = {root: None}
        queue = deque([root])
        while queue:
            budget.tick()
            vertex = queue.popleft() if self.strategy == "bfs" else queue.pop()
            self._explored_n += 1
            if graph.is_dead(vertex):
                continue
            edges = self._edges(vertex, recorder)
            all_targets = set()
            for _, successor_set in edges:
                all_targets |= successor_set
            graph.update(vertex, all_targets)
            for guard, successor_set in edges:
                char = self.algebra.pick(guard)
                for target in successor_set:
                    if target not in parent:
                        parent[target] = (vertex, char, guard)
                        if target.nullable:
                            witness, steps = self._reconstruct(parent, target)
                            if recorder is not None:
                                recorder.sat_steps = steps
                            return witness
                        queue.append(target)
        return None

    def _edges(self, vertex, recorder=None):
        """Group the derivative tree of ``vertex`` into transitions.

        Returns ``(guard, successors)`` pairs, one per non-bottom leaf
        of the clean conditional tree; the guards are satisfiable and
        partition the character space.  ``bottom`` never appears in
        leaf sets; ``.*`` does (it is a final, alive vertex — dropping
        it, as ``Q()`` does for state counting, would break soundness
        of dead-end detection).

        The full rows — bottom leaves included, so the guards cover the
        whole domain — go to the recorder; the exploration loop only
        sees the live ones.
        """
        rows = self.engine.transitions(vertex)
        if recorder is not None:
            recorder.record_rows(vertex, rows)
        return [(guard, targets) for guard, targets in rows if targets]

    def _reconstruct(self, parent, target):
        """Witness string plus the (state, guard, char, successor)
        steps from the root, read off the parent chain."""
        steps = []
        node = target
        while parent[node] is not None:
            source, char, guard = parent[node]
            steps.append((source, guard, char, node))
            node = source
        steps.reverse()
        return "".join(step[2] for step in steps), steps

    def _mark(self, budget):
        """Snapshot the cumulative counters at query entry, so the
        query's :class:`SolverStats` can report per-query deltas (the
        memo tables and graph persist across queries on purpose)."""
        engine = self.engine
        return {
            "graph": self.graph.stats(),
            "explored": self._explored_n,
            "sat_checks": engine.sat_checks,
            "deriv_memo_hits": engine.deriv_memo_hits,
            "deriv_memo_misses": engine.deriv_memo_misses,
            "meld_memo_hits": engine.meld_memo_hits,
            "meld_memo_misses": engine.meld_memo_misses,
            "algebra_ops": self.algebra.op_count,
            "interned": self.builder.interned_count,
            "fuel_used": budget.fuel_used,
            "started": time.perf_counter(),
        }

    def _stats(self, mark, budget):
        engine = self.engine
        graph_now = self.graph.stats()
        graph_then = mark["graph"]
        explored = self._explored_n - mark["explored"]
        self._h_query_states.observe(explored)
        self._sync_registry()
        lifetime = dict(graph_now)
        lifetime.update({
            "queries": self._c_queries.value,
            "explored": self._explored_n,
            "sat_checks": engine.sat_checks,
            "deriv_memo_hits": engine.deriv_memo_hits,
            "deriv_memo_misses": engine.deriv_memo_misses,
            "meld_memo_hits": engine.meld_memo_hits,
            "meld_memo_misses": engine.meld_memo_misses,
            "algebra_ops": self.algebra.op_count,
            "interned_regexes": self.builder.interned_count,
            "fuel_used": budget.fuel_used,
        })
        return SolverStats(
            explored=explored,
            vertices=graph_now["vertices"] - graph_then["vertices"],
            edges=graph_now["edges"] - graph_then["edges"],
            final=graph_now["final"] - graph_then["final"],
            closed=graph_now["closed"] - graph_then["closed"],
            alive=graph_now["alive"] - graph_then["alive"],
            dead=graph_now["dead"] - graph_then["dead"],
            sat_checks=engine.sat_checks - mark["sat_checks"],
            deriv_memo_hits=engine.deriv_memo_hits - mark["deriv_memo_hits"],
            deriv_memo_misses=engine.deriv_memo_misses - mark["deriv_memo_misses"],
            meld_memo_hits=engine.meld_memo_hits - mark["meld_memo_hits"],
            meld_memo_misses=engine.meld_memo_misses - mark["meld_memo_misses"],
            algebra_ops=self.algebra.op_count - mark["algebra_ops"],
            fuel_used=budget.fuel_used - mark["fuel_used"],
            elapsed=time.perf_counter() - mark["started"],
            interned_regexes=self.builder.interned_count - mark["interned"],
            lifetime=lifetime,
            caches=self.state.cache_sizes(),
        )
