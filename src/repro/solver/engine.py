"""The derivative-based decision procedure (paper, Section 5).

:class:`RegexSolver` decides emptiness/satisfiability of extended
regexes by lazily unfolding symbolic derivatives, maintaining the
persistent reachability graph ``G`` for dead-end detection, and
producing witness strings from the clean conditional trees' branch
guards.  Theorem 5.2: for a decidable character theory the procedure
answers ``unsat`` iff ``L(r)`` is empty (our character algebras are
decidable, so the only source of ``unknown`` is an explicit budget).
"""

import time
from collections import deque

from repro.derivatives.condtree import DerivativeEngine
from repro.errors import BudgetExceeded, ReproError, UnsupportedError
from repro.obs import Observability
from repro.obs.explain import ExplainRecorder
from repro.regex.transform import eliminate_lookarounds
from repro.solver.graph import RegexGraph
from repro.solver.lifecycle import EngineState
from repro.solver.result import (
    Budget, RESOURCE_ERRORS, SAT, SolverResult, SolverStats, UNKNOWN, UNSAT,
    error_info,
)


def _by_uid(regex):
    """Deterministic successor ordering for frozen transition rows."""
    return regex.uid


class RegexSolver:
    """Satisfiability, containment and equivalence of EREs.

    The solver owns a :class:`DerivativeEngine` and a persistent
    :class:`RegexGraph`; both accumulate knowledge across queries, so
    related queries get faster, exactly as dZ3's global graph does.

    ``obs`` is an :class:`~repro.obs.Observability` bundle; the default
    keeps metrics on (they are cheap) and tracing off.  Pass
    ``Observability.tracing()`` to record spans, or
    ``Observability.disabled()`` to strip even the counters.
    """

    def __init__(self, builder, strategy="dfs", obs=None, compaction=None,
                 explain=False, store=None):
        self.builder = builder
        self.algebra = builder.algebra
        self.obs = obs if obs is not None else Observability()
        self.algebra.bind_metrics(self.obs.metrics, self.obs.tracer)
        self.engine = DerivativeEngine(builder, obs=self.obs)
        self.graph = RegexGraph(is_final=lambda r: r.nullable, obs=self.obs)
        #: lifecycle facade over the solver's persistent caches; pass a
        #: CompactionPolicy as ``compaction`` to bound their growth
        self.state = EngineState(
            builder, engine=self.engine, graph=self.graph, obs=self.obs,
            policy=compaction,
        )
        if strategy not in ("dfs", "bfs"):
            raise ValueError("strategy must be 'dfs' or 'bfs'")
        # dZ3's unfolding is model-guided depth-first: it commits to one
        # branch of each case split and backtracks, so satisfiable deep
        # instances resolve without enumerating whole breadth levels.
        # BFS yields shortest witnesses; DFS is the default.
        self.strategy = strategy
        #: when True every query carries a checkable provenance record
        #: (witness path / unsat closure) on ``result.explanation``
        self.explain = explain
        scope = self.obs.metrics.scope("solver")
        self._c_queries = scope.counter("queries")
        self._c_witnesses = scope.counter("witnesses")
        self._h_query_states = scope.histogram("query_states")
        self._tracer = self.obs.tracer
        #: states popped across all queries (plain int on the hot path;
        #: published to the registry by _sync_registry per query)
        self._explored_n = 0
        #: the cross-query compiled-fragment store (repro.solver.store)
        self.store = None
        #: node -> full transition rows instantiated from the store;
        #: consulted before the derivative engine, pinned against
        #: compaction through the EngineState root provider
        self._warm_rows = {}
        #: node -> (LazyFragment, state index) for fragment states not
        #: yet materialized; _edges promotes entries into _warm_rows as
        #: exploration reaches them, so warm work stays proportional to
        #: the explored prefix (an early sat never pays for the whole
        #: fragment)
        self._warm_sources = {}
        #: per-root-uid canonical key memo (None = uncacheable)
        self._canon_keys = {}
        #: per-query capture target, set by _consult_store on a miss
        self._capture = None
        self._store_hits_n = 0
        self._store_misses_n = 0
        store_scope = self.obs.metrics.scope("store")
        self._c_store_hits = store_scope.counter("hits")
        self._c_store_misses = store_scope.counter("misses")
        if store is not None:
            self.attach_store(store)

    def _sync_registry(self):
        """Push the plain-int hot-path counters of every layer into the
        metrics registry — called once per query, so ``obs.metrics.
        snapshot()`` is consistent at query boundaries."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.scope("solver").counter("explored").value = self._explored_n
        self.engine.sync_metrics()
        self.graph.sync_metrics()
        self.algebra.sync_metrics()

    # -- the warm store -------------------------------------------------------

    def attach_store(self, store):
        """Wire a :class:`~repro.solver.store.SolverStore` in: queries
        consult it before building derivatives, misses capture their
        rows into it, and the instantiated rows register as compaction
        roots (the store-pinning invariant — see EngineState.
        add_root_provider)."""
        self.store = store
        self.state.add_root_provider(self._store_roots)

    def _store_roots(self):
        """Every node the warm rows reference — keys, successors, and
        lazily-parsed-but-unmaterialized fragment states — so
        compaction keeps fragment state reachable and uid-canonical."""
        roots = []
        for node, rows in self._warm_rows.items():
            roots.append(node)
            for _guard, targets in rows:
                roots.extend(targets)
        roots.extend(self._warm_sources)
        return roots

    def _consult_store(self, regex):
        """Query-entry store consultation.

        On a hit the fragment's rows are instantiated into
        ``_warm_rows`` (once — later queries find them already live).
        On a miss, arms per-query row capture; :meth:`_edges` fills it
        and :meth:`_capture_fragment` stores it at query end.

        The lookup key is the printed pattern alone — cheaper than the
        full :func:`~repro.solver.store.canonical_pattern` roundtrip,
        and just as safe: a hit is only used after the fragment's root
        re-interns to this very node, and a miss's capture is
        roundtrip-checked state-by-state in ``build_fragment`` before
        anything is stored.
        """
        from repro.regex.printer import to_pattern

        key = self._canon_keys.get(regex.uid, False)
        if key is False:
            try:
                key = to_pattern(regex, self.algebra)
            except (ReproError, RecursionError):
                key = None
            self._canon_keys[regex.uid] = key
        if key is None:
            return
        fragment = self.store.lookup(repr(self.algebra), key)
        if fragment is not None:
            self._store_hits_n += 1
            self._c_store_hits.inc()
            if (regex not in self._warm_rows
                    and regex not in self._warm_sources):
                from repro.solver.store import LazyFragment

                lazy = LazyFragment(self.builder, fragment)
                # the fragment's root must re-intern to this very node;
                # anything else means a stale snapshot — solve cold
                if lazy.node(0) is regex:
                    self._warm_sources[regex] = (lazy, 0)
            return
        self._store_misses_n += 1
        self._c_store_misses.inc()
        self._capture = (key, {})

    def _capture_fragment(self, regex):
        """Store the rows a just-finished miss query captured.  Partial
        captures (budget ran out, witness found early) are fine: each
        row is an independent fact about the derivative relation."""
        from repro.solver.store import build_fragment

        key, rows = self._capture
        self._capture = None
        if not rows:
            return
        fragment = build_fragment(
            self.builder, regex, key, rows,
            max_states=self.store.max_states,
        )
        if fragment is not None and self.store.insert(fragment):
            # keep the captured rows warm in-process too: the next
            # compaction must already see them as pinned roots
            self._warm_rows.update(rows)

    # -- public queries -------------------------------------------------------

    def is_satisfiable(self, regex, budget=None):
        """Is ``L(regex)`` nonempty?  Returns a result with a witness
        string when satisfiable.

        A query boundary: afterwards the engine state publishes its
        cache gauges and, when a compaction policy is armed, compacts
        everything unreachable from ``regex`` (and any pins).
        """
        events = self.obs.events
        if not events.enabled:
            try:
                return self._is_satisfiable(regex, budget)
            finally:
                self.state.end_query(keep=(regex,))
        # flight-recorder narration: one start/end event pair per query,
        # correlated by the hash-consed root's uid
        query = "uid:%d" % regex.uid
        events.emit("query.start", query=query)
        started = time.perf_counter()
        try:
            result = self._is_satisfiable(regex, budget)
        except BaseException as exc:
            events.emit(
                "query.end", query=query, status="raised",
                elapsed=time.perf_counter() - started,
                error=type(exc).__name__,
            )
            raise
        finally:
            self.state.end_query(keep=(regex,))
        stats = result.stats
        events.emit(
            "query.end", query=query, status=result.status,
            elapsed=time.perf_counter() - started,
            explored=getattr(stats, "explored", 0) or 0,
            fuel_used=getattr(stats, "fuel_used", 0) or 0,
        )
        return result

    def _is_satisfiable(self, regex, budget):
        budget = budget or Budget()
        self._c_queries.inc()
        mark = self._mark(budget)
        if regex.has_look:
            # derivative exploration is positional-blind: compile the
            # assertions away first (fullmatch languages are preserved,
            # so verdict and witness transfer to the original regex)
            target = eliminate_lookarounds(self.builder, regex)
            if target is None:
                return SolverResult(
                    UNKNOWN,
                    reason="lookaround elimination incomplete: assertion "
                           "in a position with no sound translation",
                    stats=self._stats(mark, budget),
                )
            regex = target
        if self.store is not None:
            self._consult_store(regex)
        recorder = ExplainRecorder(self) if self.explain else None
        try:
            return self._answer(regex, budget, mark, recorder)
        finally:
            # store any rows a miss query captured — even on a budget
            # or resource bailout, since partial captures are valid
            if self._capture is not None:
                self._capture_fragment(regex)

    def _answer(self, regex, budget, mark, recorder):
        # exceptions propagate *through* the span so the tracer records
        # args["error"] (= "BudgetExceeded", "RecursionError", ...) on it
        try:
            with self._tracer.span("solver.explore", strategy=self.strategy):
                witness = self._explore(regex, budget, recorder)
        except BudgetExceeded as exc:
            return SolverResult(
                UNKNOWN, reason=str(exc), stats=self._stats(mark, budget),
                explanation=(recorder.unknown(regex, str(exc))
                             if recorder else None),
            )
        except UnsupportedError as exc:
            # defense in depth: any assertion that slipped past the
            # elimination gate answers a typed unknown, never a wrong
            # verdict
            return SolverResult(
                UNKNOWN, reason=str(exc), stats=self._stats(mark, budget),
                explanation=(recorder.unknown(regex, str(exc))
                             if recorder else None),
            )
        except RESOURCE_ERRORS as exc:
            # pathological inputs (deeply nested regexes above all) can
            # blow the interpreter stack mid-derivative; answer a typed
            # unknown so one bad query can never abort a batch
            try:
                stats = self._stats(mark, budget)
            except Exception:
                stats = None
            return SolverResult(
                UNKNOWN,
                reason="%s during derivative exploration"
                       % type(exc).__name__,
                error=error_info(exc),
                stats=stats,
                explanation=(
                    recorder.unknown(
                        regex, "%s during exploration" % type(exc).__name__
                    ) if recorder else None
                ),
            )
        if witness is None:
            # the unsat certificate: the explored closure (states the
            # bot rule skipped get their rows filled in from the
            # memoized derivative trees)
            return SolverResult(
                UNSAT, stats=self._stats(mark, budget),
                explanation=recorder.unsat(regex) if recorder else None,
            )
        self._c_witnesses.inc()
        return SolverResult(
            SAT, witness=witness, stats=self._stats(mark, budget),
            explanation=(recorder.sat(regex, witness, recorder.sat_steps)
                         if recorder else None),
        )

    def is_empty(self, regex, budget=None):
        """Is ``L(regex)`` empty?  (The complement view of sat.)"""
        result = self.is_satisfiable(regex, budget)
        if result.is_sat:
            return SolverResult(
                UNSAT, witness=result.witness, stats=result.stats,
                explanation=result.explanation,
            )
        if result.is_unsat:
            return SolverResult(
                SAT, stats=result.stats, explanation=result.explanation
            )
        return result

    def contains(self, sub, sup, budget=None):
        """Language containment ``L(sub) ⊆ L(sup)``.

        Reduces to emptiness of ``sub & ~sup``; a witness (when the
        containment fails) is a string in the difference.
        """
        difference = self.builder.inter([sub, self.builder.compl(sup)])
        result = self.is_satisfiable(difference, budget)
        if result.is_sat:
            return SolverResult(
                UNSAT, witness=result.witness, stats=result.stats,
                reason="containment counterexample",
                explanation=result.explanation,
            )
        if result.is_unsat:
            return SolverResult(
                SAT, stats=result.stats, explanation=result.explanation
            )
        return result

    def equivalent(self, left, right, budget=None):
        """Language equivalence, via the symmetric difference
        ``(left & ~right) | (right & ~left)`` (Section 5's reduction of
        inequivalence constraints to membership)."""
        builder = self.builder
        sym_diff = builder.union([
            builder.inter([left, builder.compl(right)]),
            builder.inter([right, builder.compl(left)]),
        ])
        result = self.is_satisfiable(sym_diff, budget)
        if result.is_sat:
            return SolverResult(
                UNSAT, witness=result.witness, stats=result.stats,
                reason="distinguishing string",
                explanation=result.explanation,
            )
        if result.is_unsat:
            return SolverResult(
                SAT, stats=result.stats, explanation=result.explanation
            )
        return result

    def membership(self, string, regex):
        """Concrete membership via iterated derivatives (no search).

        Assertion-bearing regexes are decided by the positional
        reference semantics — derivatives cannot carry the context.
        """
        if regex.has_look:
            from repro.regex.semantics import Matcher

            return Matcher(self.builder.algebra).matches(regex, string)
        return self.engine.matches(regex, string)

    # -- exploration -----------------------------------------------------------

    def _explore(self, root, budget, recorder=None):
        """Lazy unfolding: BFS over derivative successors.

        Returns a witness string if a nullable regex is reachable, or
        None once the reachable space is exhausted (root is dead).
        When ``recorder`` is set, every expanded state's full transition
        rows are recorded and a sat verdict leaves its path steps on
        ``recorder.sat_steps``.
        """
        graph = self.graph
        graph.add_vertex(root)
        if root.nullable:
            if recorder is not None:
                recorder.sat_steps = []
            return ""
        # the bot rule: a regex already proved dead is unsat immediately
        if graph.is_dead(root):
            return None
        parent = {root: None}
        queue = deque([root])
        while queue:
            budget.tick()
            vertex = queue.popleft() if self.strategy == "bfs" else queue.pop()
            self._explored_n += 1
            if graph.is_dead(vertex):
                continue
            edges = self._edges(vertex, recorder)
            all_targets = set()
            for _, successor_set in edges:
                all_targets.update(successor_set)
            graph.update(vertex, all_targets)
            for guard, successor_set in edges:
                char = self.algebra.pick(guard)
                for target in successor_set:
                    if target not in parent:
                        parent[target] = (vertex, char, guard)
                        if target.nullable:
                            witness, steps = self._reconstruct(parent, target)
                            if recorder is not None:
                                recorder.sat_steps = steps
                            return witness
                        queue.append(target)
        return None

    def _edges(self, vertex, recorder=None):
        """Group the derivative tree of ``vertex`` into transitions.

        Returns ``(guard, successors)`` pairs, one per non-bottom leaf
        of the clean conditional tree; the guards are satisfiable and
        partition the character space.  ``bottom`` never appears in
        leaf sets; ``.*`` does (it is a final, alive vertex — dropping
        it, as ``Q()`` does for state counting, would break soundness
        of dead-end detection).

        The full rows — bottom leaves included, so the guards cover the
        whole domain — go to the recorder; the exploration loop only
        sees the live ones.

        With a warm store attached, rows instantiated from a fragment
        are used as-is (skipping the derivative build entirely);
        freshly computed rows get their successor sets frozen into
        uid-sorted tuples, so exploration order — and therefore the
        witness — is identical between the capturing cold run and any
        warm replay of the fragment.
        """
        rows = self._warm_rows.get(vertex) if self._warm_rows else None
        if rows is None and self._warm_sources:
            rows = self._materialize(vertex)
        if rows is None:
            rows = tuple(
                (guard, tuple(sorted(targets, key=_by_uid)))
                for guard, targets in self.engine.transitions(vertex)
            )
        if self._capture is not None:
            self._capture[1][vertex] = rows
        if recorder is not None:
            recorder.record_rows(vertex, rows)
        return [(guard, targets) for guard, targets in rows if targets]

    def _materialize(self, vertex):
        """Promote a lazily-held fragment state into live warm rows.

        Materializing parses the state's successor texts and registers
        *them* as lazy sources, so the fragment unrolls exactly as far
        as exploration walks it.  Any decode failure degrades the
        state to a cold derivative build."""
        source = self._warm_sources.pop(vertex, None)
        if source is None:
            return None
        lazy, idx = source
        rows = lazy.rows_for(idx)
        if rows is None:
            return None
        self._warm_rows[vertex] = rows
        for _ranges, targets in lazy.row_targets(idx):
            for target_idx in targets:
                node = lazy.node(target_idx)
                if (node is not None and node not in self._warm_rows
                        and node not in self._warm_sources):
                    self._warm_sources[node] = (lazy, target_idx)
        return rows

    def _reconstruct(self, parent, target):
        """Witness string plus the (state, guard, char, successor)
        steps from the root, read off the parent chain."""
        steps = []
        node = target
        while parent[node] is not None:
            source, char, guard = parent[node]
            steps.append((source, guard, char, node))
            node = source
        steps.reverse()
        return "".join(step[2] for step in steps), steps

    def _mark(self, budget):
        """Snapshot the cumulative counters at query entry, so the
        query's :class:`SolverStats` can report per-query deltas (the
        memo tables and graph persist across queries on purpose)."""
        engine = self.engine
        return {
            "graph": self.graph.stats(),
            "explored": self._explored_n,
            "sat_checks": engine.sat_checks,
            "deriv_memo_hits": engine.deriv_memo_hits,
            "deriv_memo_misses": engine.deriv_memo_misses,
            "meld_memo_hits": engine.meld_memo_hits,
            "meld_memo_misses": engine.meld_memo_misses,
            "algebra_ops": self.algebra.op_count,
            "interned": self.builder.interned_count,
            "store_hits": self._store_hits_n,
            "store_misses": self._store_misses_n,
            "fuel_used": budget.fuel_used,
            "started": time.perf_counter(),
        }

    def _stats(self, mark, budget):
        engine = self.engine
        graph_now = self.graph.stats()
        graph_then = mark["graph"]
        explored = self._explored_n - mark["explored"]
        self._h_query_states.observe(explored)
        self._sync_registry()
        lifetime = dict(graph_now)
        lifetime.update({
            "queries": self._c_queries.value,
            "explored": self._explored_n,
            "sat_checks": engine.sat_checks,
            "deriv_memo_hits": engine.deriv_memo_hits,
            "deriv_memo_misses": engine.deriv_memo_misses,
            "meld_memo_hits": engine.meld_memo_hits,
            "meld_memo_misses": engine.meld_memo_misses,
            "algebra_ops": self.algebra.op_count,
            "interned_regexes": self.builder.interned_count,
            "store_hits": self._store_hits_n,
            "store_misses": self._store_misses_n,
            "fuel_used": budget.fuel_used,
        })
        return SolverStats(
            explored=explored,
            vertices=graph_now["vertices"] - graph_then["vertices"],
            edges=graph_now["edges"] - graph_then["edges"],
            final=graph_now["final"] - graph_then["final"],
            closed=graph_now["closed"] - graph_then["closed"],
            alive=graph_now["alive"] - graph_then["alive"],
            dead=graph_now["dead"] - graph_then["dead"],
            sat_checks=engine.sat_checks - mark["sat_checks"],
            deriv_memo_hits=engine.deriv_memo_hits - mark["deriv_memo_hits"],
            deriv_memo_misses=engine.deriv_memo_misses - mark["deriv_memo_misses"],
            meld_memo_hits=engine.meld_memo_hits - mark["meld_memo_hits"],
            meld_memo_misses=engine.meld_memo_misses - mark["meld_memo_misses"],
            algebra_ops=self.algebra.op_count - mark["algebra_ops"],
            store_hits=self._store_hits_n - mark["store_hits"],
            store_misses=self._store_misses_n - mark["store_misses"],
            fuel_used=budget.fuel_used - mark["fuel_used"],
            elapsed=time.perf_counter() - mark["started"],
            interned_regexes=self.builder.interned_count - mark["interned"],
            lifetime=lifetime,
            caches=self.state.cache_sizes(),
        )
