"""The solver's regex reachability graph ``G = (V, E, F, C)`` (§5).

Vertices are regexes seen so far; an edge ``(v, w)`` records that ``w``
is a leaf of ``delta_dnf(v)``.  The derived sets are:

* ``F`` — final (nullable) vertices;
* ``C`` — closed vertices: all outgoing edges have been added;
* ``Alive`` — vertices from which some final vertex is reachable;
* ``Dead`` — vertices ``v`` with ``E*(v) ⊆ C \\ Alive``: fully explored
  dead ends, whose status can never change.

Both ``Alive`` and ``Dead`` are *permanent*: aliveness is monotone, and
a vertex can only be dead once every reachable vertex is closed, after
which no new edge can touch its reachable set.  The graph is therefore
maintained globally and persistently across queries exactly as the
paper prescribes — deadness proved while solving one constraint
short-circuits any later constraint that reaches the same regex (the
``bot`` rule).

The graph treats vertices as opaque hashable objects except for the
finality predicate supplied by the caller (for regexes: nullability).
"""

from repro.obs import NULL_OBS
from repro.solver.scc import IncrementalSCC


class RegexGraph:
    """Incrementally built reachability graph with Alive/Dead marking."""

    def __init__(self, is_final, obs=None):
        self._is_final = is_final
        self._succ = {}
        self._pred = {}
        self._final = set()
        self._closed = set()
        self._alive = set()
        self._dead = set()
        self._scc = IncrementalSCC()
        #: counters reported by benchmark harnesses
        self.edges_added = 0
        self._obs = obs if obs is not None else NULL_OBS
        #: bound ``tracer.span`` when tracing is live, else None
        self._span = self._obs.tracer.span if self._obs.tracer.enabled else None

    def sync_metrics(self):
        """Publish the graph's structural counters into the ``graph``
        scope of the metrics registry (no-op when metrics are off)."""
        metrics = self._obs.metrics
        if not metrics.enabled:
            return
        scope = metrics.scope("graph")
        scope.counter("updates").value = len(self._closed)
        scope.counter("edges").value = self.edges_added
        scope.counter("dead_marked").value = len(self._dead)

    # -- structure ------------------------------------------------------------

    def add_vertex(self, vertex):
        """Register a vertex (idempotent); classifies finality."""
        if vertex in self._succ:
            return
        self._succ[vertex] = set()
        self._pred[vertex] = set()
        self._scc.add_node(vertex)
        if self._is_final(vertex):
            self._final.add(vertex)
            self._mark_alive(vertex)

    def __contains__(self, vertex):
        return vertex in self._succ

    def __len__(self):
        return len(self._succ)

    @property
    def vertices(self):
        return self._succ.keys()

    def successors(self, vertex):
        return self._succ.get(vertex, set())

    def update(self, vertex, targets):
        """The ``upd`` rule (Figure 3b): add all derivative edges of
        ``vertex`` and mark it closed.  No effect if already closed."""
        self.add_vertex(vertex)
        if vertex in self._closed:
            return
        if self._span is not None:
            with self._span("graph.update", targets=len(targets)):
                self._update(vertex, targets)
        else:
            self._update(vertex, targets)

    def _update(self, vertex, targets):
        for target in targets:
            self.add_vertex(target)
            if target not in self._succ[vertex]:
                self._succ[vertex].add(target)
                self._pred[target].add(vertex)
                self._scc.add_edge(vertex, target)
                self.edges_added += 1
            if target in self._alive:
                self._mark_alive(vertex)
        self._closed.add(vertex)

    # -- alive ------------------------------------------------------------------

    def _mark_alive(self, vertex):
        """Propagate aliveness backwards through predecessors."""
        stack = [vertex]
        while stack:
            node = stack.pop()
            if node in self._alive:
                continue
            self._alive.add(node)
            stack.extend(
                p for p in self._pred.get(node, ()) if p not in self._alive
            )

    def is_final(self, vertex):
        return vertex in self._final

    def is_closed(self, vertex):
        return vertex in self._closed

    def is_alive(self, vertex):
        return vertex in self._alive

    # -- dead --------------------------------------------------------------------

    def is_dead(self, vertex):
        """True iff every vertex reachable from ``vertex`` is closed and
        not alive.  Positive answers are cached (deadness is permanent).
        """
        if vertex in self._dead:
            return True
        if vertex in self._alive or vertex not in self._succ:
            return False
        visited = set()
        stack = [vertex]
        while stack:
            node = stack.pop()
            if node in visited or node in self._dead:
                continue
            if node in self._alive or node not in self._closed:
                return False
            visited.add(node)
            stack.extend(self._succ[node])
        # the entire reachable set is closed and lifeless: all dead
        self._dead.update(visited)
        return True

    def classify(self, vertex):
        """Membership flags of one vertex across the derived sets (the
        provenance layer's narratives print these)."""
        return {
            "final": vertex in self._final,
            "closed": vertex in self._closed,
            "alive": vertex in self._alive,
            "dead": vertex in self._dead,
        }

    @property
    def dead_count(self):
        return len(self._dead)

    @property
    def alive_count(self):
        return len(self._alive)

    @property
    def edge_count(self):
        """Edges currently in the graph.  Unlike ``edges_added`` (a
        monotone counter that keeps counting retired edges), this is a
        level and shrinks under :meth:`compact`."""
        return sum(len(targets) for targets in self._succ.values())

    def compact(self, keep):
        """Drop every vertex failing the ``keep`` predicate and rebuild.

        The caller must pass a *successor-closed* keep set (the
        lifecycle layer's mark phase guarantees this): then a kept
        closed vertex keeps all its edges, so the cached Final, Closed,
        Alive and Dead facts remain valid verbatim on the kept
        subgraph.  The SCC index is rebuilt fresh; ``edges_added``
        stays monotone.  Returns the number of dropped vertices.
        """
        kept = {v for v in self._succ if keep(v)}
        dropped = len(self._succ) - len(kept)
        if not dropped:
            return 0
        succ = {v: {w for w in self._succ[v] if w in kept} for v in kept}
        pred = {v: set() for v in kept}
        scc = IncrementalSCC()
        for v in kept:
            scc.add_node(v)
        for v, targets in succ.items():
            for w in targets:
                pred[w].add(v)
                scc.add_edge(v, w)
        self._succ = succ
        self._pred = pred
        self._scc = scc
        self._final &= kept
        self._closed &= kept
        self._alive &= kept
        self._dead &= kept
        return dropped

    def same_scc(self, a, b):
        """True iff two vertices are in one strongly connected
        component (exposed for tests of the incremental SCC layer)."""
        return self._scc.same_component(a, b)

    def stats(self):
        """Summary counters for reporting."""
        return {
            "vertices": len(self._succ),
            "edges": self.edges_added,
            "final": len(self._final),
            "closed": len(self._closed),
            "alive": len(self._alive),
            "dead": len(self._dead),
        }
