"""Union-Find (disjoint sets) with path compression and union by rank.

The paper (Section 5, "Alive and Dead State Detection") maintains the
DAG of strongly connected components of the regex graph with Union-Find
[Tarjan 1975]; this is that structure.
"""


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items."""

    def __init__(self):
        self._parent = {}
        self._rank = {}

    def add(self, item):
        """Register ``item`` as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item):
        return item in self._parent

    def find(self, item):
        """Representative of the set containing ``item``."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b):
        """Merge the sets of ``a`` and ``b``; return the representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same(self, a, b):
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)
