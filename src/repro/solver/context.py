"""An incremental solving context with push/pop scopes.

Models the way the regex solver lives inside an SMT solver (paper §5):
assertions arrive incrementally, logical scopes are pushed and popped,
and — crucially — the regex graph ``G`` with its Dead/Alive knowledge
persists *across* scopes, because deadness of a regex is a property of
the regex alone, independent of the current assertions.  Popping a
scope therefore never throws away derivative work.
"""

from repro.solver.result import Budget
from repro.solver.smt import SmtSolver
from repro.solver import formula as F


class SolverContext:
    """Incremental assert / push / pop / check-sat interface."""

    def __init__(self, builder, regex_engine=None):
        self.builder = builder
        # one shared SmtSolver: its RegexSolver keeps the persistent
        # graph G across every scope and query
        self._smt = SmtSolver(builder, regex_engine)
        self._stack = [[]]
        #: number of check-sat calls answered (for tests/stats)
        self.checks = 0

    # -- assertion stack ----------------------------------------------------

    def assert_formula(self, formula):
        """Add an assertion to the current scope."""
        self._stack[-1].append(formula)

    def push(self):
        """Open a new scope."""
        self._stack.append([])

    def pop(self):
        """Discard the most recent scope (but keep derivative work)."""
        if len(self._stack) == 1:
            raise IndexError("cannot pop the outermost scope")
        self._stack.pop()

    @property
    def scope_depth(self):
        return len(self._stack) - 1

    def assertions(self):
        """All live assertions, outermost scope first."""
        return [f for scope in self._stack for f in scope]

    # -- solving -----------------------------------------------------------------

    def check_sat(self, budget=None):
        """Decide the conjunction of all live assertions."""
        self.checks += 1
        live = self.assertions()
        if not live:
            return self._smt.solve(F.TRUE, budget=budget or Budget())
        formula = live[0] if len(live) == 1 else F.And(tuple(live))
        return self._smt.solve(formula, budget=budget or Budget())

    def check_sat_assuming(self, extra, budget=None):
        """Check with temporary extra assumptions (no scope churn)."""
        self.push()
        try:
            for formula in extra:
                self.assert_formula(formula)
            return self.check_sat(budget)
        finally:
            self.pop()

    # -- introspection -------------------------------------------------------------

    @property
    def graph_stats(self):
        """The persistent regex graph's counters (grows monotonically
        across scopes — the point of Section 5's global ``G``)."""
        engine = self._smt.engine
        graph = getattr(engine, "graph", None)
        return graph.stats() if graph is not None else {}
