"""The cross-query compiled-fragment store.

The decision procedure is fast *because* state persists — hash-consed
regex nodes, interned conditional trees, memoized transition rows — but
until now all of that died with the process: every fresh solver rebuilt
its derivative trees, minterm partitions and lazy-DFA rows from
scratch, even though real validation traffic is zipfian (the same
patterns repeat endlessly).  This module makes the expensive artifacts
a solve produces anyway *portable*:

* :func:`canonical_pattern` — the store key: the printed form of the
  hash-consed root, accepted only when it round-trips (print → parse
  is the identity on the interned AST, so print → parse → print is a
  fixpoint).  Two queries that intern to the same node — however they
  were spelled — share one key; a node whose rendering does not
  round-trip is simply uncacheable, never wrongly cached.
* :func:`build_fragment` / :func:`instantiate_fragment` — serialize a
  solved pattern's transition rows (state patterns plus guard ranges
  plus successor indices, in recorded order) to a JSON-safe dict, and
  rebuild them against any builder over an equivalent algebra.
* :class:`SolverStore` — the keyed collection: lookup/insert with
  hit/miss counters, JSON save/load for shared read-only snapshots
  (serve workers load one on spawn — a warm restart instead of a cold
  rebuild), and :meth:`SolverStore.export_new` so a retiring worker
  can ship only the fragments it learned back to the pool.

Correctness contract (see DESIGN.md "The warm store"):

* a fragment records *facts* about the algebra's derivative relation —
  per-state transition rows — not verdicts; warm replay explores the
  same graph the cold path would build, so verdicts, witnesses and
  certificates are identical by construction;
* every state pattern is round-trip checked at capture time
  (``parse(print(node)) is node``); a fragment that fails the check is
  discarded rather than stored;
* row order and successor order are preserved exactly as captured
  (successors uid-sorted at capture), so warm exploration visits
  states in the same order as the capturing cold run;
* guards are serialized as codepoint ranges and rebuilt through the
  consuming algebra's ``from_ranges``, keyed by the algebra's ``repr``
  — a fragment can never be instantiated against a different domain.
"""

import json

from repro.errors import AlgebraError, ReproError
from repro.regex.ast import (
    COMPL, CONCAT, EMPTY, EPSILON, INTER, LOOP, PRED, UNION,
)

#: Version stamp embedded in every saved store; readers reject any
#: other version instead of misinterpreting it.  v2: the pattern
#: grammar gained zero-width assertions (lookarounds, anchors), so v1
#: snapshots may key fragments under pattern texts that now parse to a
#: different language (``\b`` in particular changed reading) — loading
#: them would serve wrong automata for syntactically identical keys.
STORE_SCHEMA_VERSION = 2

#: Fragments larger than this many states are not stored: the artifact
#: size (and the warm-side parse cost) would rival a cold rebuild.
DEFAULT_MAX_STATES = 512


def canonical_pattern(builder, regex):
    """The canonical store key of ``regex``, or None when uncacheable.

    The key is the printed pattern text, accepted only when parsing it
    re-interns to the *identical* node — then print ∘ parse ∘ print is
    trivially a fixpoint and every spelling of the same interned regex
    maps to one key.  Rendering or parse failures (exotic predicates,
    algebra-specific spellings) make the regex uncacheable, never
    wrongly cached.
    """
    from repro.regex.parser import parse
    from repro.regex.printer import to_pattern

    try:
        text = to_pattern(regex, builder.algebra)
        if parse(builder, text) is not regex:
            return None
    except (ReproError, RecursionError):
        return None
    return text


def _guard_ranges(algebra, guard):
    """Serialize one guard as sorted inclusive codepoint ranges, or
    None when the algebra offers no serializable view."""
    ranges = getattr(guard, "ranges", None)
    if ranges is not None:
        return [[lo, hi] for lo, hi in ranges]
    if hasattr(algebra, "chars"):
        codes = sorted(ord(c) for c in algebra.chars(guard))
        out = []
        for code in codes:
            if out and code == out[-1][1] + 1:
                out[-1][1] = code
            else:
                out.append([code, code])
        return out
    return None


def _encode_states(algebra, states):
    """Compile the states' shared DAG into a flat postorder program.

    Returns ``(ops, slots)`` — ``ops[i]`` builds one node from earlier
    slots, ``slots[j]`` is the slot of state ``j`` — or None when a
    node cannot be encoded.  The program exists because rebuilding a
    state from its pattern *text* costs a full tokenizer/parser pass,
    which profiles as the warm path's dominant cost; replaying builder
    calls over pre-decoded ranges is an order of magnitude cheaper and
    lands on the identical interned nodes (the smart constructors are
    the normal form, however a node is reached).
    """
    ops = []
    slots = {}
    stack = list(reversed(states))
    while stack:
        node = stack[-1]
        if node in slots:
            stack.pop()
            continue
        pending = [c for c in (node.children or ()) if c not in slots]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        kind = node.kind
        if kind == PRED:
            ranges = _guard_ranges(algebra, node.pred)
            if ranges is None:
                return None
            op = ["p", ranges]
        elif kind == EPSILON:
            op = ["e"]
        elif kind == EMPTY:
            op = ["E"]
        elif kind == COMPL:
            op = ["n", slots[node.children[0]]]
        elif kind == LOOP:
            op = ["l", slots[node.children[0]], node.lo, node.hi]
        elif kind == CONCAT:
            op = ["c", [slots[c] for c in node.children]]
        elif kind == UNION:
            op = ["u", [slots[c] for c in node.children]]
        elif kind == INTER:
            op = ["i", [slots[c] for c in node.children]]
        else:
            return None
        slots[node] = len(ops)
        ops.append(op)
    return ops, [slots[s] for s in states]


def build_fragment(builder, root, key, rows_by_node,
                   max_states=DEFAULT_MAX_STATES):
    """Serialize captured transition rows into a JSON-safe fragment.

    ``rows_by_node`` maps expanded regex nodes to their full transition
    rows — ``(guard, successor-tuple)`` pairs, bottom rows included, in
    the order the exploration used them.  Only states reachable from
    ``root`` through the captured rows are kept (the rest belong to
    other queries' closures).  Returns None when the fragment is too
    large, a guard is unserializable, or any state fails the print →
    parse round-trip check — a fragment is either exact or absent.
    """
    from repro.regex.parser import parse
    from repro.regex.printer import to_pattern

    algebra = builder.algebra
    index = {root: 0}
    states = [root]
    cursor = 0
    while cursor < len(states):
        rows = rows_by_node.get(states[cursor])
        cursor += 1
        if rows is None:
            continue
        for _guard, targets in rows:
            for target in targets:
                if target not in index:
                    if len(states) >= max_states:
                        return None
                    index[target] = len(states)
                    states.append(target)
    texts = []
    for node in states:
        try:
            text = to_pattern(node, algebra)
            if parse(builder, text) is not node:
                return None
        except (ReproError, RecursionError):
            return None
        texts.append(text)
    serialized = {}
    for node, rows in rows_by_node.items():
        idx = index.get(node)
        if idx is None:
            continue
        out_rows = []
        for guard, targets in rows:
            ranges = _guard_ranges(algebra, guard)
            if ranges is None:
                return None
            out_rows.append([ranges, [index[t] for t in targets]])
        serialized[str(idx)] = out_rows
    if not serialized:
        return None
    fragment = {
        "key": key,
        "algebra": repr(algebra),
        "states": texts,
        "rows": serialized,
    }
    encoded = _encode_states(algebra, states)
    if encoded is not None:
        fragment["code"], fragment["slots"] = encoded
    return fragment


def instantiate_fragment(builder, fragment):
    """Rebuild a fragment's rows against ``builder``.

    Returns ``{node: ((guard, successor-tuple), ...), ...}`` — full
    rows in recorded order — or None when any state no longer parses
    (a stale snapshot over a changed grammar degrades to a cold solve,
    never to a wrong one).
    """
    from repro.regex.parser import parse

    algebra = builder.algebra
    try:
        nodes = [parse(builder, text) for text in fragment["states"]]
    except (ReproError, RecursionError):
        return None
    out = {}
    try:
        for idx, rows in fragment["rows"].items():
            node = nodes[int(idx)]
            out[node] = tuple(
                (
                    algebra.from_ranges([(lo, hi) for lo, hi in ranges]),
                    tuple(nodes[t] for t in targets),
                )
                for ranges, targets in rows
            )
    except (ReproError, IndexError, KeyError, TypeError, ValueError):
        return None
    return out


class LazyFragment:
    """Per-state, on-demand instantiation of one fragment.

    Rebuilding a whole fragment eagerly parses every captured state —
    which can cost *more* than a cold solve that finds its witness two
    expansions in.  This wrapper parses exactly what exploration
    touches: materializing one state's rows parses that state's
    successor texts (needed anyway — they are the next frontier) and
    nothing else, so the warm path's work is proportional to the
    explored prefix, just like the cold path's.
    """

    __slots__ = ("builder", "fragment", "_nodes", "_values")

    def __init__(self, builder, fragment):
        self.builder = builder
        self.fragment = fragment
        self._nodes = {}
        #: per-slot node cache for the structural program
        self._values = {}

    def node(self, idx):
        """The interned node of state ``idx``, rebuilt on first use;
        None when the state no longer decodes (stale snapshot over a
        changed grammar — degrade to a cold solve, never a wrong one).

        Fragments carry two rebuilding routes: the structural program
        (``code``/``slots`` — direct builder calls over pre-decoded
        ranges, the fast path) and the pattern texts (``states`` — the
        roundtrip-checked, human-readable fallback for snapshots
        written before the program existed or whose program fails).
        Both land on the same interned node: the smart constructors
        are the normal form.
        """
        node = self._nodes.get(idx)
        if node is None:
            node = self._decode(idx)
            if node is None:
                return None
            self._nodes[idx] = node
        return node

    def _decode(self, idx):
        fragment = self.fragment
        slots = fragment.get("slots")
        if slots is not None and 0 <= idx < len(slots):
            try:
                return self._eval_slot(slots[idx])
            except (AlgebraError, IndexError, KeyError, TypeError,
                    ValueError):
                pass
        from repro.regex.parser import parse

        try:
            return parse(self.builder, fragment["states"][idx])
        except (ReproError, RecursionError, IndexError):
            return None

    def _eval_slot(self, slot):
        """Run the structural program up to ``slot`` (iterative, memoized
        per slot — shared subterms across states evaluate once)."""
        values = self._values
        node = values.get(slot)
        if node is not None:
            return node
        builder = self.builder
        algebra = builder.algebra
        ops = self.fragment["code"]
        stack = [slot]
        while stack:
            idx = stack[-1]
            if idx in values:
                stack.pop()
                continue
            op = ops[idx]
            tag = op[0]
            if tag in ("c", "u", "i"):
                pending = [c for c in op[1] if c not in values]
            elif tag in ("n", "l"):
                pending = [] if op[1] in values else [op[1]]
            else:
                pending = []
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            if tag == "p":
                values[idx] = builder.pred(
                    algebra.from_ranges([(lo, hi) for lo, hi in op[1]])
                )
            elif tag == "e":
                values[idx] = builder.epsilon
            elif tag == "E":
                values[idx] = builder.empty
            elif tag == "n":
                values[idx] = builder.compl(values[op[1]])
            elif tag == "l":
                values[idx] = builder.loop(values[op[1]], op[2], op[3])
            elif tag == "c":
                values[idx] = builder.concat([values[c] for c in op[1]])
            elif tag == "u":
                values[idx] = builder.union([values[c] for c in op[1]])
            elif tag == "i":
                values[idx] = builder.inter([values[c] for c in op[1]])
            else:
                raise ValueError("unknown op %r" % (tag,))
        return values[slot]

    def row_targets(self, idx):
        """The raw serialized rows of state ``idx`` (or None when that
        state was never captured)."""
        return self.fragment["rows"].get(str(idx))

    def rows_for(self, idx):
        """Materialize state ``idx``'s full rows —
        ``((guard, successor-tuple), ...)`` in recorded order — or None
        when the state was not captured or no longer decodes."""
        raw = self.row_targets(idx)
        if raw is None:
            return None
        algebra = self.builder.algebra
        out = []
        try:
            for ranges, targets in raw:
                guard = algebra.from_ranges([(lo, hi) for lo, hi in ranges])
                nodes = []
                for target in targets:
                    node = self.node(target)
                    if node is None:
                        return None
                    nodes.append(node)
                out.append((guard, tuple(nodes)))
        except (ReproError, TypeError, ValueError, KeyError):
            return None
        return tuple(out)


class SolverStore:
    """Compiled fragments keyed by (algebra repr, canonical pattern).

    One store instance can back many solvers (the serve workers share a
    read-only snapshot); mutation is insert-only, so a torn view never
    corrupts — at worst a concurrent reader misses a fresh fragment and
    solves cold.
    """

    def __init__(self, max_states=DEFAULT_MAX_STATES):
        self.max_states = max_states
        self._fragments = {}
        #: keys inserted since construction/load — what a worker ships
        #: back to the pool when it retires
        self._new = []
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._fragments)

    def lookup(self, algebra_key, pattern_key):
        """The fragment for a key pair, counting the hit or miss."""
        fragment = self._fragments.get((algebra_key, pattern_key))
        if fragment is None:
            self.misses += 1
        else:
            self.hits += 1
        return fragment

    def insert(self, fragment):
        """Add one fragment; first write wins (fragments for the same
        key record the same facts, so there is nothing to reconcile)."""
        key = (fragment["algebra"], fragment["key"])
        if key in self._fragments:
            return False
        self._fragments[key] = fragment
        self._new.append(key)
        return True

    def merge(self, fragments):
        """Fold a list of fragment dicts in; returns how many were new."""
        added = 0
        for fragment in fragments:
            if self.insert(fragment):
                added += 1
        return added

    def export_new(self):
        """The fragments inserted since this store was built/loaded."""
        return [self._fragments[key] for key in self._new
                if key in self._fragments]

    # -- persistence --------------------------------------------------------

    def to_dict(self):
        return {
            "v": STORE_SCHEMA_VERSION,
            "fragments": [
                self._fragments[key] for key in sorted(self._fragments)
            ],
        }

    def from_dict(self, data):
        """Load fragments from :meth:`to_dict` output (additive; loaded
        fragments do not count as new).  Raises ValueError on a
        malformed or future-schema payload."""
        if not isinstance(data, dict):
            raise ValueError("store payload is not a mapping")
        if data.get("v", 0) != STORE_SCHEMA_VERSION:
            raise ValueError(
                "store schema %r does not match %d"
                % (data.get("v"), STORE_SCHEMA_VERSION)
            )
        for fragment in data.get("fragments", ()):
            if not isinstance(fragment, dict) or "key" not in fragment \
                    or "algebra" not in fragment or "states" not in fragment:
                raise ValueError("malformed store fragment")
            self._fragments.setdefault(
                (fragment["algebra"], fragment["key"]), fragment
            )
        return self

    def save(self, path):
        """Write the snapshot atomically: serialize to a sibling temp
        file, fsync, then ``os.replace`` over the target.  A reader (a
        worker spawning mid-save, a concurrent ``--store`` CLI run)
        always sees either the old complete file or the new complete
        file — never a torn prefix."""
        import os
        import tempfile

        path = str(path)
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def save_merged(self, path):
        """Atomic save that first folds in whatever another writer put
        at ``path`` since we loaded it.  Two pools (or a daemon plus a
        CLI run) sharing one ``--store FILE`` race benignly: the merge
        is insert-only, so the loser of the ``os.replace`` race drops
        at most the winner's *simultaneous* additions, never corrupts
        the file, and a later save converges.  A malformed or torn
        on-disk file (pre-atomic writers) is skipped rather than
        fatal — this path exists to *improve* the snapshot."""
        try:
            current = SolverStore(max_states=self.max_states)
            current.load(path)
            self.merge(current.to_dict()["fragments"])
        except (OSError, ValueError):
            pass
        return self.save(path)

    def load(self, path):
        """Load a snapshot file; missing files are a clean no-op (a
        first run starts cold), malformed ones raise ValueError.

        A snapshot with a *different schema version* is also a clean
        cold start, not an error: the v1→v2 bump changed what pattern
        texts mean (zero-width assertions), so serving v1 fragments
        under v2 keys could answer with the wrong automaton.  Starting
        cold is always correct, merely slower; the next save rewrites
        the file at the current version.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return self
        if isinstance(data, dict) \
                and data.get("v", 0) != STORE_SCHEMA_VERSION:
            return self
        return self.from_dict(data)

    def stats(self):
        return {
            "fragments": len(self._fragments),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self):
        return "SolverStore(%d fragments, %d hits, %d misses)" % (
            len(self._fragments), self.hits, self.misses,
        )
