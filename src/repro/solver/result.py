"""Solver results and resource budgets."""

import time

from repro.errors import BudgetExceeded

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class Budget:
    """A deterministic fuel counter plus an optional wall-clock limit.

    Fuel makes "timeouts" reproducible across machines: a unit of fuel
    is one unit of solver work (one state expansion, one rule firing).
    ``None`` means unlimited.
    """

    def __init__(self, fuel=None, seconds=None):
        self.fuel = fuel
        self.fuel_used = 0
        self.seconds = seconds
        self.started = time.perf_counter()

    def tick(self, amount=1):
        """Consume fuel; raise :class:`BudgetExceeded` when exhausted."""
        self.fuel_used += amount
        if self.fuel is not None and self.fuel_used > self.fuel:
            raise BudgetExceeded(
                "fuel exhausted", fuel_used=self.fuel_used, elapsed=self.elapsed
            )
        if self.seconds is not None and self.fuel_used % 64 == 0:
            if self.elapsed > self.seconds:
                raise BudgetExceeded(
                    "wall clock exceeded", fuel_used=self.fuel_used,
                    elapsed=self.elapsed,
                )

    @property
    def elapsed(self):
        return time.perf_counter() - self.started

    def remaining(self):
        if self.fuel is None:
            return None
        return max(self.fuel - self.fuel_used, 0)


class SolverResult:
    """Outcome of a satisfiability-style query."""

    __slots__ = ("status", "witness", "model", "stats", "reason")

    def __init__(self, status, witness=None, model=None, stats=None, reason=None):
        self.status = status
        self.witness = witness
        self.model = model
        self.stats = stats or {}
        self.reason = reason

    @property
    def is_sat(self):
        return self.status == SAT

    @property
    def is_unsat(self):
        return self.status == UNSAT

    @property
    def is_unknown(self):
        return self.status == UNKNOWN

    def __repr__(self):
        extra = ""
        if self.witness is not None:
            extra = ", witness=%r" % (self.witness,)
        if self.reason is not None:
            extra += ", reason=%r" % (self.reason,)
        return "SolverResult(%s%s)" % (self.status, extra)
