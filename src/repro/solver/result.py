"""Solver results, typed per-query statistics, and resource budgets."""

import time

from repro.errors import BudgetExceeded

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Engine failures that must be mapped to a structured ``unknown``
#: result instead of propagating: runaway recursion on pathologically
#: nested inputs, and allocation failure during exploration.
RESOURCE_ERRORS = (RecursionError, MemoryError)


def error_info(exc):
    """The structured ``SolverResult.error`` payload for an exception."""
    return {
        "type": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
    }


class Budget:
    """A deterministic fuel counter plus an optional wall-clock limit.

    Fuel makes "timeouts" reproducible across machines: a unit of fuel
    is one unit of solver work (one state expansion, one rule firing).
    ``None`` means unlimited.
    """

    def __init__(self, fuel=None, seconds=None):
        self.fuel = fuel
        self.fuel_used = 0
        self.seconds = seconds
        self.ticks = 0
        self.started = time.perf_counter()

    def tick(self, amount=1):
        """Consume fuel; raise :class:`BudgetExceeded` when exhausted."""
        self.fuel_used += amount
        if self.fuel is not None and self.fuel_used > self.fuel:
            raise BudgetExceeded(
                "fuel exhausted", fuel_used=self.fuel_used, elapsed=self.elapsed
            )
        if self.seconds is not None:
            # check on every tick: the old `fuel_used % 64` guard never
            # fired when a tick with amount > 1 jumped the boundary
            self.ticks += 1
            if self.elapsed > self.seconds:
                raise BudgetExceeded(
                    "wall clock exceeded", fuel_used=self.fuel_used,
                    elapsed=self.elapsed,
                )

    @property
    def elapsed(self):
        return time.perf_counter() - self.started

    def remaining(self):
        if self.fuel is None:
            return None
        return max(self.fuel - self.fuel_used, 0)


class SolverStats:
    """Typed snapshot of the work one query performed.

    Every field is a *per-query* delta — :class:`~repro.solver.engine.
    RegexSolver` snapshots its cumulative counters at query entry and
    reports the difference — while ``lifetime`` holds the solver's
    cumulative counters, since the derivative memo tables and the
    reachability graph persist across queries on purpose.

    Behaves like a read-only mapping for backward compatibility with
    the free-form stats dict it replaced (``stats["vertices"]``,
    ``"sat_checks" in stats`` and friends keep working).
    """

    _FIELDS = (
        "explored", "vertices", "edges", "final", "closed", "alive", "dead",
        "sat_checks", "deriv_memo_hits", "deriv_memo_misses",
        "meld_memo_hits", "meld_memo_misses", "algebra_ops",
        "fuel_used", "elapsed", "interned_regexes",
        "store_hits", "store_misses",
    )

    #: dict-valued companions to the per-query delta fields: ``lifetime``
    #: holds cumulative counters, ``caches`` the current cache entry
    #: counts and approximate bytes (levels, not deltas — see
    #: :meth:`repro.solver.lifecycle.EngineState.cache_sizes`).
    _DICT_FIELDS = ("lifetime", "caches")

    __slots__ = _FIELDS + _DICT_FIELDS

    def __init__(self, lifetime=None, caches=None, **fields):
        for name in self._FIELDS:
            setattr(self, name, fields.pop(name, 0))
        if fields:
            raise TypeError("unknown stats fields: %s" % sorted(fields))
        self.lifetime = lifetime if lifetime is not None else {}
        self.caches = caches if caches is not None else {}

    def to_dict(self):
        out = {name: getattr(self, name) for name in self._FIELDS}
        out["lifetime"] = dict(self.lifetime)
        out["caches"] = dict(self.caches)
        return out

    # -- mapping compatibility ---------------------------------------------

    def __getitem__(self, key):
        if key in self._DICT_FIELDS:
            return getattr(self, key)
        if key in self._FIELDS:
            return getattr(self, key)
        raise KeyError(key)

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key):
        return key in self._DICT_FIELDS or key in self._FIELDS

    def keys(self):
        return list(self._FIELDS) + list(self._DICT_FIELDS)

    def __iter__(self):
        return iter(self.keys())

    def __len__(self):
        return len(self._FIELDS) + len(self._DICT_FIELDS)

    def items(self):
        return [(key, self[key]) for key in self.keys()]

    def __eq__(self, other):
        if isinstance(other, SolverStats):
            return self.to_dict() == other.to_dict()
        if isinstance(other, dict):
            return self.to_dict() == other
        return NotImplemented

    def __repr__(self):
        busy = ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for name in self._FIELDS
            if getattr(self, name)
        )
        return "SolverStats(%s)" % busy


class SolverResult:
    """Outcome of a satisfiability-style query.

    ``error`` is populated when the query was answered ``unknown``
    because of a mapped engine failure (resource exhaustion such as
    :class:`RecursionError` / :class:`MemoryError`, or a reaped batch
    worker): a dict with at least ``"type"`` and ``"message"`` keys.
    Callers — batch workers above all — therefore always see a typed
    result, never a propagating interpreter error.
    """

    __slots__ = ("status", "witness", "model", "stats", "reason", "error",
                 "explanation")

    def __init__(self, status, witness=None, model=None, stats=None,
                 reason=None, error=None, explanation=None):
        self.status = status
        self.witness = witness
        self.model = model
        self.stats = stats if stats is not None else {}
        self.reason = reason
        self.error = error
        #: :class:`repro.obs.explain.Explanation` (or ``SmtExplanation``)
        #: when the solver ran with provenance recording enabled
        self.explanation = explanation

    @property
    def is_sat(self):
        return self.status == SAT

    @property
    def is_unsat(self):
        return self.status == UNSAT

    @property
    def is_unknown(self):
        return self.status == UNKNOWN

    def to_dict(self):
        """JSON-serializable view (used by the CLI and bench export)."""
        stats = self.stats
        if hasattr(stats, "to_dict"):
            stats = stats.to_dict()
        else:
            stats = dict(stats)
        out = {
            "status": self.status,
            "witness": self.witness,
            "reason": self.reason,
            "stats": stats,
        }
        if self.model is not None:
            out["model"] = dict(self.model)
        if self.error is not None:
            out["error"] = dict(self.error)
        if self.explanation is not None:
            # summary only: the full certificate is large and stays
            # behind Explanation.certificate()
            out["explanation"] = self.explanation.to_dict()
        return out

    def __repr__(self):
        extra = ""
        if self.witness is not None:
            extra = ", witness=%r" % (self.witness,)
        if self.reason is not None:
            extra += ", reason=%r" % (self.reason,)
        if self.error is not None:
            extra += ", error=%r" % (self.error,)
        return "SolverResult(%s%s)" % (self.status, extra)
