"""Baseline satisfiability engines, one per algorithm family the paper
compares against.

All expose ``is_satisfiable(regex, budget) -> SolverResult`` so the
benchmark harness (and the mini-SMT front end) can swap them freely:

* :class:`EagerAutomataSolver` — eager automata Boolean operations
  ("approach 1"; legacy Z3's symbolic-automata solver).  The
  ``determinize_all`` flavour models DFA-based pipelines, which pay
  the subset construction even without complement.
* :class:`AntimirovSolver` — lazy partial derivatives with the
  product rule for intersection, no complement (CVC4-style, [43]).
* :class:`MintermSolver` — classical Brzozowski derivatives after
  *global* mintermization of the constraint's predicates (the
  finitization approach of Section 8.3): complete, but exponential in
  the number of distinct predicates and proportional to the number of
  minterms per step.
"""

from collections import deque

from repro.alphabet.minterms import minterms
from repro.automata.eager import eager_compile
from repro.automata.ops import determinize
from repro.automata.sfa import StateBudget
from repro.derivatives.antimirov import linear_form
from repro.derivatives.brzozowski import brzozowski, sorted_predicates
from repro.errors import BudgetExceeded, UnsupportedError
from repro.obs import Observability
from repro.solver.lifecycle import EngineState
from repro.solver.result import Budget, SAT, SolverResult, UNKNOWN, UNSAT


class _BaselineObsMixin:
    """Shared telemetry wiring: every baseline reports its explored
    states under a scope named after the engine, so dZ3 and the
    baselines are comparable on the same dashboards.

    Also shared: the lifecycle facade.  The baselines keep no memo
    tables of their own, but their queries intern transient regexes
    into the shared builder; the engine state bounds that growth the
    same way as for the derivative solver.
    """

    def _init_obs(self, obs, compaction=None):
        self.obs = obs if obs is not None else Observability()
        scope = self.obs.metrics.scope("baseline").scope(self.name)
        self._c_queries = scope.counter("queries")
        self._c_explored = scope.counter("explored")
        self._tracer = self.obs.tracer
        self.state = EngineState(self.builder, obs=self.obs, policy=compaction)

    def is_satisfiable(self, regex, budget=None):
        """Satisfiability of one ERE; a query boundary for the engine
        state (gauges published, compaction policy applied).

        Constructs a baseline cannot soundly handle (zero-width
        assertions above all) answer a typed unknown here, uniformly
        across the lineup — an incomplete engine is not a wrong one.
        """
        try:
            return self._is_satisfiable(regex, budget)
        except UnsupportedError as exc:
            return SolverResult(UNKNOWN, reason=str(exc))
        finally:
            self.state.end_query(keep=(regex,))


class EagerAutomataSolver(_BaselineObsMixin):
    """Approach 1: compile the whole ERE to an automaton, then ask."""

    name = "eager-sfa"

    def __init__(self, builder, max_states=100000, determinize_all=False,
                 obs=None, compaction=None):
        self.builder = builder
        self.algebra = builder.algebra
        self.max_states = max_states
        self.determinize_all = determinize_all
        if determinize_all:
            self.name = "eager-dfa"
        self._init_obs(obs, compaction)

    def _is_satisfiable(self, regex, budget=None):
        states = StateBudget(self.max_states)
        self._c_queries.inc()
        try:
            with self._tracer.span("solver.explore", engine=self.name):
                sfa = eager_compile(self.algebra, regex, states)
                if self.determinize_all and not sfa.deterministic:
                    sfa = determinize(sfa, states)
                empty, witness = sfa.is_empty()
        except BudgetExceeded as exc:
            self._c_explored.inc(states.created)
            return SolverResult(
                UNKNOWN, reason=str(exc), stats={"states_created": states.created}
            )
        self._c_explored.inc(states.created)
        stats = {"states_created": states.created}
        if empty:
            return SolverResult(UNSAT, stats=stats)
        return SolverResult(SAT, witness=witness, stats=stats)


class AntimirovSolver(_BaselineObsMixin):
    """CVC4-style partial-derivative solver.

    Positive memberships and intersections go through Antimirov linear
    forms with the product rule.  *Top-level* complements (the shape
    ``A & ~B1 & ... & ~Bk`` the SMT reduction produces for negated
    membership atoms) are handled the way automata-based string solvers
    do: each ``~Bi`` is tracked as a lazily-determinized subset of
    ``Bi``'s partial-derivative states, rejected when the subset
    contains a nullable state.  Complement *nested* under concatenation
    or iteration has no partial-derivative formulation [17] and yields
    *unknown* — the gap the paper's handwritten suite exposes.
    """

    name = "antimirov-pd"

    def __init__(self, builder, obs=None, compaction=None):
        self.builder = builder
        self.algebra = builder.algebra
        self._init_obs(obs, compaction)

    def _is_satisfiable(self, regex, budget=None):
        budget = budget or Budget()
        self._c_queries.inc()
        try:
            positive, negatives = self._split(regex)
            with self._tracer.span("solver.explore", engine=self.name):
                return self._search(positive, negatives, budget)
        except UnsupportedError as exc:
            return SolverResult(UNKNOWN, reason=str(exc))
        except BudgetExceeded as exc:
            return SolverResult(UNKNOWN, reason=str(exc))

    def _split(self, regex):
        """``A & ~B1 & ... & ~Bk`` with complement-free pieces."""
        from repro.regex.ast import COMPL, INTER

        if regex.kind == INTER:
            parts = regex.children
        else:
            parts = (regex,)
        positives = []
        negatives = []
        for part in parts:
            if part.kind == COMPL:
                negatives.append(self._require_compl_free(part.children[0]))
            else:
                positives.append(self._require_compl_free(part))
        positive = (
            self.builder.inter(positives) if positives else self.builder.full
        )
        return positive, negatives

    def _require_compl_free(self, regex):
        from repro.regex.ast import COMPL

        if any(node.kind == COMPL for node in regex.iter_subterms()):
            raise UnsupportedError(
                "partial derivatives cannot express nested complement"
            )
        return regex

    def _search(self, positive, negatives, budget):
        builder = self.builder
        algebra = self.algebra

        def is_final(state):
            pos, subsets = state
            if not pos.nullable:
                return False
            return all(not any(q.nullable for q in s) for s in subsets)

        start = (positive, tuple(frozenset({n}) for n in negatives))
        if is_final(start):
            return SolverResult(SAT, witness="")
        parent = {start: None}
        stack = [start]
        explored = 0
        while stack:
            budget.tick()
            state = stack.pop()
            explored += 1
            self._c_explored.inc()
            pos, subsets = state
            pos_pairs = linear_form(builder, pos)
            subset_pairs = [
                [(phi, t) for q in subset for phi, t in linear_form(builder, q)]
                for subset in subsets
            ]
            guards = [phi for phi, _ in pos_pairs]
            for pairs in subset_pairs:
                guards.extend(phi for phi, _ in pairs)
            for part in minterms(algebra, guards):
                budget.tick()
                char = algebra.pick(part)
                next_subsets = tuple(
                    frozenset(
                        t for phi, t in pairs if algebra.member(char, phi)
                    )
                    for pairs in subset_pairs
                )
                for phi, target in pos_pairs:
                    if not algebra.member(char, phi):
                        continue
                    nxt = (target, next_subsets)
                    if nxt not in parent:
                        parent[nxt] = (state, char)
                        if is_final(nxt):
                            return SolverResult(
                                SAT,
                                witness=_reconstruct(parent, nxt),
                                stats={"states": explored},
                            )
                        stack.append(nxt)
        return SolverResult(UNSAT, stats={"states": explored})


class MintermSolver(_BaselineObsMixin):
    """Global mintermization + classical Brzozowski derivatives.

    The alphabet is finitized once per query: every derivative step
    iterates over *all* minterms of the constraint's predicate set,
    so a constraint with ``n`` distinct predicates costs up to
    ``2**n`` work per state — the Section 8.3 bottleneck.
    """

    name = "brzozowski-minterm"

    def __init__(self, builder, max_minterms=4096, obs=None, compaction=None):
        self.builder = builder
        self.algebra = builder.algebra
        self.max_minterms = max_minterms
        self._init_obs(obs, compaction)

    def _is_satisfiable(self, regex, budget=None):
        budget = budget or Budget()
        builder = self.builder
        algebra = self.algebra
        preds = sorted_predicates(regex)
        self._c_queries.inc()
        try:
            parts = minterms(algebra, preds)
            if len(parts) > self.max_minterms:
                return SolverResult(
                    UNKNOWN,
                    reason="minterm explosion (%d minterms)" % len(parts),
                )
            letters = [algebra.pick(part) for part in parts]
            if regex.nullable:
                return SolverResult(SAT, witness="")
            parent = {regex: None}
            queue = deque([regex])
            explored = 0
            while queue:
                budget.tick()
                state = queue.popleft()
                explored += 1
                self._c_explored.inc()
                for char in letters:
                    budget.tick()
                    target = brzozowski(builder, state, char)
                    if target is builder.empty:
                        continue
                    if target not in parent:
                        parent[target] = (state, char)
                        if target.nullable:
                            return SolverResult(
                                SAT,
                                witness=_reconstruct(parent, target),
                                stats={"states": explored, "minterms": len(parts)},
                            )
                        queue.append(target)
            return SolverResult(
                UNSAT, stats={"states": explored, "minterms": len(parts)}
            )
        except BudgetExceeded as exc:
            return SolverResult(UNKNOWN, reason=str(exc))


def _reconstruct(parent, state):
    chars = []
    node = state
    while parent[node] is not None:
        node, char = parent[node]
        chars.append(char)
    return "".join(reversed(chars))
