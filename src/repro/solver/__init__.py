"""The derivative-based decision procedure and the mini-SMT layer."""

from repro.solver.engine import RegexSolver
from repro.solver.graph import RegexGraph
from repro.solver.result import (
    Budget, SAT, SolverResult, SolverStats, UNKNOWN, UNSAT,
)
from repro.solver.rules import PropagationEngine, RuleTrace
from repro.solver.smt import SmtSolver
from repro.solver.context import SolverContext
from repro.solver.equivalence import BisimulationChecker
from repro.solver import baselines, formula

__all__ = [
    "RegexSolver", "RegexGraph", "Budget", "SolverResult", "SolverStats",
    "SAT", "UNSAT", "UNKNOWN",
    "PropagationEngine", "RuleTrace", "SmtSolver", "formula",
    "SolverContext", "BisimulationChecker", "baselines",
]
