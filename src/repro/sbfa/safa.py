"""Symbolic Alternating Finite Automata and the conversions of
Section 8.3 (Propositions 8.2 and 8.3).

A SAFA [D'Antoni, Kincaid & Wang] has transitions ``(q, psi, target)``
with ``target`` in the *positive* Boolean closure ``B+(Q)`` — no
complement.  Converting a SAFA to an SBFA is a direct embedding;
converting an SBFA to a SAFA requires (a) eliminating complement by
doubling the state space with negated copies, and (b) *local
mintermization* of each state's guards — the worst-case-exponential
step the paper identifies as the cost of the SAFA normal form.
"""

from repro.alphabet.minterms import minterms
from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, TRUnion, guards as tr_guards,
)
from repro.sbfa import boolstate as B
from repro.sbfa.sbfa import SBFA


class SAFA:
    """A symbolic alternating finite automaton."""

    def __init__(self, algebra, states, initial, finals, transitions):
        self.algebra = algebra
        self.states = set(states)
        self.initial = initial          # element of B+(Q)
        self.finals = set(finals)
        self.transitions = list(transitions)  # (state, pred, B+(Q))
        if not B.is_positive(initial):
            raise ValueError("SAFA initial combination must be positive")
        for _, _, target in self.transitions:
            if not B.is_positive(target):
                raise ValueError("SAFA transition targets must be positive")

    @property
    def state_count(self):
        return len(self.states)

    def accepts(self, string):
        """Alternating acceptance by backward Boolean evaluation."""
        if any(not self.algebra.in_domain(c) for c in string):
            return False  # negated targets must not admit foreign chars
        value = {q: q in self.finals for q in self.states}
        for char in reversed(string):
            moves = {}
            for state, pred, target in self.transitions:
                if self.algebra.member(char, pred):
                    moves.setdefault(state, []).append(target)
            value = {
                q: any(
                    B.evaluate(t, lambda p: value[p]) for t in moves.get(q, ())
                )
                for q in self.states
            }
        return B.evaluate(self.initial, lambda q: value[q])


def to_sbfa(safa, bottom="__bottom__"):
    """Proposition 8.2: the equivalent SBFA of a SAFA.

    ``Delta(q) = OR { if(psi, p, q_bot) | (q, psi, p) in transitions }``.
    """
    delta = {}
    for state in safa.states:
        branches = [
            TRCond(pred, _combo_to_tr(target), TRLeaf(bottom))
            for source, pred, target in safa.transitions
            if source == state
        ]
        if not branches:
            delta[state] = TRLeaf(bottom)
        elif len(branches) == 1:
            delta[state] = branches[0]
        else:
            delta[state] = TRUnion(tuple(branches))
    delta[bottom] = TRLeaf(bottom)
    return SBFA(
        safa.algebra, safa.states | {bottom}, safa.initial, safa.finals,
        bottom, delta,
    )


def _combo_to_tr(combo):
    tag = combo[0]
    if tag == "st":
        return TRLeaf(combo[1])
    if tag == "and":
        return TRInter(tuple(_combo_to_tr(c) for c in combo[1:]))
    if tag == "or":
        return TRUnion(tuple(_combo_to_tr(c) for c in combo[1:]))
    raise ValueError("not a positive combination: %r" % (combo,))


def from_sbfa(sbfa):
    """Proposition 8.3: the equivalent SAFA of an SBFA.

    Complement is eliminated by adding a negated copy ``neg(q)`` of
    every state with ``Delta(neg q) = NNF(~Delta(q))``; then each
    state's transition regex is expanded over the minterms of its
    guards.  Both steps can blow up — that is the proposition's point.
    """
    algebra = sbfa.algebra

    def neg_state(q):
        return q[1] if isinstance(q, tuple) and q and q[0] == "~" else ("~", q)

    # NNF over state leaves: negation becomes the negated state
    def nnf(tr, positive):
        if isinstance(tr, TRLeaf):
            return TRLeaf(tr.regex if positive else neg_state(tr.regex))
        if isinstance(tr, TRCond):
            return TRCond(tr.pred, nnf(tr.then, positive), nnf(tr.other, positive))
        if isinstance(tr, TRUnion):
            children = tuple(nnf(c, positive) for c in tr.children)
            return TRUnion(children) if positive else TRInter(children)
        if isinstance(tr, TRInter):
            children = tuple(nnf(c, positive) for c in tr.children)
            return TRInter(children) if positive else TRUnion(children)
        if isinstance(tr, TRCompl):
            return nnf(tr.child, not positive)
        raise TypeError("not a transition regex: %r" % (tr,))

    states = set(sbfa.states) | {neg_state(q) for q in sbfa.states}
    delta = {}
    for q in sbfa.states:
        delta[q] = nnf(sbfa.delta[q], True)
        delta[neg_state(q)] = nnf(sbfa.delta[q], False)
    finals = set(sbfa.finals) | {
        neg_state(q) for q in sbfa.states if q not in sbfa.finals
    }

    # local mintermization of each state's guards
    def eval_tr(tr, char):
        if isinstance(tr, TRLeaf):
            return B.st(tr.regex)
        if isinstance(tr, TRCond):
            branch = tr.then if algebra.member(char, tr.pred) else tr.other
            return eval_tr(branch, char)
        if isinstance(tr, TRUnion):
            return B.disj(*(eval_tr(c, char) for c in tr.children))
        if isinstance(tr, TRInter):
            return B.conj(*(eval_tr(c, char) for c in tr.children))
        raise TypeError("unexpected node after NNF: %r" % (tr,))

    transitions = []
    for q in states:
        local_guards = tr_guards(delta[q])
        for part in minterms(algebra, sorted(local_guards, key=repr)):
            target = eval_tr(delta[q], algebra.pick(part))
            if target == B.FALSE or (
                target[0] == "st" and target[1] == sbfa.bottom
            ):
                continue
            # the SBFA bottom inside conjunctions kills the branch
            target = _drop_bottom(target, sbfa.bottom)
            if target == B.FALSE:
                continue
            transitions.append((q, part, target))
    initial = B.map_states(sbfa.initial, B.st)
    initial = _positivize(initial, neg_state)
    used = states
    return SAFA(algebra, used, initial, finals, transitions)


def _drop_bottom(combo, bottom):
    tag = combo[0]
    if tag == "st":
        return B.FALSE if combo[1] == bottom else combo
    if tag == "and":
        return B.conj(*(_drop_bottom(c, bottom) for c in combo[1:]))
    if tag == "or":
        return B.disj(*(_drop_bottom(c, bottom) for c in combo[1:]))
    if tag == "not":
        return B.neg(_drop_bottom(combo[1], bottom))
    return combo


def _positivize(combo, neg_state):
    """Push negations in a state combination onto states."""

    def go(node, positive):
        tag = node[0]
        if tag == "st":
            return node if positive else B.st(neg_state(node[1]))
        if tag == "not":
            return go(node[1], not positive)
        if tag == "and":
            parts = tuple(go(c, positive) for c in node[1:])
            return B.conj(*parts) if positive else B.disj(*parts)
        if tag == "or":
            parts = tuple(go(c, positive) for c in node[1:])
            return B.disj(*parts) if positive else B.conj(*parts)
        if tag in ("true", "false"):
            if positive:
                return node
            return B.TRUE if tag == "false" else B.FALSE
        raise ValueError("not a state combination: %r" % (node,))

    return go(combo, True)
