"""Symbolic Boolean finite automata (Section 7) and the classical
correspondences of Section 8 (BFA, SAFA)."""

from repro.sbfa.sbfa import SBFA, delta_plus, from_regex
from repro.sbfa.safa import SAFA
from repro.sbfa import bfa, boolstate, safa

__all__ = ["SBFA", "SAFA", "delta_plus", "from_regex", "bfa", "safa", "boolstate"]
