"""Boolean operations on SBFAs — the payoff of ``B(Q)`` transitions.

On classical automata, intersection needs a product construction and
complement needs determinization (worst-case exponential, §8.3).  On
SBFAs both are *constant-time structural* operations: take the union
of the state spaces and combine the initial state combinations with
the Boolean connective — the transition function doesn't change at
all.  This mirrors the remark in §8.3 that complement of alternating
data automata is linear, "unlike in [22]" (SAFAs).
"""

from repro.sbfa import boolstate as B
from repro.sbfa.sbfa import SBFA


def _merged(left, right):
    """Shared-state-space merge of two SBFAs over one algebra.

    States are assumed compatible (e.g. both built from regexes over
    the same builder, where equal states are identical objects and
    have identical transition regexes).
    """
    if left.algebra is not right.algebra:
        raise ValueError("SBFAs must share a character algebra")
    if left.bottom != right.bottom:
        raise ValueError("SBFAs must share the bottom state")
    delta = dict(left.delta)
    for state, tr in right.delta.items():
        existing = delta.get(state)
        if existing is not None and existing != tr:
            raise ValueError(
                "state %r has conflicting transition regexes" % (state,)
            )
        delta[state] = tr
    return (
        left.states | right.states,
        left.finals | right.finals,
        delta,
    )


def union(left, right):
    """``L(union(M, N)) = L(M) | L(N)`` — just disjoin the initials."""
    states, finals, delta = _merged(left, right)
    return SBFA(
        left.algebra, states, B.disj(left.initial, right.initial),
        finals, left.bottom, delta,
    )


def inter(left, right):
    """``L(inter(M, N)) = L(M) & L(N)`` — just conjoin the initials."""
    states, finals, delta = _merged(left, right)
    return SBFA(
        left.algebra, states, B.conj(left.initial, right.initial),
        finals, left.bottom, delta,
    )


def complement(sbfa):
    """``L(complement(M)) = Sigma* \\ L(M)`` — negate the initial.

    No new states, no determinization: this is the constant-time
    complement that motivates Boolean (rather than merely alternating)
    automata.
    """
    return SBFA(
        sbfa.algebra, set(sbfa.states), B.neg(sbfa.initial),
        set(sbfa.finals), sbfa.bottom, dict(sbfa.delta),
    )


def difference(left, right):
    """``L(M) \\ L(N)``."""
    return inter(left, complement(right))
