"""Symbolic Boolean Finite Automata (paper, Section 7).

An SBFA is ``M = (A, Q, iota, F, q_bot, Delta)`` where ``iota`` is a
Boolean combination of states, ``Delta : Q -> TR_Q`` maps states to
transition regexes over states, and ``Delta(q_bot) = q_bot``.

The language is defined by lifting finality ``nu_F`` and ``Delta``
over ``B(Q)``::

    M(q) = { eps | nu_F(q) }  ∪  ⋃_a a · M(Delta(q)(a))

``from_regex`` builds ``SBFA(R)``: the states are ``delta+(R)`` — the
fixpoint of nontrivial terminals of symbolic derivatives — together
with ``R``, ``bottom`` and ``.*``.  Theorem 7.2: ``L(SBFA(R)) = L(R)``
(tested); Theorem 7.3: for clean, normalized ``R ∈ B(RE)``,
``|Q| <= #(R) + 3`` (tested and benchmarked).
"""

from repro.derivatives.derivative import derivative
from repro.derivatives.transition import (
    TRCompl, TRCond, TRInter, TRLeaf, TRUnion, nontrivial_terminals,
)
from repro.sbfa import boolstate as B


class SBFA:
    """A symbolic Boolean finite automaton over an arbitrary state type."""

    def __init__(self, algebra, states, initial, finals, bottom, delta):
        self.algebra = algebra
        self.states = set(states)
        self.initial = initial          # element of B(Q)
        self.finals = set(finals)
        self.bottom = bottom
        self.delta = dict(delta)        # state -> TR over states

    @property
    def state_count(self):
        return len(self.states)

    # -- semantics -----------------------------------------------------------

    def nu(self, combo):
        """Lifted finality ``nu_F`` over a state combination."""
        return B.evaluate(combo, lambda q: q in self.finals)

    def tr_apply(self, tr, char):
        """Evaluate a transition regex at a character, into ``B(Q)``."""
        if isinstance(tr, TRLeaf):
            if tr.regex == self.bottom:
                return B.FALSE
            return B.st(tr.regex)
        if isinstance(tr, TRCond):
            branch = tr.then if self.algebra.member(char, tr.pred) else tr.other
            return self.tr_apply(branch, char)
        if isinstance(tr, TRUnion):
            return B.disj(*(self.tr_apply(c, char) for c in tr.children))
        if isinstance(tr, TRInter):
            return B.conj(*(self.tr_apply(c, char) for c in tr.children))
        if isinstance(tr, TRCompl):
            return B.neg(self.tr_apply(tr.child, char))
        raise TypeError("not a transition regex: %r" % (tr,))

    def step(self, combo, char):
        """One lifted transition: ``Delta(combo)(char)``."""
        return B.map_states(combo, lambda q: self.tr_apply(self.delta[q], char))

    def accepts(self, string):
        """Membership in ``L(M)`` by forward stepping over ``B(Q)``."""
        if any(not self.algebra.in_domain(c) for c in string):
            return False  # negated states must not admit foreign chars
        combo = self.initial
        for char in string:
            combo = self.step(combo, char)
        return self.nu(combo)

    def accepts_backward(self, string):
        """Membership by the classical backward (Boolean-vector)
        evaluation of Brzozowski–Leiss BFAs; must agree with
        :meth:`accepts` (tested)."""
        if any(not self.algebra.in_domain(c) for c in string):
            return False
        value = {q: q in self.finals for q in self.states}
        for char in reversed(string):
            value = {
                q: B.evaluate(
                    self.tr_apply(self.delta[q], char), lambda p: value[p]
                )
                for q in self.states
            }
        return B.evaluate(self.initial, lambda q: value[q])

    def guards(self):
        """All branch predicates appearing in any transition."""
        from repro.derivatives.transition import guards as tr_guards

        out = set()
        for tr in self.delta.values():
            out |= tr_guards(tr)
        return out


def delta_plus(builder, regex, limit=100000):
    """``delta+(R)``: all regexes reachable by one or more symbolic
    derivations, at terminal granularity (Theorem 7.1: finite)."""
    frontier = [regex]
    reached = set()
    while frontier:
        current = frontier.pop()
        targets = nontrivial_terminals(builder, derivative(builder, current))
        for target in targets:
            if target not in reached:
                if len(reached) >= limit:
                    raise RuntimeError("delta+ exceeded %d states" % limit)
                reached.add(target)
                frontier.append(target)
    return reached


def from_regex(builder, regex):
    """``SBFA(R)`` as defined in Section 7."""
    states = delta_plus(builder, regex)
    states |= {regex, builder.empty, builder.full}
    finals = {q for q in states if q.nullable}
    delta = {q: derivative(builder, q) for q in states}
    # Delta(q_bot) = q_bot, and .* self-loops (delta(.*) = eps . .*)
    delta[builder.empty] = TRLeaf(builder.empty)
    return SBFA(
        builder.algebra, states, B.st(regex), finals, builder.empty, delta,
    )
