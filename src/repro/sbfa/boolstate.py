"""Boolean combinations of automaton states: the ``B(Q)`` of Section 7.

Combinations are plain nested tuples so they stay hashable and
printable for any state type::

    ("st", q)  |  ("and", c1, ..., cn)  |  ("or", c1, ..., cn)
    ("not", c) |  ("true",)  |  ("false",)

``true``/``false`` arise from simplification only; the paper's
``B(Q)`` is generated from states, with the bottom state ``q_bot``
playing the role of false and ``~q_bot`` of true.
"""

TRUE = ("true",)
FALSE = ("false",)


def st(state):
    """Inject a state into ``B(Q)``."""
    return ("st", state)


def conj(*parts):
    return _nary("and", parts, absorber=FALSE, unit=TRUE)


def disj(*parts):
    return _nary("or", parts, absorber=TRUE, unit=FALSE)


def neg(part):
    if part == TRUE:
        return FALSE
    if part == FALSE:
        return TRUE
    if part[0] == "not":
        return part[1]
    return ("not", part)


def _nary(op, parts, absorber, unit):
    flat = []
    for part in parts:
        if part == absorber:
            return absorber
        if part == unit:
            continue
        if part[0] == op:
            flat.extend(part[1:])
        else:
            flat.append(part)
    # dedupe, keep first-seen order for readability
    seen = set()
    uniq = []
    for part in flat:
        if part not in seen:
            seen.add(part)
            uniq.append(part)
    if not uniq:
        return unit
    if len(uniq) == 1:
        return uniq[0]
    return (op,) + tuple(uniq)


def states_of(combo):
    """All states mentioned by a combination."""
    out = set()
    stack = [combo]
    while stack:
        node = stack.pop()
        tag = node[0]
        if tag == "st":
            out.add(node[1])
        elif tag in ("and", "or"):
            stack.extend(node[1:])
        elif tag == "not":
            stack.append(node[1])
    return out


def evaluate(combo, assignment):
    """Evaluate under ``assignment``: a callable state -> bool."""
    tag = combo[0]
    if tag == "true":
        return True
    if tag == "false":
        return False
    if tag == "st":
        return bool(assignment(combo[1]))
    if tag == "and":
        return all(evaluate(c, assignment) for c in combo[1:])
    if tag == "or":
        return any(evaluate(c, assignment) for c in combo[1:])
    if tag == "not":
        return not evaluate(combo[1], assignment)
    raise ValueError("not a state combination: %r" % (combo,))


def map_states(combo, fn):
    """Rebuild the combination with ``fn`` applied to every state."""
    tag = combo[0]
    if tag in ("true", "false"):
        return combo
    if tag == "st":
        return fn(combo[1])
    if tag == "and":
        return conj(*(map_states(c, fn) for c in combo[1:]))
    if tag == "or":
        return disj(*(map_states(c, fn) for c in combo[1:]))
    if tag == "not":
        return neg(map_states(combo[1], fn))
    raise ValueError("not a state combination: %r" % (combo,))


def is_positive(combo):
    """True iff the combination is in ``B+(Q)`` (no negation)."""
    tag = combo[0]
    if tag in ("true", "false", "st"):
        return True
    if tag == "not":
        return False
    return all(is_positive(c) for c in combo[1:])


def pretty(combo, render=repr):
    tag = combo[0]
    if tag == "true":
        return "T"
    if tag == "false":
        return "F"
    if tag == "st":
        return render(combo[1])
    if tag == "and":
        return "(" + " & ".join(pretty(c, render) for c in combo[1:]) + ")"
    if tag == "or":
        return "(" + " | ".join(pretty(c, render) for c in combo[1:]) + ")"
    if tag == "not":
        return "~" + pretty(combo[1], render)
    raise ValueError("not a state combination: %r" % (combo,))
