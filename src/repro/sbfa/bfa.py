"""Classical Boolean finite automata over a finite alphabet
(Brzozowski & Leiss 1980), and Proposition 8.1: an SBFA over a finite
alphabet is a BFA with the transition function ``lambda (q, a).
Delta(q)(a)``.

Only meaningful for small explicit alphabets (use
:class:`~repro.alphabet.bitset.BitsetAlgebra`); this module exists to
make the classical correspondence executable and testable.
"""

from repro.sbfa import boolstate as B


class BFA:
    """A Boolean finite automaton with an explicit transition table."""

    def __init__(self, alphabet, states, table, initial, finals):
        self.alphabet = alphabet
        self.states = set(states)
        self.table = table              # (state, char) -> B(Q)
        self.initial = initial          # element of B(Q)
        self.finals = set(finals)

    @property
    def state_count(self):
        return len(self.states)

    def accepts(self, string):
        """Forward acceptance by stepping the state combination."""
        combo = self.initial
        for char in string:
            if char not in self.alphabet:
                return False
            combo = B.map_states(combo, lambda q: self.table[(q, char)])
        return B.evaluate(combo, lambda q: q in self.finals)

    def accepts_backward(self, string):
        """The textbook Brzozowski–Leiss evaluation: propagate the
        finality vector backwards through the string."""
        value = {q: q in self.finals for q in self.states}
        for char in reversed(string):
            if char not in self.alphabet:
                return False
            value = {
                q: B.evaluate(self.table[(q, char)], lambda p: value[p])
                for q in self.states
            }
        return B.evaluate(self.initial, lambda q: value[q])


def from_sbfa(sbfa, alphabet):
    """Proposition 8.1: instantiate an SBFA over an explicit alphabet."""
    table = {}
    for state in sbfa.states:
        for char in alphabet:
            table[(state, char)] = sbfa.tr_apply(sbfa.delta[state], char)
    return BFA(set(alphabet), sbfa.states, table, sbfa.initial, sbfa.finals)
