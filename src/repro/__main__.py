"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check PATTERN`` — satisfiability of an extended regex pattern,
  with a witness when sat;
* ``contains SUB SUP`` — language containment, with a counterexample;
* ``equiv LEFT RIGHT`` — language equivalence, with a distinguishing
  string;
* ``match PATTERN TEXT`` — full-match and leftmost-search of a text;
* ``solve FILE.smt2 ...`` — run SMT-LIB scripts (``--jobs N`` fans
  them over a pool of worker processes);
* ``batch PATH`` — batched solving of a directory of ``.smt2`` files
  or a ``.jsonl`` job file on a worker pool (``--jobs``, ``--retries``,
  ``--output results.jsonl``); exit 1 when any task errored, 2 when
  any came back unknown, 0 otherwise.  With ``--flight-dir DIR`` the
  batch records a flight: structured events, worker heartbeats, a
  merged Chrome-trace timeline, and replayable slow-query artifacts
  for tasks past ``--slow-threshold`` / ``--slow-explored``;
* ``status DIR`` — render a flight directory as text: per-worker
  lanes, latency quantiles, top slow queries, fleet incidents;
* ``replay PATH`` — re-solve captured slow-query artifacts (one
  artifact file, or every artifact of a flight directory) through the
  same worker executor and diff the verdicts; exit 1 on any mismatch;
* ``graph PATTERN`` — print the derivative graph (add ``--dot`` for
  Graphviz output);
* ``explain PATTERN`` — solve with provenance recording: prints the
  step-by-step explanation (sat witness path or unsat closure),
  re-verifies the certificate with the independent checker (skip with
  ``--no-check``), and exports it via ``--json FILE`` /
  ``--dot FILE``;
* ``verify`` — cross-engine differential verification: replay the
  frozen corpus under ``tests/corpus/`` and run a seeded, budgeted
  fuzz campaign (``--seed``, ``--budget``, ``--jobs``) that diffs all
  four engines, checks the metamorphic identities, and shrinks any
  disagreement to a minimal reproducer; exit 1 on an unexplained
  disagreement or a corpus regression.

All commands take ``--ascii`` (7-bit domain), ``--fuel N`` and
``--seconds S`` budget flags, plus the telemetry flags ``--stats``
(print the solver's per-query counters and metrics snapshot),
``--trace FILE`` (record nested spans; ``.jsonl`` writes JSONL,
anything else the Chrome ``trace_event`` format that loads in
``chrome://tracing`` / Perfetto) and ``--profile FILE`` (write the
span-derived collapsed stacks — flamegraph.pl / speedscope input —
and print the top-K self-time hotspot table).
"""

import argparse
import json
import sys

from repro.alphabet import IntervalAlgebra
from repro.matcher import RegexMatcher
from repro.obs import Observability, Tracer, render_hotspots, write_collapsed
from repro.regex import RegexBuilder, parse, to_pattern
from repro.smtlib.interp import run_file
from repro.solver import Budget, RegexSolver, SmtSolver
from repro.visualize import graph_to_dot, graph_to_text


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic Boolean derivatives for extended regexes "
                    "(PLDI 2021 reproduction)",
    )
    parser.add_argument("--ascii", action="store_true",
                        help="use a 7-bit character domain instead of the BMP")
    parser.add_argument("--fuel", type=int, default=1000000,
                        help="solver step budget (default 1000000)")
    parser.add_argument("--seconds", type=float, default=60.0,
                        help="wall clock budget (default 60)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-query stats and the metrics snapshot")
    parser.add_argument("--explain", action="store_true",
                        help="record verdict provenance (witness path / "
                             "unsat closure); --stats then prints the "
                             "one-line explanation summary (implied by "
                             "the explain command)")
    parser.add_argument("--store", metavar="FILE", default=None,
                        help="warm-store snapshot: load compiled fragments "
                             "from FILE before solving and save new ones "
                             "back after (check/solve/batch; see the README "
                             "warm store section)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record spans to FILE (.jsonl for JSONL, "
                             "anything else for Chrome trace_event)")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="write span-derived collapsed stacks to FILE "
                             "(flamegraph.pl / speedscope format) and print "
                             "the self-time hotspot table")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="satisfiability of a pattern")
    check.add_argument("pattern")

    contains = sub.add_parser("contains", help="language containment")
    contains.add_argument("sub")
    contains.add_argument("sup")

    equiv = sub.add_parser("equiv", help="language equivalence")
    equiv.add_argument("left")
    equiv.add_argument("right")

    match = sub.add_parser("match", help="match a text against a pattern")
    match.add_argument("pattern")
    match.add_argument("text")

    solve = sub.add_parser("solve", help="run SMT-LIB scripts")
    solve.add_argument("files", nargs="+")
    solve.add_argument("--jobs", type=int, default=1,
                       help="solve the files on N worker processes "
                            "(default 1 = in-process)")

    batch = sub.add_parser(
        "batch",
        help="solve a batch (directory of .smt2 files or a .jsonl job "
             "file) on a worker pool",
    )
    batch.add_argument("path",
                       help="directory of .smt2 files, a .jsonl job file, "
                            "or a single .smt2 file")
    batch.add_argument("--jobs", type=int, default=2,
                       help="worker processes (default 2)")
    batch.add_argument("--retries", type=int, default=1,
                       help="retry budget per crashed task (default 1)")
    batch.add_argument("--output", metavar="FILE", default=None,
                       help="write per-task results as JSONL to FILE")
    batch.add_argument("--worker-max-tasks", type=int, default=None,
                       metavar="N",
                       help="recycle each worker after N tasks")
    batch.add_argument("--worker-max-rss-mb", type=int, default=None,
                       metavar="MB",
                       help="recycle a worker whose RSS reaches MB MiB")
    batch.add_argument("--worker-max-cache", type=int, default=None,
                       metavar="N",
                       help="recycle a worker whose solver caches reach "
                            "N entries")
    batch.add_argument("--worker-compact", type=int, default=None,
                       metavar="N",
                       help="compact worker solver caches past N entries "
                            "instead of letting them grow unboundedly")
    batch.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="record the batch as a flight: structured "
                            "events, heartbeats, slow-query artifacts and "
                            "a merged Chrome-trace timeline under DIR")
    batch.add_argument("--slow-threshold", type=float, default=None,
                       metavar="S",
                       help="capture tasks slower than S seconds as "
                            "replayable artifacts (default 1.0 when "
                            "--flight-dir is set)")
    batch.add_argument("--slow-explored", type=int, default=None,
                       metavar="N",
                       help="also capture tasks whose solver explored "
                            "N or more derivative states")
    batch.add_argument("--heartbeat", type=float, default=None,
                       metavar="S",
                       help="seconds between worker heartbeats "
                            "(default 0.25)")
    batch.add_argument("--trace-solver", action="store_true",
                       help="also stream the solver's internal spans "
                            "into the flight (slow; debugging mode)")

    status = sub.add_parser(
        "status",
        help="render a flight directory: worker lanes, latency "
             "quantiles, slow queries, incidents",
    )
    status.add_argument("flight_dir",
                        help="flight directory recorded by "
                             "batch --flight-dir")
    status.add_argument("--top", type=int, default=5,
                        help="slow queries to list (default 5)")

    replay = sub.add_parser(
        "replay",
        help="re-solve captured slow-query artifacts and diff the "
             "verdicts against the recording",
    )
    replay.add_argument("path",
                        help="a slow-query artifact .json, or a flight "
                             "directory (replays every artifact in it)")
    replay.add_argument("--json", action="store_true",
                        help="emit one JSON comparison per artifact")

    graph = sub.add_parser("graph", help="print the derivative graph")
    graph.add_argument("pattern")
    graph.add_argument("--dot", action="store_true")
    graph.add_argument("--max-states", type=int, default=50)

    explain = sub.add_parser(
        "explain",
        help="solve a pattern with provenance recording, print the "
             "step-by-step explanation, and re-verify the certificate "
             "with the independent checker",
    )
    explain.add_argument("pattern")
    explain.add_argument("--dot", metavar="FILE", default=None,
                         help="write a Graphviz view (witness path / "
                              "unsat closure highlighted) to FILE")
    explain.add_argument("--json", metavar="FILE", default=None,
                         help="write the full JSON certificate to FILE")
    explain.add_argument("--no-check", action="store_true",
                         help="skip the independent certificate check")

    serve = sub.add_parser(
        "serve",
        help="run the persistent solver daemon: a long-lived worker "
             "pool behind a Unix/TCP socket with admission control "
             "(see the README daemon section)",
    )
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="Unix socket path to listen on")
    serve.add_argument("--tcp", metavar="HOST:PORT", default=None,
                       help="TCP address to listen on instead (port 0 "
                            "binds ephemerally and prints the port)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="worker processes (default 2)")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="hard admission watermark: reject every "
                            "submission past this backlog (default 256)")
    serve.add_argument("--max-backlog", type=float, default=30.0,
                       metavar="S",
                       help="hard watermark on estimated backlog seconds "
                            "(default 30)")
    serve.add_argument("--client-budget", type=int, default=64,
                       metavar="N",
                       help="per-client token bucket capacity (default 64)")
    serve.add_argument("--client-refill", type=float, default=8.0,
                       metavar="PER_S",
                       help="per-client token refill rate (default 8/s)")
    serve.add_argument("--worker-max-tasks", type=int, default=None,
                       metavar="N",
                       help="recycle each worker after N tasks")
    serve.add_argument("--worker-max-rss-mb", type=int, default=None,
                       metavar="MB",
                       help="recycle a worker whose RSS reaches MB MiB")
    serve.add_argument("--worker-compact", type=int, default=None,
                       metavar="N",
                       help="compact worker solver caches past N entries")
    serve.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="record the daemon's serving as a flight "
                            "(events, heartbeats, slow-query artifacts)")
    serve.add_argument("--no-shutdown-op", action="store_true",
                       help="refuse the protocol's shutdown op (stop the "
                            "daemon with SIGINT instead)")

    submit = sub.add_parser(
        "submit",
        help="submit jobs to a running daemon and print the results",
    )
    submit.add_argument("--socket", metavar="PATH", default=None,
                        help="daemon Unix socket path")
    submit.add_argument("--tcp", metavar="HOST:PORT", default=None,
                        help="daemon TCP address")
    submit.add_argument("--kind", choices=("pattern", "smt2"),
                        default="pattern",
                        help="payload kind (default pattern)")
    submit.add_argument("payloads", nargs="*",
                        help="patterns (or .smt2 paths with --kind smt2; "
                             "file contents are shipped)")
    submit.add_argument("--daemon-stats", action="store_true",
                        help="also print the daemon's serving stats "
                             "(SLO quantiles, admission counters)")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to shut down after the jobs")

    verify = sub.add_parser(
        "verify",
        help="cross-engine differential verification: fuzz all four "
             "engines against each other and the metamorphic "
             "identities, replay the frozen corpus",
    )
    verify.add_argument("--seed", type=int, default=0,
                        help="campaign base seed (worker i uses seed+i)")
    verify.add_argument("--budget", type=float, default=30.0,
                        help="campaign wall-clock budget in seconds "
                             "(default 30)")
    verify.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default 2; 1 = in-process)")
    verify.add_argument("--max-cases", type=int, default=None,
                        help="stop each worker after N cases")
    verify.add_argument("--skip-corpus", action="store_true",
                        help="skip replaying tests/corpus/ entries")
    verify.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    return parser


def _hit_ratio(hits, misses):
    """``(ratio_pct, lookups)`` or None when nothing was looked up."""
    lookups = hits + misses
    if not lookups:
        return None
    return 100.0 * hits / lookups, lookups


def _cache_ratio_line(stats):
    """The ``cache hit ratio`` line over the query's derivative and
    meld memo counters, or None when the query did no memo lookups."""
    ratio = _hit_ratio(
        stats.get("deriv_memo_hits", 0) + stats.get("meld_memo_hits", 0),
        stats.get("deriv_memo_misses", 0) + stats.get("meld_memo_misses", 0),
    )
    if ratio is None:
        return None
    pct, lookups = ratio
    return ("cache hit ratio: %.1f%% (%d/%d memo lookups: deriv %d/%d, "
            "meld %d/%d)") % (
        pct,
        stats.get("deriv_memo_hits", 0) + stats.get("meld_memo_hits", 0),
        lookups,
        stats.get("deriv_memo_hits", 0),
        stats.get("deriv_memo_hits", 0) + stats.get("deriv_memo_misses", 0),
        stats.get("meld_memo_hits", 0),
        stats.get("meld_memo_hits", 0) + stats.get("meld_memo_misses", 0),
    )


def _store_ratio_line(stats):
    """The ``store hit ratio`` line over the query's warm-store
    lookups, or None when no store was consulted."""
    hits = stats.get("store_hits", 0)
    ratio = _hit_ratio(hits, stats.get("store_misses", 0))
    if ratio is None:
        return None
    pct, lookups = ratio
    return "store hit ratio: %.1f%% (%d/%d fragment lookups)" % (
        pct, hits, lookups,
    )


def _open_store(args):
    """The warm store behind ``--store``, loaded from disk (missing
    file = cold start; malformed file = diagnostic + cold start)."""
    if not args.store:
        return None
    from repro.solver.store import SolverStore

    store = SolverStore()
    try:
        store.load(args.store)
    except (OSError, ValueError) as exc:
        print("store: starting cold, cannot load %s: %s"
              % (args.store, exc), file=sys.stderr)
    return store


def _save_store(args, store, out):
    """Persist an in-process ``--store`` back to disk, reporting the
    session's hit/miss totals.  Saved via the atomic merge path: a
    daemon or a second CLI run writing the same file concurrently is
    folded in, never clobbered."""
    try:
        store.save_merged(args.store)
    except OSError as exc:
        print("store: cannot write %s: %s" % (args.store, exc),
              file=sys.stderr)
    else:
        out.append("store: %d fragments (%d hits, %d misses) -> %s"
                   % (len(store), store.hits, store.misses, args.store))


def _pool_store_line(args, report):
    """The batch-level warm-store summary: hit/miss totals summed over
    every worker's final report."""
    stores = [w.get("store") or {} for w in report.worker_reports]
    hits = sum(s.get("hits", 0) for s in stores)
    misses = sum(s.get("misses", 0) for s in stores)
    line = "store: %d hits, %d misses -> %s" % (hits, misses, args.store)
    ratio = _hit_ratio(hits, misses)
    if ratio is not None:
        line = "store: %d hits, %d misses (%.1f%% warm) -> %s" % (
            hits, misses, ratio[0], args.store,
        )
    return line


def _stats_lines(result, obs):
    """Render ``--stats`` output: per-query counters, the cache hit
    ratio, then the metrics snapshot (sorted, non-zero entries only)."""
    lines = []
    stats = getattr(result, "stats", None) if result is not None else None
    if stats:
        stats = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
        stats.pop("lifetime", None)
        caches = stats.pop("caches", None)
        lines.append("stats: " + " ".join(
            "%s=%s" % (key, stats[key]) for key in sorted(stats)
            if not isinstance(stats[key], dict)
        ))
        if caches:
            lines.append("caches: " + " ".join(
                "%s=%s" % (key, caches[key]) for key in sorted(caches)
            ))
        ratio_line = _cache_ratio_line(stats)
        if ratio_line:
            lines.append(ratio_line)
        store_line = _store_ratio_line(stats)
        if store_line:
            lines.append(store_line)
    explanation = getattr(result, "explanation", None)
    if explanation is not None:
        lines.append("explanation: " + explanation.summary())
    if obs is not None and obs.metrics.enabled:
        for name, value in sorted(obs.metrics.snapshot().items()):
            if value:
                lines.append("  %s = %s" % (name, value))
    return lines


def _task_line(task):
    """One output line per batch task, in submission order."""
    line = "%s: %s" % (task.name, task.status)
    if task.model:
        line += "  " + " ".join(
            "%s=%r" % kv for kv in sorted(task.model.items())
        )
    elif task.witness is not None:
        line += "  witness=%r" % task.witness
    if task.error:
        line += "  [%s: %s]" % (task.error["type"], task.error["message"])
    explanation = getattr(task, "explanation", None)
    if explanation is not None:
        checked = explanation.get("certificate_checked")
        if checked is False:
            line += "  [CERTIFICATE REJECTED]"
        elif checked is True:
            line += "  [certified]"
    return line


def _batch_status(report):
    """Exit code for batch runs: errors dominate unknowns."""
    counts = report.counts
    if counts["error"]:
        return 1
    if counts["unknown"]:
        return 2
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    algebra = IntervalAlgebra(127) if args.ascii else IntervalAlgebra()
    builder = RegexBuilder(algebra)
    budget = lambda: Budget(fuel=args.fuel, seconds=args.seconds)
    tracer = Tracer() if (args.trace or args.profile) else None
    obs = Observability(tracer=tracer) if tracer else Observability()
    out = []
    result = None
    store = None

    if args.command == "check":
        store = _open_store(args)
        solver = RegexSolver(builder, obs=obs, explain=args.explain,
                             store=store)
        result = solver.is_satisfiable(parse(builder, args.pattern), budget())
        out.append(result.status)
        if result.is_sat:
            out.append("witness: %r" % result.witness)
        status = 0 if not result.is_unknown else 2
    elif args.command == "contains":
        solver = RegexSolver(builder, obs=obs, explain=args.explain)
        result = solver.contains(
            parse(builder, args.sub), parse(builder, args.sup), budget()
        )
        if result.is_sat:
            out.append("containment holds")
        elif result.is_unsat:
            out.append("containment fails; counterexample: %r" % result.witness)
        else:
            out.append("unknown (%s)" % result.reason)
        status = 0 if not result.is_unknown else 2
    elif args.command == "equiv":
        solver = RegexSolver(builder, obs=obs, explain=args.explain)
        result = solver.equivalent(
            parse(builder, args.left), parse(builder, args.right), budget()
        )
        if result.is_sat:
            out.append("equivalent")
        elif result.is_unsat:
            out.append("not equivalent; distinguishing string: %r"
                       % result.witness)
        else:
            out.append("unknown (%s)" % result.reason)
        status = 0 if not result.is_unknown else 2
    elif args.command == "match":
        matcher = RegexMatcher(builder, parse(builder, args.pattern))
        out.append("fullmatch: %s" % matcher.fullmatch(args.text))
        found = matcher.search(args.text)
        if found is None:
            out.append("search: no match")
        else:
            out.append("search: span=%s group=%r" % (found.span(), found.group()))
        if args.stats:
            dfa = matcher.dfa
            out.append(
                "dfa: steps=%d states_built=%d row_hits=%d row_misses=%d"
                % (dfa.steps, dfa.states_built, dfa.row_hits,
                   dfa.row_misses)
            )
            ratio = _hit_ratio(dfa.row_hits, dfa.row_misses)
            if ratio is not None:
                out.append("cache hit ratio: %.1f%% (%d/%d row lookups)"
                           % (ratio[0], dfa.row_hits, ratio[1]))
        status = 0
    elif args.command == "solve":
        if args.jobs > 1:
            from repro.serve import jobs_from_files, solve_batch

            report = solve_batch(
                jobs_from_files(args.files), workers=args.jobs,
                fuel=args.fuel, seconds=args.seconds,
                max_char=127 if args.ascii else None,
                store_path=args.store, store_save=args.store,
            )
            for task in report.results:
                out.append(_task_line(task))
            if args.store:
                out.append(_pool_store_line(args, report))
            status = _batch_status(report)
        else:
            status = 0
            store = _open_store(args)
            smt = SmtSolver(
                builder, RegexSolver(builder, obs=obs, explain=args.explain,
                                     store=store)
            )
            for path in args.files:
                result = run_file(builder, path, solver=smt, budget=budget())
                line = "%s: %s" % (path, result.status)
                if result.model:
                    line += "  " + " ".join(
                        "%s=%r" % kv for kv in sorted(result.model.items())
                    )
                out.append(line)
                if result.is_unknown:
                    status = 2
    elif args.command == "batch":
        from repro.serve import load_jobs, solve_batch

        jobs = load_jobs(args.path)
        if not jobs:
            print("batch: no jobs found under %s" % args.path,
                  file=sys.stderr)
            return 2
        report = solve_batch(
            jobs, workers=args.jobs, fuel=args.fuel, seconds=args.seconds,
            max_char=127 if args.ascii else None, retries=args.retries,
            max_tasks=args.worker_max_tasks,
            max_rss_mb=args.worker_max_rss_mb,
            max_cache_entries=args.worker_max_cache,
            compact_entries=args.worker_compact,
            flight_dir=args.flight_dir, slow_s=args.slow_threshold,
            slow_explored=args.slow_explored, heartbeat_s=args.heartbeat,
            trace_solver=args.trace_solver, explain=args.explain,
            store_path=args.store, store_save=args.store,
        )
        for task in report.results:
            out.append(_task_line(task))
        out.append(report.summary_line())
        if args.store:
            out.append(_pool_store_line(args, report))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                for task in report.results:
                    handle.write(json.dumps(task.to_dict(), sort_keys=True))
                    handle.write("\n")
            out.append("wrote %d results to %s"
                       % (len(report.results), args.output))
        status = _batch_status(report)
    elif args.command == "status":
        import os

        from repro.obs.flight import list_artifacts, list_streams, \
            render_status

        # a missing or empty directory is an operator mistake (wrong
        # path, flight never recorded), not a rendering problem: exit
        # with a diagnostic, never a traceback or a misleading empty
        # report.  Torn event lines inside a real flight are expected
        # (a killed worker dies mid-write) and are tolerated downstream.
        if not os.path.isdir(args.flight_dir):
            print("status: %s is not a directory (was the flight "
                  "recorded with batch --flight-dir?)" % args.flight_dir,
                  file=sys.stderr)
            return 2
        try:
            event_files, span_files = list_streams(args.flight_dir)
            artifacts = list_artifacts(args.flight_dir)
            if not event_files and not span_files and not artifacts:
                print("status: no flight streams under %s (empty or not "
                      "a flight directory)" % args.flight_dir,
                      file=sys.stderr)
                return 2
            out.append(render_status(args.flight_dir, top=args.top))
        except (OSError, ValueError) as exc:
            print("status: cannot render %s: %s" % (args.flight_dir, exc),
                  file=sys.stderr)
            return 2
        status = 0
    elif args.command == "replay":
        import os

        from repro.obs.flight import list_artifacts, replay_artifact

        if os.path.isdir(args.path):
            paths = list_artifacts(args.path)
            if not paths:
                print("replay: no slow-query artifacts under %s" % args.path,
                      file=sys.stderr)
                return 2
        elif not os.path.exists(args.path):
            print("replay: %s does not exist" % args.path, file=sys.stderr)
            return 2
        else:
            paths = [args.path]
        status = 0
        mismatches = 0
        skipped = 0
        for path in paths:
            try:
                comparison = replay_artifact(path)
            except (OSError, ValueError) as exc:
                # unreadable or torn artifact: diagnose and move on so
                # one bad file never hides the rest of the flight
                print("replay: skipping %s: %s" % (path, exc),
                      file=sys.stderr)
                skipped += 1
                continue
            if not comparison["match"]:
                mismatches += 1
            if args.json:
                out.append(json.dumps(comparison, sort_keys=True,
                                      default=str))
            else:
                out.append("%s: recorded %s, replayed %s -> %s" % (
                    comparison["name"], comparison["recorded"],
                    comparison["replayed"],
                    "ok" if comparison["match"] else "MISMATCH",
                ))
        replayed = len(paths) - skipped
        if not args.json:
            out.append("replayed %d artifact%s, %d mismatch%s%s" % (
                replayed, "" if replayed == 1 else "s",
                mismatches, "" if mismatches == 1 else "es",
                ", %d skipped" % skipped if skipped else "",
            ))
        if mismatches:
            status = 1
        elif not replayed:
            # nothing was replayable at all — the caller pointed at
            # garbage, not at a healthy flight
            status = 2
    elif args.command == "graph":
        regex = parse(builder, args.pattern)
        render = graph_to_dot if args.dot else graph_to_text
        out.append(render(builder, regex, max_states=args.max_states))
        status = 0
    elif args.command == "explain":
        from repro.obs.explain import CertificateError, certificate_to_json
        from repro.visualize import render_explanation

        solver = RegexSolver(builder, obs=obs, explain=True)
        result = solver.is_satisfiable(parse(builder, args.pattern), budget())
        explanation = result.explanation
        status = 0 if not result.is_unknown else 2
        if not args.no_check and explanation.certifiable():
            outcome = explanation.check()
            if not outcome.ok:
                status = 1
                out.append("CERTIFICATE REJECTED by the independent checker:")
                out.extend("  " + err for err in outcome.errors)
        out.append(explanation.narrative())
        for path, render_cert in (
            (args.json, lambda: certificate_to_json(
                explanation.certificate(), indent=2)),
            (args.dot, lambda: render_explanation(explanation)),
        ):
            if not path:
                continue
            if path is args.json and not explanation.certifiable():
                print("explain: no certificate for a %s verdict"
                      % explanation.kind, file=sys.stderr)
                status = status or 2
                continue
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(render_cert())
                    handle.write("\n")
            except (OSError, CertificateError) as exc:
                print("explain: cannot write %s: %s" % (path, exc),
                      file=sys.stderr)
                status = status or 1
            else:
                out.append("wrote %s" % path)
    elif args.command == "serve":
        from repro.serve.admission import AdmissionController
        from repro.serve.daemon import SolverDaemon

        if bool(args.socket) == bool(args.tcp):
            print("serve: need exactly one of --socket PATH or "
                  "--tcp HOST:PORT", file=sys.stderr)
            return 2
        host = port = None
        if args.tcp:
            host, _, port_text = args.tcp.rpartition(":")
            host = host or "127.0.0.1"
            try:
                port = int(port_text)
            except ValueError:
                print("serve: bad --tcp address %r" % args.tcp,
                      file=sys.stderr)
                return 2
        admission = AdmissionController(
            max_queue=args.max_queue, max_backlog_s=args.max_backlog,
            client_capacity=args.client_budget,
            client_refill_per_s=args.client_refill,
        )
        daemon = SolverDaemon(
            path=args.socket, host=host, port=port, workers=args.jobs,
            admission=admission, allow_shutdown=not args.no_shutdown_op,
            fuel=args.fuel, seconds=args.seconds,
            max_char=127 if args.ascii else None,
            max_tasks=args.worker_max_tasks,
            max_rss_mb=args.worker_max_rss_mb,
            compact_entries=args.worker_compact,
            flight_dir=args.flight_dir,
            store_path=args.store, store_save=args.store,
        )
        address = daemon.start()
        print("serving on %s (%d workers, queue limit %d, backlog limit "
              "%.0fs)" % (address, args.jobs, args.max_queue,
                          args.max_backlog), flush=True)
        # SIGTERM's default action would kill this process without
        # running the finally below, orphaning the worker fleet; route
        # it into the same graceful drain as Ctrl-C
        import signal as _signal

        def _on_term(signum, frame):
            print("terminated; draining", flush=True)
            daemon._stop.set()

        try:
            previous_term = _signal.signal(_signal.SIGTERM, _on_term)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            previous_term = None
        try:
            while not daemon._stop.wait(0.5):
                pass
        except KeyboardInterrupt:
            print("interrupted; draining", flush=True)
        finally:
            daemon.stop()
            if previous_term is not None:
                _signal.signal(_signal.SIGTERM, previous_term)
        stats = daemon.stats()
        print("served %d job(s), dropped %d" % (
            stats["served"], stats["dropped"],
        ))
        return 0
    elif args.command == "submit":
        import os

        from repro.serve.client import DaemonClient, DaemonError
        from repro.serve.jobs import Job

        if bool(args.socket) == bool(args.tcp):
            print("submit: need exactly one of --socket PATH or "
                  "--tcp HOST:PORT", file=sys.stderr)
            return 2
        if not args.payloads and not args.daemon_stats \
                and not args.shutdown:
            print("submit: nothing to do (no payloads, no --daemon-stats, "
                  "no --shutdown)", file=sys.stderr)
            return 2
        jobs = []
        for i, payload in enumerate(args.payloads):
            if args.kind == "smt2" and os.path.exists(payload):
                with open(payload, "r", encoding="utf-8") as handle:
                    payload = handle.read()
            jobs.append(Job("job-%04d" % i, args.kind, payload))
        status = 0
        try:
            with DaemonClient(args.socket or args.tcp) as client:
                if jobs:
                    outcomes = client.solve(
                        jobs, timeout=args.seconds * max(len(jobs), 1) + 30.0,
                    )
                    for job in jobs:
                        reply = outcomes.get(job.name) or {}
                        kind = reply.get("type")
                        if kind == "result":
                            line = "%s: %s" % (job.name, reply.get("status"))
                            if reply.get("model"):
                                line += "  " + " ".join(
                                    "%s=%r" % kv for kv in
                                    sorted(reply["model"].items())
                                )
                            elif reply.get("witness") is not None:
                                line += "  witness=%r" % reply["witness"]
                            if reply.get("error"):
                                line += "  [%s: %s]" % (
                                    reply["error"].get("type"),
                                    reply["error"].get("message"),
                                )
                                status = 1
                            elif reply.get("status") == "unknown":
                                status = status or 2
                            out.append(line)
                        elif kind == "overloaded":
                            out.append("%s: REJECTED (%s; retry after %ss)"
                                       % (job.name, reply.get("reason"),
                                          reply.get("retry_after_s")))
                            status = 1
                        else:
                            out.append("%s: protocol error %r"
                                       % (job.name, reply.get("message")))
                            status = 1
                if args.daemon_stats:
                    stats = client.stats()
                    latency = stats.get("latency") or {}
                    out.append(
                        "daemon: uptime %.0fs served %d dropped %d "
                        "depth %d" % (
                            stats.get("uptime_s", 0.0),
                            stats.get("served", 0),
                            stats.get("dropped", 0),
                            stats.get("queue_depth", 0),
                        ))
                    out.append(
                        "latency: p50=%s p90=%s p99=%s (n=%s)" % (
                            latency.get("p50_s"), latency.get("p90_s"),
                            latency.get("p99_s"), latency.get("window"),
                        ))
                    admission = stats.get("admission") or {}
                    out.append(
                        "admission: accepted=%s degraded=%s rejected=%s"
                        % (admission.get("accepted"),
                           admission.get("degraded"),
                           admission.get("rejected")))
                    store_stats = stats.get("store") or {}
                    if store_stats.get("hits") or store_stats.get("misses"):
                        out.append("store: hits=%s misses=%s ratio=%s" % (
                            store_stats.get("hits"),
                            store_stats.get("misses"),
                            store_stats.get("hit_ratio")))
                if args.shutdown:
                    client.shutdown()
                    out.append("shutdown requested")
        except (DaemonError, OSError) as exc:
            print("submit: %s" % exc, file=sys.stderr)
            return 2
    elif args.command == "verify":
        from repro.verify import load_all, replay_entry, run_campaign

        status = 0
        if not args.skip_corpus:
            for entry in load_all():
                ok, detail = replay_entry(entry)
                out.append("corpus %s: %s (%s)" % (
                    entry["id"], "ok" if ok else "FAIL", detail,
                ))
                if not ok:
                    status = 1
        report = run_campaign(
            seed=args.seed, budget_seconds=args.budget, jobs=args.jobs,
            max_cases=args.max_cases,
        )
        if args.json:
            out.append(json.dumps(report, indent=2, sort_keys=True))
        else:
            out.append(
                "campaign: %d cases, %d findings (%d unexplained), "
                "seed=%d jobs=%d" % (
                    report["cases"], len(report["findings"]),
                    report["unexplained"], report["seed"], report["jobs"],
                )
            )
            for finding in report["findings"]:
                out.append("  [%s] %s  (shrunk: %s)" % (
                    finding["stream"], finding["pattern"],
                    finding["shrunk"],
                ))
        if report["unexplained"]:
            status = 1
    else:  # pragma: no cover - argparse enforces the choices
        status = 1

    if store is not None:
        _save_store(args, store, out)
    if args.stats:
        out.extend(_stats_lines(result, obs))
    if args.trace and tracer is not None:
        try:
            count = tracer.export(args.trace)
        except OSError as exc:
            print("trace: cannot write %s: %s" % (args.trace, exc),
                  file=sys.stderr)
            status = status or 1
        else:
            out.append("trace: wrote %d events to %s" % (count, args.trace))
    if args.profile and tracer is not None:
        events = tracer.export_events()
        try:
            count = write_collapsed(events, args.profile)
        except OSError as exc:
            print("profile: cannot write %s: %s" % (args.profile, exc),
                  file=sys.stderr)
            status = status or 1
        else:
            out.append("profile: wrote %d stacks to %s"
                       % (count, args.profile))
            out.append(render_hotspots(events))

    print("\n".join(out))
    return status


if __name__ == "__main__":
    sys.exit(main())
